"""Throughput-profile calibration for Algorithm-2 selection.

The Eq.-2 selection needs per-codec compression/decompression throughputs.
:data:`~repro.adaptive.selection.PAPER_A100_PROFILE` carries the paper's
published A100 numbers; on a *different* device, the right profile comes
from measurement.  This helper measures each codec's wall-clock throughput
on a sample and optionally rescales the whole profile so that a reference
codec matches a known device number (useful when the measurement host is
not the deployment device: relative codec speeds transfer better than
absolute ones).
"""

from __future__ import annotations

import numpy as np

from repro.adaptive.selection import CodecThroughput, DeviceThroughputProfile
from repro.compression.base import Compressor
from repro.compression.metrics import evaluate_codec
from repro.utils.validation import check_positive

__all__ = ["calibrate_profile"]


def calibrate_profile(
    sample: np.ndarray,
    codecs: dict[str, Compressor],
    error_bound: float,
    repeats: int = 3,
    reference: tuple[str, float] | None = None,
) -> DeviceThroughputProfile:
    """Measure codec throughputs on ``sample`` and build a profile.

    Parameters
    ----------
    sample:
        A representative ``(batch, dim)`` lookup batch.
    codecs:
        Codec name -> instance; each is round-tripped ``repeats`` times and
        the best (least-noisy) throughput is kept.
    reference:
        Optional ``(codec_name, known_compress_throughput)``: every
        measured number is scaled by the factor that maps the reference
        codec's measured compression throughput onto the known one.
    """
    if not codecs:
        raise ValueError("need at least one codec to calibrate")
    check_positive("repeats", repeats)
    measured: dict[str, CodecThroughput] = {}
    for name, codec in codecs.items():
        best_compress = 0.0
        best_decompress = 0.0
        for _ in range(repeats):
            evaluation = evaluate_codec(
                codec, sample, error_bound if codec.error_bounded else None
            )
            best_compress = max(best_compress, evaluation.compress_throughput)
            best_decompress = max(best_decompress, evaluation.decompress_throughput)
        measured[name] = CodecThroughput(
            compress=best_compress, decompress=best_decompress
        )
    scale = 1.0
    if reference is not None:
        ref_name, known = reference
        check_positive("reference throughput", known)
        if ref_name not in measured:
            raise KeyError(f"reference codec {ref_name!r} not among calibrated codecs")
        scale = known / measured[ref_name].compress
    return DeviceThroughputProfile(
        codecs={
            name: CodecThroughput(
                compress=t.compress * scale, decompress=t.decompress * scale
            )
            for name, t in measured.items()
        }
    )
