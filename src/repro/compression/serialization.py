"""Compact binary serialization for compressor headers.

Every codec in this library produces a *self-describing* byte payload:
the compressed ratio accounting includes the real header cost, not just the
entropy-coded body.  Headers are dictionaries of simple typed values packed
with a small tag-length-value format:

==========  =============================================
tag         value encoding
==========  =============================================
``I``       signed integer, zig-zag varint
``F``       float64, 8 bytes little-endian
``S``       UTF-8 string, varint length prefix
``B``       raw bytes, varint length prefix
``A``       ndarray: dtype string, ndim, shape, raw bytes
==========  =============================================

Keys are packed as varint-length-prefixed UTF-8.  The format is sequential
and order-preserving; no alignment padding.

**Checksummed frames (opt-in).**  Codec payloads are self-describing but
carry no integrity check — a flipped bit on a faulty fabric decodes into
silently-wrong embedding rows.  :func:`frame_with_checksum` wraps any
payload in a 5-byte CRC32 envelope; :func:`verify_checksum_frame` strips
it, raising :class:`CorruptPayloadError` on mismatch, which is what the
fault injector's corruption faults (and the publisher's retry loop) key
off.  The envelope is opt-in so every existing byte-exact payload stays
pinned bit for bit.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

import numpy as np

__all__ = [
    "pack_meta",
    "unpack_meta",
    "write_varint",
    "read_varint",
    "CorruptPayloadError",
    "CHECKSUM_MAGIC",
    "frame_with_checksum",
    "has_checksum",
    "verify_checksum_frame",
]


#: frame marker of a CRC32-checksummed payload envelope (distinct from the
#: codec frame's ``MAGIC`` 0xDC, so the two framings cannot be confused)
CHECKSUM_MAGIC = 0xC5


class CorruptPayloadError(ValueError):
    """A checksummed payload failed CRC32 verification.

    Raised only for frames that *declare* a checksum — an unframed payload
    is never rejected here (integrity is opt-in), and a truncated or
    bit-flipped envelope reports the stored vs computed digest so fault
    logs say exactly what went wrong on the wire.
    """


def _reference_frame_with_checksum(payload: bytes | bytearray | memoryview) -> bytes:
    """Frozen seed implementation (copies the body twice); oracle for the
    zero-copy differential tests and the ``zero_copy`` perfbench rows."""
    body = bytes(payload)
    return bytes([CHECKSUM_MAGIC]) + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF) + body


def frame_with_checksum(payload: bytes | bytearray | memoryview, *, pool=None):
    """Wrap a payload in a 5-byte CRC32 envelope: magic + digest + body.

    The envelope is opt-in: nothing in the codec stack emits it by
    default, so byte-exact payload tests stay pinned.  Callers that ship
    payloads over a faultable fabric (the delta publisher, the fault
    injector's corruption tests) wrap before sending and
    :func:`verify_checksum_frame` on receipt.

    The CRC is computed directly over the caller's buffer and the body is
    copied exactly once, into the final frame (``b"".join`` of views — no
    intermediate ``bytes(payload)`` round-trip).  With ``pool`` set, the
    frame lands in a pooled arena instead and the live lease is returned
    (``lease.view`` is the frame); steady-state publication rounds then
    allocate nothing for their envelopes.
    """
    view = memoryview(payload)
    if view.ndim != 1 or view.format != "B":
        view = view.cast("B")
    header = struct.pack("<BI", CHECKSUM_MAGIC, zlib.crc32(view) & 0xFFFFFFFF)
    if pool is None:
        return b"".join((header, view))
    lease = pool.checkout(5 + view.nbytes)
    lease.view[:5] = header
    lease.view[5:] = view
    return lease


def has_checksum(data: bytes | bytearray | memoryview) -> bool:
    """Whether ``data`` carries the checksum envelope."""
    view = memoryview(data)
    return len(view) >= 5 and view[0] == CHECKSUM_MAGIC


def _reference_verify_checksum_frame(data: bytes | bytearray | memoryview) -> bytes:
    """Frozen seed implementation (copies the body out); oracle for the
    zero-copy differential tests and the ``zero_copy`` perfbench rows."""
    view = memoryview(data)
    if len(view) < 5 or view[0] != CHECKSUM_MAGIC:
        raise ValueError(
            "not a checksummed frame (missing CRC32 envelope); "
            "wrap payloads with frame_with_checksum() before verifying"
        )
    (stored,) = struct.unpack_from("<I", view, 1)
    body = bytes(view[5:])
    actual = zlib.crc32(body) & 0xFFFFFFFF
    if actual != stored:
        raise CorruptPayloadError(
            f"payload checksum mismatch: stored CRC32 0x{stored:08x} != computed "
            f"0x{actual:08x} over {len(body)} bytes — payload corrupted in transit"
        )
    return body


def verify_checksum_frame(data: bytes | bytearray | memoryview) -> memoryview:
    """Verify a checksummed frame and return the inner payload.

    Raises :class:`CorruptPayloadError` when the body's CRC32 does not
    match the stored digest (a corrupted or truncated frame), and a plain
    :class:`ValueError` when ``data`` is not a checksummed frame at all.

    The returned payload is a :class:`memoryview` into ``data`` — the CRC
    runs over the view and the envelope is stripped without copying the
    body.  Downstream consumers (``parse_payload``, ``decompress_any``,
    ``np.frombuffer``) all accept views; call ``bytes(...)`` on the result
    only if an owning copy is genuinely needed.
    """
    view = memoryview(data)
    if len(view) < 5 or view[0] != CHECKSUM_MAGIC:
        raise ValueError(
            "not a checksummed frame (missing CRC32 envelope); "
            "wrap payloads with frame_with_checksum() before verifying"
        )
    (stored,) = struct.unpack_from("<I", view, 1)
    body = view[5:]
    actual = zlib.crc32(body) & 0xFFFFFFFF
    if actual != stored:
        raise CorruptPayloadError(
            f"payload checksum mismatch: stored CRC32 0x{stored:08x} != computed "
            f"0x{actual:08x} over {len(body)} bytes — payload corrupted in transit"
        )
    return body


def write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise ValueError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes | memoryview, pos: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint at ``pos``; return ``(value, new_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ValueError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= -(2**63) else (value << 1) ^ -1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _pack_value(out: bytearray, value: Any) -> None:
    if isinstance(value, bool):
        raise TypeError("bool meta values are ambiguous; use int 0/1")
    if isinstance(value, (int, np.integer)):
        out.append(ord("I"))
        write_varint(out, _zigzag(int(value)))
    elif isinstance(value, (float, np.floating)):
        out.append(ord("F"))
        out.extend(struct.pack("<d", float(value)))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(ord("S"))
        write_varint(out, len(encoded))
        out.extend(encoded)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        view = memoryview(value)
        out.append(ord("B"))
        write_varint(out, view.nbytes)
        out.extend(view)
    elif isinstance(value, np.ndarray):
        out.append(ord("A"))
        dtype_str = value.dtype.str.encode("ascii")
        write_varint(out, len(dtype_str))
        out.extend(dtype_str)
        write_varint(out, value.ndim)
        for dim in value.shape:
            write_varint(out, dim)
        contiguous = np.ascontiguousarray(value)
        raw = memoryview(contiguous).cast("B") if contiguous.nbytes else b""
        write_varint(out, len(raw))
        out.extend(raw)
    else:
        raise TypeError(f"unsupported meta value type: {type(value).__name__}")


def _unpack_value(data: memoryview, pos: int) -> tuple[Any, int]:
    tag = chr(data[pos])
    pos += 1
    if tag == "I":
        raw, pos = read_varint(data, pos)
        return _unzigzag(raw), pos
    if tag == "F":
        (value,) = struct.unpack_from("<d", data, pos)
        return value, pos + 8
    if tag == "S":
        length, pos = read_varint(data, pos)
        return bytes(data[pos : pos + length]).decode("utf-8"), pos + length
    if tag == "B":
        length, pos = read_varint(data, pos)
        return bytes(data[pos : pos + length]), pos + length
    if tag == "A":
        dlen, pos = read_varint(data, pos)
        dtype = np.dtype(bytes(data[pos : pos + dlen]).decode("ascii"))
        pos += dlen
        ndim, pos = read_varint(data, pos)
        shape = []
        for _ in range(ndim):
            dim, pos = read_varint(data, pos)
            shape.append(dim)
        blen, pos = read_varint(data, pos)
        array = np.frombuffer(data[pos : pos + blen], dtype=dtype).reshape(shape).copy()
        return array, pos + blen
    raise ValueError(f"unknown meta tag {tag!r}")


def pack_meta(meta: dict[str, Any]) -> bytes:
    """Serialize a header dictionary to compact bytes."""
    out = bytearray()
    write_varint(out, len(meta))
    for key, value in meta.items():
        encoded_key = key.encode("utf-8")
        write_varint(out, len(encoded_key))
        out.extend(encoded_key)
        _pack_value(out, value)
    return bytes(out)


def unpack_meta(data: bytes | memoryview, pos: int = 0) -> tuple[dict[str, Any], int]:
    """Deserialize a header at ``pos``; return ``(meta, new_pos)``."""
    view = memoryview(data)
    count, pos = read_varint(view, pos)
    meta: dict[str, Any] = {}
    for _ in range(count):
        klen, pos = read_varint(view, pos)
        key = bytes(view[pos : pos + klen]).decode("utf-8")
        pos += klen
        meta[key], pos = _unpack_value(view, pos)
    return meta, pos
