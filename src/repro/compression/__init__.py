"""Error-bounded lossy compression for DLRM all-to-all traffic.

The paper's primary contribution: a hybrid compressor (error-bounded
quantization + vector-based LZ or optimized Huffman, selected per table)
plus from-scratch implementations of every baseline it compares against.
"""

from repro.compression.base import CompressionResult, Compressor, parse_payload
from repro.compression.cache import EncoderPinCache, LruCache, TableCodebookCache
from repro.compression.calibration import calibrate_profile
from repro.compression.baselines import (
    CuszLikeCompressor,
    DeflateLikeCompressor,
    Fp8Compressor,
    Fp16Compressor,
    FzGpuLikeCompressor,
    Lz4LikeCompressor,
    ZfpLikeCompressor,
)
from repro.compression.entropy import EntropyCompressor
from repro.compression.homomorphic import (
    CountSumCompressor,
    HomomorphicCompressor,
    QuantSumCompressor,
    agg_fold,
    agg_sum,
    composed_bound,
    homomorphic_codecs,
)
from repro.compression.hybrid import HybridCompressor
from repro.compression.metrics import (
    CodecEvaluation,
    communication_speedup,
    compression_ratio,
    evaluate_codec,
    max_abs_error,
    verify_error_bound,
)
from repro.compression.quantizer import QuantizedBatch, dequantize, quantize, quantize_batch
from repro.compression.registry import (
    available_compressors,
    decompress_any,
    get_compressor,
    register_compressor,
)
from repro.compression.serialization import (
    CorruptPayloadError,
    frame_with_checksum,
    has_checksum,
    verify_checksum_frame,
)
from repro.compression.vector_lz import VectorLZCompressor

__all__ = [
    "Compressor",
    "CompressionResult",
    "parse_payload",
    "HybridCompressor",
    "VectorLZCompressor",
    "EntropyCompressor",
    "Fp16Compressor",
    "Fp8Compressor",
    "Lz4LikeCompressor",
    "DeflateLikeCompressor",
    "CuszLikeCompressor",
    "FzGpuLikeCompressor",
    "ZfpLikeCompressor",
    "HomomorphicCompressor",
    "QuantSumCompressor",
    "CountSumCompressor",
    "agg_sum",
    "agg_fold",
    "composed_bound",
    "homomorphic_codecs",
    "quantize",
    "dequantize",
    "quantize_batch",
    "QuantizedBatch",
    "compression_ratio",
    "communication_speedup",
    "max_abs_error",
    "verify_error_bound",
    "CodecEvaluation",
    "evaluate_codec",
    "get_compressor",
    "register_compressor",
    "available_compressors",
    "decompress_any",
    "calibrate_profile",
    "LruCache",
    "TableCodebookCache",
    "EncoderPinCache",
    "CorruptPayloadError",
    "frame_with_checksum",
    "has_checksum",
    "verify_checksum_frame",
]
