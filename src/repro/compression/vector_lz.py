"""Vector-based LZ encoding for embedding batches.

The paper's key observation (Section III-D) is that repeated patterns in
DLRM all-to-all traffic are *whole embedding vectors*: the unbalanced query
distribution makes hot rows recur within a batch, and a repeated row is
byte-identical for its entire, fixed length.  The vector-based LZ encoder
therefore departs from byte-oriented LZ77 in two ways:

* **Fixed pattern length** — match candidates are whole rows; if the first
  element differs the comparison stops, and the search pointer leaps a full
  vector instead of advancing one byte.
* **Extended window** — the window is measured in *vectors* (default 255,
  the paper's best), covering the 128–2048-row batches DLRM produces, far
  beyond a 4 KB byte window.

The encoder emits, per row, either a back-reference to an earlier identical
row inside the window or a literal row whose (quantized) elements are packed
at the minimal fixed bit width.  Everything except the final match scan is
vectorized; the scan is a dictionary pass over at most ``batch`` rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.compression.base import Compressor
from repro.compression.bitstream import pack_fixed, unpack_fixed
from repro.compression.quantizer import quantize_batch

__all__ = [
    "DEFAULT_WINDOW",
    "VectorLZEncoded",
    "find_vector_matches",
    "vector_lz_encode",
    "vector_lz_decode",
    "VectorLZCompressor",
]

# The GPU decoder resolves match chains in O(log window) batched passes
# (pointer jumping); chains longer than ~2**60 would overflow the pass
# counter, far beyond any real batch.
_MAX_JUMP_PASSES = 64

DEFAULT_WINDOW = 255


def _row_keys(codes: np.ndarray) -> list[bytes]:
    """Return a hashable per-row key (the row's raw bytes)."""
    contiguous = np.ascontiguousarray(codes)
    if contiguous.ndim != 2:
        raise ValueError(f"expected 2-D code array, got shape {contiguous.shape}")
    n, d = contiguous.shape
    if d == 0:
        return [b""] * n
    void_dtype = np.dtype((np.void, d * contiguous.itemsize))
    return contiguous.reshape(n, d).view(void_dtype).ravel().tolist()


def find_vector_matches(codes: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Find, for each row, the nearest identical earlier row within ``window``.

    Returns ``(is_match, offsets)`` where ``offsets[i] = i - j`` for matched
    rows (1-based distance) and 0 for literals.  The scan keeps only the most
    recent occurrence per distinct row — matching the leap-forward search of
    the paper's fine-tuned LZ, which never revisits stale candidates.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    keys = _row_keys(codes)
    n = len(keys)
    is_match = np.zeros(n, dtype=bool)
    offsets = np.zeros(n, dtype=np.int64)
    last_seen: dict[bytes, int] = {}
    for i, key in enumerate(keys):
        j = last_seen.get(key)
        if j is not None and i - j <= window:
            is_match[i] = True
            offsets[i] = i - j
        last_seen[key] = i
    return is_match, offsets


def _width_for(max_value: int) -> int:
    """Minimal bit width holding values in [0, max_value]."""
    return max(1, int(max_value).bit_length())


@dataclass(frozen=True)
class VectorLZEncoded:
    """A vector-LZ token stream (flags + back-references + literal rows)."""

    flags: np.ndarray  # packed uint8 bitmap, 1 = match
    offsets: np.ndarray  # packed uint8, fixed-width back-references
    literals: np.ndarray  # packed uint8, fixed-width literal elements
    n_rows: int
    n_matches: int
    dim: int
    window: int
    offset_width: int
    literal_width: int

    @property
    def nbytes(self) -> int:
        return int(self.flags.nbytes + self.offsets.nbytes + self.literals.nbytes)


def vector_lz_encode(codes: np.ndarray, window: int = DEFAULT_WINDOW) -> VectorLZEncoded:
    """Encode a 2-D array of non-negative integer codes row-wise."""
    codes = np.asarray(codes)
    if codes.ndim != 2:
        raise ValueError(f"expected 2-D code array, got shape {codes.shape}")
    if codes.size and codes.min() < 0:
        raise ValueError("vector_lz_encode expects non-negative codes")
    n, d = codes.shape
    is_match, offsets = find_vector_matches(codes, window)
    n_matches = int(is_match.sum())
    flags = np.packbits(is_match)
    offset_width = _width_for(window)
    packed_offsets, _ = pack_fixed(offsets[is_match], offset_width)
    literal_rows = codes[~is_match]
    literal_width = _width_for(int(literal_rows.max()) if literal_rows.size else 0)
    packed_literals, _ = pack_fixed(literal_rows.ravel(), literal_width)
    return VectorLZEncoded(
        flags=flags,
        offsets=packed_offsets,
        literals=packed_literals,
        n_rows=n,
        n_matches=n_matches,
        dim=d,
        window=window,
        offset_width=offset_width,
        literal_width=literal_width,
    )


def _decode_fields(encoded: VectorLZEncoded) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unpack the token stream into ``(is_match, offsets, literal_rows)``."""
    n, d = encoded.n_rows, encoded.dim
    is_match = np.unpackbits(encoded.flags, count=n).astype(bool)
    offsets = unpack_fixed(encoded.offsets, encoded.n_matches, encoded.offset_width)
    n_literals = n - encoded.n_matches
    literal_values = unpack_fixed(encoded.literals, n_literals * d, encoded.literal_width)
    literal_rows = literal_values.reshape(n_literals, d).astype(np.int64)
    return is_match, offsets, literal_rows


def vector_lz_decode(encoded: VectorLZEncoded) -> np.ndarray:
    """Reconstruct the code array from a :class:`VectorLZEncoded` stream.

    Every row is either a literal or a back-reference to an earlier row, so
    each row resolves to exactly one literal through a chain of references.
    Chains are collapsed with batched pointer jumping (``src = src[src]``),
    which terminates in O(log chain-length) vectorized passes; the decode
    never touches rows one at a time.
    """
    n, d = encoded.n_rows, encoded.dim
    if n == 0:
        return np.zeros((0, d), dtype=np.int64)
    is_match, offsets, literal_rows = _decode_fields(encoded)
    # src[i]: the earlier row that row i copies (itself for literals).
    src = np.arange(n, dtype=np.int64)
    match_positions = np.flatnonzero(is_match)
    src[match_positions] = match_positions - offsets.astype(np.int64)
    if src.min() < 0:
        raise ValueError("corrupt vector-LZ stream: back-reference before row 0")
    # Pointer jumping: literals are fixed points, matches strictly decrease,
    # so repeated src[src] reaches the all-literal fixed point.
    for _ in range(_MAX_JUMP_PASSES):
        hopped = np.take(src, src)
        if np.array_equal(hopped, src):
            break
        src = hopped
    if is_match[src].any():
        raise ValueError("corrupt vector-LZ stream: unresolvable match chain")
    # Root rows are literals; literal_index maps a literal row position to
    # its rank in the packed literal block.
    literal_index = np.cumsum(~is_match) - 1
    return np.take(literal_rows, np.take(literal_index, src), axis=0)


def _reference_vector_lz_decode(encoded: VectorLZEncoded) -> np.ndarray:
    """Original per-row decode loop (with the seed's original fixed-width
    bit reader), kept as the differential-test and benchmark oracle."""
    from repro.compression.bitstream import _reference_unpack_fixed

    n, d = encoded.n_rows, encoded.dim
    if n == 0:
        return np.zeros((0, d), dtype=np.int64)
    is_match = np.unpackbits(encoded.flags, count=n).astype(bool)
    offsets = _reference_unpack_fixed(encoded.offsets, encoded.n_matches, encoded.offset_width)
    n_literals = n - encoded.n_matches
    literal_values = _reference_unpack_fixed(
        encoded.literals, n_literals * d, encoded.literal_width
    )
    literal_rows = literal_values.reshape(n_literals, d).astype(np.int64)
    out = np.empty((n, d), dtype=np.int64)
    match_iter = 0
    literal_iter = 0
    for i in range(n):
        if is_match[i]:
            out[i] = out[i - int(offsets[match_iter])]
            match_iter += 1
        else:
            out[i] = literal_rows[literal_iter]
            literal_iter += 1
    return out


class VectorLZCompressor(Compressor):
    """Error-bounded compressor: quantization + vector-based LZ ("Ours-Vector").

    Parameters
    ----------
    window:
        Match window in vectors.  The paper sweeps {32, 64, 128, 255}
    """

    name = "vector_lz"
    lossy = True
    error_bounded = True

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)

    def _compress_body(self, array: np.ndarray, error_bound: float | None) -> tuple[dict[str, Any], bytes]:
        # Vector-LZ stores literals at a fixed bit width (<= 57), so unlike
        # the entropy leg it tolerates huge alphabets; lift the default cap
        # to the packing limit rather than inheriting the codebook-oriented
        # DEFAULT_MAX_ALPHABET.
        batch = quantize_batch(array, float(error_bound), max_alphabet=1 << 57)
        encoded = vector_lz_encode(batch.codes, self.window)
        meta = {
            "eb": batch.error_bound,
            "code_min": batch.code_min,
            "window": encoded.window,
            "n_matches": encoded.n_matches,
            "offset_width": encoded.offset_width,
            "literal_width": encoded.literal_width,
            "flags_len": int(encoded.flags.size),
            "offsets_len": int(encoded.offsets.size),
        }
        # Hand the three sections to the framer as parts: the payload is
        # assembled with one copy instead of tobytes() per section plus a
        # concatenation (byte layout unchanged).
        return meta, [encoded.flags, encoded.offsets, encoded.literals]

    def _decompress_body(
        self, header: dict[str, Any], body: memoryview, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        n, d = shape
        flags_len = header["flags_len"]
        offsets_len = header["offsets_len"]
        raw = np.frombuffer(body, dtype=np.uint8)
        encoded = VectorLZEncoded(
            flags=raw[:flags_len],
            offsets=raw[flags_len : flags_len + offsets_len],
            literals=raw[flags_len + offsets_len :],
            n_rows=n,
            n_matches=header["n_matches"],
            dim=d,
            window=header["window"],
            offset_width=header["offset_width"],
            literal_width=header["literal_width"],
        )
        codes = vector_lz_decode(encoded)
        raw_codes = codes + header["code_min"]
        return (raw_codes.astype(np.float64) * (2.0 * header["eb"])).astype(dtype)
