"""Aggregation-friendly (homomorphic) codecs for the dense all-reduce.

THC and the lossless-homomorphic-compression line of work (PAPERS.md)
observe that an all-reduce over *compressed* gradients only works when the
compressed representation sums: ``decode(agg_sum(e(a), e(b))) ~ a + b``.
Ordinary error-bounded codecs force every intermediate rank (or switch hop)
to decompress, sum, and recompress; a homomorphic codec aggregates payloads
directly, so a reduction of ``k`` leaves pays **one** encode per leaf and
**one** decode at the end, no matter how many hops the fabric inserts.

Two codecs share the payload algebra:

``quant_sum`` (lossy, error-bounded)
    Uniform quantization on a *shared scale*: ``codes = round(x / (2 eb))``
    stored in the narrowest integer dtype that fits.  Payload aggregation
    is exact integer addition of codes, so the per-leaf bound composes in
    closed form: a payload holding ``terms`` aggregated leaves reconstructs
    within ``terms * eb`` of the exact sum — independent of fold order and
    hop count, because integer addition is associative and commutative.

``count_sum`` (lossless)
    An exact fixed-point accumulator ("count-sum sketch" degenerated to
    full rank): every float is decomposed *exactly* onto a fixed global
    dyadic grid (``2**-149`` for float32 inputs, ``2**-1074`` for float64 —
    the subnormal ULP, so the decomposition is always exact) as base-``2**32``
    signed limbs held in int64 with carry headroom for ``2**29`` leaves.
    Aggregation is elementwise limb addition — exact, order-independent —
    and decode performs a single correctly-rounded conversion of the exact
    integer sum, so the result is *bit-identical* for every fold order and
    equals ``float32(math.fsum(leaves))`` elementwise.  The composed error
    bound is 0.  The trade: limbs cost more wire bytes than the raw floats
    (the window is trimmed per payload, but exactness is the product here;
    ``quant_sum`` is the byte-ratio codec).

Both codecs compose their overflow guards (``cmax`` / ``lmax``) by integer
addition too, so aggregated payload *bytes* are a pure function of the leaf
multiset — the Hypothesis laws in
``tests/compression/test_homomorphic_laws.py`` pin commutativity,
associativity, fold-order/hop-count independence, bound composition, and
the ``k = 1`` degeneracy at the byte level.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.compression.base import Compressor, frame_payload, parse_payload
from repro.compression.quantizer import quantize

__all__ = [
    "HomomorphicCompressor",
    "QuantSumCompressor",
    "CountSumCompressor",
    "agg_sum",
    "agg_fold",
    "composed_bound",
    "homomorphic_codecs",
]

#: aggregation headroom: payloads refuse to aggregate past this many leaves
#: so int64 limb/code accumulators can never wrap (2**32 * 2**29 < 2**62).
MAX_TERMS = 1 << 29

#: overflow guard ceiling for composed code/limb magnitude bounds
_GUARD_LIMIT = 1 << 62

_LIMB_BITS = 32
_LIMB_MASK = (1 << _LIMB_BITS) - 1


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


class HomomorphicCompressor(Compressor):
    """Base for codecs whose payloads support :func:`agg_sum`.

    Subclasses implement ``_agg_meta_body`` (sum two parsed payloads) and
    ``_header_bound`` (per-payload composed reconstruction bound); the base
    provides payload-level aggregation with shape/dtype/codec checks, the
    closed-form bound accessor, and pooled decode scratch.
    """

    homomorphic = True

    # ------------------------------------------------------------ algebra

    def agg_payloads(self, payload_a, payload_b) -> bytes:
        """Sum two payloads in compressed space; returns a framed payload.

        The result is a pure function of the *multiset* of leaves that went
        into the operands — byte-identical for any association order — so
        intermediate ranks and in-network aggregators never decode.
        """
        header_a, body_a = parse_payload(payload_a)
        header_b, body_b = parse_payload(payload_b)
        for header in (header_a, header_b):
            _require(
                header["codec"] == self.name,
                f"agg_sum: payload codec {header['codec']!r} != {self.name!r}",
            )
        shape = tuple(int(s) for s in header_a["shape"])
        _require(
            shape == tuple(int(s) for s in header_b["shape"]),
            f"agg_sum: payload shapes differ: {shape} vs "
            f"{tuple(int(s) for s in header_b['shape'])}",
        )
        _require(
            header_a["dtype"] == header_b["dtype"],
            f"agg_sum: payload dtypes differ: {header_a['dtype']} vs {header_b['dtype']}",
        )
        terms = int(header_a["terms"]) + int(header_b["terms"])
        _require(
            terms <= MAX_TERMS,
            f"agg_sum: {terms} aggregated leaves exceeds MAX_TERMS={MAX_TERMS}",
        )
        meta, body = self._agg_meta_body(header_a, body_a, header_b, body_b, shape)
        meta["terms"] = terms
        return frame_payload(self.name, shape, np.dtype(header_a["dtype"]), meta, body)

    def payload_bound(self, payload) -> float:
        """Closed-form reconstruction bound of a (possibly aggregated)
        payload: ``terms * per-leaf bound`` (0.0 for the lossless codec)."""
        header, _ = parse_payload(payload)
        _require(
            header["codec"] == self.name,
            f"payload codec {header['codec']!r} != {self.name!r}",
        )
        return self._header_bound(header)

    def payload_terms(self, payload) -> int:
        """How many leaves were aggregated into this payload."""
        header, _ = parse_payload(payload)
        return int(header["terms"])

    # ------------------------------------------------------ pooled decode

    def decompress_into(self, payload, *, pool):
        """Decode into a pooled scratch array; returns ``(lease, array)``.

        The *output* array is leased from ``pool`` instead of allocated per
        call (ROADMAP 5b's pooled-decompress-scratch follow-up, scoped to
        the dense path).  The array is a view into the lease's arena: the
        caller must copy out or finish with it before ``lease.release()``,
        and must drop the view (``del``) before releasing if the arena
        should be recycled cleanly.  Values are byte-identical to
        :meth:`decompress`.
        """
        header, body = parse_payload(payload)
        _require(
            header["codec"] == self.name,
            f"payload was produced by codec {header['codec']!r}, not {self.name!r}",
        )
        shape = tuple(int(s) for s in header["shape"])
        dtype = np.dtype(header["dtype"])
        lease, out = pool.checkout_array(shape, dtype)
        out[...] = self._decompress_body(header, body, shape, dtype)
        return lease, out

    # ----------------------------------------------------------- subclass

    def _agg_meta_body(
        self,
        header_a: dict[str, Any],
        body_a: memoryview,
        header_b: dict[str, Any],
        body_b: memoryview,
        shape: tuple[int, ...],
    ) -> tuple[dict[str, Any], Any]:
        raise NotImplementedError

    def _header_bound(self, header: dict[str, Any]) -> float:
        raise NotImplementedError


def _narrowest_int(codes: np.ndarray) -> np.ndarray:
    """Store integer codes in the narrowest signed dtype that fits."""
    peak = int(np.abs(codes).max()) if codes.size else 0
    for candidate in (np.int8, np.int16, np.int32):
        if peak <= np.iinfo(candidate).max:
            return codes.astype(candidate)
    return codes.astype(np.int64)


class QuantSumCompressor(HomomorphicCompressor):
    """Shared-scale uniform-quantized integers that sum in compressed space.

    Leaf encode rounds to the grid ``2 * error_bound`` (error <= eb per
    leaf); aggregation adds the integer codes exactly, so a ``terms``-leaf
    payload decodes within ``terms * eb`` of the exact sum.  Payloads with
    different scales refuse to aggregate (the shared scale *is* the
    homomorphism).
    """

    name = "quant_sum"
    lossy = True
    error_bounded = True

    def _compress_body(
        self, array: np.ndarray, error_bound: float | None
    ) -> tuple[dict[str, Any], Any]:
        if array.size:
            peak = float(np.abs(array).max()) / (2.0 * float(error_bound))
            _require(
                peak < float(_GUARD_LIMIT),
                f"{self.name}: |x|/scale up to {peak:.3g} exceeds the int64 code range; "
                "raise error_bound or use count_sum",
            )
        codes = quantize(array, error_bound)
        narrow = _narrowest_int(codes)
        cmax = int(np.abs(codes).max()) if codes.size else 0
        meta = {
            "scale": 2.0 * float(error_bound),
            "terms": 1,
            "cdtype": narrow.dtype.str,
            "cmax": cmax,
        }
        return meta, narrow

    def _decompress_body(
        self,
        header: dict[str, Any],
        body: memoryview,
        shape: tuple[int, ...],
        dtype: np.dtype,
    ) -> np.ndarray:
        count = int(np.prod(shape, dtype=np.int64))
        codes = np.frombuffer(body, dtype=np.dtype(header["cdtype"]))
        _require(
            codes.size == count,
            f"{self.name}: body holds {codes.size} codes, expected {count}",
        )
        centres = codes.astype(np.float64) * float(header["scale"])
        return centres.astype(dtype).reshape(shape)

    def _agg_meta_body(self, header_a, body_a, header_b, body_b, shape):
        _require(
            float(header_a["scale"]) == float(header_b["scale"]),
            f"agg_sum: {self.name} payloads must share a scale, got "
            f"{header_a['scale']!r} vs {header_b['scale']!r}",
        )
        cmax = int(header_a["cmax"]) + int(header_b["cmax"])
        _require(
            cmax < _GUARD_LIMIT,
            f"agg_sum: composed code magnitude bound {cmax} would risk int64 overflow",
        )
        count = int(np.prod(shape, dtype=np.int64))
        codes_a = np.frombuffer(body_a, dtype=np.dtype(header_a["cdtype"]))
        codes_b = np.frombuffer(body_b, dtype=np.dtype(header_b["cdtype"]))
        _require(
            codes_a.size == count and codes_b.size == count,
            f"agg_sum: {self.name} body size mismatch",
        )
        total = codes_a.astype(np.int64) + codes_b.astype(np.int64)
        meta = {
            "scale": float(header_a["scale"]),
            "cdtype": "",  # replaced below; narrowing depends on the sum
            "cmax": cmax,
        }
        narrow = _narrowest_int(total)
        meta["cdtype"] = narrow.dtype.str
        return meta, narrow

    def _header_bound(self, header: dict[str, Any]) -> float:
        return int(header["terms"]) * float(header["scale"]) / 2.0


#: fixed dyadic grid per input dtype: the subnormal ULP, so *every* finite
#: value of the dtype sits exactly on the grid and encode is exact.
_GRID_EXP = {"<f4": -149, "<f8": -1074}
#: limb-space size per grid exponent (covers the dtype's full magnitude range)
_MAX_LIMBS = {-149: 10, -1074: 66}


def _grid_exp(dtype: np.dtype) -> int:
    key = np.dtype(dtype).newbyteorder("<").str
    try:
        return _GRID_EXP[key]
    except KeyError:  # pragma: no cover - _validate already rejects
        raise TypeError(f"count_sum: unsupported dtype {dtype}") from None


class CountSumCompressor(HomomorphicCompressor):
    """Exact fixed-point accumulators: lossless and order-independent.

    Every value is decomposed exactly as ``M * 2**grid_exp`` with integer
    ``M`` spread over signed base-``2**32`` limbs (carry-save in int64, so
    up to ``MAX_TERMS`` payloads aggregate with plain elementwise adds and
    can never wrap).  Decode recombines the exact integer and performs one
    correctly-rounded conversion, hence ``decode(fold(any order)) ==
    dtype(fsum(leaves))`` bitwise.  Payloads store only the limb window
    actually touched (``w0``/``wlen``).
    """

    name = "count_sum"
    lossy = False
    error_bounded = False

    def _compress_body(
        self, array: np.ndarray, error_bound: float | None
    ) -> tuple[dict[str, Any], Any]:
        if array.size and not np.isfinite(array).all():
            raise ValueError(f"{self.name}: input contains NaN/inf")
        grid = _grid_exp(array.dtype)
        values = np.ascontiguousarray(array, dtype=np.float64).ravel()
        mant, exp = np.frexp(values)
        mant_int = (mant * float(1 << 53)).astype(np.int64)  # exact: <= 53 bits
        shift = exp.astype(np.int64) - 53 - grid
        # Negative shifts only happen when the trailing mantissa bits are
        # zero (the value sits on a coarser grid point): shift right exactly.
        if (shift < 0).any():
            mant_int >>= np.where(shift < 0, -shift, 0)
            shift = np.maximum(shift, 0)
        sign = np.sign(mant_int)
        amant = np.abs(mant_int)
        q, r = shift >> 5, shift & 31
        nonzero = amant != 0
        if not nonzero.any():
            meta = {"terms": 1, "w0": 0, "wlen": 0, "sexp": grid, "lmax": 0}
            return meta, b""
        w0 = int(q[nonzero].min())
        wend = int(q[nonzero].max()) + 3  # lo spans q..q+1, hi spans q+1..q+2
        _require(wend <= _MAX_LIMBS[grid], f"{self.name}: limb window out of range")
        wlen = wend - w0
        # Zero elements contribute nothing but would still *index* outside
        # the trimmed window — park them on its first limb.
        q = np.where(nonzero, q, w0)
        limbs = np.zeros((wlen, values.size), dtype=np.int64)
        idx = np.arange(values.size)
        lo_part = (amant & _LIMB_MASK) << r  # <= 63 bits
        hi_part = (amant >> _LIMB_BITS) << r  # <= 52 bits
        for base, part in ((0, lo_part), (1, hi_part)):
            np.add.at(limbs, (q - w0 + base, idx), sign * (part & _LIMB_MASK))
            np.add.at(limbs, (q - w0 + base + 1, idx), sign * (part >> _LIMB_BITS))
        lmax = int(np.abs(limbs).max()) if limbs.size else 0
        meta = {"terms": 1, "w0": w0, "wlen": wlen, "sexp": grid, "lmax": lmax}
        return meta, limbs

    def _parse_limbs(
        self, header: dict[str, Any], body: memoryview, count: int
    ) -> np.ndarray:
        wlen = int(header["wlen"])
        limbs = np.frombuffer(body, dtype=np.int64)
        _require(
            limbs.size == wlen * count,
            f"{self.name}: body holds {limbs.size} limbs, expected {wlen * count}",
        )
        return limbs.reshape(wlen, count)

    def _decompress_body(
        self,
        header: dict[str, Any],
        body: memoryview,
        shape: tuple[int, ...],
        dtype: np.dtype,
    ) -> np.ndarray:
        count = int(np.prod(shape, dtype=np.int64))
        wlen = int(header["wlen"])
        if wlen == 0 or count == 0:
            return np.zeros(shape, dtype=dtype)
        limbs = self._parse_limbs(header, body, count)
        exp = _LIMB_BITS * int(header["w0"]) + int(header["sexp"])
        # Fast path: the whole integer fits int64 — one correctly-rounded
        # int64 -> float64 conversion plus an exact power-of-two scale.
        # (Restricted to the float32 grid: its values can never land in the
        # float64 subnormal range, so ldexp introduces no second rounding.)
        if (
            int(header["sexp"]) == _GRID_EXP["<f4"]
            and wlen <= 2
            and int(header["lmax"]) < (1 << 29)
        ):
            total = limbs[0].copy()
            if wlen == 2:
                total += limbs[1] << _LIMB_BITS
            return np.ldexp(total.astype(np.float64), exp).astype(dtype).reshape(shape)
        # Exact path: recombine arbitrary-precision integers, then one
        # correctly-rounded division (Python int / int) per element.
        exact = limbs[0].astype(object)
        for i in range(1, wlen):
            exact = exact + limbs[i].astype(object) * (1 << (_LIMB_BITS * i))
        out = np.empty(count, dtype=np.float64)
        if exp >= 0:
            mul = 1 << exp
            for i, m in enumerate(exact.tolist()):
                out[i] = float(m * mul)
        else:
            den = 1 << (-exp)
            try:
                for i, m in enumerate(exact.tolist()):
                    out[i] = m / den
            except OverflowError:
                raise ValueError(
                    f"{self.name}: aggregated sum overflows the float range"
                ) from None
        return out.astype(dtype).reshape(shape)

    def _agg_meta_body(self, header_a, body_a, header_b, body_b, shape):
        _require(
            int(header_a["sexp"]) == int(header_b["sexp"]),
            f"agg_sum: {self.name} payloads must share a grid exponent",
        )
        lmax = int(header_a["lmax"]) + int(header_b["lmax"])
        _require(
            lmax < _GUARD_LIMIT,
            f"agg_sum: composed limb magnitude bound {lmax} would risk int64 overflow",
        )
        count = int(np.prod(shape, dtype=np.int64))
        wlen_a, wlen_b = int(header_a["wlen"]), int(header_b["wlen"])
        w0_a, w0_b = int(header_a["w0"]), int(header_b["w0"])
        meta = {"sexp": int(header_a["sexp"]), "lmax": lmax}
        if wlen_a == 0 and wlen_b == 0:
            meta.update(w0=0, wlen=0)
            return meta, b""
        if wlen_a == 0:
            meta.update(w0=w0_b, wlen=wlen_b)
            return meta, self._parse_limbs(header_b, body_b, count).copy()
        if wlen_b == 0:
            meta.update(w0=w0_a, wlen=wlen_a)
            return meta, self._parse_limbs(header_a, body_a, count).copy()
        w0 = min(w0_a, w0_b)
        wend = max(w0_a + wlen_a, w0_b + wlen_b)
        limbs = np.zeros((wend - w0, count), dtype=np.int64)
        limbs[w0_a - w0 : w0_a - w0 + wlen_a] += self._parse_limbs(header_a, body_a, count)
        limbs[w0_b - w0 : w0_b - w0 + wlen_b] += self._parse_limbs(header_b, body_b, count)
        meta.update(w0=w0, wlen=wend - w0)
        return meta, limbs

    def _header_bound(self, header: dict[str, Any]) -> float:
        return 0.0


# ---------------------------------------------------------------- module API

_HOMOMORPHIC: dict[str, HomomorphicCompressor] = {
    QuantSumCompressor.name: QuantSumCompressor(),
    CountSumCompressor.name: CountSumCompressor(),
}


def homomorphic_codecs() -> tuple[str, ...]:
    """Registry names of the codecs whose payloads support :func:`agg_sum`."""
    return tuple(sorted(_HOMOMORPHIC))


def _codec_of(payload) -> HomomorphicCompressor:
    header, _ = parse_payload(payload)
    name = header["codec"]
    try:
        return _HOMOMORPHIC[name]
    except KeyError:
        raise ValueError(
            f"payload codec {name!r} is not homomorphic; "
            f"aggregatable codecs: {sorted(_HOMOMORPHIC)}"
        ) from None


def agg_sum(payload_a, payload_b) -> bytes:
    """Sum two compressed payloads without decoding either.

    Both must come from the same homomorphic codec with identical shape,
    dtype, and scale/grid.  The result is again a payload of that codec;
    its ``terms`` header counts the aggregated leaves and drives the
    closed-form :func:`composed_bound`.
    """
    return _codec_of(payload_a).agg_payloads(payload_a, payload_b)


def agg_fold(payloads) -> bytes:
    """Fold ``k`` payloads with :func:`agg_sum` (left fold; the result is
    byte-identical for *any* fold order).  ``k = 1`` returns the payload
    unchanged — the degenerate identity the property tests pin."""
    payloads = list(payloads)
    if not payloads:
        raise ValueError("agg_fold: need at least one payload")
    total = payloads[0]
    for payload in payloads[1:]:
        total = agg_sum(total, payload)
    return bytes(total)


def composed_bound(payload) -> float:
    """Closed-form worst-case |decode(payload) - exact sum of its leaves|:
    ``terms * eb`` for ``quant_sum``, exactly ``0.0`` for ``count_sum``."""
    return _codec_of(payload).payload_bound(payload)
