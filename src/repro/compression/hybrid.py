"""The paper's hybrid error-bounded compressor.

Quantization feeds one of two lossless encoders — vector-based LZ or
optimized Huffman — chosen per embedding table.  Two selection modes:

* ``encoder="auto"`` (default): try both and keep the smaller payload.
  This is what Table V's "hybrid" column reports (the per-table max ratio).
* ``encoder="lz"`` / ``encoder="huffman"``: pinned choice, as produced by the
  offline analysis (Algorithm 2 selects per table using the Eq.-2 speedup
  model, which also weighs throughput; see
  :mod:`repro.adaptive.selection`).

The payload embeds which encoder won, so decompression is self-contained.

``auto`` mode's try-both cost can be amortized on training hot loops: with
``pin_refresh`` set and calls routed through :meth:`compress_keyed`, the
winning leg for each table is *pinned* and replayed for ``pin_refresh``
batches before the next try-both trial — per-table winners are extremely
stable across iterations (Table V), so the trial cost is paid once per
refresh window instead of every batch.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.compression.base import Compressor, parse_payload
from repro.compression.cache import EncoderPinCache, TableCodebookCache
from repro.compression.entropy import EntropyCompressor
from repro.compression.vector_lz import DEFAULT_WINDOW, VectorLZCompressor
from repro.obs.runtime import OBS

__all__ = ["HybridCompressor"]

_ENCODERS = ("auto", "lz", "huffman")


class HybridCompressor(Compressor):
    """Quantize + {vector-LZ | Huffman}, per-table selectable ("Ours")."""

    name = "hybrid"
    lossy = True
    error_bounded = True

    def __init__(
        self,
        encoder: str = "auto",
        window: int = DEFAULT_WINDOW,
        max_code_length: int | None = None,
        chunk_symbols: int | None = None,
        pin_refresh: int | None = None,
        codebook_cache: TableCodebookCache | None = None,
    ):
        if encoder not in _ENCODERS:
            raise ValueError(f"encoder must be one of {_ENCODERS}, got {encoder!r}")
        self.encoder = encoder
        self._lz = VectorLZCompressor(window=window)
        entropy_kwargs: dict[str, Any] = {"codebook_cache": codebook_cache}
        if max_code_length is not None:
            entropy_kwargs["max_code_length"] = max_code_length
        if chunk_symbols is not None:
            entropy_kwargs["chunk_symbols"] = chunk_symbols
        self._entropy = EntropyCompressor(**entropy_kwargs)
        self.pins = EncoderPinCache(pin_refresh) if pin_refresh is not None else None

    @property
    def window(self) -> int:
        return self._lz.window

    def compress_keyed(
        self, table_key: Any, array: np.ndarray, error_bound: float | None = None
    ) -> bytes:
        """Compress with pinned-encoder replay and codebook-cache reuse.

        Without ``pin_refresh`` (or in a pinned ``encoder=`` mode) this
        forwards the key so the entropy leg can reuse codebooks; in
        ``auto`` mode with pinning it replays the table's last winner until
        the pin ages out, then re-runs the try-both trial.
        """
        if self.encoder == "lz":
            return self._lz.compress(array, error_bound)
        if self.encoder == "huffman":
            return self._entropy.compress_keyed(table_key, array, error_bound)
        if self.pins is None or table_key is None:
            return self._compress_auto(table_key, array, error_bound)
        pinned = self.pins.pinned(table_key)
        if pinned is not None:
            if OBS.enabled:
                OBS.registry.counter(
                    "hybrid_pin_replay_total", "pinned-encoder replays (trial skipped)"
                ).inc(1, encoder=pinned)
            if pinned == "lz":
                return self._lz.compress(array, error_bound)
            return self._entropy.compress_keyed(table_key, array, error_bound)
        return self._trial_keyed(table_key, array, error_bound)

    def _trial_keyed(
        self, table_key: Any, array: np.ndarray, error_bound: float | None
    ) -> bytes:
        """Try-both trial round: compress with both legs, pin the winner."""
        prior = self.pins.pins.get(table_key)
        lz = self._lz.compress(array, error_bound)
        huff = self._entropy.compress_keyed(table_key, array, error_bound)
        winner = "lz" if len(lz) <= len(huff) else "huffman"
        self.pins.record_winner(table_key, winner)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter(
                "hybrid_pin_trial_total", "try-both encoder trials"
            ).inc(1, encoder=winner)
            if prior is not None and prior.winner != winner:
                reg.counter(
                    "hybrid_pin_switch_total",
                    "trials whose winner differed from the expiring pin (codec churn)",
                ).inc(1)
        return lz if winner == "lz" else huff

    def compress_into(self, array: np.ndarray, error_bound: float | None = None, *, pool):
        """Pooled variant of :meth:`compress`.

        Pinned ``encoder=`` modes assemble the winning leg's payload
        directly into the lease; ``auto`` mode must materialize both
        candidates anyway, so the winner is copied into the lease.
        """
        if self.encoder == "lz":
            return self._lz.compress_into(array, error_bound, pool=pool)
        if self.encoder == "huffman":
            return self._entropy.compress_into(array, error_bound, pool=pool)
        return pool.checkout_bytes(self.compress(array, error_bound))

    def compress_keyed_into(
        self, table_key: Any, array: np.ndarray, error_bound: float | None = None, *, pool
    ):
        """Pooled variant of :meth:`compress_keyed` (same pin semantics).

        Pinned replays — the steady state under ``pin_refresh`` — land in
        the lease with zero intermediate payload allocation; the rare
        try-both trial rounds copy the winner in.
        """
        if self.encoder == "lz":
            return self._lz.compress_into(array, error_bound, pool=pool)
        if self.encoder == "huffman":
            return self._entropy.compress_keyed_into(table_key, array, error_bound, pool=pool)
        if self.pins is None or table_key is None:
            return pool.checkout_bytes(self._compress_auto(table_key, array, error_bound))
        pinned = self.pins.pinned(table_key)
        if pinned is not None:
            if OBS.enabled:
                OBS.registry.counter(
                    "hybrid_pin_replay_total", "pinned-encoder replays (trial skipped)"
                ).inc(1, encoder=pinned)
            if pinned == "lz":
                return self._lz.compress_into(array, error_bound, pool=pool)
            return self._entropy.compress_keyed_into(table_key, array, error_bound, pool=pool)
        return pool.checkout_bytes(self._trial_keyed(table_key, array, error_bound))

    def _compress_auto(
        self, table_key: Any, array: np.ndarray, error_bound: float | None
    ) -> bytes:
        candidates = [
            self._lz.compress(array, error_bound),
            self._entropy.compress_keyed(table_key, array, error_bound),
        ]
        return min(candidates, key=len)

    def compress(self, array: np.ndarray, error_bound: float | None = None) -> bytes:
        array = np.ascontiguousarray(array)
        if array.ndim != 2:
            raise ValueError(f"hybrid: expected 2-D (batch, dim) array, got shape {array.shape}")
        if error_bound is None or not error_bound > 0:
            raise ValueError(f"hybrid: requires a positive error_bound, got {error_bound!r}")
        candidates = []
        if self.encoder in ("auto", "lz"):
            candidates.append(self._lz.compress(array, error_bound))
        if self.encoder in ("auto", "huffman"):
            candidates.append(self._entropy.compress(array, error_bound))
        best = min(candidates, key=len)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("hybrid_raw_bytes_total", "hybrid compress input bytes").inc(
                array.nbytes
            )
            reg.counter(
                "hybrid_compressed_bytes_total", "hybrid compress output bytes"
            ).inc(len(best))
        return best

    def decompress(self, payload: bytes | memoryview) -> np.ndarray:
        header, _body = parse_payload(payload)
        inner = header["codec"]
        if inner == self._lz.name:
            result = self._lz.decompress(payload)
        elif inner == self._entropy.name:
            result = self._entropy.decompress(payload)
        else:
            raise ValueError(f"hybrid: unknown inner codec {inner!r}")
        if OBS.enabled:
            OBS.registry.counter(
                "hybrid_decompressed_bytes_total", "hybrid decompress output bytes"
            ).inc(result.nbytes)
        return result

    # The public compress/decompress are overridden wholesale (the payload is
    # delegated to the winning sub-codec), so the body hooks are unused.
    def _compress_body(self, array: np.ndarray, error_bound: float | None) -> tuple[dict[str, Any], bytes]:
        raise NotImplementedError("HybridCompressor delegates framing to its sub-codecs")

    def _decompress_body(
        self, header: dict[str, Any], body: memoryview, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        raise NotImplementedError("HybridCompressor delegates framing to its sub-codecs")
