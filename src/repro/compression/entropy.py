"""Error-bounded compressor: quantization + optimized Huffman ("Ours-Huffman").

This is the entropy leg of the paper's hybrid compressor.  Per observation
❸ (Gaussian value distributions in hot tables), quantized embedding values
concentrate into few bins, which canonical Huffman exploits directly —
*without* a prediction stage, per observation ❶ (false prediction: Lorenzo
predictors turn identical vectors into distinct residuals and raise entropy).

When constructed with a :class:`~repro.compression.cache.TableCodebookCache`
and driven through :meth:`Compressor.compress_keyed`, the canonical codebook
built for a table is reused across iterations while it still covers the new
batch's symbols and is within the cache's refresh window — skipping the
Huffman tree construction on the training hot path.  Payloads always ship
their code-length table, so decompression is oblivious to caching.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.compression.base import Compressor
from repro.compression.cache import TableCodebookCache
from repro.compression.huffman import (
    DEFAULT_CHUNK_SYMBOLS,
    DEFAULT_MAX_CODE_LENGTH,
    HuffmanEncoded,
    canonical_codes,
    huffman_decode,
    huffman_encode,
    huffman_encode_with_book,
)
from repro.compression.quantizer import quantize_batch

__all__ = ["EntropyCompressor"]


class EntropyCompressor(Compressor):
    """Quantize to bins, then canonical length-limited Huffman over bins.

    Parameters
    ----------
    max_code_length:
        Cap on Huffman code lengths (flat-peek-table decode), default 15.
    chunk_symbols:
        Symbols per independently decodable chunk, mirroring the paper's
        chunk-parallel GPU decompression.
    codebook_cache:
        Optional per-table codebook reuse across iterations; only active
        for calls through :meth:`compress_keyed`.
    """

    name = "entropy"
    lossy = True
    error_bounded = True

    def __init__(
        self,
        max_code_length: int = DEFAULT_MAX_CODE_LENGTH,
        chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS,
        codebook_cache: TableCodebookCache | None = None,
    ):
        if max_code_length < 1:
            raise ValueError(f"max_code_length must be >= 1, got {max_code_length}")
        if chunk_symbols < 1:
            raise ValueError(f"chunk_symbols must be >= 1, got {chunk_symbols}")
        self.max_code_length = int(max_code_length)
        self.chunk_symbols = int(chunk_symbols)
        self.codebook_cache = codebook_cache
        self._active_key: Any = None

    def compress_keyed(
        self, table_key: Any, array: np.ndarray, error_bound: float | None = None
    ) -> bytes:
        self._active_key = table_key
        try:
            return self.compress(array, error_bound)
        finally:
            self._active_key = None

    def compress_keyed_into(
        self, table_key: Any, array: np.ndarray, error_bound: float | None = None, *, pool
    ):
        self._active_key = table_key
        try:
            return self.compress_into(array, error_bound, pool=pool)
        finally:
            self._active_key = None

    def _compress_body(self, array: np.ndarray, error_bound: float | None) -> tuple[dict[str, Any], bytes]:
        batch = quantize_batch(array, float(error_bound))
        symbols = batch.codes.ravel()
        cache = self.codebook_cache
        cacheable = cache is not None and self._active_key is not None and symbols.size > 0
        encoded = None
        if cacheable:
            entry = cache.lookup(self._active_key, symbols, batch.code_min)
            if entry is not None:
                # lookup() already established coverage; skip re-validation.
                encoded = huffman_encode_with_book(
                    symbols,
                    entry.lengths,
                    entry.codes,
                    chunk_symbols=self.chunk_symbols,
                    validate=False,
                )
        if encoded is None:
            encoded = huffman_encode(
                batch.codes,
                batch.alphabet_size,
                max_code_length=self.max_code_length,
                chunk_symbols=self.chunk_symbols,
            )
            if cacheable:
                used = np.flatnonzero(encoded.code_lengths)
                if used.size >= 2:
                    # Degenerate single-symbol books are cheaper rebuilt (the
                    # fresh encoder emits zero payload bits for them).
                    codes = np.zeros(encoded.code_lengths.size, dtype=np.uint64)
                    codes[used] = canonical_codes(encoded.code_lengths[used])
                    cache.store(self._active_key, encoded.code_lengths, codes, batch.code_min)
        meta = {
            "eb": batch.error_bound,
            "code_min": batch.code_min,
            # uint8 is plenty: lengths are capped at max_code_length <= 57.
            "code_lengths": encoded.code_lengths.astype(np.uint8),
            "chunk_bit_offsets": encoded.chunk_bit_offsets.astype(np.uint64),
            "chunk_symbol_counts": encoded.chunk_symbol_counts.astype(np.int64),
            "total_symbols": int(encoded.total_symbols),
        }
        # The bitstream array goes to the framer as a buffer part — one copy
        # into the framed payload, no tobytes() round-trip.
        return meta, encoded.payload

    def _decompress_body(
        self, header: dict[str, Any], body: memoryview, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        encoded = HuffmanEncoded(
            payload=np.frombuffer(body, dtype=np.uint8),
            code_lengths=header["code_lengths"].astype(np.int64),
            chunk_bit_offsets=header["chunk_bit_offsets"],
            chunk_symbol_counts=header["chunk_symbol_counts"],
            total_symbols=header["total_symbols"],
        )
        symbols = huffman_decode(encoded)
        raw_codes = symbols.reshape(shape) + header["code_min"]
        return (raw_codes.astype(np.float64) * (2.0 * header["eb"])).astype(dtype)
