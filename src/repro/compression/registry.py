"""Compressor registry: construct codecs by name, decode any payload.

The offline analysis (Algorithm 2) and the benchmark harness refer to
compressors by name; payloads are self-describing, so the registry can also
route an arbitrary payload to the codec that produced it.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.compression.base import Compressor, parse_payload
from repro.compression.baselines import (
    CuszLikeCompressor,
    DeflateLikeCompressor,
    Fp8Compressor,
    Fp16Compressor,
    FzGpuLikeCompressor,
    Lz4LikeCompressor,
    ZfpLikeCompressor,
)
from repro.compression.entropy import EntropyCompressor
from repro.compression.homomorphic import CountSumCompressor, QuantSumCompressor
from repro.compression.hybrid import HybridCompressor
from repro.compression.serialization import has_checksum, verify_checksum_frame
from repro.compression.vector_lz import VectorLZCompressor

__all__ = ["register_compressor", "get_compressor", "available_compressors", "decompress_any"]

_FACTORIES: dict[str, Callable[..., Compressor]] = {
    HybridCompressor.name: HybridCompressor,
    VectorLZCompressor.name: VectorLZCompressor,
    EntropyCompressor.name: EntropyCompressor,
    Fp16Compressor.name: Fp16Compressor,
    Fp8Compressor.name: Fp8Compressor,
    Lz4LikeCompressor.name: Lz4LikeCompressor,
    DeflateLikeCompressor.name: DeflateLikeCompressor,
    CuszLikeCompressor.name: CuszLikeCompressor,
    FzGpuLikeCompressor.name: FzGpuLikeCompressor,
    ZfpLikeCompressor.name: ZfpLikeCompressor,
    QuantSumCompressor.name: QuantSumCompressor,
    CountSumCompressor.name: CountSumCompressor,
}


def register_compressor(name: str, factory: Callable[..., Compressor]) -> None:
    """Register a codec factory under ``name`` (error on collision)."""
    if name in _FACTORIES:
        raise ValueError(f"compressor {name!r} is already registered")
    _FACTORIES[name] = factory


def get_compressor(name: str, **kwargs: object) -> Compressor:
    """Construct a compressor by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown compressor {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def available_compressors() -> tuple[str, ...]:
    """All registered codec names, sorted."""
    return tuple(sorted(_FACTORIES))


def decompress_any(payload: bytes | memoryview) -> np.ndarray:
    """Decode a payload produced by any registered codec.

    Accepts both bare codec frames and CRC32-checksummed envelopes (see
    :func:`repro.compression.serialization.frame_with_checksum`); a
    checksummed payload is verified first, so a corrupted frame raises
    :class:`~repro.compression.serialization.CorruptPayloadError` instead
    of decoding garbage.
    """
    if has_checksum(payload):
        payload = verify_checksum_frame(payload)
    header, _ = parse_payload(payload)
    codec = header["codec"]
    if codec not in _FACTORIES:
        raise KeyError(f"payload codec {codec!r} is not registered")
    return _FACTORIES[codec]().decompress(payload)
