"""Error-bounded linear-scaling quantization.

This is the first stage of the paper's hybrid compressor: floating-point
embedding values are mapped to integer bin indices such that reconstruction
error never exceeds the user's absolute error bound.  With bin width
``2 * eb`` and round-to-nearest,

    codes = round(x / (2 * eb))        reconstruction: 2 * eb * codes

satisfies ``|x - x_hat| <= eb`` (up to one float32 ULP when casting the
reconstruction back to the input dtype).  This matches the SZ-family
"linear-scaling quantization" the paper builds on, minus prediction — the
paper's observation ❶ (*false prediction*) is precisely that Lorenzo-style
prediction hurts embedding batches, so the hybrid compressor quantizes raw
values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "quantize",
    "dequantize",
    "QuantizedBatch",
    "quantize_batch",
    "relative_to_absolute_bound",
    "DEFAULT_MAX_ALPHABET",
]

#: Largest quantization alphabet the lossless encoders accept.  An error
#: bound tiny relative to the value range explodes the bin count, and a
#: multi-million-symbol alphabet silently turns Huffman codebook
#: construction into a memory/time bomb — fail fast instead.
DEFAULT_MAX_ALPHABET = 1 << 22


def relative_to_absolute_bound(array: np.ndarray, relative_bound: float) -> float:
    """Convert a value-range-relative bound to the absolute bound SZ-style
    compressors take: ``abs_eb = rel_eb * (max - min)``.

    The paper configures absolute bounds; this helper supports the common
    alternative convention so callers can express tolerance as a fraction
    of each table's value range.  Degenerate (constant) inputs fall back to
    scaling the magnitude, so the result is always positive.
    """
    check_positive("relative_bound", relative_bound)
    array = np.asarray(array)
    if array.size == 0:
        raise ValueError("cannot derive a bound from an empty array")
    if not np.isfinite(array).all():
        raise ValueError("relative_to_absolute_bound: input contains NaN/inf")
    value_range = float(array.max() - array.min())
    if value_range == 0.0:
        value_range = max(abs(float(array.ravel()[0])), 1.0)
    return relative_bound * value_range


def quantize(array: np.ndarray, error_bound: float) -> np.ndarray:
    """Quantize floats to int64 bin indices with absolute bound ``error_bound``.

    Raises ``ValueError`` on non-finite input: embedding lookups are always
    finite, and silently quantizing NaN would corrupt training.
    """
    check_positive("error_bound", error_bound)
    array = np.asarray(array)
    if not np.isfinite(array).all():
        raise ValueError("quantize: input contains NaN/inf")
    # Work in float64 so the bin computation itself adds no error beyond
    # rounding; the bound then holds to within one output-dtype ULP.
    scaled = np.asarray(array, dtype=np.float64) / (2.0 * error_bound)
    return np.rint(scaled).astype(np.int64)


def dequantize(
    codes: np.ndarray, error_bound: float, dtype: np.dtype | type = np.float32
) -> np.ndarray:
    """Reconstruct bin centres from :func:`quantize` output."""
    check_positive("error_bound", error_bound)
    centres = np.asarray(codes, dtype=np.float64) * (2.0 * error_bound)
    return centres.astype(dtype)


@dataclass(frozen=True)
class QuantizedBatch:
    """A quantized 2-D batch plus everything needed to reconstruct it.

    ``codes`` are *offset-shifted* to be non-negative (``raw_code - code_min``)
    so downstream lossless encoders can treat them as a dense unsigned
    alphabet of size ``alphabet_size``.
    """

    codes: np.ndarray
    code_min: int
    error_bound: float
    shape: tuple[int, ...]
    dtype: np.dtype

    @property
    def alphabet_size(self) -> int:
        return int(self.codes.max()) + 1 if self.codes.size else 1

    def reconstruct(self) -> np.ndarray:
        """Invert the offset shift and dequantize back to the input dtype."""
        raw = self.codes.astype(np.int64) + self.code_min
        return dequantize(raw, self.error_bound, self.dtype).reshape(self.shape)


def quantize_batch(
    array: np.ndarray,
    error_bound: float,
    max_alphabet: int = DEFAULT_MAX_ALPHABET,
) -> QuantizedBatch:
    """Quantize a 2-D float batch into a :class:`QuantizedBatch`.

    Raises ``ValueError`` when the implied alphabet (``max - min + 1`` over
    the quantized bins) exceeds ``max_alphabet``: an error bound that is
    tiny relative to the value range would otherwise hand the downstream
    entropy coder a multi-million-symbol alphabet.  Pass a larger
    ``max_alphabet`` to override.
    """
    array = np.asarray(array)
    codes = quantize(array, error_bound)
    code_min = int(codes.min()) if codes.size else 0
    if codes.size:
        alphabet = int(codes.max()) - code_min + 1
        if alphabet > max_alphabet:
            raise ValueError(
                f"quantize_batch: error_bound={error_bound!r} yields an alphabet of "
                f"{alphabet} symbols (> max_alphabet={max_alphabet}); the bound is too "
                "tight for this value range — loosen it or raise max_alphabet"
            )
    shifted = (codes - code_min).astype(np.int64)
    return QuantizedBatch(
        codes=shifted,
        code_min=code_min,
        error_bound=float(error_bound),
        shape=array.shape,
        dtype=array.dtype,
    )
