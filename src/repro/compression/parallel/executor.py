"""Multicore codec execution: compress/decompress batches across workers.

In the paper's 4-stage exchange every rank compresses one slice per peer —
the slices are independent, so on a multicore host the codec work
parallelizes perfectly.  :class:`CodecExecutor` runs a batch of
:class:`CompressJob`s (or payload decodes) across a process or thread pool:

* ``workers=1`` is a **strictly serial in-process loop** — no pool, no
  queues — and produces payloads bit-identical to calling each codec's
  ``compress`` directly (differential tests pin this for every registered
  codec).
* The **process** backend (default where ``fork`` is available) sidesteps
  the GIL entirely.  Workers inherit a ring of shared-memory output slots
  (``multiprocessing.RawArray``) through ``fork`` and write compressed
  payloads into them, so results cross the process boundary as a
  ``(slot, length)`` tuple instead of a pickled payload; jobs are submitted
  in waves of ``workers`` so a slot is never overwritten before the parent
  drains it.  Oversized payloads transparently fall back to pickling.
* The **thread** backend shares the address space (zero-copy by
  construction) and relies on NumPy kernels releasing the GIL; each worker
  thread keeps its own codec instances because codecs carry scratch state.

Parallel compression always uses the **stateless** ``compress`` path, never
keyed/pinned caches: pinned-trial and codebook-cache state make payload
*bytes* depend on call order, which would make a parallel distribution
nondeterministic.  Stateless payloads are identical no matter which worker
runs them — that is the executor's determinism contract.  Decompression is
stateless for every codec and always safe to distribute.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

__all__ = ["CodecExecutor", "CompressJob", "available_workers"]

#: default shared-memory slot size: 4 MiB holds any payload from the
#: paper's largest table shape (4096 x 64 float32 = 1 MiB raw)
DEFAULT_SLOT_NBYTES = 1 << 22


def available_workers() -> int:
    """Usable CPU count (affinity-aware where the platform reports it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class CompressJob:
    """One independent compression task: a codec name + one table slice."""

    codec: str
    array: np.ndarray
    error_bound: float | None = None
    #: codec constructor kwargs, as a hashable tuple of (key, value) pairs
    #: so workers can cache codec instances per configuration
    kwargs: tuple[tuple[str, Any], ...] = field(default_factory=tuple)


# ---------------------------------------------------------------------------
# process-backend worker side.  The slot ring is inherited through fork (the
# initializer runs in the child before any job); module-level state keeps it
# reachable from the picklable job functions.

_WORKER_STATE: dict[str, Any] = {"slots": None, "codecs": {}}


def _process_init(slots: list) -> None:
    _WORKER_STATE["slots"] = slots
    _WORKER_STATE["codecs"] = {}


def _cached_codec(name: str, kwargs: tuple[tuple[str, Any], ...]):
    codec = _WORKER_STATE["codecs"].get((name, kwargs))
    if codec is None:
        from repro.compression.registry import get_compressor

        codec = get_compressor(name, **dict(kwargs))
        _WORKER_STATE["codecs"][(name, kwargs)] = codec
    return codec


def _run_compress(slot_index: int | None, job: CompressJob):
    payload = _cached_codec(job.codec, job.kwargs).compress(job.array, job.error_bound)
    slots = _WORKER_STATE["slots"]
    if slots is not None and slot_index is not None and len(payload) <= len(slots[slot_index]):
        memoryview(slots[slot_index]).cast("B")[: len(payload)] = payload
        return ("slot", slot_index, len(payload))
    return ("bytes", payload)


def _run_decompress(slot_index: int | None, payload):
    from repro.compression.registry import decompress_any

    array = np.ascontiguousarray(decompress_any(payload))
    slots = _WORKER_STATE["slots"]
    if slots is not None and slot_index is not None and array.nbytes <= len(slots[slot_index]):
        if array.nbytes:
            memoryview(slots[slot_index]).cast("B")[: array.nbytes] = memoryview(array).cast("B")
        return ("slot_array", slot_index, array.dtype.str, array.shape)
    return ("array", array)


class CodecExecutor:
    """Runs codec batches serially, across threads, or across processes.

    Parameters
    ----------
    workers:
        Maximum parallelism.  ``1`` selects the deterministic serial path.
    backend:
        ``"auto"`` (process where ``fork`` exists, else thread),
        ``"serial"``, ``"thread"``, or ``"process"``.
    pool:
        Optional :class:`~repro.compression.parallel.BitstreamPool`; when
        set, compressed payloads are returned as pooled lease views and the
        leases are tracked on the executor (``release_leases()`` frees the
        previous batch's buffers).
    slot_nbytes:
        Shared-memory output slot size for the process backend.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        backend: str = "auto",
        pool=None,
        slot_nbytes: int = DEFAULT_SLOT_NBYTES,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in ("auto", "serial", "thread", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        self.workers = int(workers)
        if workers == 1 or backend == "serial":
            backend = "serial"
        elif backend == "auto":
            backend = "process" if "fork" in multiprocessing.get_all_start_methods() else "thread"
        self.backend = backend
        self.pool = pool
        self.slot_nbytes = int(slot_nbytes)
        self._executor: ProcessPoolExecutor | ThreadPoolExecutor | None = None
        self._slots: list | None = None
        self._serial_codecs: dict[tuple[str, tuple], Any] = {}
        self._thread_codecs = None  # threading.local, created lazily
        self._leases: list = []

    # ------------------------------------------------------------- lifecycle

    def _ensure_executor(self):
        if self._executor is not None:
            return self._executor
        if self.backend == "process":
            ctx = multiprocessing.get_context("fork")
            # One slot per concurrently-running job: jobs are submitted in
            # waves of `workers`, each wave position owning one slot, and the
            # parent drains a wave before submitting the next.
            self._slots = [ctx.RawArray("B", self.slot_nbytes) for _ in range(self.workers)]
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_process_init,
                initargs=(self._slots,),
            )
        else:
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._slots = None
        self.release_leases()

    def __enter__(self) -> "CodecExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
        except Exception:
            pass

    def release_leases(self) -> None:
        """Release pooled payload buffers handed out by the previous batch."""
        for lease in self._leases:
            lease.release()
        self._leases.clear()

    # ----------------------------------------------------------- serial path

    def _serial_codec(self, name: str, kwargs: tuple):
        codec = self._serial_codecs.get((name, kwargs))
        if codec is None:
            from repro.compression.registry import get_compressor

            codec = get_compressor(name, **dict(kwargs))
            self._serial_codecs[(name, kwargs)] = codec
        return codec

    def _thread_codec(self, name: str, kwargs: tuple):
        import threading

        if self._thread_codecs is None:
            self._thread_codecs = threading.local()
        cache = getattr(self._thread_codecs, "codecs", None)
        if cache is None:
            cache = {}
            self._thread_codecs.codecs = cache
        codec = cache.get((name, kwargs))
        if codec is None:
            from repro.compression.registry import get_compressor

            codec = get_compressor(name, **dict(kwargs))
            cache[(name, kwargs)] = codec
        return codec

    # --------------------------------------------------------------- results

    def _intern(self, payload):
        """Stash a payload: pooled lease view when a pool is attached."""
        if self.pool is None:
            return payload if isinstance(payload, bytes) else bytes(payload)
        lease = self.pool.checkout_bytes(payload)
        self._leases.append(lease)
        return lease.view

    def _materialize_compress(self, outcome):
        kind = outcome[0]
        if kind == "bytes":
            return self._intern(outcome[1])
        _, slot_index, length = outcome
        return self._intern(memoryview(self._slots[slot_index]).cast("B")[:length])

    def _materialize_decompress(self, outcome):
        kind = outcome[0]
        if kind == "array":
            return outcome[1]
        _, slot_index, dtype_str, shape = outcome
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape, dtype=np.int64))
        view = memoryview(self._slots[slot_index]).cast("B")[: count * dtype.itemsize]
        return np.frombuffer(view, dtype=dtype).reshape(shape).copy()

    # ------------------------------------------------------------------- api

    def compress_batch(
        self, jobs: Sequence[CompressJob], *, parallelism: int | None = None
    ) -> list:
        """Compress independent jobs; results keep the input order.

        ``parallelism`` caps the worker count for this batch (an autotuner
        hint); ``1`` runs the serial loop even on a pooled executor.  The
        payload bytes are identical for every value of ``parallelism`` —
        only wall-clock changes.
        """
        effective = self.workers if parallelism is None else max(1, min(parallelism, self.workers))
        if self.backend == "serial" or effective == 1 or len(jobs) <= 1:
            return [
                self._intern(
                    self._serial_codec(job.codec, job.kwargs).compress(job.array, job.error_bound)
                )
                for job in jobs
            ]
        executor = self._ensure_executor()
        results: list = [None] * len(jobs)
        if self.backend == "thread":
            futures = {
                executor.submit(
                    lambda j: self._thread_codec(j.codec, j.kwargs).compress(j.array, j.error_bound),
                    job,
                ): idx
                for idx, job in enumerate(jobs)
            }
            for future, idx in futures.items():
                results[idx] = self._intern(future.result())
            return results
        # process backend: wave submission, one slot per wave position
        for wave_start in range(0, len(jobs), effective):
            wave = jobs[wave_start : wave_start + effective]
            futures_list: list[Future] = [
                executor.submit(_run_compress, slot, job) for slot, job in enumerate(wave)
            ]
            for offset, future in enumerate(futures_list):
                results[wave_start + offset] = self._materialize_compress(future.result())
        return results

    def decompress_batch(
        self, payloads: Sequence, *, parallelism: int | None = None
    ) -> list[np.ndarray]:
        """Decode payloads (any registered codec); results keep input order."""
        from repro.compression.registry import decompress_any

        effective = self.workers if parallelism is None else max(1, min(parallelism, self.workers))
        if self.backend == "serial" or effective == 1 or len(payloads) <= 1:
            return [decompress_any(p) for p in payloads]
        executor = self._ensure_executor()
        results: list = [None] * len(payloads)
        if self.backend == "thread":
            futures = {
                executor.submit(decompress_any, payload): idx
                for idx, payload in enumerate(payloads)
            }
            for future, idx in futures.items():
                results[idx] = future.result()
            return results
        for wave_start in range(0, len(payloads), effective):
            wave = payloads[wave_start : wave_start + effective]
            futures_list = [
                # memoryviews (pooled payloads) do not pickle; ship bytes
                executor.submit(_run_decompress, slot, bytes(payload) if isinstance(payload, (memoryview, bytearray)) else payload)
                for slot, payload in enumerate(wave)
            ]
            for offset, future in enumerate(futures_list):
                results[wave_start + offset] = self._materialize_decompress(future.result())
        return results

    # -------------------------------------------------------- chunked tables

    def compress_chunked(
        self,
        codec: str,
        array: np.ndarray,
        error_bound: float | None = None,
        *,
        chunks: int,
        kwargs: tuple[tuple[str, Any], ...] = (),
        parallelism: int | None = None,
    ) -> list:
        """Compress one table as ``chunks`` independent row groups.

        Mirrors the pipelined exchange's chunking: each chunk is a framed,
        self-describing payload, so a receiver decodes chunks independently
        (and in parallel).  Chunk boundaries follow ``np.array_split``.
        """
        if chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {chunks}")
        pieces = [p for p in np.array_split(array, min(chunks, max(1, array.shape[0])), axis=0) if p.shape[0]]
        if not pieces:
            pieces = [array]
        jobs = [CompressJob(codec, piece, error_bound, kwargs) for piece in pieces]
        return self.compress_batch(jobs, parallelism=parallelism)

    def decompress_chunked(
        self, payloads: Sequence, *, parallelism: int | None = None
    ) -> np.ndarray:
        """Decode row-group payloads and reassemble the table."""
        parts = self.decompress_batch(payloads, parallelism=parallelism)
        return np.concatenate(parts, axis=0) if len(parts) > 1 else parts[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CodecExecutor workers={self.workers} backend={self.backend!r}>"
