"""Exchange autotuning: pick pipeline chunking and codec parallelism.

The pipelined compressed all-to-all hides compression behind the wire (and
vice versa); how much hiding is possible depends on the *measured* balance
between compress time ``C`` and wire time ``W``:

* **Chunk count** — more chunks mean finer overlap but more per-chunk
  overhead.  The tuner interpolates between ``min_chunks`` and
  ``max_chunks`` with the wire fraction ``rho = W / (C + W)``: a
  wire-bound exchange (``rho → 1``) gets the finest pipeline, a
  compute-bound one (``rho → 0``) keeps chunks coarse.  The mapping
  ``k = min + round((max - min) * rho)`` is monotone in ``rho`` by
  construction — more wire-bound never yields fewer chunks (property
  tested).
* **Worker count** — parallel codec workers only pay off while compression
  is the critical path.  The tuner picks the smallest ladder rung ``w``
  with ``C / w <= W`` (compression fully hidden behind the wire), falling
  back to the top rung when even that cannot hide it.  Monotone in
  ``C / W`` by construction.

Observations are EMA-smoothed so a single straggler iteration cannot whip
the decision around.  Feed the tuner directly (the trainer knows its
per-exchange compress/wire seconds) or from the :mod:`repro.obs` stage
counters via :meth:`ExchangeAutotuner.observe_registry`, which diffs the
``comm_seconds_total{stage=...}`` counters the Communicator already emits.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExchangeAutotuner", "ExchangeDecision"]

#: stages whose counter deltas feed compress / wire / decompress time
_COMPRESS_STAGES = ("compress",)
_WIRE_STAGES = ("metadata", "payload")
_DECOMPRESS_STAGES = ("decompress",)


@dataclass(frozen=True)
class ExchangeDecision:
    """One autotuning verdict for the next exchange."""

    pipeline_chunks: int
    workers: int
    wire_fraction: float
    observations: int


class ExchangeAutotuner:
    """EMA-smoothed compress/wire balance → (pipeline_chunks, workers)."""

    def __init__(
        self,
        *,
        min_chunks: int = 1,
        max_chunks: int = 32,
        default_chunks: int = 8,
        worker_ladder: tuple[int, ...] = (1, 2, 4),
        smoothing: float = 0.5,
    ) -> None:
        if not 1 <= min_chunks <= max_chunks:
            raise ValueError(f"need 1 <= min_chunks <= max_chunks, got {min_chunks}..{max_chunks}")
        if not min_chunks <= default_chunks <= max_chunks:
            raise ValueError(f"default_chunks {default_chunks} outside [{min_chunks}, {max_chunks}]")
        if not worker_ladder or list(worker_ladder) != sorted(worker_ladder) or worker_ladder[0] < 1:
            raise ValueError(f"worker_ladder must be ascending and >= 1, got {worker_ladder}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.min_chunks = int(min_chunks)
        self.max_chunks = int(max_chunks)
        self.default_chunks = int(default_chunks)
        self.worker_ladder = tuple(int(w) for w in worker_ladder)
        self.smoothing = float(smoothing)
        self.observations = 0
        self._compress = 0.0
        self._wire = 0.0
        self._decompress = 0.0
        self._counter_marks: dict[str, float] = {}

    # --------------------------------------------------------------- feeding

    def observe(
        self, compress_seconds: float, wire_seconds: float, decompress_seconds: float = 0.0
    ) -> None:
        """Fold one exchange's measured stage times into the EMAs."""
        if compress_seconds < 0 or wire_seconds < 0 or decompress_seconds < 0:
            raise ValueError("stage seconds must be >= 0")
        alpha = self.smoothing if self.observations else 1.0
        self._compress += alpha * (compress_seconds - self._compress)
        self._wire += alpha * (wire_seconds - self._wire)
        self._decompress += alpha * (decompress_seconds - self._decompress)
        self.observations += 1

    def observe_registry(self, registry=None) -> bool:
        """Feed from the obs stage counters (``comm_seconds_total{stage=}``).

        Diffs each stage counter against the last call's mark, so repeated
        calls observe only new exchanges.  Returns whether any new stage
        time was seen.  With ``registry=None`` the process-wide
        :data:`repro.obs.runtime.OBS` registry is used.
        """
        if registry is None:
            from repro.obs.runtime import OBS

            registry = OBS.registry
        # Live registries expose values through point-in-time snapshots;
        # a snapshot passed in directly works too.
        snapshot = registry.snapshot() if hasattr(registry, "snapshot") else registry

        def _delta(stages: tuple[str, ...]) -> float:
            total = 0.0
            for stage in stages:
                try:
                    value = float(snapshot.counter_value("comm_seconds_total", stage=stage))
                except KeyError:
                    value = 0.0
                total += value - self._counter_marks.get(stage, 0.0)
                self._counter_marks[stage] = value
            return total

        compress = _delta(_COMPRESS_STAGES)
        wire = _delta(_WIRE_STAGES)
        decompress = _delta(_DECOMPRESS_STAGES)
        if compress <= 0.0 and wire <= 0.0 and decompress <= 0.0:
            return False
        self.observe(max(compress, 0.0), max(wire, 0.0), max(decompress, 0.0))
        return True

    # ------------------------------------------------------------- deciding

    @property
    def wire_fraction(self) -> float:
        total = self._compress + self._wire
        if total <= 0.0:
            return 0.5
        return self._wire / total

    def recommend(self) -> ExchangeDecision:
        """Current verdict; defaults until the first observation lands."""
        if self.observations == 0:
            return ExchangeDecision(
                pipeline_chunks=self.default_chunks,
                workers=self.worker_ladder[0],
                wire_fraction=0.5,
                observations=0,
            )
        rho = self.wire_fraction
        chunks = self.min_chunks + int(round((self.max_chunks - self.min_chunks) * rho))
        chunks = max(self.min_chunks, min(self.max_chunks, chunks))
        workers = self.worker_ladder[-1]
        for rung in self.worker_ladder:
            # Codec time (compress + decompress both scale with workers)
            # must hide behind the wire at this rung.
            if (self._compress + self._decompress) / rung <= self._wire:
                workers = rung
                break
        return ExchangeDecision(
            pipeline_chunks=chunks,
            workers=workers,
            wire_fraction=rho,
            observations=self.observations,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ExchangeAutotuner obs={self.observations} rho={self.wire_fraction:.3f} "
            f"C={self._compress:.2e}s W={self._wire:.2e}s>"
        )
