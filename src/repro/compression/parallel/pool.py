"""Zero-copy bitstream arenas: reusable buffers for codec payloads.

Every compress/decompress round trip in the seed allocated fresh ``bytes``
at each stage boundary — body serialization, payload framing, checksum
enveloping, wire staging.  :class:`BitstreamPool` removes the steady-state
allocations: it hands out :class:`Lease` objects backed by pooled
``bytearray`` arenas, bucketed by power-of-two capacity, so after warm-up a
training iteration or publication round touches no allocator at all for its
bitstreams.

Discipline:

* ``checkout(nbytes)`` returns a lease whose ``.view`` is an *exact-size*
  writable :class:`memoryview`.  Two live leases never alias (each owns a
  distinct arena) — a property test pins this.
* ``release()`` (or exiting the lease's context manager) returns the arena
  to the free list for reuse; the lease's master view is closed so most
  use-after-release bugs raise instead of corrupting a neighbour.
* Arenas are recycled by exact capacity bucket, so reuse is deterministic:
  releasing and re-checking-out the same size hits the free list, never the
  allocator (``stats.reuses`` counts it).

The pool is thread-safe (a single lock around the free lists) so the
thread backend of :class:`~repro.compression.parallel.CodecExecutor` can
share one pool across workers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = ["BitstreamPool", "Lease", "PoolStats"]

#: smallest arena we bother pooling — tiny checkouts round up to this
_MIN_ARENA = 256


def arena_capacity(nbytes: int) -> int:
    """Power-of-two bucket capacity for a requested size."""
    if nbytes <= _MIN_ARENA:
        return _MIN_ARENA
    return 1 << (int(nbytes) - 1).bit_length()


@dataclass
class PoolStats:
    """Allocation accounting for one pool (drives the zero-copy bench rows)."""

    arenas_created: int = 0
    arena_bytes: int = 0
    checkouts: int = 0
    reuses: int = 0
    live: int = 0
    peak_live: int = 0
    dirty_releases: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "arenas_created": self.arenas_created,
            "arena_bytes": self.arena_bytes,
            "checkouts": self.checkouts,
            "reuses": self.reuses,
            "live": self.live,
            "peak_live": self.peak_live,
            "dirty_releases": self.dirty_releases,
        }


class Lease:
    """One checked-out arena slice.  ``view`` is the writable payload window.

    The lease owns its arena until :meth:`release`; the pool never hands the
    same arena to anyone else while the lease is live.  ``array`` maps the
    window (or a prefix of it) as an ndarray without copying.
    """

    __slots__ = ("_pool", "_arena", "_capacity", "nbytes", "_master", "view", "released")

    def __init__(self, pool: "BitstreamPool", arena: bytearray, nbytes: int) -> None:
        self._pool = pool
        self._arena = arena
        self._capacity = len(arena)
        self.nbytes = int(nbytes)
        self._master = memoryview(arena)
        self.view = self._master[: self.nbytes]
        self.released = False

    def array(self, dtype: np.dtype | str = np.uint8, shape: tuple[int, ...] | None = None) -> np.ndarray:
        """The leased window as a writable ndarray view (no copy)."""
        arr = np.frombuffer(self.view, dtype=dtype)
        if shape is not None:
            arr = arr.reshape(shape)
        return arr

    def write(self, data) -> memoryview:
        """Copy ``data`` into the window's prefix; return the filled view."""
        view = memoryview(data)
        if view.nbytes > self.nbytes:
            raise ValueError(f"lease too small: {view.nbytes} bytes into {self.nbytes}")
        if view.ndim != 1 or view.format != "B":
            view = view.cast("B")
        self.view[: view.nbytes] = view
        return self.view[: view.nbytes]

    def release(self) -> None:
        """Return the arena to the pool.  Idempotent.

        A release with a buffer export still live (a caller kept the
        ndarray from :meth:`array`, or a view of :attr:`view`) is counted
        as *dirty* and the arena is **dropped**, not recycled — the
        caller's array stays valid and a future checkout can never write
        under it.  The property tests pin both halves.
        """
        if self.released:
            return
        self.released = True
        exported = False
        try:
            self.view.release()
            self._master.release()
        except BufferError:
            exported = True
        if not exported:
            # NumPy (and other consumers) export the arena's buffer
            # directly, bypassing our views — probe with a resize, which a
            # bytearray refuses while any export is live.
            try:
                self._arena.append(0)
                self._arena.pop()
            except BufferError:
                exported = True
        if exported:
            self._pool._discard_dirty(self._arena)
        else:
            self._pool._return_arena(self._arena)
        self._arena = None  # type: ignore[assignment]

    def __len__(self) -> int:
        return self.nbytes

    def __enter__(self) -> "Lease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class BitstreamPool:
    """Recycling allocator for codec bitstream buffers.

    ``max_arenas_per_bucket`` bounds retention: beyond it, released arenas
    are dropped to the garbage collector instead of hoarded (a publication
    spike does not pin its high-water mark forever).
    """

    def __init__(self, *, max_arenas_per_bucket: int = 16) -> None:
        self._free: dict[int, list[bytearray]] = {}
        self._lock = threading.Lock()
        self._max_per_bucket = int(max_arenas_per_bucket)
        self.stats = PoolStats()

    def checkout(self, nbytes: int) -> Lease:
        """Lease a writable buffer of exactly ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError(f"cannot checkout {nbytes} bytes")
        capacity = arena_capacity(nbytes)
        with self._lock:
            bucket = self._free.get(capacity)
            if bucket:
                arena = bucket.pop()
                self.stats.reuses += 1
            else:
                arena = bytearray(capacity)
                self.stats.arenas_created += 1
                self.stats.arena_bytes += capacity
            self.stats.checkouts += 1
            self.stats.live += 1
            self.stats.peak_live = max(self.stats.peak_live, self.stats.live)
        return Lease(self, arena, nbytes)

    def checkout_array(self, shape: tuple[int, ...], dtype: np.dtype | str) -> tuple[Lease, np.ndarray]:
        """Lease an ndarray-shaped scratch buffer; returns ``(lease, array)``."""
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        lease = self.checkout(nbytes)
        return lease, lease.array(dt, tuple(shape))

    def checkout_bytes(self, data) -> Lease:
        """Lease a buffer pre-filled with a copy of ``data``."""
        view = memoryview(data)
        lease = self.checkout(view.nbytes)
        lease.write(view)
        return lease

    def _return_arena(self, arena: bytearray) -> None:
        capacity = len(arena)
        with self._lock:
            self.stats.live -= 1
            bucket = self._free.setdefault(capacity, [])
            if len(bucket) < self._max_per_bucket:
                bucket.append(arena)
            else:
                self.stats.arena_bytes -= capacity

    def _discard_dirty(self, arena: bytearray) -> None:
        """A released lease whose arena still has live buffer exports:
        count it and let the GC take the arena once the exports die."""
        with self._lock:
            self.stats.dirty_releases += 1
            self.stats.live -= 1
            self.stats.arena_bytes -= len(arena)

    def free_arenas(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._free.values())

    def clear(self) -> None:
        """Drop every pooled arena (leases outstanding stay valid)."""
        with self._lock:
            self._free.clear()
            self.stats.arena_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"<BitstreamPool arenas={s.arenas_created} live={s.live} "
            f"reuses={s.reuses}/{s.checkouts}>"
        )
