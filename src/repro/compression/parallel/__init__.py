"""Raw-speed tier: multicore codec execution, zero-copy buffer pooling, and
exchange autotuning.

Three cooperating pieces:

* :class:`BitstreamPool` — recycling ``memoryview``-backed arenas; the
  allocation-free backing store for payloads, checksum envelopes, and
  decode scratch.
* :class:`CodecExecutor` — compresses/decompresses independent tables and
  pipeline chunks across a process/thread pool with shared-memory output
  slots; ``workers=1`` is a deterministic serial path, and payload bytes
  are identical at every worker count.
* :class:`ExchangeAutotuner` — measures the compress/wire balance of each
  exchange (directly or from the :mod:`repro.obs` stage counters) and picks
  ``pipeline_chunks`` and the codec worker count for the next one.
"""

from repro.compression.parallel.autotune import ExchangeAutotuner, ExchangeDecision
from repro.compression.parallel.executor import (
    CodecExecutor,
    CompressJob,
    available_workers,
)
from repro.compression.parallel.pool import BitstreamPool, Lease, PoolStats

__all__ = [
    "BitstreamPool",
    "Lease",
    "PoolStats",
    "CodecExecutor",
    "CompressJob",
    "available_workers",
    "ExchangeAutotuner",
    "ExchangeDecision",
]
