"""Optimized entropy encoder: canonical, length-limited Huffman coding.

This is the paper's "optimized entropy encoding" leg of the hybrid
compressor.  Design points mirroring the GPU implementation:

* **Canonical codes** — the codebook ships as code *lengths* only (plus the
  symbol alphabet); codes are re-derived on the receiver, keeping metadata
  small.
* **Length limiting** — code lengths are capped (default 15 bits) so the
  decoder can use a single flat peek table, the same reason Deflate caps at
  15.  Lengths are fixed up to satisfy Kraft's inequality after clamping.
* **Chunked streams** — symbols are encoded in independent chunks with
  recorded bit offsets, mirroring the paper's chunk-parallel decompression
  (Section III-E): each chunk can be decoded independently.

Encoding is fully vectorized (see :mod:`repro.compression.bitstream`);
decoding computes speculative flat-peek-table lookups at every bit offset
vectorized (the gap-array technique of GPU Huffman decoders) and then only
walks the per-chunk jump chain sequentially.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.compression.bitstream import _reference_pack_codes, pack_codes, padded_stream, word_table
from repro.compression.cache import LruCache

__all__ = [
    "huffman_code_lengths",
    "limit_code_lengths",
    "canonical_codes",
    "HuffmanCodebook",
    "build_codebook",
    "HuffmanEncoded",
    "huffman_encode",
    "huffman_encode_with_book",
    "huffman_decode",
    "DEFAULT_MAX_CODE_LENGTH",
    "DEFAULT_CHUNK_SYMBOLS",
]

DEFAULT_MAX_CODE_LENGTH = 15
DEFAULT_CHUNK_SYMBOLS = 4096

#: decode-side peek tables keyed by the payload's code-length table; a flat
#: 2**max_length table is expensive to rebuild and identical across all
#: payloads produced by the same codebook (every iteration of a cached
#: table, every chunk of a batch).
_PEEK_TABLE_CACHE = LruCache(32)


def _reference_huffman_code_lengths(freqs: np.ndarray) -> np.ndarray:
    """The seed's original heap-based tree build, frozen verbatim as the
    differential/benchmark oracle."""
    freqs = np.asarray(freqs, dtype=np.int64)
    n = freqs.size
    if n == 0:
        raise ValueError("cannot build a Huffman code over an empty alphabet")
    if (freqs <= 0).any():
        raise ValueError("all frequencies must be positive (drop unused symbols first)")
    if n == 1:
        return np.array([1], dtype=np.int64)
    # Leaves are ids [0, n); internal nodes get ids [n, 2n-1).  Heap entries
    # carry (weight, id) — the id tiebreak keeps construction deterministic.
    heap: list[tuple[int, int]] = [(int(f), i) for i, f in enumerate(freqs)]
    heapq.heapify(heap)
    parent = np.zeros(2 * n - 1, dtype=np.int64)
    next_id = n
    while len(heap) > 1:
        w1, a = heapq.heappop(heap)
        w2, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (w1 + w2, next_id))
        next_id += 1
    root = next_id - 1
    depth = np.zeros(2 * n - 1, dtype=np.int64)
    for node in range(root - 1, -1, -1):  # parents always have larger ids
        depth[node] = depth[parent[node]] + 1
    return depth[:n]


def huffman_code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Optimal (unlimited) Huffman code lengths for positive frequencies.

    Two-queue O(n log n) construction (the log factor is one ``argsort``):
    leaves wait in weight order in one queue, merged internal nodes are
    produced in nondecreasing weight order and consumed FIFO from the
    other, so every merge step picks its two cheapest nodes with plain
    comparisons — no heap.  Tie-breaking matches the seed's heap build
    exactly (leaves before internals at equal weight, then smaller symbol
    index / earlier creation first), so the resulting length table is
    identical, not merely equivalent — the differential tests pin this.
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    n = freqs.size
    if n == 0:
        raise ValueError("cannot build a Huffman code over an empty alphabet")
    if (freqs <= 0).any():
        raise ValueError("all frequencies must be positive (drop unused symbols first)")
    if n == 1:
        return np.array([1], dtype=np.int64)
    order = np.argsort(freqs, kind="stable")
    leaf_weights = freqs[order].tolist()
    leaf_ids = order.tolist()
    merged_weights: list[int] = []  # FIFO, weights nondecreasing
    merged_ids: list[int] = []
    parent = np.zeros(2 * n - 1, dtype=np.int64)
    li = mi = 0  # queue cursors
    next_id = n

    def pop_min() -> tuple[int, int]:
        nonlocal li, mi
        # Equal weights prefer the leaf: leaf ids < n <= internal ids, and
        # the heap oracle orders by (weight, id).
        if li < n and (mi >= len(merged_weights) or leaf_weights[li] <= merged_weights[mi]):
            li += 1
            return leaf_weights[li - 1], leaf_ids[li - 1]
        mi += 1
        return merged_weights[mi - 1], merged_ids[mi - 1]

    for _ in range(n - 1):
        w1, a = pop_min()
        w2, b = pop_min()
        parent[a] = next_id
        parent[b] = next_id
        merged_weights.append(w1 + w2)
        merged_ids.append(next_id)
        next_id += 1
    root = next_id - 1
    depth = np.zeros(2 * n - 1, dtype=np.int64)
    for node in range(root - 1, -1, -1):  # parents always have larger ids
        depth[node] = depth[parent[node]] + 1
    return depth[:n]


def limit_code_lengths(lengths: np.ndarray, freqs: np.ndarray, max_length: int) -> np.ndarray:
    """Clamp code lengths to ``max_length`` and repair Kraft's inequality.

    Uses the classic zlib-style adjustment: clamp, then while the Kraft sum
    exceeds 1 lengthen the cheapest (lowest-frequency) symbol that still has
    headroom; finally shorten the most frequent symbols while the sum allows,
    recovering most of the clamping loss.  The result always satisfies
    ``sum(2**-l) <= 1`` and hence admits a canonical prefix code.
    """
    lengths = np.asarray(lengths, dtype=np.int64).copy()
    freqs = np.asarray(freqs, dtype=np.int64)
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")
    if lengths.size > (1 << max_length):
        raise ValueError(
            f"alphabet of {lengths.size} symbols cannot fit in {max_length}-bit codes"
        )
    np.minimum(lengths, max_length, out=lengths)
    # Kraft sum scaled by 2**max_length to stay in integers.
    unit = 1 << max_length
    kraft = int(np.sum(unit >> lengths))
    if kraft > unit:
        # Lengthen low-frequency symbols (cheapest in expected bits) first.
        order = np.argsort(freqs, kind="stable")
        while kraft > unit:
            progressed = False
            for idx in order:
                if lengths[idx] < max_length:
                    kraft -= (unit >> lengths[idx]) - (unit >> (lengths[idx] + 1))
                    lengths[idx] += 1
                    progressed = True
                    if kraft <= unit:
                        break
            if not progressed:  # pragma: no cover - guarded by size check above
                raise AssertionError("cannot satisfy Kraft inequality")
    # Greedy improvement: shorten the most frequent symbols while legal.
    order = np.argsort(-freqs, kind="stable")
    improved = True
    while improved:
        improved = False
        for idx in order:
            if lengths[idx] > 1:
                gain = (unit >> lengths[idx] - 1) - (unit >> lengths[idx])
                if kraft + gain <= unit:
                    lengths[idx] -= 1
                    kraft += gain
                    improved = True
    return lengths


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code values for the given lengths.

    Symbols are ordered by (length, symbol index); codes within a length are
    consecutive, and the first code of each length follows the Deflate
    recurrence ``code[l] = (code[l-1] + count[l-1]) << 1``.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.size == 0:
        return np.zeros(0, dtype=np.uint64)
    if lengths.min() < 1:
        raise ValueError("all code lengths must be >= 1")
    max_len = int(lengths.max())
    counts = np.bincount(lengths, minlength=max_len + 1)
    first = np.zeros(max_len + 2, dtype=np.int64)
    code = 0
    for length in range(1, max_len + 1):
        code = (code + counts[length - 1]) << 1
        first[length] = code
    order = np.lexsort((np.arange(lengths.size), lengths))
    codes = np.zeros(lengths.size, dtype=np.uint64)
    # Rank of each symbol within its length class, in canonical order.
    sorted_lengths = lengths[order]
    boundaries = np.flatnonzero(np.diff(sorted_lengths)) + 1
    rank = np.arange(lengths.size) - np.repeat(
        np.concatenate([[0], boundaries]), np.diff(np.concatenate([[0], boundaries, [lengths.size]]))
    )
    codes[order] = (first[sorted_lengths] + rank).astype(np.uint64)
    return codes


@dataclass(frozen=True)
class HuffmanCodebook:
    """Canonical codebook over a dense alphabet ``[0, n)``."""

    lengths: np.ndarray  # int64, per dense symbol
    codes: np.ndarray  # uint64, per dense symbol

    @property
    def max_length(self) -> int:
        return int(self.lengths.max()) if self.lengths.size else 0

    def expected_bits(self, freqs: np.ndarray) -> float:
        """Average code length in bits under the given frequencies."""
        freqs = np.asarray(freqs, dtype=np.float64)
        return float((freqs * self.lengths).sum() / freqs.sum())

    def peek_table(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat decode table of size ``2**max_length``.

        Entry ``p`` holds the (symbol, length) whose code prefixes the
        ``max_length``-bit window ``p``.
        """
        max_len = self.max_length
        size = 1 << max_len
        table_sym = np.zeros(size, dtype=np.int64)
        table_len = np.zeros(size, dtype=np.int64)
        for sym, (code, length) in enumerate(zip(self.codes, self.lengths)):
            lo = int(code) << (max_len - int(length))
            hi = (int(code) + 1) << (max_len - int(length))
            table_sym[lo:hi] = sym
            table_len[lo:hi] = length
        return table_sym, table_len


def build_codebook(freqs: np.ndarray, max_length: int = DEFAULT_MAX_CODE_LENGTH) -> HuffmanCodebook:
    """Build a canonical, length-limited codebook from symbol frequencies."""
    lengths = huffman_code_lengths(freqs)
    lengths = limit_code_lengths(lengths, freqs, max_length)
    return HuffmanCodebook(lengths=lengths, codes=canonical_codes(lengths))


@dataclass(frozen=True)
class HuffmanEncoded:
    """An entropy-coded symbol stream plus decode metadata."""

    payload: np.ndarray  # uint8 bitstream
    code_lengths: np.ndarray  # per dense symbol, rebuildable codebook
    chunk_bit_offsets: np.ndarray  # uint64, start bit of each chunk
    chunk_symbol_counts: np.ndarray  # int64
    total_symbols: int


def huffman_encode(
    symbols: np.ndarray,
    alphabet_size: int,
    *,
    max_code_length: int = DEFAULT_MAX_CODE_LENGTH,
    chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS,
) -> HuffmanEncoded:
    """Entropy-code a dense symbol stream in independently decodable chunks.

    ``symbols`` must be integers in ``[0, alphabet_size)``.  Symbols that do
    not occur get no code; the shipped length table marks them with 0.
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    if symbols.size and (symbols.min() < 0 or symbols.max() >= alphabet_size):
        raise ValueError(
            f"symbols out of range [0, {alphabet_size}): [{symbols.min()}, {symbols.max()}]"
        )
    if chunk_symbols < 1:
        raise ValueError(f"chunk_symbols must be >= 1, got {chunk_symbols}")
    if symbols.size == 0:
        return HuffmanEncoded(
            payload=np.zeros(0, dtype=np.uint8),
            code_lengths=np.zeros(alphabet_size, dtype=np.int64),
            chunk_bit_offsets=np.zeros(0, dtype=np.uint64),
            chunk_symbol_counts=np.zeros(0, dtype=np.int64),
            total_symbols=0,
        )
    freqs = np.bincount(symbols, minlength=alphabet_size)
    used = np.flatnonzero(freqs)
    if used.size > (1 << max_code_length):
        # Fail fast BEFORE the heap-based tree build: limit_code_lengths
        # would reject this anyway, but only after an O(n log n) Python
        # loop over every distinct symbol.
        raise ValueError(
            f"{used.size} distinct symbols cannot fit in {max_code_length}-bit "
            "codes; shrink the alphabet (e.g. loosen the error bound) or raise "
            "max_code_length"
        )
    if used.size == 1:
        # Degenerate single-symbol stream (e.g. a fully homogenized batch):
        # the code table alone identifies the symbol, no payload bits needed.
        lengths = np.zeros(alphabet_size, dtype=np.int64)
        lengths[used[0]] = 1
        chunk_counts = _chunk_layout(symbols.size, chunk_symbols)
        return HuffmanEncoded(
            payload=np.zeros(0, dtype=np.uint8),
            code_lengths=lengths,
            chunk_bit_offsets=np.zeros(chunk_counts.size, dtype=np.uint64),
            chunk_symbol_counts=chunk_counts,
            total_symbols=symbols.size,
        )
    dense_book = build_codebook(freqs[used], max_code_length)
    # Scatter dense codebook back onto the full alphabet (length 0 = unused).
    lengths = np.zeros(alphabet_size, dtype=np.int64)
    codes = np.zeros(alphabet_size, dtype=np.uint64)
    lengths[used] = dense_book.lengths
    codes[used] = dense_book.codes
    return _encode_with_tables(symbols, lengths, codes, chunk_symbols)


def _chunk_layout(n_symbols: int, chunk_symbols: int) -> np.ndarray:
    """Per-chunk symbol counts: full chunks plus a short tail."""
    n_chunks = (n_symbols + chunk_symbols - 1) // chunk_symbols
    chunk_counts = np.full(n_chunks, chunk_symbols, dtype=np.int64)
    chunk_counts[-1] = n_symbols - chunk_symbols * (n_chunks - 1)
    return chunk_counts


def _encode_with_tables(
    symbols: np.ndarray, lengths: np.ndarray, codes: np.ndarray, chunk_symbols: int
) -> HuffmanEncoded:
    """Pack ``symbols`` with prebuilt full-alphabet length/code tables."""
    sym_codes = codes[symbols]
    sym_lengths = lengths[symbols]
    # Chunk boundaries in symbol space; bit offsets come from the cumsum.
    chunk_counts = _chunk_layout(symbols.size, chunk_symbols)
    bit_ends = np.cumsum(sym_lengths)
    chunk_starts_sym = np.arange(chunk_counts.size, dtype=np.int64) * chunk_symbols
    chunk_bit_offsets = np.where(
        chunk_starts_sym == 0, 0, bit_ends[chunk_starts_sym - 1]
    ).astype(np.uint64)
    packed, _total_bits = pack_codes(sym_codes, sym_lengths)
    return HuffmanEncoded(
        payload=packed,
        code_lengths=lengths,
        chunk_bit_offsets=chunk_bit_offsets,
        chunk_symbol_counts=chunk_counts,
        total_symbols=symbols.size,
    )


def huffman_encode_with_book(
    symbols: np.ndarray,
    lengths: np.ndarray,
    codes: np.ndarray,
    *,
    chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS,
    validate: bool = True,
) -> HuffmanEncoded:
    """Entropy-code with a prebuilt (possibly cached/stale) codebook.

    ``lengths``/``codes`` are full-alphabet canonical tables, e.g. from a
    :class:`repro.compression.cache.TableCodebookCache`.  Every symbol must
    have an assigned code (length > 0); the caller is responsible for
    falling back to :func:`huffman_encode` when coverage fails.  The stream
    ships the supplied length table, so decoding works unchanged.

    Pass ``validate=False`` when coverage was already established (e.g. a
    codebook-cache hit, whose lookup performed the same O(n) check) to
    skip the redundant range/coverage gathers on the hot path.
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    lengths = np.asarray(lengths, dtype=np.int64)
    codes = np.asarray(codes, dtype=np.uint64)
    if lengths.shape != codes.shape:
        raise ValueError(f"lengths/codes shape mismatch: {lengths.shape} vs {codes.shape}")
    if chunk_symbols < 1:
        raise ValueError(f"chunk_symbols must be >= 1, got {chunk_symbols}")
    if symbols.size == 0:
        return HuffmanEncoded(
            payload=np.zeros(0, dtype=np.uint8),
            code_lengths=lengths,
            chunk_bit_offsets=np.zeros(0, dtype=np.uint64),
            chunk_symbol_counts=np.zeros(0, dtype=np.int64),
            total_symbols=0,
        )
    if validate:
        if symbols.min() < 0 or symbols.max() >= lengths.size:
            raise ValueError(
                f"symbols out of range [0, {lengths.size}): [{symbols.min()}, {symbols.max()}]"
            )
        if (lengths[symbols] == 0).any():
            raise ValueError("codebook does not cover every symbol in the stream")
    return _encode_with_tables(symbols, lengths, codes, chunk_symbols)


def _reference_huffman_encode(
    symbols: np.ndarray,
    alphabet_size: int,
    *,
    max_code_length: int = DEFAULT_MAX_CODE_LENGTH,
    chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS,
) -> HuffmanEncoded:
    """The seed's encode path — heap tree build + per-bit-plane packing —
    composed from the frozen ``_reference_*`` kernels (benchmark oracle)."""
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    if symbols.size == 0:
        return huffman_encode(symbols, alphabet_size, max_code_length=max_code_length)
    freqs = np.bincount(symbols, minlength=alphabet_size)
    used = np.flatnonzero(freqs)
    if used.size == 1:
        return huffman_encode(
            symbols, alphabet_size, max_code_length=max_code_length, chunk_symbols=chunk_symbols
        )
    dense_lengths = limit_code_lengths(
        _reference_huffman_code_lengths(freqs[used]), freqs[used], max_code_length
    )
    lengths = np.zeros(alphabet_size, dtype=np.int64)
    codes = np.zeros(alphabet_size, dtype=np.uint64)
    lengths[used] = dense_lengths
    codes[used] = canonical_codes(dense_lengths)
    sym_codes = codes[symbols]
    sym_lengths = lengths[symbols]
    chunk_counts = _chunk_layout(symbols.size, chunk_symbols)
    bit_ends = np.cumsum(sym_lengths)
    chunk_starts_sym = np.arange(chunk_counts.size, dtype=np.int64) * chunk_symbols
    chunk_bit_offsets = np.where(
        chunk_starts_sym == 0, 0, bit_ends[chunk_starts_sym - 1]
    ).astype(np.uint64)
    packed, _total_bits = _reference_pack_codes(sym_codes, sym_lengths)
    return HuffmanEncoded(
        payload=packed,
        code_lengths=lengths,
        chunk_bit_offsets=chunk_bit_offsets,
        chunk_symbol_counts=chunk_counts,
        total_symbols=symbols.size,
    )


def _sliding_windows(padded: np.ndarray, start_bit: int, count: int, width: int) -> np.ndarray:
    """``width``-bit big-endian windows at every bit offset in
    ``[start_bit, start_bit + count)``.  ``padded`` must carry >= 8 slack
    bytes past the last window.

    Combines each run of ``ceil((width + 7) / 8)`` bytes into one machine
    word per *byte* position, then broadcasts the 8 in-byte shifts — all
    elementwise, no per-bit gathers.  Returns ``uint32`` when the window
    fits (width <= 25), else ``uint64``.
    """
    if count <= 0:
        return np.zeros(0, dtype=np.uint64)
    first_byte = start_bit >> 3
    last_byte = (start_bit + count - 1) >> 3
    words, dtype, n_bytes = word_table(padded[first_byte : last_byte + 8], width)
    words = words[: last_byte - first_byte + 1]
    shifts = dtype(n_bytes * 8 - width) - np.arange(8, dtype=dtype)
    mask = dtype((1 << width) - 1)
    windows = ((words[:, None] >> shifts[None, :]) & mask).ravel()
    offset = start_bit & 7
    return windows[offset : offset + count]


def _peek_tables_for(code_lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """``(table_sym, table_len, max_len)`` for a length table, LRU-cached.

    ``table_sym`` is mapped back onto the full alphabet.  The same codebook
    recurs across chunks, iterations, and tables, so the flat
    ``2**max_length`` table is built once per distinct length table.
    """
    key = code_lengths.tobytes()
    cached = _PEEK_TABLE_CACHE.get(key)
    if cached is not None:
        return cached
    used = np.flatnonzero(code_lengths)
    dense_book = HuffmanCodebook(
        lengths=code_lengths[used], codes=canonical_codes(code_lengths[used])
    )
    max_len = dense_book.max_length
    table_sym, table_len = dense_book.peek_table()
    table_sym = used[table_sym]
    # uint8 lengths (max 57 bits) keep the per-bit-offset gather small.
    value = (table_sym, table_len.astype(np.uint8), max_len)
    _PEEK_TABLE_CACHE.put(key, value)
    return value


def huffman_decode(encoded: HuffmanEncoded) -> np.ndarray:
    """Decode a :class:`HuffmanEncoded` stream back to dense symbols.

    Fully vectorized gap-array decode (the Python analogue of the paper's
    chunk-parallel GPU decompression): speculative peek-table lookups at
    *every* bit offset of the payload yield a successor array
    ``next[p] = p + code_length_at(p)``, and the per-chunk jump chains —
    the only sequential dependence in Huffman decoding — are resolved for
    **all chunks simultaneously** by sequence doubling: the decoded position
    sequence doubles in length each pass while the successor array composes
    with itself, so ``chunk_symbols`` symbols need only
    ``ceil(log2(chunk_symbols))`` batched passes.  Output lands in one
    preallocated array; no Python lists, no per-symbol work.
    """
    if encoded.total_symbols == 0:
        return np.zeros(0, dtype=np.int64)
    lengths = encoded.code_lengths
    used = np.flatnonzero(lengths)
    if used.size == 0:
        raise ValueError("corrupt stream: no symbols have codes")
    if used.size == 1:
        # Mirror of the encoder's single-symbol fast path.
        return np.full(encoded.total_symbols, int(used[0]), dtype=np.int64)
    table_sym, table_len, max_len = _peek_tables_for(lengths)
    total_bits = encoded.payload.size * 8
    padded = padded_stream(encoded.payload, 8)
    windows = _sliding_windows(padded, 0, total_bits, max_len)
    steps = np.take(table_len, windows)  # uint8: code length at every bit offset
    # Successor array with a self-looping sentinel slot at total_bits; a
    # zero step (Kraft gap) also self-loops and is caught as corruption.
    pos_dtype = np.int32 if total_bits < 2**31 - 8 else np.int64
    successor = np.arange(total_bits + 1, dtype=pos_dtype)
    successor[:total_bits] += steps
    np.minimum(successor, pos_dtype(total_bits), out=successor)
    counts = encoded.chunk_symbol_counts.astype(np.int64)
    starts = encoded.chunk_bit_offsets.astype(np.int64)
    if starts.size == 0:
        raise ValueError("corrupt Huffman stream: symbols recorded but no chunks")
    if starts.min() < 0 or starts.max() > total_bits:
        raise ValueError("corrupt Huffman stream: chunk offset outside payload")
    n_chunks = starts.size
    max_count = int(counts.max())
    # Resolve every chunk's jump chain simultaneously.  Composing the full
    # successor array log2(max_count) times would dominate (the bit domain
    # is ~10x the symbol count), so instead: compose it only `s` times into
    # a stride-2**s hop, walk the strided skeleton (max_count / 2**s tiny
    # cross-chunk steps), then expand each stride segment with 2**s - 1
    # single-step passes over all segments of all chunks at once.  `s`
    # balances composition cost (~per-element gather over the bit domain)
    # against Python-loop iteration overhead in the skeleton walk.
    _COMPOSE_COST = 1.3e-9  # seconds per successor element per composition
    _ITERATION_COST = 1.0e-6  # seconds per Python-loop pass (walk or expand)
    s = min(
        range(min(13, max_count.bit_length() + 1)),
        key=lambda k: k * total_bits * _COMPOSE_COST
        + (((max_count + (1 << k) - 1) >> k) + (1 << k)) * _ITERATION_COST,
    )
    stride = 1 << s
    hop = successor
    for _ in range(s):
        hop = np.take(hop, hop)
    n_segments = (max_count + stride - 1) // stride
    # Segment-major layout keeps every per-pass write contiguous; the final
    # transpose+reshape restores (chunk, symbol-index) order in one copy.
    expanded = np.empty((stride, n_segments, n_chunks), dtype=pos_dtype)
    skeleton = expanded[0]
    cursor = starts.astype(pos_dtype)
    for segment in range(n_segments):
        skeleton[segment] = cursor
        if segment + 1 < n_segments:
            cursor = np.take(hop, cursor)
    cursor = skeleton
    for t in range(1, stride):
        cursor = np.take(successor, cursor)
        expanded[t] = cursor
    flat = expanded.transpose(2, 1, 0).reshape(n_chunks, n_segments * stride)
    if int(counts.min()) == max_count or (counts[:-1] == max_count).all():
        # Standard layout (all chunks full except possibly the last): the
        # row-major flatten IS the symbol order; skip the validity mask.
        seq = flat[:, :max_count].ravel()[: encoded.total_symbols]
    else:
        valid = np.arange(max_count)[None, :] < counts[:, None]
        seq = flat[:, :max_count][valid]
    seq_clamped = np.minimum(seq, pos_dtype(total_bits - 1))
    peek_steps = np.take(steps, seq_clamped)
    if (peek_steps == 0).any() or (seq == total_bits).any():
        raise ValueError("corrupt Huffman stream: peek hit an unassigned code")
    return np.take(table_sym, np.take(windows, seq_clamped))


def _reference_sliding_windows(
    padded: np.ndarray, start_bit: int, count: int, width: int
) -> np.ndarray:
    """The seed's original per-bit 8-byte-gather window computation, frozen
    verbatim as part of the differential/benchmark oracle."""
    positions = start_bit + np.arange(count, dtype=np.int64)
    byte_start = positions >> 3
    gathered = np.zeros(count, dtype=np.uint64)
    for k in range(8):
        gathered = (gathered << np.uint64(8)) | padded[byte_start + k].astype(np.uint64)
    shift = np.uint64(64) - (positions & 7).astype(np.uint64) - np.uint64(width)
    return (gathered >> shift) & np.uint64((1 << width) - 1)


def _reference_huffman_decode(encoded: HuffmanEncoded) -> np.ndarray:
    """Original per-symbol jump-chain walk, kept as the differential oracle."""
    if encoded.total_symbols == 0:
        return np.zeros(0, dtype=np.int64)
    lengths = encoded.code_lengths
    used = np.flatnonzero(lengths)
    if used.size == 0:
        raise ValueError("corrupt stream: no symbols have codes")
    if used.size == 1:
        return np.full(encoded.total_symbols, int(used[0]), dtype=np.int64)
    dense_book = HuffmanCodebook(
        lengths=lengths[used], codes=canonical_codes(lengths[used])
    )
    max_len = dense_book.max_length
    table_sym_np, table_len_np = dense_book.peek_table()
    table_sym_np = used[table_sym_np]
    padded = np.concatenate([encoded.payload, np.zeros(8, dtype=np.uint8)])
    n_chunks = encoded.chunk_bit_offsets.size
    total_bits = encoded.payload.size * 8
    out: list[int] = []
    for chunk_idx in range(n_chunks):
        start = int(encoded.chunk_bit_offsets[chunk_idx])
        count = int(encoded.chunk_symbol_counts[chunk_idx])
        end = (
            int(encoded.chunk_bit_offsets[chunk_idx + 1])
            if chunk_idx + 1 < n_chunks
            else total_bits
        )
        span = max(end - start, 1)
        windows = _reference_sliding_windows(padded, start, span, max_len)
        syms = table_sym_np[windows].tolist()
        steps = table_len_np[windows].tolist()
        pos = 0
        append = out.append
        for _ in range(count):
            append(syms[pos])
            step = steps[pos]
            if step == 0:  # only reachable on corrupt payloads (Kraft < 1 gap)
                raise ValueError("corrupt Huffman stream: peek hit an unassigned code")
            pos += step
    return np.asarray(out, dtype=np.int64)
