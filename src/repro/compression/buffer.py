"""Buffer-optimization cost model (Section III-E, Fig. 15).

In all-to-all, each rank compresses one chunk per peer.  The naive scheme
launches one kernel per chunk and memcpys each compressed chunk into the
send buffer; the paper's optimization runs a *single* fused kernel that
claims write offsets with an atomic add and writes compressed output
directly into the send buffer.  Decompression is symmetric: the received
chunks can be decompressed by concurrent kernels instead of serially.

This module prices both schemes with the :class:`~repro.dist.gpu.GpuModel`
(kernel-launch overhead + utilization-scaled throughput), reproducing the
paper's findings: the fused kernel wins more as chunk count grows, and wins
more at small block sizes (8 MB) than large ones (64 MB).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist.gpu import A100_LIKE, GpuModel
from repro.utils.validation import check_positive

__all__ = ["BufferCostModel", "BufferComparison"]

#: cost of the offset-claiming atomic add + flag synchronization, per chunk
#: (one atomicAdd on a global counter plus a release flag write)
_ATOMIC_SYNC_OVERHEAD = 0.1e-6


@dataclass(frozen=True)
class BufferComparison:
    """Timing of the chunked vs. fused execution of one exchange."""

    chunked_seconds: float
    fused_seconds: float

    @property
    def speedup(self) -> float:
        return self.chunked_seconds / self.fused_seconds


@dataclass(frozen=True)
class BufferCostModel:
    """Prices chunked vs. single-kernel compression/decompression."""

    gpu: GpuModel = A100_LIKE
    compress_throughput: float = 40.5e9  # bytes/s at full utilization
    decompress_throughput: float = 205.4e9
    ratio: float = 10.0  # compression ratio (sets memcpy volume)

    def __post_init__(self) -> None:
        check_positive("compress_throughput", self.compress_throughput)
        check_positive("decompress_throughput", self.decompress_throughput)
        check_positive("ratio", self.ratio)

    def _validate_chunks(self, chunk_bytes: list[float] | tuple[float, ...]) -> list[float]:
        chunks = [float(c) for c in chunk_bytes]
        if not chunks:
            raise ValueError("need at least one chunk")
        if any(c < 0 for c in chunks):
            raise ValueError("chunk sizes must be >= 0")
        return chunks

    # ------------------------------------------------------------- compress

    def chunked_compression_seconds(self, chunk_bytes: list[float]) -> float:
        """One kernel per chunk + memcpy of each compressed chunk into the
        send buffer (the naive pointer-returning compressor)."""
        chunks = self._validate_chunks(chunk_bytes)
        total = 0.0
        for c in chunks:
            total += self.gpu.throughput_kernel_time(c, self.compress_throughput)
            total += self.gpu.memcpy_time(c / self.ratio)
        return total

    def fused_compression_seconds(self, chunk_bytes: list[float]) -> float:
        """Single fused kernel writing directly to the send buffer."""
        chunks = self._validate_chunks(chunk_bytes)
        whole = sum(chunks)
        kernel = self.gpu.throughput_kernel_time(whole, self.compress_throughput)
        return kernel + _ATOMIC_SYNC_OVERHEAD * len(chunks)

    def compare_compression(self, chunk_bytes: list[float]) -> BufferComparison:
        return BufferComparison(
            chunked_seconds=self.chunked_compression_seconds(chunk_bytes),
            fused_seconds=self.fused_compression_seconds(chunk_bytes),
        )

    # ----------------------------------------------------------- decompress

    def serial_decompression_seconds(self, chunk_bytes: list[float]) -> float:
        """Chunks decompressed one kernel after another."""
        chunks = self._validate_chunks(chunk_bytes)
        return sum(
            self.gpu.throughput_kernel_time(c, self.decompress_throughput) for c in chunks
        )

    def parallel_decompression_seconds(self, chunk_bytes: list[float]) -> float:
        """Chunks decompressed by concurrent kernels sharing the device.

        The wave completes when the shared-throughput processing of all
        bytes finishes, but no faster than the largest chunk alone at full
        rate; a single launch round is charged.
        """
        chunks = self._validate_chunks(chunk_bytes)
        whole = sum(chunks)
        shared = whole / (self.decompress_throughput * self.gpu.utilization(whole)) if whole else 0.0
        largest = max(chunks)
        alone = largest / self.decompress_throughput if largest else 0.0
        return self.gpu.kernel_launch_overhead + max(shared, alone)

    def compare_decompression(self, chunk_bytes: list[float]) -> BufferComparison:
        return BufferComparison(
            chunked_seconds=self.serial_decompression_seconds(chunk_bytes),
            fused_seconds=self.parallel_decompression_seconds(chunk_bytes),
        )
