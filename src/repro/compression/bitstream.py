"""Vectorized bit-level packing for entropy and fixed-width codes.

GPU entropy coders write variable-length codes with warp-parallel bit
scatter; the NumPy analogue here packs all symbols in ``O(max_code_length)``
vectorized passes instead of a per-symbol Python loop: pass ``b`` writes bit
``b`` of every code whose length exceeds ``b`` using ``np.bitwise_or.at``.

All bit order is MSB-first within a byte, matching conventional canonical
Huffman streams.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = [
    "pack_codes",
    "unpack_fixed",
    "bits_to_bytes",
    "pack_fixed",
    "word_table",
    "padded_stream",
]

_SCRATCH = threading.local()


def padded_stream(data: np.ndarray, pad: int = 8) -> np.ndarray:
    """``data`` followed by ``pad`` zero bytes, in reusable thread-local scratch.

    The vectorized readers gather whole words past the last code bit, so
    they need slack bytes after the stream.  The seed allocated a fresh
    ``np.concatenate([data, zeros(pad)])`` per decode; this reuses one
    per-thread buffer instead.  Safe because every reader computes fresh
    output arrays from the scratch (nothing returned aliases it) and the
    scratch is thread-local, so pool workers never share it.
    """
    data = np.asarray(data, dtype=np.uint8).ravel()
    need = data.size + pad
    buf = getattr(_SCRATCH, "buf", None)
    if buf is None or buf.size < need:
        buf = np.zeros(max(need, 4096), dtype=np.uint8)
        _SCRATCH.buf = buf
    out = buf[:need]
    out[: data.size] = data
    out[data.size :] = 0
    return out


def _reference_unpack_fixed(
    packed: np.ndarray, count: int, width: int, bit_offset: int = 0
) -> np.ndarray:
    """The seed's original 8-byte-gather fixed-width reader, frozen verbatim
    as part of the differential/benchmark oracle."""
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    if width < 0 or width > 57:
        raise ValueError(f"width must be in [0, 57], got {width}")
    packed = np.asarray(packed, dtype=np.uint8)
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    starts = bit_offset + np.arange(count, dtype=np.int64) * width
    last_bit = int(starts[-1]) + width
    if last_bit > packed.size * 8:
        raise ValueError(f"stream too short: need {last_bit} bits, have {packed.size * 8}")
    byte_start = (starts >> 3).astype(np.int64)
    padded = np.concatenate([packed, np.zeros(8, dtype=np.uint8)])
    gathered = np.zeros(count, dtype=np.uint64)
    for k in range(8):
        gathered = (gathered << np.uint64(8)) | padded[byte_start + k].astype(np.uint64)
    offset_in_byte = (starts & 7).astype(np.uint64)
    shift = np.uint64(64) - offset_in_byte - np.uint64(width)
    mask = np.uint64((1 << width) - 1)
    return (gathered >> shift) & mask


def bits_to_bytes(nbits: int) -> int:
    """Number of bytes needed to hold ``nbits`` bits."""
    return (int(nbits) + 7) // 8


def word_table(data: np.ndarray, width: int) -> tuple[np.ndarray, type, int]:
    """Big-endian byte-combined words for ``width``-bit windows.

    Returns ``(words, dtype, n_bytes)`` where ``n_bytes`` is the number of
    bytes covering a ``width``-bit window starting at any in-byte offset,
    and ``words[b]`` combines ``data[b : b + n_bytes]`` big-endian, for
    every byte position with that many bytes available.  One shift of
    ``words[b]`` then extracts any window starting inside byte ``b`` — the
    shared building block of the vectorized fixed-width reader and the
    Huffman sliding-window peek.
    """
    n_bytes = (width + 14) // 8
    dtype = np.uint32 if n_bytes <= 4 else np.uint64
    n_words = data.size - n_bytes + 1
    words = np.zeros(n_words, dtype=dtype)
    for k in range(n_bytes):
        words = (words << dtype(8)) | data[k : k + n_words]
    return words, dtype, n_bytes


def _reference_pack_codes(codes: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, int]:
    """The seed's original per-bit-plane packer (one ``bitwise_or.at`` pass
    per code bit), frozen verbatim as the differential/benchmark oracle."""
    codes = np.asarray(codes, dtype=np.uint64).ravel()
    lengths = np.asarray(lengths, dtype=np.int64).ravel()
    if codes.shape != lengths.shape:
        raise ValueError(f"codes/lengths shape mismatch: {codes.shape} vs {lengths.shape}")
    if codes.size == 0:
        return np.zeros(0, dtype=np.uint8), 0
    if lengths.min() < 1 or lengths.max() > 57:
        raise ValueError(f"code lengths must be in [1, 57], got range [{lengths.min()}, {lengths.max()}]")
    ends = np.cumsum(lengths)
    starts = ends - lengths
    total_bits = int(ends[-1])
    packed = np.zeros(bits_to_bytes(total_bits), dtype=np.uint8)
    max_len = int(lengths.max())
    for b in range(max_len):
        live = lengths > b
        if not live.any():
            break
        pos = starts[live] + b
        shift = (lengths[live] - 1 - b).astype(np.uint64)
        bit = (codes[live] >> shift) & np.uint64(1)
        on = bit.astype(bool)
        if on.any():
            byte_idx = (pos[on] >> 3).astype(np.int64)
            bit_in_byte = (7 - (pos[on] & 7)).astype(np.uint8)
            np.bitwise_or.at(packed, byte_idx, np.left_shift(np.uint8(1), bit_in_byte))
    return packed, total_bits


def pack_codes(codes: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, int]:
    """Concatenate variable-length codes into a packed byte array.

    Word-level packing: each code is left-justified into the 64-bit
    big-endian window that starts at its first byte (a <=57-bit code at
    any in-byte offset spans at most 8 bytes), the window is split into
    its 8 byte planes, and all nonzero byte contributions land in one
    ``bincount`` accumulation.  Because consecutive codes occupy disjoint
    bit ranges, byte contributions to a shared boundary byte have disjoint
    set bits — so their *sum* equals their bitwise OR, and ``bincount``
    (a buffered, C-speed scatter-add) replaces the unbuffered
    ``bitwise_or.at`` of the per-bit-plane reference.

    Parameters
    ----------
    codes:
        Unsigned integer code values; bit ``length-1`` down to bit ``0`` of
        each value are emitted MSB-first.
    lengths:
        Bit length of each code (same shape as ``codes``); each must be in
        ``[1, 57]``.

    Returns
    -------
    (packed, total_bits):
        ``packed`` is a ``uint8`` array; trailing pad bits are zero.
    """
    codes = np.asarray(codes, dtype=np.uint64).ravel()
    lengths = np.asarray(lengths, dtype=np.int64).ravel()
    if codes.shape != lengths.shape:
        raise ValueError(f"codes/lengths shape mismatch: {codes.shape} vs {lengths.shape}")
    if codes.size == 0:
        return np.zeros(0, dtype=np.uint8), 0
    if lengths.min() < 1 or lengths.max() > 57:
        raise ValueError(f"code lengths must be in [1, 57], got range [{lengths.min()}, {lengths.max()}]")
    ends = np.cumsum(lengths)
    starts = ends - lengths
    total_bits = int(ends[-1])
    nbytes = bits_to_bytes(total_bits)
    first_byte = starts >> 3
    # Only bits [length-1, 0] of each value are emitted: mask stray higher
    # bits (the per-bit-plane reference never read them) so they cannot
    # shift into a neighbouring code's bit range and break the
    # disjoint-bits assumption behind the bincount accumulation.
    codes = codes & ((np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1))
    # Left-justify each code inside its 8-byte window: the code's MSB
    # lands at in-window bit (starts & 7).
    shift = (np.uint64(64) - lengths.astype(np.uint64) - (starts & 7).astype(np.uint64))
    windows = codes << shift
    index_parts: list[np.ndarray] = []
    value_parts: list[np.ndarray] = []
    # A length-L code starting at any in-byte offset spans at most
    # ceil((7 + L) / 8) bytes — byte planes beyond that are all zero.
    n_planes = (7 + int(lengths.max()) + 7) // 8
    for k in range(n_planes):
        plane = (windows >> np.uint64(8 * (7 - k))) & np.uint64(0xFF)
        on = plane != 0
        if on.any():
            index_parts.append(first_byte[on] + k)
            value_parts.append(plane[on])
    packed = np.zeros(nbytes, dtype=np.uint8)
    if index_parts:
        accumulated = np.bincount(
            np.concatenate(index_parts),
            weights=np.concatenate(value_parts).astype(np.float64),
            minlength=nbytes,
        )
        packed += accumulated.astype(np.uint8)
    return packed, total_bits


def pack_fixed(values: np.ndarray, width: int) -> tuple[np.ndarray, int]:
    """Pack unsigned integers at a fixed bit width (MSB-first)."""
    values = np.asarray(values, dtype=np.uint64).ravel()
    if width < 0 or width > 57:
        raise ValueError(f"width must be in [0, 57], got {width}")
    if width == 0:
        if values.size and values.max() > 0:
            raise ValueError("width 0 requires all-zero values")
        return np.zeros(0, dtype=np.uint8), 0
    if values.size and int(values.max()) >> width:
        raise ValueError(f"value {values.max()} does not fit in {width} bits")
    lengths = np.full(values.shape, width, dtype=np.int64)
    return pack_codes(values, lengths)


def unpack_fixed(packed: np.ndarray, count: int, width: int, bit_offset: int = 0) -> np.ndarray:
    """Read ``count`` fixed-width unsigned integers starting at ``bit_offset``.

    Vectorized: gathers up to 9 bytes around each value and shifts.  Inverse
    of :func:`pack_fixed` for the same ``width``.
    """
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    if width < 0 or width > 57:
        raise ValueError(f"width must be in [0, 57], got {width}")
    packed = np.asarray(packed, dtype=np.uint8)
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    last_bit = bit_offset + count * width
    if last_bit > packed.size * 8:
        raise ValueError(f"stream too short: need {last_bit} bits, have {packed.size * 8}")
    if width == 8 and bit_offset % 8 == 0:
        # Byte-aligned bytes: the packed stream IS the values.
        first = bit_offset // 8
        return packed[first : first + count].astype(np.uint64)
    starts = bit_offset + np.arange(count, dtype=np.int64) * width
    # Combine each run of bytes into one word per byte position, then a
    # single gather + shift extracts every value (a width<=57 value
    # starting mid-byte spans at most 8 bytes).
    padded = padded_stream(packed, 8)
    words, dtype, n_bytes = word_table(padded, width)
    byte_start = starts >> 3
    shift = (dtype(n_bytes * 8 - width) - (starts & 7).astype(dtype)).astype(dtype)
    mask = dtype((1 << width) - 1)
    return ((np.take(words, byte_start) >> shift) & mask).astype(np.uint64)
