"""Common compressor interface and payload framing.

All compressors in this library — the paper's hybrid compressor and every
baseline — share one contract:

* :meth:`Compressor.compress` takes a 2-D float32 batch of embedding vectors
  ``(batch, dim)`` plus an absolute error bound, and returns a single
  *self-describing* ``bytes`` payload (header + body).  Compression ratios
  are therefore honest: they account for all metadata a receiver needs.
* :meth:`Compressor.decompress` inverts it exactly (lossless codecs) or
  within the error bound (lossy codecs).

Lossless codecs ignore the error bound argument; fixed-rate codecs (FP16,
FP8) ignore it too but remain lossy.  The payload begins with a magic byte,
a codec-name string and the original dtype/shape, followed by codec-specific
metadata and the body.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.compression.serialization import pack_meta, unpack_meta

__all__ = [
    "Compressor",
    "CompressionResult",
    "frame_payload",
    "frame_parts",
    "parse_payload",
    "MAGIC",
]

MAGIC = 0xDC  # "DLRM Compression" frame marker

#: body types a codec may return: a single buffer or a list of buffer parts
#: (each part is anything exposing the buffer protocol — bytes, memoryview,
#: a contiguous ndarray).  Multi-part bodies let codecs hand their sections
#: to the framer without first concatenating them into an intermediate
#: ``bytes``; the framer performs the single final copy.
Body = "bytes | bytearray | memoryview | np.ndarray | list"


def _as_buffer(part) -> memoryview | bytes:
    """Normalise one body part to a joinable flat byte buffer (no copy)."""
    if isinstance(part, np.ndarray):
        part = np.ascontiguousarray(part)
        if part.nbytes == 0:  # empty views cannot be cast
            return b""
        return memoryview(part).cast("B")
    if isinstance(part, memoryview):
        if part.nbytes == 0:
            return b""
        return part if part.ndim == 1 and part.format == "B" else part.cast("B")
    return part


def frame_parts(
    codec: str,
    array_shape: tuple[int, ...],
    array_dtype: np.dtype,
    meta: dict[str, Any],
    body,
) -> list:
    """Header + body as a list of buffer parts (no concatenation yet)."""
    header = {
        "codec": codec,
        "dtype": np.dtype(array_dtype).str,
        "shape": np.asarray(array_shape, dtype=np.int64),
        **meta,
    }
    packed = bytearray([MAGIC])
    packed += pack_meta(header)
    parts: list = [bytes(packed)]
    if isinstance(body, (list, tuple)):
        parts.extend(_as_buffer(p) for p in body)
    else:
        parts.append(_as_buffer(body))
    return parts


def frame_payload(
    codec: str,
    array_shape: tuple[int, ...],
    array_dtype: np.dtype,
    meta: dict[str, Any],
    body,
) -> bytes:
    """Assemble the standard self-describing payload.

    ``body`` may be a single buffer or a sequence of buffer parts; either
    way the payload is assembled with one copy (``bytes.join`` over views),
    byte-identical to the historical ``header + body`` concatenation.
    """
    return b"".join(frame_parts(codec, array_shape, array_dtype, meta, body))


def parse_payload(payload: bytes | memoryview) -> tuple[dict[str, Any], memoryview]:
    """Split a framed payload into ``(header, body_view)``."""
    view = memoryview(payload)
    if len(view) == 0 or view[0] != MAGIC:
        raise ValueError("not a repro compression payload (bad magic byte)")
    header, pos = unpack_meta(view, 1)
    return header, view[pos:]


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of one compression call, with ratio accounting.

    ``ratio`` is original bytes over compressed bytes (>1 means smaller).
    """

    payload: bytes
    original_nbytes: int

    @property
    def compressed_nbytes(self) -> int:
        return len(self.payload)

    @property
    def ratio(self) -> float:
        return self.original_nbytes / max(1, len(self.payload))


class Compressor(ABC):
    """Abstract base for batch-of-embedding-vector compressors.

    Subclasses set :attr:`name` (registry key) and :attr:`lossy`, and
    implement ``_compress_body`` / ``_decompress_body`` over the framed
    metadata.  The public entry points validate inputs and handle framing.
    """

    #: registry key, e.g. ``"hybrid"`` or ``"fp16"``
    name: str = "abstract"
    #: whether reconstruction may differ from the input
    lossy: bool = True
    #: whether the codec honours the ``error_bound`` argument
    error_bounded: bool = False

    def _validate(self, array: np.ndarray, error_bound: float | None) -> np.ndarray:
        array = np.ascontiguousarray(array)
        if array.ndim != 2:
            raise ValueError(f"{self.name}: expected 2-D (batch, dim) array, got shape {array.shape}")
        if array.dtype not in (np.float32, np.float64):
            raise TypeError(f"{self.name}: expected float32/float64 input, got {array.dtype}")
        if self.error_bounded:
            if error_bound is None or not error_bound > 0:
                raise ValueError(f"{self.name}: requires a positive error_bound, got {error_bound!r}")
        return array

    def compress(self, array: np.ndarray, error_bound: float | None = None) -> bytes:
        """Compress a 2-D float batch into a self-describing payload."""
        array = self._validate(array, error_bound)
        meta, body = self._compress_body(array, error_bound)
        return frame_payload(self.name, array.shape, array.dtype, meta, body)

    def compress_into(self, array: np.ndarray, error_bound: float | None = None, *, pool):
        """Compress into a pooled buffer; returns a live ``Lease``.

        Byte-identical to :meth:`compress` (``bytes(lease.view)`` equals the
        plain payload) but the framed payload lands directly in a
        :class:`~repro.compression.parallel.BitstreamPool` arena — after the
        pool warms up, steady-state compression allocates no payload
        ``bytes`` at all.  The caller owns the lease and must release it
        when the payload is no longer needed.
        """
        array = self._validate(array, error_bound)
        meta, body = self._compress_body(array, error_bound)
        parts = frame_parts(self.name, array.shape, array.dtype, meta, body)
        total = sum(memoryview(p).nbytes for p in parts)
        lease = pool.checkout(total)
        pos = 0
        for part in parts:
            view = memoryview(part)
            if view.ndim != 1 or view.format != "B":
                view = view.cast("B")
            lease.view[pos : pos + view.nbytes] = view
            pos += view.nbytes
        return lease

    def decompress(self, payload: bytes | memoryview) -> np.ndarray:
        """Reconstruct the batch from a payload produced by :meth:`compress`."""
        header, body = parse_payload(payload)
        if header["codec"] != self.name:
            raise ValueError(
                f"payload was produced by codec {header['codec']!r}, not {self.name!r};"
                " use repro.compression.registry.decompress_any"
            )
        shape = tuple(int(s) for s in header["shape"])
        dtype = np.dtype(header["dtype"])
        array = self._decompress_body(header, body, shape, dtype)
        if array.shape != shape:
            raise AssertionError(f"{self.name}: decoded shape {array.shape} != {shape}")
        return array

    def compress_keyed(
        self, table_key: Any, array: np.ndarray, error_bound: float | None = None
    ) -> bytes:
        """Compress with a stable per-stream identity (e.g. a table id).

        The key lets stateful codecs reuse work across iterations of the
        same table (cached codebooks, pinned encoder choices).  The base
        implementation ignores the key; payloads remain self-describing
        either way, so :meth:`decompress` is unaffected.
        """
        return self.compress(array, error_bound)

    def compress_keyed_into(
        self, table_key: Any, array: np.ndarray, error_bound: float | None = None, *, pool
    ):
        """Keyed variant of :meth:`compress_into` (same lease contract)."""
        return self.compress_into(array, error_bound, pool=pool)

    def compress_with_stats(self, array: np.ndarray, error_bound: float | None = None) -> CompressionResult:
        """Compress and return payload together with ratio accounting."""
        array = np.ascontiguousarray(array)
        payload = self.compress(array, error_bound)
        return CompressionResult(payload=payload, original_nbytes=array.nbytes)

    @abstractmethod
    def _compress_body(
        self, array: np.ndarray, error_bound: float | None
    ) -> tuple[dict[str, Any], Any]:
        """Return ``(codec_meta, body)`` for a validated input.

        ``body`` is a single buffer (bytes/memoryview/contiguous ndarray)
        or a list of such parts; the framer joins parts with one copy.
        """

    @abstractmethod
    def _decompress_body(
        self,
        header: dict[str, Any],
        body: memoryview,
        shape: tuple[int, ...],
        dtype: np.dtype,
    ) -> np.ndarray:
        """Reconstruct the array from header + body."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} lossy={self.lossy}>"
