"""Hot-loop caches for the compression pipeline.

DLRM training calls the compressors once per (table, destination) slice on
every iteration, and consecutive batches from the same table have nearly
identical value distributions.  Three caches exploit that:

* :class:`LruCache` — a small bounded mapping used for decode-side peek
  tables (rebuilding a ``2**max_length`` flat table per payload is pure
  waste when the codebook repeats across chunks and iterations).
* :class:`TableCodebookCache` — encode-side canonical codebooks reused
  across iterations per table, with a staleness/refresh policy: a cached
  codebook is reused while it still covers every symbol in the new batch
  and is younger than ``refresh_every`` uses, then rebuilt from fresh
  frequencies.  Reuse trades a few payload bits (the codebook is tuned to a
  slightly older distribution) for skipping the heap-based tree build;
  payloads stay self-describing, so decoding is unaffected.
* :class:`EncoderPinCache` — the hybrid compressor's ``auto`` mode tries
  both lossless legs and keeps the smaller payload.  Per-table winners are
  extremely stable (Table V), so the pin cache records the winner and
  replays it for ``refresh_every`` batches before paying the try-both cost
  again.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable

import numpy as np

__all__ = [
    "LruCache",
    "CachedCodebook",
    "TableCodebookCache",
    "EncoderPin",
    "EncoderPinCache",
]


class LruCache:
    """Bounded mapping with least-recently-used eviction."""

    def __init__(self, max_entries: int):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


@dataclass
class CachedCodebook:
    """A full-alphabet canonical codebook plus its reuse age.

    ``code_min`` records the offset shift of the batch the book was built
    from: dense symbol ``s`` means raw quantized bin ``s + code_min``.  A
    batch with a different shift indexes the same table with misaligned
    meanings, so reuse requires the shifts to match.
    """

    lengths: np.ndarray  # int64 per symbol, 0 = no code
    codes: np.ndarray  # uint64 per symbol
    code_min: int = 0
    age: int = 0

    def covers(self, symbols: np.ndarray) -> bool:
        """True when every symbol in ``symbols`` has an assigned code."""
        if symbols.size == 0:
            return True
        if int(symbols.max()) >= self.lengths.size:
            return False
        return bool((self.lengths[symbols] > 0).all())


class TableCodebookCache:
    """Per-table Huffman codebooks reused across iterations.

    ``lookup`` returns a cached codebook only when it is *safe* (covers
    every symbol of the new batch — guaranteeing an exact roundtrip) and
    *fresh enough* (reused fewer than ``refresh_every`` times since built).
    """

    def __init__(self, refresh_every: int = 8, max_tables: int = 256):
        if refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
        self.refresh_every = int(refresh_every)
        self._books = LruCache(max_tables)
        self.hits = 0
        self.misses = 0
        self.stale_refreshes = 0
        self.coverage_misses = 0
        self.shift_misses = 0

    def lookup(
        self, key: Hashable, symbols: np.ndarray, code_min: int = 0
    ) -> CachedCodebook | None:
        entry: CachedCodebook | None = self._books.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.age >= self.refresh_every:
            self.stale_refreshes += 1
            return None
        if entry.code_min != code_min:
            # Same dense indices, different bin meanings: applying the
            # cached book would be misaligned (bigger payloads, still an
            # exact roundtrip).  Rebuild instead.
            self.shift_misses += 1
            return None
        if not entry.covers(symbols):
            self.coverage_misses += 1
            return None
        entry.age += 1
        self.hits += 1
        return entry

    def store(
        self, key: Hashable, lengths: np.ndarray, codes: np.ndarray, code_min: int = 0
    ) -> CachedCodebook:
        entry = CachedCodebook(
            lengths=np.asarray(lengths, dtype=np.int64).copy(),
            codes=np.asarray(codes, dtype=np.uint64).copy(),
            code_min=int(code_min),
        )
        self._books.put(key, entry)
        return entry

    def clear(self) -> None:
        self._books.clear()


@dataclass
class EncoderPin:
    """The winning lossless leg for one table, plus its replay age."""

    winner: str
    age: int = 0


@dataclass
class EncoderPinCache:
    """Per-table pinned-encoder decisions with a refresh window."""

    refresh_every: int = 16
    pins: dict[Hashable, EncoderPin] = field(default_factory=dict)
    pinned_hits: int = 0
    trials: int = 0

    def __post_init__(self) -> None:
        if self.refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {self.refresh_every}")

    def pinned(self, key: Hashable) -> str | None:
        """The pinned encoder name, or ``None`` when a trial is due."""
        pin = self.pins.get(key)
        if pin is None or pin.age >= self.refresh_every:
            return None
        pin.age += 1
        self.pinned_hits += 1
        return pin.winner

    def record_winner(self, key: Hashable, winner: str) -> None:
        self.trials += 1
        self.pins[key] = EncoderPin(winner=winner)

    def clear(self) -> None:
        self.pins.clear()
