"""Generic byte-oriented LZ77 baselines (LZ4-like and Deflate-like).

These model nvCOMP's general-purpose lossless codecs: a greedy hash-table
LZ77 with the *traditional small window* (4 KB) and *variable-length*
patterns — exactly the two properties the paper's vector-based LZ replaces
(extended window measured in vectors, fixed pattern length).  On embedding
batches the 4 KB window covers only a handful of vectors, which is why these
baselines achieve low ratios on lookup traffic (Table V).

Token format (LZ4-flavoured)::

    token byte: high nibble = literal run length, low nibble = match length - MIN_MATCH
    [0xFF extension bytes while nibble saturated]
    literal bytes
    2-byte little-endian match offset (if a match follows)

The stream ends with a literals-only token (match nibble 0, no offset).

``DeflateLikeCompressor`` entropy-codes the LZ77 token stream with the
library's canonical Huffman coder, modelling Deflate's LZ + Huffman split.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.compression.base import Compressor
from repro.compression.huffman import (
    HuffmanEncoded,
    huffman_decode,
    huffman_encode,
)

__all__ = ["lz77_encode_bytes", "lz77_decode_bytes", "Lz4LikeCompressor", "DeflateLikeCompressor"]

DEFAULT_BYTE_WINDOW = 4096
MIN_MATCH = 4
MAX_OFFSET = 65535
_HASH_BITS = 14
_HASH_SIZE = 1 << _HASH_BITS


def _hash_u32(values: np.ndarray) -> np.ndarray:
    return ((values * np.uint32(2654435761)) >> np.uint32(32 - _HASH_BITS)).astype(np.int64)


def _write_varnibble(out: bytearray, value: int) -> None:
    """Emit LZ4-style 255-extension bytes for a saturated nibble."""
    value -= 15
    while value >= 255:
        out.append(255)
        value -= 255
    out.append(value)


def _previous_same_hash(hashes: np.ndarray) -> np.ndarray:
    """``prev[i]`` = largest ``j < i`` with ``hashes[j] == hashes[i]``, else -1.

    Vectorized replacement for the sequential hash-table scan: a stable
    argsort groups equal hashes while preserving position order, so each
    element's predecessor within its group is its most recent prior
    occurrence.
    """
    order = np.argsort(hashes, kind="stable")
    prev = np.full(hashes.size, -1, dtype=np.int64)
    if hashes.size > 1:
        same = hashes[order[1:]] == hashes[order[:-1]]
        prev[order[1:][same]] = order[:-1][same]
    return prev


def _match_extension(arr: np.ndarray, a: int, b: int) -> int:
    """Longest common run of ``arr[a + k] == arr[b + k]`` with ``b + k < n``.

    Compares in geometrically growing blocks so short matches stay cheap
    and long matches run at memcmp speed.
    """
    max_k = arr.size - b
    total = 0
    block = 32
    while total < max_k:
        m = min(block, max_k - total)
        diff = arr[a + total : a + total + m] != arr[b + total : b + total + m]
        if diff.any():
            return total + int(np.argmax(diff))
        total += m
        block = min(block * 2, 1 << 16)
    return max_k


def lz77_encode_bytes(data: bytes, window: int = DEFAULT_BYTE_WINDOW) -> bytes:
    """Greedy hash-table LZ77 over raw bytes with the given window.

    Produces the byte stream of the original sequential encoder (the
    ``_reference_lz77_encode_bytes`` oracle) but finds matches vectorized:
    because the sequential scan inserts every position it passes, a
    position's candidate is always *the most recent earlier position in the
    same hash bucket* — a parse-independent quantity.  All candidates,
    window checks, and 4-byte verifications are precomputed with NumPy; the
    remaining Python loop runs once per emitted match token (never per
    byte), leaping between match sites with ``searchsorted``.
    """
    n = len(data)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    window = min(window, MAX_OFFSET)
    out = bytearray()
    if n == 0:
        return bytes(out)
    arr = np.frombuffer(data, dtype=np.uint8)
    if n >= MIN_MATCH:
        u32 = (
            arr[: n - 3].astype(np.uint32)
            | (arr[1 : n - 2].astype(np.uint32) << np.uint32(8))
            | (arr[2 : n - 1].astype(np.uint32) << np.uint32(16))
            | (arr[3:n].astype(np.uint32) << np.uint32(24))
        )
        # uint16 hash keys (14 bits used) make the stable argsort inside
        # _previous_same_hash a 2-byte radix sort — ~10x faster than int64.
        hashes = ((u32 * np.uint32(2654435761)) >> np.uint32(32 - _HASH_BITS)).astype(
            np.uint16
        )
        prev = _previous_same_hash(hashes)
        candidates = np.flatnonzero(prev >= 0)
        verified = (candidates - prev[candidates] <= window) & (
            u32[candidates] == u32[prev[candidates]]
        )
        match_sites = candidates[verified]
    else:
        prev = np.empty(0, dtype=np.int64)
        match_sites = np.empty(0, dtype=np.int64)
    pos = 0
    literal_start = 0
    while True:
        site = int(np.searchsorted(match_sites, pos))
        if site >= match_sites.size:
            break
        pos = int(match_sites[site])
        candidate = int(prev[pos])
        match_len = MIN_MATCH + _match_extension(arr, candidate + MIN_MATCH, pos + MIN_MATCH)
        lit_len = pos - literal_start
        token_lit = min(lit_len, 15)
        token_match = min(match_len - MIN_MATCH, 15)
        out.append((token_lit << 4) | token_match)
        if token_lit == 15:
            _write_varnibble(out, lit_len)
        out.extend(data[literal_start:pos])
        offset = pos - candidate
        out.extend(offset.to_bytes(2, "little"))
        if token_match == 15:
            _write_varnibble(out, match_len - MIN_MATCH)
        pos += match_len
        literal_start = pos
    # Final literals-only token.
    lit_len = n - literal_start
    token_lit = min(lit_len, 15)
    out.append(token_lit << 4)
    if token_lit == 15:
        _write_varnibble(out, lit_len)
    out.extend(data[literal_start:n])
    return bytes(out)


def _reference_lz77_encode_bytes(data: bytes, window: int = DEFAULT_BYTE_WINDOW) -> bytes:
    """The seed's original sequential encoder, frozen as the differential
    oracle: per-position hash-table updates and per-byte match extension."""
    n = len(data)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    window = min(window, MAX_OFFSET)
    out = bytearray()
    if n == 0:
        return bytes(out)
    arr = np.frombuffer(data, dtype=np.uint8)
    if n >= MIN_MATCH:
        u32 = (
            arr[: n - 3].astype(np.uint32)
            | (arr[1 : n - 2].astype(np.uint32) << np.uint32(8))
            | (arr[2 : n - 1].astype(np.uint32) << np.uint32(16))
            | (arr[3:n].astype(np.uint32) << np.uint32(24))
        )
        hashes = _hash_u32(u32).tolist()
    else:
        hashes = []
    head = [-1] * _HASH_SIZE  # hash bucket -> most recent position
    pos = 0
    literal_start = 0
    limit = n - MIN_MATCH + 1
    while pos < limit:
        h = hashes[pos]
        candidate = head[h]
        head[h] = pos
        if candidate >= 0 and pos - candidate <= window and data[candidate : candidate + MIN_MATCH] == data[pos : pos + MIN_MATCH]:
            # Extend the match forward as far as it goes.
            match_len = MIN_MATCH
            max_len = n - pos
            while match_len < max_len and data[candidate + match_len] == data[pos + match_len]:
                match_len += 1
            lit_len = pos - literal_start
            token_lit = min(lit_len, 15)
            token_match = min(match_len - MIN_MATCH, 15)
            out.append((token_lit << 4) | token_match)
            if token_lit == 15:
                _write_varnibble(out, lit_len)
            out.extend(data[literal_start:pos])
            offset = pos - candidate
            out.extend(offset.to_bytes(2, "little"))
            if token_match == 15:
                _write_varnibble(out, match_len - MIN_MATCH)
            # Insert hash entries inside the match so later data can
            # reference it, then leap past the matched span.
            end = min(pos + match_len, limit)
            for p in range(pos + 1, end):
                head[hashes[p]] = p
            pos += match_len
            literal_start = pos
        else:
            pos += 1
    # Final literals-only token.
    lit_len = n - literal_start
    token_lit = min(lit_len, 15)
    out.append(token_lit << 4)
    if token_lit == 15:
        _write_varnibble(out, lit_len)
    out.extend(data[literal_start:n])
    return bytes(out)


def _read_varnibble(data: bytes | memoryview, pos: int, nibble: int) -> tuple[int, int]:
    value = nibble
    if nibble == 15:
        while True:
            ext = data[pos]
            pos += 1
            value += ext
            if ext != 255:
                break
    return value, pos


def lz77_decode_bytes(stream: bytes | memoryview, expected_size: int) -> bytes:
    """Invert :func:`lz77_encode_bytes`.

    Match copies run as C-speed slice operations: non-overlapping matches
    are a single slice copy, overlapping ones replicate the ``offset``-byte
    period — identical output to the byte-at-a-time reference.
    """
    out = bytearray()
    pos = 0
    n = len(stream)
    while pos < n:
        token = stream[pos]
        pos += 1
        lit_len, pos = _read_varnibble(stream, pos, token >> 4)
        out.extend(stream[pos : pos + lit_len])
        pos += lit_len
        if pos >= n:
            break  # literals-only tail token
        offset = int.from_bytes(stream[pos : pos + 2], "little")
        pos += 2
        match_len, pos = _read_varnibble(stream, pos, token & 0xF)
        match_len += MIN_MATCH
        if offset == 0 or offset > len(out):
            raise ValueError(f"corrupt LZ77 stream: offset {offset} at output size {len(out)}")
        start = len(out) - offset
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            # Overlapping match: the copy region is periodic in `offset`.
            period = bytes(out[start:])
            repeats = -(-match_len // offset)
            out += (period * repeats)[:match_len]
    if len(out) != expected_size:
        raise ValueError(f"corrupt LZ77 stream: decoded {len(out)} bytes, expected {expected_size}")
    return bytes(out)


def _reference_lz77_decode_bytes(stream: bytes | memoryview, expected_size: int) -> bytes:
    """The seed's original byte-at-a-time decoder, frozen as the oracle."""
    out = bytearray()
    pos = 0
    n = len(stream)
    while pos < n:
        token = stream[pos]
        pos += 1
        lit_len, pos = _read_varnibble(stream, pos, token >> 4)
        out.extend(stream[pos : pos + lit_len])
        pos += lit_len
        if pos >= n:
            break  # literals-only tail token
        offset = int.from_bytes(stream[pos : pos + 2], "little")
        pos += 2
        match_len, pos = _read_varnibble(stream, pos, token & 0xF)
        match_len += MIN_MATCH
        if offset == 0 or offset > len(out):
            raise ValueError(f"corrupt LZ77 stream: offset {offset} at output size {len(out)}")
        start = len(out) - offset
        # Overlap-safe copy (offset may be smaller than match_len).
        for k in range(match_len):
            out.append(out[start + k])
    if len(out) != expected_size:
        raise ValueError(f"corrupt LZ77 stream: decoded {len(out)} bytes, expected {expected_size}")
    return bytes(out)


class Lz4LikeCompressor(Compressor):
    """Lossless byte-LZ77 with a traditional 4 KB window (nvCOMP-LZ4 family)."""

    name = "lz4_like"
    lossy = False
    error_bounded = False

    def __init__(self, window: int = DEFAULT_BYTE_WINDOW):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)

    def _compress_body(self, array: np.ndarray, error_bound: float | None) -> tuple[dict[str, Any], bytes]:
        raw = array.tobytes()
        return {"raw_size": len(raw), "window": self.window}, lz77_encode_bytes(raw, self.window)

    def _decompress_body(
        self, header: dict[str, Any], body: memoryview, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        raw = lz77_decode_bytes(body, header["raw_size"])
        return np.frombuffer(raw, dtype=dtype).reshape(shape)


class DeflateLikeCompressor(Compressor):
    """LZ77 + Huffman over the token stream (nvCOMP-Deflate family)."""

    name = "deflate_like"
    lossy = False
    error_bounded = False

    def __init__(self, window: int = DEFAULT_BYTE_WINDOW):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)

    def _compress_body(self, array: np.ndarray, error_bound: float | None) -> tuple[dict[str, Any], bytes]:
        raw = array.tobytes()
        lz_stream = lz77_encode_bytes(raw, self.window)
        encoded = huffman_encode(np.frombuffer(lz_stream, dtype=np.uint8), 256)
        meta = {
            "raw_size": len(raw),
            "lz_size": len(lz_stream),
            "window": self.window,
            "code_lengths": encoded.code_lengths.astype(np.uint8),
            "chunk_bit_offsets": encoded.chunk_bit_offsets.astype(np.uint64),
            "chunk_symbol_counts": encoded.chunk_symbol_counts.astype(np.int64),
        }
        return meta, encoded.payload

    def _decompress_body(
        self, header: dict[str, Any], body: memoryview, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        encoded = HuffmanEncoded(
            payload=np.frombuffer(body, dtype=np.uint8),
            code_lengths=header["code_lengths"].astype(np.int64),
            chunk_bit_offsets=header["chunk_bit_offsets"],
            chunk_symbol_counts=header["chunk_symbol_counts"],
            total_symbols=header["lz_size"],
        )
        lz_stream = huffman_decode(encoded).astype(np.uint8).tobytes()
        raw = lz77_decode_bytes(lz_stream, header["raw_size"])
        return np.frombuffer(raw, dtype=dtype).reshape(shape)
