"""ZFP-family baseline: block transform + fixed-rate coefficient coding.

The paper's background (Section II-B) contrasts two scientific-compressor
families: prediction-based error-bounded (SZ/cuSZ) and transform-based
fixed-rate (ZFP/cuZFP) — "ZFP in fixed-rate mode tends to offer
consistently higher throughput, whereas SZ in error-bounded mode achieves
superior compression ratios."  This codec implements the fixed-rate family
so the selection pool (Algorithm 2 accepts "theoretically any compression
algorithm") contains both:

1. values are grouped in 1-D blocks of 4 (row-major, rows padded);
2. each block is converted to block-floating-point integers under a shared
   exponent;
3. a Walsh-Hadamard-style integer transform decorrelates the block;
4. coefficients are stored sign-magnitude, magnitudes truncated to a
   shared per-block width, so every block spends exactly ``4 * rate``
   bits plus a small header.

Being fixed-rate, it offers **no** absolute error bound (``error_bounded
= False``) — exactly the limitation the paper's error-bounded design
removes — but its ratio is perfectly predictable: ``32 / rate`` for
float32 input, minus header overhead.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.compression.base import Compressor
from repro.compression.bitstream import pack_fixed, unpack_fixed

__all__ = ["ZfpLikeCompressor", "block_transform", "inverse_block_transform"]

_BLOCK = 4
#: fixed-point fraction bits under the per-block shared exponent
_FRACTION_BITS = 21


def block_transform(block: np.ndarray) -> np.ndarray:
    """Walsh-Hadamard transform of 4-value integer blocks (exact, +2 bits).

    ``block`` has shape (n_blocks, 4); output coefficients are ordered
    [sum, low-frequency difference, two high-frequency differences].
    """
    a, b, c, d = (block[:, i].astype(np.int64) for i in range(4))
    s1, d1 = a + d, a - d
    s2, d2 = b + c, b - c
    return np.stack([s1 + s2, s1 - s2, d1, d2], axis=1)


def inverse_block_transform(coeffs: np.ndarray) -> np.ndarray:
    """Invert :func:`block_transform` (in float64: truncated coefficients
    do not preserve the parity the exact integer inverse would need)."""
    ss, sd, d1, d2 = (coeffs[:, i].astype(np.float64) for i in range(4))
    s1 = (ss + sd) / 2.0
    s2 = (ss - sd) / 2.0
    a = (s1 + d1) / 2.0
    d = (s1 - d1) / 2.0
    b = (s2 + d2) / 2.0
    c = (s2 - d2) / 2.0
    return np.stack([a, b, c, d], axis=1)


class ZfpLikeCompressor(Compressor):
    """Fixed-rate transform codec (cuZFP family).

    Parameters
    ----------
    rate:
        Stored bits per value (2..28): one sign bit plus ``rate - 1``
        magnitude bits per coefficient.  Compression ratio on float32 input
        is ~``32 / rate``.
    """

    name = "zfp_like"
    lossy = True
    error_bounded = False

    def __init__(self, rate: int = 8):
        if not 2 <= rate <= 28:
            raise ValueError(f"rate must be in [2, 28] bits/value, got {rate}")
        self.rate = int(rate)

    def _compress_body(self, array: np.ndarray, error_bound: float | None) -> tuple[dict[str, Any], bytes]:
        flat = array.astype(np.float64).ravel()
        if not np.isfinite(flat).all():
            raise ValueError("zfp_like: input contains NaN/inf")
        pad = (-flat.size) % _BLOCK
        padded = np.concatenate([flat, np.zeros(pad)])
        blocks = padded.reshape(-1, _BLOCK)
        # Block-floating point: shared exponent per block.
        max_abs = np.abs(blocks).max(axis=1)
        exponents = np.where(
            max_abs > 0, np.ceil(np.log2(np.maximum(max_abs, 1e-300))), 0.0
        ).astype(np.int64)
        if exponents.size and (exponents.min() < -128 or exponents.max() > 127):
            raise ValueError("zfp_like: value magnitudes outside representable exponent range")
        scales = np.exp2(exponents - _FRACTION_BITS)
        ints = np.rint(blocks / scales[:, None]).astype(np.int64)
        coeffs = block_transform(ints)
        signs = (coeffs < 0).astype(np.uint64)
        mags = np.abs(coeffs).astype(np.uint64)
        # Shared truncation shift per block: the widest magnitude must fit
        # in rate-1 bits (the top bit of each field carries the sign).
        widest = mags.max(axis=1)
        bitlen = np.zeros(blocks.shape[0], dtype=np.int64)
        nonzero = widest > 0
        bitlen[nonzero] = np.floor(
            np.log2(widest[nonzero].astype(np.float64))
        ).astype(np.int64) + 1
        shifts = np.maximum(bitlen - (self.rate - 1), 0).astype(np.uint64)
        fields = (signs << np.uint64(self.rate - 1)) | (mags >> shifts[:, None])
        payload_bits, _ = pack_fixed(fields.ravel(), self.rate)
        meta = {
            "rate": self.rate,
            "n_blocks": int(blocks.shape[0]),
            "pad": int(pad),
            "exponents": exponents.astype(np.int8),
            "shifts": shifts.astype(np.uint8),
        }
        return meta, payload_bits

    def _decompress_body(
        self, header: dict[str, Any], body: memoryview, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        rate = header["rate"]
        n_blocks = header["n_blocks"]
        fields = unpack_fixed(
            np.frombuffer(body, dtype=np.uint8), n_blocks * _BLOCK, rate
        ).reshape(n_blocks, _BLOCK)
        sign_bit = np.uint64(rate - 1)
        signs = (fields >> sign_bit).astype(bool)
        mags = fields & np.uint64((1 << (rate - 1)) - 1)
        shifts = header["shifts"].astype(np.uint64)[:, None]
        # Restore magnitude with midpoint rounding inside the lost bits.
        restored = (mags << shifts).astype(np.int64)
        half = ((np.uint64(1) << np.maximum(shifts, 1)) >> np.uint64(1)).astype(np.int64)
        restored = restored + np.where((shifts > 0) & (mags > 0), half, 0)
        coeffs = np.where(signs, -restored, restored)
        blocks = inverse_block_transform(coeffs)
        scales = np.exp2(header["exponents"].astype(np.int64) - _FRACTION_BITS)
        values = (blocks * scales[:, None]).ravel()
        if header["pad"]:
            values = values[: -header["pad"]]
        return values.reshape(shape).astype(dtype)
