"""Low-precision casting baselines: FP16 and FP8 (E4M3).

These are the paper's "low-precision approach" baselines: fixed-rate (2x and
4x from float32), no error bound, no adaptivity.  FP8 uses the E4M3 format
of Micikevicius et al. (1 sign, 4 exponent bits with bias 7, 3 mantissa
bits; max finite 448; no infinities).  Conversion rounds to the nearest
representable value, implemented exactly via the 256-entry value table.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.compression.base import Compressor

__all__ = ["Fp16Compressor", "Fp8Compressor", "e4m3_value_table", "float32_to_e4m3", "e4m3_to_float32"]


def e4m3_value_table() -> np.ndarray:
    """The 256 E4M3 code values as float32; NaN codes map to NaN."""
    codes = np.arange(256, dtype=np.uint16)
    sign = np.where(codes & 0x80, -1.0, 1.0)
    exp_field = ((codes >> 3) & 0xF).astype(np.int64)
    man_field = (codes & 0x7).astype(np.float64)
    subnormal = exp_field == 0
    values = np.where(
        subnormal,
        man_field / 8.0 * 2.0**-6,
        (1.0 + man_field / 8.0) * 2.0 ** (exp_field - 7.0),
    )
    values = sign * values
    # S.1111.111 encodes NaN in E4M3 (there is no infinity).
    values[(exp_field == 15) & (man_field == 7)] = np.nan
    return values.astype(np.float32)


_E4M3_VALUES = e4m3_value_table()
_FINITE_MASK = np.isfinite(_E4M3_VALUES)
_SORTED_VALUES = np.sort(_E4M3_VALUES[_FINITE_MASK])
_SORTED_CODES = np.argsort(_E4M3_VALUES[_FINITE_MASK], kind="stable")
_FINITE_CODES = np.flatnonzero(_FINITE_MASK).astype(np.uint8)


def float32_to_e4m3(array: np.ndarray) -> np.ndarray:
    """Encode float32 values to E4M3 codes, rounding to nearest value.

    Out-of-range magnitudes saturate to +/-448 (no infinities in E4M3).
    """
    array = np.asarray(array, dtype=np.float32)
    if not np.isfinite(array).all():
        raise ValueError("float32_to_e4m3: input contains NaN/inf")
    flat = array.ravel().astype(np.float64)
    clipped = np.clip(flat, -448.0, 448.0)
    idx = np.searchsorted(_SORTED_VALUES, clipped)
    idx = np.clip(idx, 1, _SORTED_VALUES.size - 1)
    left = _SORTED_VALUES[idx - 1].astype(np.float64)
    right = _SORTED_VALUES[idx].astype(np.float64)
    pick_left = (clipped - left) <= (right - clipped)
    chosen_sorted = np.where(pick_left, idx - 1, idx)
    codes = _FINITE_CODES[_SORTED_CODES[chosen_sorted]]
    return codes.reshape(array.shape)


def e4m3_to_float32(codes: np.ndarray) -> np.ndarray:
    """Decode E4M3 codes back to float32 values."""
    codes = np.asarray(codes, dtype=np.uint8)
    return _E4M3_VALUES[codes.astype(np.int64)]


class Fp16Compressor(Compressor):
    """Cast to IEEE half precision: fixed 2x reduction from float32."""

    name = "fp16"
    lossy = True
    error_bounded = False

    def _compress_body(self, array: np.ndarray, error_bound: float | None) -> tuple[dict[str, Any], bytes]:
        return {}, array.astype(np.float16)

    def _decompress_body(
        self, header: dict[str, Any], body: memoryview, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        return np.frombuffer(body, dtype=np.float16).reshape(shape).astype(dtype)


class Fp8Compressor(Compressor):
    """Cast to E4M3 8-bit floats: fixed 4x reduction from float32."""

    name = "fp8"
    lossy = True
    error_bounded = False

    def _compress_body(self, array: np.ndarray, error_bound: float | None) -> tuple[dict[str, Any], bytes]:
        return {}, float32_to_e4m3(array.astype(np.float32))

    def _decompress_body(
        self, header: dict[str, Any], body: memoryview, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        codes = np.frombuffer(body, dtype=np.uint8).reshape(shape)
        return e4m3_to_float32(codes).astype(dtype)
