"""Baseline compressors the paper compares against.

Each is a from-scratch NumPy implementation of the same algorithm *family*
as the closed-source / CUDA original:

=================  ====================================================
``fp16``           half-precision cast (the low-precision baseline)
``fp8``            E4M3 8-bit float cast (SOTA low-precision baseline)
``lz4_like``       byte-oriented greedy LZ77, 4 KB window (nvCOMP-LZ4)
``deflate_like``   LZ77 + Huffman over the token stream (nvCOMP-Deflate)
``cusz_like``      Lorenzo prediction + quantization + Huffman (cuSZ)
``fzgpu_like``     quantization + bitshuffle + sparse bitplanes (FZ-GPU)
``zfp_like``       block transform + fixed-rate coding (cuZFP)
=================  ====================================================
"""

from repro.compression.baselines.cusz_like import CuszLikeCompressor
from repro.compression.baselines.fp import Fp8Compressor, Fp16Compressor
from repro.compression.baselines.fzgpu_like import FzGpuLikeCompressor
from repro.compression.baselines.zfp_like import ZfpLikeCompressor
from repro.compression.baselines.lz_generic import (
    DeflateLikeCompressor,
    Lz4LikeCompressor,
)

__all__ = [
    "Fp16Compressor",
    "Fp8Compressor",
    "Lz4LikeCompressor",
    "DeflateLikeCompressor",
    "CuszLikeCompressor",
    "FzGpuLikeCompressor",
    "ZfpLikeCompressor",
]
