"""FZ-GPU-family baseline: quantization + bitshuffle + sparse bitplanes.

FZ-GPU pairs SZ-style quantization with a very fast encoder: bitshuffle the
quantization codes so that each *bit plane* is contiguous, then store only
the non-zero blocks of each plane (small-magnitude codes leave the high
planes all-zero).  Throughput is the highest of the lossy GPU compressors,
but — as the paper measures — the ratio trails the DLRM-specialized hybrid.

Implementation: codes are zig-zag mapped to unsigned 16-bit, each of the 16
planes is extracted and packed with ``np.packbits``, planes are split into
fixed-size blocks, and an all-zero-block bitmap elides empty blocks.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.compression.base import Compressor
from repro.compression.quantizer import quantize

__all__ = [
    "zigzag_encode",
    "zigzag_decode",
    "pack_bitplanes",
    "unpack_bitplanes",
    "FzGpuLikeCompressor",
]

_PLANES = 16
DEFAULT_BLOCK_BYTES = 256


def pack_bitplanes(unsigned: np.ndarray, block_bytes: int) -> tuple[np.ndarray, np.ndarray, int]:
    """Bitshuffle + sparse-block packing of all 16 planes at once.

    Returns ``(bitmap, payload, n_blocks_per_plane)`` where ``bitmap`` is a
    packed nonzero-block map (plane-major) and ``payload`` concatenates the
    surviving blocks.  All planes are extracted with one broadcast
    shift/mask and packed with a single axis-wise ``np.packbits``; byte
    layout is identical to the per-plane reference.
    """
    # uint16 source (the encoder guarantees 16-bit magnitudes) quarters the
    # memory traffic of the plane extraction versus uint64.
    u16 = np.asarray(unsigned, dtype=np.uint64).ravel().astype(np.uint16)
    packed_len = (u16.size + 7) // 8
    n_blocks = (packed_len + block_bytes - 1) // block_bytes if packed_len else 0
    padded = np.zeros((_PLANES, n_blocks * block_bytes), dtype=np.uint8)
    for plane in range(_PLANES):
        bits = ((u16 >> np.uint16(plane)) & np.uint16(1)).astype(np.uint8)
        padded[plane, :packed_len] = np.packbits(bits)
    blocks = padded.reshape(_PLANES, n_blocks, block_bytes)
    nonzero = blocks.any(axis=2)  # (_PLANES, n_blocks)
    bitmap = np.packbits(nonzero.ravel())
    payload = blocks[nonzero].ravel()
    return bitmap, payload, n_blocks


def unpack_bitplanes(
    bitmap: np.ndarray,
    payload: np.ndarray,
    n_values: int,
    block_bytes: int,
    n_blocks: int,
) -> np.ndarray:
    """Invert :func:`pack_bitplanes` back to the unsigned code array."""
    plane_map = np.unpackbits(bitmap, count=_PLANES * n_blocks).astype(bool).reshape(
        _PLANES, n_blocks
    )
    blocks = np.zeros((_PLANES, n_blocks, block_bytes), dtype=np.uint8)
    n_nonzero = int(plane_map.sum())
    blocks[plane_map] = payload[: n_nonzero * block_bytes].reshape(n_nonzero, block_bytes)
    packed_len = (n_values + 7) // 8
    packed = blocks.reshape(_PLANES, n_blocks * block_bytes)[:, :packed_len]
    unsigned = np.zeros(n_values, dtype=np.uint16)
    for plane in range(_PLANES):
        bits = np.unpackbits(packed[plane], count=n_values)
        unsigned |= bits.astype(np.uint16) << np.uint16(plane)
    return unsigned.astype(np.uint64)


def _reference_pack_bitplanes(
    unsigned: np.ndarray, block_bytes: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """The seed's original per-plane packing loop, frozen as the oracle."""
    unsigned = np.asarray(unsigned, dtype=np.uint64).ravel()
    plane_payloads: list[np.ndarray] = []
    block_maps: list[np.ndarray] = []
    n_blocks_per_plane = 0
    for plane in range(_PLANES):
        bits = ((unsigned >> np.uint64(plane)) & np.uint64(1)).astype(np.uint8)
        packed = np.packbits(bits)
        n_blocks = (packed.size + block_bytes - 1) // block_bytes
        n_blocks_per_plane = max(n_blocks_per_plane, n_blocks)
        pad = n_blocks * block_bytes - packed.size
        blocks = np.concatenate([packed, np.zeros(pad, dtype=np.uint8)]).reshape(
            n_blocks, block_bytes
        )
        nonzero = blocks.any(axis=1)
        block_maps.append(nonzero)
        plane_payloads.append(blocks[nonzero].ravel())
    bitmap = np.packbits(np.concatenate(block_maps)) if block_maps else np.zeros(0, np.uint8)
    payload = np.concatenate(plane_payloads) if plane_payloads else np.zeros(0, np.uint8)
    return bitmap, payload, n_blocks_per_plane


def _reference_unpack_bitplanes(
    bitmap: np.ndarray,
    payload: np.ndarray,
    n_values: int,
    block_bytes: int,
    n_blocks: int,
) -> np.ndarray:
    """The seed's original per-plane unpacking loop, frozen as the oracle."""
    plane_bitmap = np.unpackbits(bitmap, count=_PLANES * n_blocks).astype(bool)
    unsigned = np.zeros(n_values, dtype=np.uint64)
    packed_len = (n_values + 7) // 8
    cursor = 0
    for plane in range(_PLANES):
        plane_map = plane_bitmap[plane * n_blocks : (plane + 1) * n_blocks]
        n_nonzero = int(plane_map.sum())
        blocks = np.zeros((n_blocks, block_bytes), dtype=np.uint8)
        if n_nonzero:
            take = payload[cursor : cursor + n_nonzero * block_bytes]
            blocks[plane_map] = take.reshape(n_nonzero, block_bytes)
            cursor += n_nonzero * block_bytes
        packed = blocks.ravel()[:packed_len]
        bits = np.unpackbits(packed, count=n_values).astype(np.uint64)
        unsigned |= bits << np.uint64(plane)
    return unsigned


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned (0,-1,1,-2,... -> 0,1,2,3,...)."""
    values = np.asarray(values, dtype=np.int64)
    return ((values << 1) ^ (values >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Invert :func:`zigzag_encode`."""
    values = np.asarray(values, dtype=np.uint64)
    return ((values >> np.uint64(1)).astype(np.int64)) ^ -((values & np.uint64(1)).astype(np.int64))


class FzGpuLikeCompressor(Compressor):
    """Error-bounded bitshuffle + sparse bitplane codec (FZ-GPU family)."""

    name = "fzgpu_like"
    lossy = True
    error_bounded = True

    def __init__(self, block_bytes: int = DEFAULT_BLOCK_BYTES):
        if block_bytes < 1:
            raise ValueError(f"block_bytes must be >= 1, got {block_bytes}")
        self.block_bytes = int(block_bytes)

    def _compress_body(self, array: np.ndarray, error_bound: float | None) -> tuple[dict[str, Any], bytes]:
        codes = quantize(array, float(error_bound))
        unsigned = zigzag_encode(codes.ravel())
        if unsigned.size and int(unsigned.max()) >= (1 << _PLANES):
            raise ValueError(
                "fzgpu_like: quantized magnitudes exceed 16-bit planes; "
                "use a larger error bound or a different codec"
            )
        n = unsigned.size
        bitmap, payload, n_blocks_per_plane = pack_bitplanes(unsigned, self.block_bytes)
        body = [bitmap, payload]
        meta = {
            "eb": float(error_bound),
            "n_values": n,
            "block_bytes": self.block_bytes,
            "n_blocks_per_plane": n_blocks_per_plane,
            "bitmap_len": int(bitmap.size),
        }
        return meta, body

    def _decompress_body(
        self, header: dict[str, Any], body: memoryview, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        n = header["n_values"]
        block_bytes = header["block_bytes"]
        n_blocks = header["n_blocks_per_plane"]
        bitmap_len = header["bitmap_len"]
        raw = np.frombuffer(body, dtype=np.uint8)
        unsigned = unpack_bitplanes(raw[:bitmap_len], raw[bitmap_len:], n, block_bytes, n_blocks)
        codes = zigzag_decode(unsigned).reshape(shape)
        return (codes.astype(np.float64) * (2.0 * header["eb"])).astype(dtype)
