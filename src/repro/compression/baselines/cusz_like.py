"""cuSZ-family baseline: Lorenzo prediction + quantization + Huffman.

SZ-style compressors predict each point from its decoded neighbours and
entropy-code the prediction residuals.  Like cuSZ, this implementation uses
*pre-quantization* (dual-quant): values are first quantized to integers, the
2-D Lorenzo predictor then operates exactly on integers, so prediction and
reconstruction commute and the error bound holds end to end:

    residual[i, j] = q[i, j] - (q[i-1, j] + q[i, j-1] - q[i-1, j-1])

The inverse transform is a running 2-D prefix sum, fully vectorized.

On embedding batches this predictor *hurts*: neighbouring rows are
independent lookups, so residuals have higher entropy than raw bins — the
paper's "false prediction" observation (Figure 4), and the reason its hybrid
compressor skips prediction entirely.  This baseline exists to demonstrate
exactly that effect.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.compression.base import Compressor
from repro.compression.huffman import (
    HuffmanEncoded,
    huffman_decode,
    huffman_encode,
)
from repro.compression.quantizer import quantize

__all__ = ["lorenzo_residuals_2d", "inverse_lorenzo_2d", "CuszLikeCompressor"]


def lorenzo_residuals_2d(codes: np.ndarray) -> np.ndarray:
    """2-D Lorenzo prediction residuals of an integer field."""
    codes = np.asarray(codes, dtype=np.int64)
    if codes.ndim != 2:
        raise ValueError(f"expected 2-D code array, got shape {codes.shape}")
    padded = np.zeros((codes.shape[0] + 1, codes.shape[1] + 1), dtype=np.int64)
    padded[1:, 1:] = codes
    return (
        padded[1:, 1:] - padded[:-1, 1:] - padded[1:, :-1] + padded[:-1, :-1]
    )


def inverse_lorenzo_2d(residuals: np.ndarray) -> np.ndarray:
    """Invert :func:`lorenzo_residuals_2d` via a 2-D prefix sum."""
    residuals = np.asarray(residuals, dtype=np.int64)
    if residuals.ndim != 2:
        raise ValueError(f"expected 2-D residual array, got shape {residuals.shape}")
    return residuals.cumsum(axis=0).cumsum(axis=1)


class CuszLikeCompressor(Compressor):
    """Error-bounded Lorenzo + quantization + Huffman (cuSZ family)."""

    name = "cusz_like"
    lossy = True
    error_bounded = True

    def _compress_body(self, array: np.ndarray, error_bound: float | None) -> tuple[dict[str, Any], bytes]:
        codes = quantize(array, float(error_bound))
        residuals = lorenzo_residuals_2d(codes)
        res_min = int(residuals.min()) if residuals.size else 0
        shifted = (residuals - res_min).ravel()
        alphabet = int(shifted.max()) + 1 if shifted.size else 1
        encoded = huffman_encode(shifted, alphabet)
        meta = {
            "eb": float(error_bound),
            "res_min": res_min,
            "code_lengths": encoded.code_lengths.astype(np.uint8),
            "chunk_bit_offsets": encoded.chunk_bit_offsets.astype(np.uint64),
            "chunk_symbol_counts": encoded.chunk_symbol_counts.astype(np.int64),
            "total_symbols": int(encoded.total_symbols),
        }
        return meta, encoded.payload

    def _decompress_body(
        self, header: dict[str, Any], body: memoryview, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        encoded = HuffmanEncoded(
            payload=np.frombuffer(body, dtype=np.uint8),
            code_lengths=header["code_lengths"].astype(np.int64),
            chunk_bit_offsets=header["chunk_bit_offsets"],
            chunk_symbol_counts=header["chunk_symbol_counts"],
            total_symbols=header["total_symbols"],
        )
        shifted = huffman_decode(encoded).reshape(shape)
        residuals = shifted + header["res_min"]
        codes = inverse_lorenzo_2d(residuals)
        return (codes.astype(np.float64) * (2.0 * header["eb"])).astype(dtype)
