"""Compression metrics: ratios, error statistics, and the Eq.-2 speedup model.

The paper selects the per-table encoder not by ratio alone but by the
estimated end-to-end communication speedup (its Equation 2)::

    speedup = 1 / (1/CR + B * (1/Tc + 1/Td))

where ``CR`` is the compression ratio, ``B`` the network bandwidth and
``Tc``/``Td`` the compression/decompression throughputs (all in bytes/s):
sending ``N`` bytes takes ``N/(CR*B) + N/Tc + N/Td`` instead of ``N/B``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.compression.base import Compressor
from repro.utils.validation import check_positive

__all__ = [
    "compression_ratio",
    "communication_speedup",
    "max_abs_error",
    "verify_error_bound",
    "CodecEvaluation",
    "evaluate_codec",
]


def compression_ratio(original_nbytes: int, compressed_nbytes: int) -> float:
    """Original over compressed size; > 1 means the codec helped."""
    check_positive("original_nbytes", original_nbytes)
    check_positive("compressed_nbytes", compressed_nbytes)
    return original_nbytes / compressed_nbytes


def communication_speedup(
    ratio: float,
    bandwidth: float,
    compress_throughput: float,
    decompress_throughput: float,
) -> float:
    """Equation (2): end-to-end communication speedup of compressed transfer.

    All throughputs and the bandwidth share units (e.g. bytes/s).  A result
    below 1.0 means compression slows communication down for this setting —
    Algorithm 2 uses exactly this to reject a codec.
    """
    check_positive("ratio", ratio)
    check_positive("bandwidth", bandwidth)
    check_positive("compress_throughput", compress_throughput)
    check_positive("decompress_throughput", decompress_throughput)
    denominator = 1.0 / ratio + bandwidth * (
        1.0 / compress_throughput + 1.0 / decompress_throughput
    )
    return 1.0 / denominator


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest pointwise absolute error between two arrays."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError(f"shape mismatch: {original.shape} vs {reconstructed.shape}")
    if original.size == 0:
        return 0.0
    return float(np.abs(original - reconstructed).max())


def verify_error_bound(
    original: np.ndarray, reconstructed: np.ndarray, error_bound: float, *, ulp_slack: float = 4.0
) -> bool:
    """Check the pointwise bound with a small float32-cast slack.

    Reconstruction is computed in float64 then cast to the input dtype; the
    cast can add up to half an ULP, so the check allows ``ulp_slack`` ULPs of
    the largest magnitude involved.
    """
    check_positive("error_bound", error_bound)
    slack = ulp_slack * np.finfo(np.float32).eps * max(
        1.0, float(np.abs(original).max()) if np.asarray(original).size else 0.0
    )
    return max_abs_error(original, reconstructed) <= error_bound + slack


@dataclass(frozen=True)
class CodecEvaluation:
    """Measured behaviour of one codec on one batch."""

    codec: str
    ratio: float
    max_error: float
    compress_seconds: float
    decompress_seconds: float
    original_nbytes: int
    compressed_nbytes: int

    @property
    def compress_throughput(self) -> float:
        """Measured wall-clock compression throughput, bytes/s."""
        return self.original_nbytes / max(self.compress_seconds, 1e-12)

    @property
    def decompress_throughput(self) -> float:
        """Measured wall-clock decompression throughput, bytes/s."""
        return self.original_nbytes / max(self.decompress_seconds, 1e-12)


def evaluate_codec(
    compressor: Compressor, array: np.ndarray, error_bound: float | None = None
) -> CodecEvaluation:
    """Round-trip ``array`` through ``compressor`` and measure everything."""
    array = np.ascontiguousarray(array)
    t0 = time.perf_counter()
    payload = compressor.compress(array, error_bound)
    t1 = time.perf_counter()
    reconstructed = compressor.decompress(payload)
    t2 = time.perf_counter()
    return CodecEvaluation(
        codec=compressor.name,
        ratio=compression_ratio(array.nbytes, len(payload)),
        max_error=max_abs_error(array, reconstructed),
        compress_seconds=t1 - t0,
        decompress_seconds=t2 - t1,
        original_nbytes=array.nbytes,
        compressed_nbytes=len(payload),
    )
