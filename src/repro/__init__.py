"""repro: reproduction of "Accelerating Communication in DLRM Training with
Dual-Level Adaptive Lossy Compression" (SC '24).

Public API tour:

* :mod:`repro.compression` — the hybrid error-bounded compressor (vector-LZ
  + optimized Huffman) and all baselines.
* :mod:`repro.adaptive` — Homogenization Index, table classification, decay
  schedules, offline analysis (Algorithms 1-2) and the online controller.
* :mod:`repro.data` — synthetic Criteo-like datasets.
* :mod:`repro.model` / :mod:`repro.nn` — NumPy DLRM.
* :mod:`repro.dist` — cluster/network/GPU simulation substrate.
* :mod:`repro.train` — reference and hybrid-parallel trainers with the
  4-stage compressed all-to-all pipeline.
* :mod:`repro.serve` — inference-serving tier: compressed embedding
  shards, hot-row replica caches, open-loop load, and compressed delta
  publication from the trainer.
* :mod:`repro.analysis` / :mod:`repro.profiling` — data-feature analysis
  and training-time breakdowns.
* :mod:`repro.obs` — unified observability: metrics registry with
  mergeable snapshots, span annotations on the simulation timeline,
  unified chrome traces, and JSON/Prometheus/report exporters.
"""

__version__ = "1.0.0"

from repro.adaptive import (
    AdaptiveController,
    ErrorBoundLevels,
    OfflineAnalyzer,
    StepwiseDecay,
    homogenization_index,
)
from repro.compression import HybridCompressor, get_compressor
from repro.data import CRITEO_KAGGLE, CRITEO_TERABYTE, SyntheticClickDataset, scaled_spec
from repro.dist import ClusterSimulator
from repro.model import DLRM, DLRMConfig
from repro.obs import MetricsRegistry
from repro.serve import (
    DeltaPublisher,
    EmbeddingShardServer,
    InferenceReplica,
    RequestLoadGenerator,
    ServingSimulator,
    build_serving_tier,
)
from repro.train import CompressionPipeline, HybridParallelTrainer, ReferenceTrainer

__all__ = [
    "__version__",
    "HybridCompressor",
    "get_compressor",
    "homogenization_index",
    "ErrorBoundLevels",
    "StepwiseDecay",
    "OfflineAnalyzer",
    "AdaptiveController",
    "SyntheticClickDataset",
    "CRITEO_KAGGLE",
    "CRITEO_TERABYTE",
    "scaled_spec",
    "DLRM",
    "DLRMConfig",
    "ClusterSimulator",
    "ReferenceTrainer",
    "HybridParallelTrainer",
    "CompressionPipeline",
    "EmbeddingShardServer",
    "InferenceReplica",
    "RequestLoadGenerator",
    "ServingSimulator",
    "DeltaPublisher",
    "build_serving_tier",
    "MetricsRegistry",
]
