"""Cluster-simulation substrate: GPU/network cost models, exact
collectives, per-rank stream clocks, and the event timeline.

The design follows the system-simulation approach of THC and "Compressed
Communication for Distributed Training": collectives are priced
*analytically* (alpha-beta models, per-link topologies, utilization-scaled
kernels) while the data path is computed *exactly* in process — so
accuracy results are real and timing results are modelled, independently.

Layering (no cycles): ``timeline`` and ``gpu`` and ``network`` are leaves;
``comm`` uses the timeline's categories; ``simulator`` composes all four.
"""

from repro.dist.comm import Communicator, payload_nbytes
from repro.dist.gpu import A100_LIKE, GpuModel
from repro.dist.network import (
    IB_HDR_LIKE,
    NVLINK_LIKE,
    PAPER_FABRIC,
    PCIE_LIKE,
    LinkSpec,
    NetworkModel,
    Topology,
)
from repro.dist.simulator import ClusterSimulator
from repro.dist.timeline import (
    COMM_STREAM,
    COMPUTE_STREAM,
    EventCategory,
    Timeline,
    TimelineEvent,
)

__all__ = [
    "A100_LIKE",
    "COMM_STREAM",
    "COMPUTE_STREAM",
    "IB_HDR_LIKE",
    "NVLINK_LIKE",
    "PAPER_FABRIC",
    "PCIE_LIKE",
    "ClusterSimulator",
    "Communicator",
    "EventCategory",
    "GpuModel",
    "LinkSpec",
    "NetworkModel",
    "Timeline",
    "TimelineEvent",
    "Topology",
    "payload_nbytes",
]
