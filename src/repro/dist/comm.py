"""Numerically-exact collectives over in-process rank buffers.

The simulation separates *numerics* from *timing*: a
:class:`Communicator` moves the actual Python objects between per-rank
buffer lists (so receivers see bit-identical data — compression noise is
the only lossy step anywhere), while the wire time of each collective is
priced by the owning simulator's :class:`~repro.dist.network.NetworkModel`
and charged to every rank's clock.

``compressed_all_to_all`` implements the exchange discipline of the
paper's pipeline: because error-bounded payloads have *variable* size,
receivers cannot post buffers until they learn the sizes — so a
fixed-size metadata all-to-all (stage ②) precedes the payload all-to-all
(stage ③).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.dist.timeline import EventCategory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.dist.simulator import ClusterSimulator

__all__ = ["Communicator", "payload_nbytes"]


def payload_nbytes(payload: object) -> int:
    """Wire size of one buffer: arrays by ``nbytes``, byte strings by length."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, memoryview):
        return payload.nbytes  # len() would count items, not bytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


class Communicator:
    """Exact in-process collectives billed against the simulated network."""

    def __init__(self, simulator: "ClusterSimulator"):
        self.simulator = simulator

    @property
    def n_ranks(self) -> int:
        return self.simulator.n_ranks

    def _check_square(self, sendbufs: Sequence[Sequence[object]]) -> None:
        n = self.n_ranks
        if len(sendbufs) != n:
            raise ValueError(f"expected {n} send-buffer rows, got {len(sendbufs)}")
        for src, row in enumerate(sendbufs):
            if len(row) != n:
                raise ValueError(f"rank {src} posted {len(row)} buffers, expected {n}")

    # --------------------------------------------------------- all-to-all

    def all_to_all(
        self,
        sendbufs: Sequence[Sequence[object]],
        category: str = EventCategory.ALLTOALL_FWD,
    ) -> list[list[object]]:
        """Exchange ``sendbufs[src][dst]`` -> ``recvbufs[dst][src]``.

        Payloads (arrays or byte strings) are handed over untouched, so
        the data path is exact; the wire time of the full variable-size
        exchange is charged once to all ranks under ``category``.
        """
        self._check_square(sendbufs)
        n = self.n_ranks
        matrix = np.zeros((n, n), dtype=np.int64)
        for src in range(n):
            for dst in range(n):
                matrix[src, dst] = payload_nbytes(sendbufs[src][dst])
        self.simulator.collective(
            self.simulator.network.all_to_all_time(matrix), category
        )
        return [[sendbufs[src][dst] for src in range(n)] for dst in range(n)]

    def compressed_all_to_all(
        self,
        sendbufs: Sequence[Sequence[object]],
        metadata_bytes_per_entry: int = 16,
        entries_per_pair: int = 1,
        category: str = EventCategory.ALLTOALL_FWD,
    ) -> list[list[object]]:
        """Stages ②+③: fixed-size metadata round, then the payloads.

        Each ordered pair first exchanges ``entries_per_pair`` metadata
        records of ``metadata_bytes_per_entry`` bytes (compressed size +
        codec id per slice), charged as :data:`EventCategory.METADATA`;
        the variable-size payload exchange follows.
        """
        if metadata_bytes_per_entry <= 0:
            raise ValueError(
                f"metadata_bytes_per_entry must be > 0, got {metadata_bytes_per_entry!r}"
            )
        if entries_per_pair <= 0:
            raise ValueError(f"entries_per_pair must be > 0, got {entries_per_pair!r}")
        self._check_square(sendbufs)
        self.simulator.collective(
            self.simulator.network.uniform_all_to_all_time(
                metadata_bytes_per_entry * entries_per_pair, self.n_ranks
            ),
            EventCategory.METADATA,
        )
        return self.all_to_all(sendbufs, category=category)

    # --------------------------------------------------------- all-reduce

    def all_reduce(
        self,
        arrays: Sequence[np.ndarray],
        category: str = EventCategory.ALLREDUCE,
    ) -> list[np.ndarray]:
        """Sum one array per rank; every rank receives the identical total.

        The reduction runs in fixed rank order so the result is
        deterministic (and equals the single-process sum bit for bit).
        """
        if len(arrays) != self.n_ranks:
            raise ValueError(f"expected {self.n_ranks} arrays, got {len(arrays)}")
        shapes = {a.shape for a in arrays}
        if len(shapes) != 1:
            raise ValueError(f"all-reduce arrays must share a shape, got {sorted(shapes)}")
        dtypes = {a.dtype for a in arrays}
        if len(dtypes) != 1:
            raise ValueError(
                f"all-reduce arrays must share a dtype, got {sorted(map(str, dtypes))}"
            )
        total = arrays[0].copy()
        for contribution in arrays[1:]:
            total += contribution
        self.simulator.collective(
            self.simulator.network.all_reduce_time(total.nbytes, self.n_ranks), category
        )
        return [total.copy() for _ in range(self.n_ranks)]

    # ---------------------------------------------------------- broadcast

    def broadcast(self, payload: object, root: int = 0, category: str = EventCategory.METADATA) -> list[object]:
        """Hand ``root``'s payload to every rank (tree: ``ceil(log2 n)``
        latency rounds, full payload per hop).

        Mutable payloads are copied per rank — as with :meth:`all_reduce`,
        no two ranks may alias one buffer."""
        if not 0 <= root < self.n_ranks:
            raise ValueError(f"root must be in [0, {self.n_ranks}), got {root!r}")
        n = self.n_ranks
        if n > 1:
            rounds = int(np.ceil(np.log2(n)))
            seconds = rounds * self.simulator.network.point_to_point_time(
                payload_nbytes(payload)
            )
            self.simulator.collective(seconds, category)

        def deliver() -> object:
            if isinstance(payload, np.ndarray):
                return payload.copy()
            if isinstance(payload, bytearray):
                return bytearray(payload)
            return payload  # bytes/memoryview and other immutables

        return [deliver() for _ in range(n)]
