"""Numerically-exact collectives over in-process rank buffers.

The simulation separates *numerics* from *timing*: a
:class:`Communicator` moves the actual Python objects between per-rank
buffer lists (so receivers see bit-identical data — compression noise is
the only lossy step anywhere), while the wire time of each collective is
priced by the owning simulator's :class:`~repro.dist.network.NetworkModel`
and charged to every rank's clock.

``compressed_all_to_all`` implements the exchange discipline of the
paper's pipeline: because error-bounded payloads have *variable* size,
receivers cannot post buffers until they learn the sizes — so a
fixed-size metadata all-to-all (stage ②) precedes the payload all-to-all
(stage ③).  Each ``sendbufs[src][dst]`` entry may be a single buffer or a
*sequence* of per-chunk payloads (one per table slice); receivers get the
batch back intact and can hand it to
:meth:`repro.train.pipeline.CompressionPipeline.decompress_batch` so the
peek-table/codebook caches amortize across the whole exchange.

With ``overlap=True`` the exchange runs as a *chunk-level pipeline*: each
rank's stage-① compression is split into ``chunks_per_rank`` real chunk
kernels on its ``compute`` stream, and each chunk becomes its own wire
event on the ``comm`` stream — chunk ``i``'s wire starts only after its
compress finishes *and* the previous chunk's wire slot frees, and stage-④
decode of chunk ``i`` starts at its arrival (when the slowest sender's
matching chunk has cleared the wire).  This is the paper's future-work
NCCL integration priced end to end, with honest per-chunk stall
accounting instead of an analytic first/last-chunk correction.  Chunk
wire events are priced at each chunk's *actual byte share* of the
collective, conserving per-rank wire totals — so the pipelined makespan
never exceeds the sequential layout, never drops below the
``max(compute, wire)`` floor, and degenerates to the single-collective
model at one chunk, for arbitrary payload layouts.  With even splits
(single indivisible buffers, whose k slices genuinely are equal shares)
the makespan is additionally monotone non-increasing in the chunk count;
honestly uneven shares can trade that away.  The chunk-pipeline property
tests pin all of these laws.

``overlap_compute_seconds`` slots rank-local compute (e.g. the trainer's
bottom-MLP backward kernels) between the compress and decode stages on
the ``compute`` stream, so an exchange issued *before* that compute
overlaps it cross-stage on the wire.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.dist.timeline import COMM_STREAM, COMPUTE_STREAM, EventCategory
from repro.obs.runtime import OBS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.dist.simulator import ClusterSimulator

__all__ = ["Communicator", "payload_nbytes"]


def payload_nbytes(payload: object) -> int:
    """Wire size of one buffer: arrays by ``nbytes``, byte strings by
    length, lists/tuples of buffers by the sum of their parts."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, memoryview):
        return payload.nbytes  # len() would count items, not bytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(part) for part in payload)
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


class Communicator:
    """Exact in-process collectives billed against the simulated network."""

    def __init__(self, simulator: "ClusterSimulator"):
        self.simulator = simulator
        self._exchange_counter = 0

    @property
    def n_ranks(self) -> int:
        return self.simulator.n_ranks

    # ------------------------------------------------------ observability

    @staticmethod
    def _obs_stage(stage: str, seconds: float, nbytes: int | None = None) -> None:
        """Record one stage's charged wire/device seconds (summed over the
        ranks that pay them) and, when known, its bytes on the wire."""
        reg = OBS.registry
        reg.counter(
            "comm_seconds_total",
            "charged seconds per exchange stage, summed over ranks",
        ).inc(seconds, stage=stage)
        if nbytes is not None:
            reg.counter(
                "comm_bytes_total", "bytes on the wire per exchange stage"
            ).inc(nbytes, stage=stage)

    @staticmethod
    def _wire_nbytes(byte_matrix: np.ndarray) -> int:
        """Off-diagonal byte total — self-destined slices never hit the wire."""
        return int(byte_matrix.sum() - np.trace(byte_matrix))

    def _check_square(self, sendbufs: Sequence[Sequence[object]]) -> None:
        n = self.n_ranks
        if len(sendbufs) != n:
            raise ValueError(f"expected {n} send-buffer rows, got {len(sendbufs)}")
        for src, row in enumerate(sendbufs):
            if len(row) != n:
                raise ValueError(f"rank {src} posted {len(row)} buffers, expected {n}")

    def _check_entries(
        self,
        sendbufs: Sequence[Sequence[object]],
        entries_per_pair: int | np.ndarray,
    ) -> None:
        """Posted payload batches must match the advertised metadata counts.

        A sender whose ``sendbufs[src][dst]`` sequence disagrees with its
        ``entries_per_pair[src, dst]`` metadata record count would make
        the receiver mis-slice the batch — fail loudly with the rank and
        both counts instead of a downstream KeyError/IndexError.
        """
        if np.isscalar(entries_per_pair):
            return
        entries = np.asarray(entries_per_pair)
        for src, row in enumerate(sendbufs):
            for dst, entry in enumerate(row):
                if not isinstance(entry, (list, tuple)):
                    continue
                expected = int(entries[src, dst])
                if expected and len(entry) != expected:
                    raise ValueError(
                        f"rank {src} posted {len(entry)} payload(s) for rank "
                        f"{dst} but advertised {expected} metadata "
                        f"entr{'y' if expected == 1 else 'ies'}; senders must "
                        "post exactly one payload per metadata record"
                    )

    def _byte_matrix(self, sendbufs: Sequence[Sequence[object]]) -> np.ndarray:
        n = self.n_ranks
        matrix = np.zeros((n, n), dtype=np.int64)
        for src in range(n):
            for dst in range(n):
                matrix[src, dst] = payload_nbytes(sendbufs[src][dst])
        return matrix

    def _atomic_sizes(
        self, sendbufs: Sequence[Sequence[object]]
    ) -> list[list[list[int] | int]]:
        """Per-(src, dst) payload sizes: a *sequence* payload yields the
        list of its slices' sizes (slice boundaries constrain chunking), a
        single indivisible buffer a bare int (the wire may cut it
        anywhere).  One traversal serves both the byte matrix and the
        chunk byte shares."""
        n = self.n_ranks
        return [
            [
                [payload_nbytes(part) for part in buf]
                if isinstance(buf, (list, tuple))
                else payload_nbytes(buf)
                for buf in (sendbufs[src][dst] for dst in range(n))
            ]
            for src in range(n)
        ]

    # --------------------------------------------------------- all-to-all

    def all_to_all(
        self,
        sendbufs: Sequence[Sequence[object]],
        category: str = EventCategory.ALLTOALL_FWD,
    ) -> list[list[object]]:
        """Exchange ``sendbufs[src][dst]`` -> ``recvbufs[dst][src]``.

        Payloads (arrays, byte strings, or sequences thereof) are handed
        over untouched, so the data path is exact; the wire time of the
        full variable-size exchange is charged once to all ranks under
        ``category``.
        """
        self._check_square(sendbufs)
        n = self.n_ranks
        matrix = self._byte_matrix(sendbufs)
        seconds = self.simulator.network.all_to_all_time(matrix)
        self.simulator.collective(seconds, category)
        if OBS.enabled:
            self._obs_stage("payload", seconds * n, self._wire_nbytes(matrix))
        return [[sendbufs[src][dst] for src in range(n)] for dst in range(n)]

    def all_to_all_bytes(
        self,
        byte_matrix: np.ndarray,
        category: str = EventCategory.ALLTOALL_FWD,
        *,
        overlap_compute_seconds: Sequence[float] | None = None,
        overlap_compute_category: str = EventCategory.BOTTOM_MLP_BWD,
    ) -> float:
        """Charge the wire time of a variable-size all-to-all *without*
        moving data — for exchanges whose numerics the caller shortcuts
        (e.g. the trainer's uncompressed gradient all-to-all, where every
        rank's contribution is already computed in process).

        With ``overlap_compute_seconds`` the exchange overlaps cross-stage:
        the wire is charged on every rank's ``comm`` stream (released at
        the usual all-ranks barrier, identical spans) while the given
        rank-local compute runs concurrently on each ``compute`` stream —
        the trainer's issue-the-exchange-then-launch-kernels discipline.
        Returns the wire's common end time either way."""
        matrix = np.asarray(byte_matrix)
        n = self.n_ranks
        if matrix.shape != (n, n):
            raise ValueError(
                f"byte matrix shape {matrix.shape} does not match {n} ranks"
            )
        seconds = self.simulator.network.all_to_all_time(matrix)
        if OBS.enabled:
            self._obs_stage("payload", seconds * n, self._wire_nbytes(matrix))
        if overlap_compute_seconds is None:
            return self.simulator.collective(seconds, category)
        overlap_compute = self._per_rank_seconds(
            overlap_compute_seconds, "overlap_compute_seconds"
        )
        sim = self.simulator
        release = sim.makespan()  # every rank's send data must exist
        end = release + seconds
        for rank in range(n):
            sim.stream_compute(
                rank, seconds, category, COMM_STREAM, not_before=release
            )
            if overlap_compute[rank] > 0.0:
                sim.stream_compute(
                    rank, overlap_compute[rank], overlap_compute_category, COMPUTE_STREAM
                )
            sim.sync(rank)
        return end

    def _metadata_seconds(
        self, metadata_bytes_per_entry: int, entries_per_pair
    ) -> tuple[float, bool]:
        """Stage-② wire time and whether the round is skipped outright.
        ``entries_per_pair`` may be a scalar (every ordered pair carries
        the same record count) or an ``n x n`` matrix of per-pair record
        counts; an all-zero matrix skips the round entirely (e.g. a
        gradient exchange with self-describing payloads only)."""
        if metadata_bytes_per_entry <= 0:
            raise ValueError(
                f"metadata_bytes_per_entry must be > 0, got {metadata_bytes_per_entry!r}"
            )
        if np.isscalar(entries_per_pair):
            if entries_per_pair <= 0:
                raise ValueError(
                    f"entries_per_pair must be > 0, got {entries_per_pair!r}"
                )
            seconds = self.simulator.network.uniform_all_to_all_time(
                metadata_bytes_per_entry * entries_per_pair, self.n_ranks
            )
            return seconds, False
        entries = np.asarray(entries_per_pair)
        n = self.n_ranks
        if entries.shape != (n, n):
            raise ValueError(
                f"entries_per_pair matrix shape {entries.shape} does not match {n} ranks"
            )
        if (entries < 0).any():
            raise ValueError("entries_per_pair matrix entries must be >= 0")
        if not entries.any():
            return 0.0, True
        seconds = self.simulator.network.all_to_all_time(
            metadata_bytes_per_entry * entries.astype(np.float64)
        )
        return seconds, False

    def compressed_all_to_all(
        self,
        sendbufs: Sequence[Sequence[object]],
        metadata_bytes_per_entry: int = 16,
        entries_per_pair: int | np.ndarray = 1,
        category: str = EventCategory.ALLTOALL_FWD,
        *,
        overlap: bool = False,
        compress_seconds: Sequence[float] | None = None,
        decompress_seconds: Sequence[float] | None = None,
        chunks_per_rank: int | Sequence[int] | None = None,
        compress_category: str = EventCategory.COMPRESS,
        decompress_category: str = EventCategory.DECOMPRESS,
        overlap_compute_seconds: Sequence[float] | None = None,
        overlap_compute_category: str = EventCategory.BOTTOM_MLP_BWD,
    ) -> list[list[object]]:
        """Stages ①-④: compression, metadata round, payloads, decompression.

        Each ordered pair first exchanges ``entries_per_pair`` metadata
        records of ``metadata_bytes_per_entry`` bytes (compressed size +
        codec id per slice), charged as :data:`EventCategory.METADATA`;
        the variable-size payload exchange follows.  ``entries_per_pair``
        may be an ``n x n`` per-pair count matrix; all zeros skips the
        metadata round (an exchange with self-describing framing only).

        When ``compress_seconds`` / ``decompress_seconds`` give per-rank
        stage-①/④ device times, the communicator charges them too — the
        single entry point for the whole compressed exchange, so trainers
        never touch the simulator's clocks for communication:

        * ``overlap=False`` — strictly sequential: every rank compresses,
          the cluster exchanges metadata then payloads, every rank
          decompresses.
        * ``overlap=True`` — chunk-level pipeline: per-rank stage ① is
          split into ``chunks_per_rank`` (scalar or per-rank) real chunk
          kernels, and each chunk gets its own wire event on the rank's
          ``comm`` stream, priced at the chunk's *actual byte share* of
          the collective (chunks partition the rank's posted payloads in
          destination order, so per-slice payload batches yield honestly
          uneven — typically tail-light — chunk wire times).  Chunk
          ``i``'s wire starts once its compress finished and the previous
          chunk's wire slot freed; decode of chunk ``i`` starts at its
          arrival.  Compression/decompression
          run on each rank's ``compute`` stream, the wire on the ``comm``
          stream, so the chrome trace renders the chunk pipeline on
          separate lanes, every chunk event tagged with
          ``{"exchange", "chunk", "chunks"}`` args.

        ``overlap_compute_seconds`` (overlap mode only) charges rank-local
        compute between the compress and decode stages on each ``compute``
        stream — the cross-stage overlap hook: an exchange issued before
        e.g. the bottom-MLP backward kernels hides its wire behind them.
        """
        self._check_square(sendbufs)
        self._check_entries(sendbufs, entries_per_pair)
        sim = self.simulator
        n = self.n_ranks
        meta_seconds, skip_metadata = self._metadata_seconds(
            metadata_bytes_per_entry, entries_per_pair
        )
        atomic_sizes = self._atomic_sizes(sendbufs)
        byte_matrix = np.array(
            [
                [sum(entry) if isinstance(entry, list) else entry for entry in row]
                for row in atomic_sizes
            ],
            dtype=np.int64,
        )
        payload_seconds = sim.network.all_to_all_time(byte_matrix)
        compress = self._per_rank_seconds(compress_seconds, "compress_seconds")
        decompress = self._per_rank_seconds(decompress_seconds, "decompress_seconds")
        chunks = self._per_rank_chunks(chunks_per_rank)
        overlap_compute = (
            None
            if overlap_compute_seconds is None
            else self._per_rank_seconds(overlap_compute_seconds, "overlap_compute_seconds")
        )

        if OBS.enabled:
            self._obs_stage("compress", sum(compress))
            if not skip_metadata:
                if np.isscalar(entries_per_pair):
                    meta_bytes = int(
                        metadata_bytes_per_entry * entries_per_pair * n * (n - 1)
                    )
                else:
                    meta_bytes = int(
                        metadata_bytes_per_entry
                        * self._wire_nbytes(np.asarray(entries_per_pair))
                    )
                self._obs_stage("metadata", meta_seconds * n, meta_bytes)
            self._obs_stage(
                "payload", payload_seconds * n, self._wire_nbytes(byte_matrix)
            )
            self._obs_stage("decompress", sum(decompress))
            OBS.registry.counter(
                "comm_exchanges_total", "compressed all-to-all exchanges"
            ).inc(1, mode="overlapped" if overlap else "sequential")

        if not overlap:
            for rank in range(n):
                if compress[rank] > 0.0:
                    sim.compute(rank, compress[rank], compress_category)
            if not skip_metadata:
                sim.collective(meta_seconds, EventCategory.METADATA)
            sim.collective(payload_seconds, category)
            for rank in range(n):
                if decompress[rank] > 0.0:
                    sim.compute(rank, decompress[rank], decompress_category)
                if overlap_compute is not None and overlap_compute[rank] > 0.0:
                    sim.compute(rank, overlap_compute[rank], overlap_compute_category)
        else:
            self._overlapped_exchange(
                meta_seconds,
                payload_seconds,
                compress,
                decompress,
                chunks,
                wire_fractions=self._chunk_wire_fractions(atomic_sizes, chunks),
                skip_metadata=skip_metadata,
                category=category,
                compress_category=compress_category,
                decompress_category=decompress_category,
                overlap_compute=overlap_compute,
                overlap_compute_category=overlap_compute_category,
            )
        return [[sendbufs[src][dst] for src in range(n)] for dst in range(n)]

    def _per_rank_seconds(self, values, name: str) -> list[float]:
        if values is None:
            return [0.0] * self.n_ranks
        values = [float(v) for v in values]
        if len(values) != self.n_ranks:
            raise ValueError(f"{name} must have one entry per rank, got {len(values)}")
        if any(v < 0 for v in values):
            raise ValueError(f"{name} entries must be >= 0")
        return values

    def _chunk_wire_fractions(
        self, atomic_sizes: list[list[list[int] | int]], chunks: list[int]
    ) -> list[list[float]]:
        """Per-rank per-chunk share of the payload collective's wire time.

        When a rank's row holds *sequences* of per-slice buffers (the
        trainer's per-table compressed payloads, which are self-describing
        and must ship whole), its ``k`` chunks are contiguous groups of
        those atomic slices in destination order, and each chunk's share
        is the actual bytes its group puts on the wire (self-destined
        slices count zero) — last chunks are often lighter, which sharpens
        the pipeline tail versus the former even ``payload_seconds / k``
        split.  A row of only indivisible buffers keeps equal-byte chunks:
        the wire may cut an opaque buffer anywhere, so its ``k`` slices
        genuinely are equal shares — and that preserves the chunk-count
        monotonicity law for the single-buffer shape.  Every rank's
        fractions sum to 1, so the per-rank wire total — and with it the
        sequential/analytic makespan bounds and the ``k = 1`` degeneracy —
        is unchanged for every layout.
        """
        n = self.n_ranks
        fractions: list[list[float]] = []
        for rank in range(n):
            k = chunks[rank]
            row = atomic_sizes[rank]
            if not any(isinstance(entry, list) for entry in row):
                fractions.append([1.0 / k] * k)
                continue
            parts: list[int] = []  # atomic wire sizes, destination order
            for dst in range(n):
                entry = row[dst]
                sizes = entry if isinstance(entry, list) else [entry]
                parts.extend(sizes if dst != rank else [0] * len(sizes))
            total = sum(parts)
            if total == 0 or len(parts) < k:
                # Nothing on the wire, or buffers sliced finer than their
                # atomic count: equal-byte chunks are the actual shares.
                fractions.append([1.0 / k] * k)
                continue
            bounds = [math.ceil(j * len(parts) / k) for j in range(k + 1)]
            fractions.append(
                [sum(parts[bounds[j] : bounds[j + 1]]) / total for j in range(k)]
            )
        return fractions

    def _per_rank_chunks(self, chunks_per_rank) -> list[int]:
        if chunks_per_rank is None:
            return [self.n_ranks] * self.n_ranks  # one chunk per destination
        if np.isscalar(chunks_per_rank):
            chunks_per_rank = [chunks_per_rank] * self.n_ranks
        chunks = [int(c) for c in chunks_per_rank]
        if len(chunks) != self.n_ranks:
            raise ValueError(
                f"chunks_per_rank must have one entry per rank, got {len(chunks)}"
            )
        if any(c < 1 for c in chunks):
            raise ValueError("chunks_per_rank entries must be >= 1")
        return chunks

    def _overlapped_exchange(
        self,
        meta_seconds: float,
        payload_seconds: float,
        compress: list[float],
        decompress: list[float],
        chunks: list[int],
        *,
        wire_fractions: list[list[float]] | None = None,
        skip_metadata: bool,
        category: str,
        compress_category: str,
        decompress_category: str,
        overlap_compute: list[float] | None = None,
        overlap_compute_category: str = EventCategory.BOTTOM_MLP_BWD,
    ) -> None:
        """Charge the chunk-level pipelined exchange.

        Per rank ``r`` with ``k = chunks[r]``: stage ① runs as ``k`` equal
        chunk kernels on the ``compute`` stream; stage ③ runs as ``k``
        chunk wire events on the ``comm`` stream — chunk ``j`` priced at
        its ``wire_fractions[r][j]`` byte share of the collective (equal
        shares when no fractions are given) and released when its compress
        finished (the stream clock serializes the wire slots); stage ④
        decodes chunk ``j`` once the slowest sender's matching chunk has
        cleared the wire.  The metadata round goes out once every rank's
        first chunk exists (the first sizes are known).

        Invariants the chunk-pipeline property tests pin: the makespan
        never exceeds the sequential layout's ``max(compress) + meta +
        payload + max(decompress)`` and equals it at one chunk — for any
        ``wire_fractions`` (per-rank wire totals are conserved).  With
        even splits the makespan is additionally monotone non-increasing
        in the chunk count; honestly uneven byte shares can trade that
        away for a front-loaded chunk.
        """
        sim = self.simulator
        n = self.n_ranks
        obs_on = OBS.enabled
        eid = self._exchange_counter
        self._exchange_counter += 1
        starts = [sim.sync(rank) for rank in range(n)]
        ledger = sim.timeline.events

        # Stage ①: k real compression chunk kernels per rank.  Each chunk
        # compresses the same slices its wire event ships, so chunk kernel
        # time follows the same byte shares (compressed bytes as the proxy
        # for the slices' input volume); even split otherwise.  The ledger
        # index of every chunk kernel is kept so the wire/decode events
        # below can carry exact release edges.
        comp_ends: list[list[float]] = []
        comp_idx: list[list[int] | None] = []
        for rank in range(n):
            k = chunks[rank]
            if compress[rank] > 0.0:
                shares = (
                    wire_fractions[rank] if wire_fractions is not None else [1.0 / k] * k
                )
                ends = []
                idx = []
                for j in range(k):
                    ends.append(
                        sim.stream_compute(
                            rank,
                            compress[rank] * shares[j],
                            compress_category,
                            COMPUTE_STREAM,
                            args={"exchange": eid, "chunk": j, "chunks": k},
                        )
                    )
                    idx.append(len(ledger) - 1)
                comp_idx.append(idx)
            else:
                ends = [starts[rank]] * k
                comp_idx.append(None)
            comp_ends.append(ends)

        # Stage ②: the size table goes out once every rank's first chunk
        # is compressed (identical spans on every comm stream).  Its
        # release edges are exactly those first chunks.
        first_chunk_edges = [idx[0] for idx in comp_idx if idx is not None]
        meta_release = max(comp_ends[rank][0] for rank in range(n))
        meta_end = meta_release
        meta_end_idx: int | None = None
        if not skip_metadata:
            for rank in range(n):
                meta_end = sim.stream_compute(
                    rank,
                    meta_seconds,
                    EventCategory.METADATA,
                    COMM_STREAM,
                    not_before=meta_release,
                    args={"exchange": eid},
                    release_edges=first_chunk_edges or None,
                )
                meta_end_idx = len(ledger) - 1

        # Stage ③: per-rank injection-port pipeline — chunk j's wire
        # starts once its compress finished and the previous chunk's wire
        # slot freed (the comm stream clock enforces the latter).  Release
        # edges: the chunk's own compress kernel plus the metadata round
        # (or, with metadata skipped, the first chunks its release time
        # was computed from).
        wire_ends: list[list[float]] = []
        wire_idx: list[list[int]] = []
        for rank in range(n):
            k = chunks[rank]
            shares = (
                wire_fractions[rank] if wire_fractions is not None else [1.0 / k] * k
            )
            ends = []
            idx = []
            for j in range(k):
                edges = [] if meta_end_idx is None else [meta_end_idx]
                if meta_end_idx is None:
                    edges.extend(first_chunk_edges)
                if comp_idx[rank] is not None:
                    edges.append(comp_idx[rank][j])
                ends.append(
                    sim.stream_compute(
                        rank,
                        payload_seconds * shares[j],
                        category,
                        COMM_STREAM,
                        not_before=max(meta_end, comp_ends[rank][j]),
                        args={"exchange": eid, "chunk": j, "chunks": k},
                        release_edges=edges or None,
                    )
                )
                idx.append(len(ledger) - 1)
            wire_ends.append(ends)
            wire_idx.append(idx)

        # Cross-stage hook: rank-local compute issued right after the
        # compression kernels, so the wire (and decode stalls) hide it.
        oc_ends: list[float | None] = [None] * n
        if overlap_compute is not None:
            for rank in range(n):
                if overlap_compute[rank] > 0.0:
                    oc_ends[rank] = sim.stream_compute(
                        rank,
                        overlap_compute[rank],
                        overlap_compute_category,
                        COMPUTE_STREAM,
                    )

        # Stage ④: decode of chunk j starts at its arrival — when the
        # slowest sender's fraction-matched chunk has cleared the wire.
        # Decode chunks split evenly: a receiver's chunk j holds slices
        # from *every* sender, and the sender-side byte shares don't
        # determine the per-receiver split.
        dec_intervals: list[list[tuple[float, float]]] = [[] for _ in range(n)]
        for rank in range(n):
            k = chunks[rank]
            if decompress[rank] > 0.0:
                per_chunk = decompress[rank] / k
                for j in range(k):
                    matched = [
                        min(
                            math.ceil((j + 1) * chunks[src] / k) - 1,
                            chunks[src] - 1,
                        )
                        for src in range(n)
                    ]
                    arrival = max(
                        wire_ends[src][matched[src]] for src in range(n)
                    )
                    dec_end = sim.stream_compute(
                        rank,
                        per_chunk,
                        decompress_category,
                        COMPUTE_STREAM,
                        not_before=arrival,
                        args={"exchange": eid, "chunk": j, "chunks": k},
                        release_edges=[
                            wire_idx[src][matched[src]] for src in range(n)
                        ],
                    )
                    if obs_on:
                        dec_intervals[rank].append((dec_end - per_chunk, dec_end))
        if obs_on:
            self._obs_overlap_accounting(
                payload_seconds,
                compress,
                overlap_compute,
                chunks,
                wire_fractions,
                comp_ends,
                wire_ends,
                oc_ends,
                dec_intervals,
            )
        # The exchange hands decoded data back at a device-wide barrier.
        for rank in range(n):
            sim.sync(rank)

    def _obs_overlap_accounting(
        self,
        payload_seconds: float,
        compress: list[float],
        overlap_compute: list[float] | None,
        chunks: list[int],
        wire_fractions: list[list[float]] | None,
        comp_ends: list[list[float]],
        wire_ends: list[list[float]],
        oc_ends: list[float | None],
        dec_intervals: list[list[tuple[float, float]]],
    ) -> None:
        """Per-exchange stall-vs-hidden wire accounting (obs-enabled only).

        ``stall`` is wire-port idle time between consecutive chunk events
        (the wire waiting on compression); ``hidden`` is the chunked wire
        time that ran while this exchange kept the rank's compute stream
        busy — the same definitions ``chunk_pipeline_report`` applies to
        the whole timeline, charged here as running counters.
        """
        from repro.profiling.breakdown import _merge_intervals, _overlap_with_merged

        stall = 0.0
        hidden = 0.0
        for rank in range(len(chunks)):
            k = chunks[rank]
            shares = (
                wire_fractions[rank] if wire_fractions is not None else [1.0 / k] * k
            )
            wire_iv = [
                (wire_ends[rank][j] - payload_seconds * shares[j], wire_ends[rank][j])
                for j in range(k)
            ]
            stall += sum(
                max(0.0, wire_iv[j][0] - wire_iv[j - 1][1]) for j in range(1, k)
            )
            compute_iv = list(dec_intervals[rank])
            if compress[rank] > 0.0:
                compute_iv.extend(
                    (comp_ends[rank][j] - compress[rank] * shares[j], comp_ends[rank][j])
                    for j in range(k)
                )
            if oc_ends[rank] is not None and overlap_compute is not None:
                compute_iv.append(
                    (oc_ends[rank] - overlap_compute[rank], oc_ends[rank])
                )
            merged = _merge_intervals(compute_iv)
            hidden += sum(_overlap_with_merged(iv, merged) for iv in wire_iv)
        reg = OBS.registry
        reg.counter(
            "comm_wire_stall_seconds_total",
            "wire idle between chunks of pipelined exchanges (waiting on compression)",
        ).inc(stall)
        reg.counter(
            "comm_wire_hidden_seconds_total",
            "chunked wire seconds overlapped by same-rank compute",
        ).inc(hidden)

    # --------------------------------------------------------- all-reduce

    def all_reduce(
        self,
        arrays: Sequence[np.ndarray],
        category: str = EventCategory.ALLREDUCE,
    ) -> list[np.ndarray]:
        """Sum one array per rank; every rank receives the identical total.

        The reduction runs in fixed rank order so the result is
        deterministic (and equals the single-process sum bit for bit).
        """
        if len(arrays) != self.n_ranks:
            raise ValueError(f"expected {self.n_ranks} arrays, got {len(arrays)}")
        shapes = {a.shape for a in arrays}
        if len(shapes) != 1:
            raise ValueError(f"all-reduce arrays must share a shape, got {sorted(shapes)}")
        dtypes = {a.dtype for a in arrays}
        if len(dtypes) != 1:
            raise ValueError(
                f"all-reduce arrays must share a dtype, got {sorted(map(str, dtypes))}"
            )
        total = arrays[0].copy()
        for contribution in arrays[1:]:
            total += contribution
        seconds = self.simulator.network.all_reduce_time(total.nbytes, self.n_ranks)
        self.simulator.collective(seconds, category)
        if OBS.enabled:
            self._obs_stage(
                "allreduce", seconds * self.n_ranks, int(total.nbytes) * self.n_ranks
            )
        return [total.copy() for _ in range(self.n_ranks)]

    def _all_reduce_seconds(self, nbytes: float, algorithm: str) -> float:
        """Wire time of one all-reduce under the named schedule."""
        network = self.simulator.network
        if algorithm == "ring":
            return network.all_reduce_time(nbytes, self.n_ranks)
        if algorithm == "hierarchical":
            return network.hierarchical_all_reduce_time(nbytes, self.n_ranks)
        if algorithm == "switch":
            return network.switch_all_reduce_time(nbytes, self.n_ranks)
        raise ValueError(
            f"algorithm must be 'ring', 'hierarchical', or 'switch', got {algorithm!r}"
        )

    def all_reduce_bytes(
        self,
        nbytes: float,
        category: str = EventCategory.ALLREDUCE,
        algorithm: str = "ring",
    ) -> float:
        """Charge an all-reduce of ``nbytes`` without moving data (for
        reductions whose numerics the caller computes in process, e.g. the
        trainer's replicated data-parallel MLP gradients).  ``algorithm``
        picks the flat ``"ring"``, the topology-aware ``"hierarchical"``,
        or the in-network ``"switch"`` schedule (the latter degenerates to
        hierarchical without aggregation nodes).  Returns the common end
        time."""
        seconds = self._all_reduce_seconds(nbytes, algorithm)
        if OBS.enabled:
            self._obs_stage(
                "allreduce", seconds * self.n_ranks, int(nbytes) * self.n_ranks
            )
        return self.simulator.collective(seconds, category)

    def _aggregation_hop_equivalents(self, algorithm: str) -> float:
        """Full-payload decode-sum-recode passes on the critical path of a
        *non*-homomorphic compressed all-reduce — the round-trips a
        homomorphic codec removes.

        Ring: each of the ``n - 1`` reduce-scatter steps re-codes a
        ``1/n`` shard → ``(n-1)/n`` payload equivalents.  Hierarchical:
        the intra reduce-scatter plus the inter rail rings →
        ``(g-1)/g + (N-1)/(N g)``.  Switch: the node and spine aggregators
        each decode/recode the full payload → ``2``.
        """
        n = self.n_ranks
        if n <= 1:
            return 0.0
        topology = self.simulator.network.topology
        if algorithm == "switch" and topology is not None and topology.switch_aggregation:
            return 2.0
        if algorithm in ("hierarchical", "switch") and topology is not None:
            g = topology._balanced_gpus_per_node()
            n_nodes = topology.n_nodes
            total = (g - 1) / g if g > 1 else 0.0
            if n_nodes > 1:
                total += (n_nodes - 1) / (n_nodes * g)
            return total
        return (n - 1) / n

    def compressed_all_reduce(
        self,
        arrays: Sequence[np.ndarray],
        codec: str = "quant_sum",
        error_bound: float | None = None,
        category: str = EventCategory.ALLREDUCE,
        *,
        algorithm: str = "ring",
        in_network: bool = True,
        encode_seconds: Sequence[float] | None = None,
        decode_seconds: Sequence[float] | None = None,
        pool: object | None = None,
    ) -> list[np.ndarray]:
        """All-reduce whose payloads are aggregated *in compressed space*.

        Each rank encodes its contribution once with a homomorphic codec
        (``"quant_sum"`` / ``"count_sum"``), intermediate hops sum the
        payloads directly via :func:`repro.compression.agg_sum` — no
        decode anywhere in the reduction — and the final aggregate is
        decoded exactly once per rank.  The decoded total is therefore
        independent of hop count and fold order (bit-identical for
        ``count_sum``; within the closed-form composed bound
        ``n_ranks * error_bound`` for ``quant_sum``), and the wire carries
        compressed bytes end to end.

        Timing: the collective is priced at the *largest* payload seen on
        any hop under the chosen schedule (``"ring"``, ``"hierarchical"``,
        or ``"switch"`` — the in-network aggregation tree, which
        degenerates exactly to hierarchical when the topology has no
        aggregation nodes).  ``encode_seconds`` / ``decode_seconds`` give
        per-rank codec device times, charged once at the leaves and once
        at the end.  ``in_network=False`` models the *baseline* discipline
        for a codec that cannot aggregate: every intermediate hop must
        decode, sum, and re-encode, so the collective additionally pays
        the hop-equivalent codec time on its critical path — the pipelined
        makespan is never below the ``in_network=True`` one, which the
        property tests pin.

        ``pool`` (a :class:`~repro.compression.parallel.BitstreamPool`)
        routes the final decode through a pooled scratch lease instead of
        a fresh per-call output allocation.

        Returns one decoded total per rank (fresh arrays, original shape).
        """
        from repro.compression.homomorphic import agg_fold
        from repro.compression.registry import get_compressor

        n = self.n_ranks
        if len(arrays) != n:
            raise ValueError(f"expected {n} arrays, got {len(arrays)}")
        shapes = {a.shape for a in arrays}
        if len(shapes) != 1:
            raise ValueError(f"all-reduce arrays must share a shape, got {sorted(shapes)}")
        dtypes = {a.dtype for a in arrays}
        if len(dtypes) != 1:
            raise ValueError(
                f"all-reduce arrays must share a dtype, got {sorted(map(str, dtypes))}"
            )
        if algorithm not in ("ring", "hierarchical", "switch"):
            raise ValueError(
                f"unknown all-reduce algorithm {algorithm!r}; "
                "expected 'ring', 'hierarchical', or 'switch'"
            )
        compressor = get_compressor(codec)
        if not getattr(compressor, "homomorphic", False):
            raise ValueError(
                f"codec {codec!r} is not homomorphic; compressed_all_reduce needs "
                "payloads that sum in compressed space (e.g. 'quant_sum', 'count_sum')"
            )
        shape = arrays[0].shape
        flat = [np.ascontiguousarray(a).reshape(1, -1) for a in arrays]
        bound = error_bound if compressor.error_bounded else None
        leaves = [compressor.compress(a, bound) for a in flat]
        final = agg_fold(leaves)

        encode = self._per_rank_seconds(encode_seconds, "encode_seconds")
        decode = self._per_rank_seconds(decode_seconds, "decode_seconds")
        hop_nbytes = max(len(final), max(len(p) for p in leaves))
        wire_seconds = self._all_reduce_seconds(hop_nbytes, algorithm)
        collective_seconds = wire_seconds
        if not in_network:
            collective_seconds += self._aggregation_hop_equivalents(algorithm) * (
                max(encode) + max(decode)
            )

        sim = self.simulator
        for rank in range(n):
            if encode[rank] > 0.0:
                sim.compute(rank, encode[rank], EventCategory.COMPRESS)
        sim.collective(collective_seconds, category)
        for rank in range(n):
            if decode[rank] > 0.0:
                sim.compute(rank, decode[rank], EventCategory.DECOMPRESS)

        if OBS.enabled:
            self._obs_stage(
                "homomorphic_allreduce", collective_seconds * n, hop_nbytes * n
            )
            reg = OBS.registry
            reg.counter(
                "comm_homomorphic_aggregated_bytes_total",
                "compressed payload bytes summed without decoding",
            ).inc(sum(len(p) for p in leaves), codec=codec, algorithm=algorithm)
            reg.counter(
                "comm_homomorphic_hops_saved_total",
                "decode-sum-recode round-trips removed by in-network aggregation",
            ).inc(n - 1 if in_network else 0, codec=codec, algorithm=algorithm)

        if pool is not None:
            lease, view = compressor.decompress_into(final, pool=pool)
            total = view.copy()
            del view  # drop the arena view so release recycles cleanly
            lease.release()
        else:
            total = compressor.decompress(final)
        total = total.reshape(shape)
        return [total.copy() for _ in range(n)]

    # ---------------------------------------------------------- broadcast

    def broadcast(self, payload: object, root: int = 0, category: str = EventCategory.METADATA) -> list[object]:
        """Hand ``root``'s payload to every rank (tree: ``ceil(log2 n)``
        latency rounds, full payload per hop).

        Mutable payloads are copied per rank — as with :meth:`all_reduce`,
        no two ranks may alias one buffer."""
        if not 0 <= root < self.n_ranks:
            raise ValueError(f"root must be in [0, {self.n_ranks}), got {root!r}")
        n = self.n_ranks
        if n > 1:
            nbytes = payload_nbytes(payload)
            rounds = int(np.ceil(np.log2(n)))
            seconds = rounds * self.simulator.network.point_to_point_time(nbytes)
            self.simulator.collective(seconds, category)
            if OBS.enabled:
                self._obs_stage("broadcast", seconds * n, nbytes * rounds)

        def deliver() -> object:
            if isinstance(payload, np.ndarray):
                return payload.copy()
            if isinstance(payload, bytearray):
                return bytearray(payload)
            return payload  # bytes/memoryview and other immutables

        return [deliver() for _ in range(n)]
