"""GPU cost model: kernel-launch overhead + utilization-scaled throughput.

Every simulated device operation is priced with the same three-part recipe
the paper's measurements exhibit (Section IV, Fig. 15): a fixed kernel
launch overhead, a peak rate (FLOPS for GEMMs, bytes/s for streaming
kernels), and a *utilization* factor that rises with the work size —
small kernels leave most of the device idle, which is exactly why the
paper's fused single-kernel buffer optimization wins at small chunk sizes.

The model is deliberately analytic: it prices operations, it does not run
them.  Numerics are computed exactly elsewhere (:mod:`repro.dist.comm`);
only *time* flows through this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.utils.units import MB
from repro.utils.validation import check_positive

__all__ = ["GpuModel", "A100_LIKE"]


@dataclass(frozen=True)
class GpuModel:
    """Analytic single-device cost model.

    Parameters
    ----------
    kernel_launch_overhead:
        Fixed host-side cost of launching one kernel, seconds.
    flops:
        Peak fp32 rate, FLOP/s.
    gemm_efficiency:
        Fraction of peak the training-step GEMMs achieve (small DLRM
        layers never saturate tensor cores).
    memory_bandwidth:
        Peak HBM bandwidth, bytes/s.
    gather_efficiency:
        Fraction of peak bandwidth an embedding gather/scatter achieves
        (random-access rows defeat coalescing).
    memcpy_bandwidth:
        Effective device-to-device copy bandwidth, bytes/s (read+write).
    saturation_bytes:
        Input size at which a streaming (compression-style) kernel reaches
        half of its peak throughput; see :meth:`utilization`.
    min_utilization:
        Floor on the utilization curve — even a tiny kernel keeps a few
        SMs busy, and an unbounded 1/x penalty would be unphysical.
    """

    name: str = "generic"
    kernel_launch_overhead: float = 4.5e-6
    flops: float = 19.5e12
    gemm_efficiency: float = 0.33
    memory_bandwidth: float = 1.555e12
    gather_efficiency: float = 0.1
    memcpy_bandwidth: float = 1.3e12
    saturation_bytes: float = 2.0 * MB
    min_utilization: float = 0.25

    def __post_init__(self) -> None:
        check_positive("kernel_launch_overhead", self.kernel_launch_overhead, strict=False)
        check_positive("flops", self.flops)
        check_positive("gemm_efficiency", self.gemm_efficiency)
        check_positive("memory_bandwidth", self.memory_bandwidth)
        check_positive("gather_efficiency", self.gather_efficiency)
        check_positive("memcpy_bandwidth", self.memcpy_bandwidth)
        check_positive("saturation_bytes", self.saturation_bytes)
        if not 0.0 < self.min_utilization <= 1.0:
            raise ValueError(f"min_utilization must be in (0, 1], got {self.min_utilization!r}")

    # ----------------------------------------------------------- primitives

    def utilization(self, nbytes: float) -> float:
        """Fraction of peak throughput a streaming kernel of ``nbytes``
        input achieves: ``n / (n + saturation_bytes)``, floored at
        :attr:`min_utilization`.  Monotonically increasing, ->1 for large
        inputs — so fusing chunks into one kernel raises utilization."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        if nbytes == 0:
            return self.min_utilization
        return max(self.min_utilization, nbytes / (nbytes + self.saturation_bytes))

    def throughput_kernel_time(self, nbytes: float, peak_throughput: float) -> float:
        """One kernel processing ``nbytes`` at a peak rate of
        ``peak_throughput`` bytes/s, derated by :meth:`utilization`."""
        check_positive("peak_throughput", peak_throughput)
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        if nbytes == 0:
            return self.kernel_launch_overhead
        return self.kernel_launch_overhead + nbytes / (peak_throughput * self.utilization(nbytes))

    def memcpy_time(self, nbytes: float) -> float:
        """Device-to-device copy of ``nbytes`` (DMA engine, no launch)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        return nbytes / self.memcpy_bandwidth

    # ------------------------------------------------------- training step

    def mlp_time(self, batch: int, sizes: Sequence[int]) -> float:
        """Forward time of an MLP with layer widths ``sizes`` (one GEMM
        per consecutive pair) on a ``batch``-row input.  The backward pass
        is conventionally charged at 2x this (two GEMMs per layer)."""
        check_positive("batch", batch)
        if len(sizes) < 2:
            raise ValueError(f"need at least input and output widths, got {list(sizes)}")
        total = 0.0
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            flop = 2.0 * batch * fan_in * fan_out
            total += self.kernel_launch_overhead + flop / (self.flops * self.gemm_efficiency)
        return total

    def lookup_time(self, batch: int, embedding_dim: int, n_tables: int) -> float:
        """Embedding gather (or scatter-update) of ``n_tables`` tables for
        a ``batch``-row global batch — memory-bound random access."""
        check_positive("batch", batch)
        check_positive("embedding_dim", embedding_dim)
        check_positive("n_tables", n_tables)
        nbytes = 4.0 * batch * embedding_dim * n_tables
        return self.kernel_launch_overhead + nbytes / (
            self.memory_bandwidth * self.gather_efficiency
        )

    def interaction_time(self, batch: int, n_features: int, embedding_dim: int) -> float:
        """Pairwise dot-product feature interaction (batched ``f x f``
        Gram matrix over ``embedding_dim``-wide features)."""
        check_positive("batch", batch)
        check_positive("n_features", n_features)
        check_positive("embedding_dim", embedding_dim)
        flop = float(batch) * n_features * n_features * embedding_dim
        return self.kernel_launch_overhead + flop / (self.flops * self.gemm_efficiency)


#: Default device: calibrated to the paper's A100 measurements — ~4.5 us
#: launch overhead, 19.5 TFLOPS fp32, ~1.5 TB/s HBM.  ``saturation_bytes``
#: is tuned for the *training-step* kernels; compression kernels saturate
#: later (several MB — see ``benchmarks/bench_fig15_buffer_opt.py``).
A100_LIKE = GpuModel(name="a100-like")
