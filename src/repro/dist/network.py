"""Network cost models: flat alpha-beta fabric and per-link topologies.

Classic ``alpha + n * beta`` pricing (Hockney): every message pays a fixed
per-hop ``latency`` (alpha) plus a bandwidth term (beta = 1/bandwidth).
Collectives compose the point-to-point model the standard way:

* **all-to-all** — with full-bisection fabric every rank sends and
  receives concurrently, so the exchange finishes when the *busiest* rank
  has moved its bytes: ``(n-1) * alpha + max_rank(bytes sent or received)
  / bandwidth``.  The byte matrix may be non-uniform (variable-size
  compressed payloads) — this is exactly the paper's stage-③ exchange.
* **ring all-reduce** — ``2 * (n-1)`` steps moving ``nbytes / n`` each:
  ``2 * (n-1) * alpha + 2 * (n-1)/n * nbytes / bandwidth``.

Real training clusters are not single fabrics: GPUs inside one node talk
over NVLink/NVSwitch-class links while nodes talk over InfiniBand — often
an order of magnitude slower.  :class:`Topology` captures that with
per-ordered-pair bandwidth/latency matrices (built from ``(n_nodes,
gpus_per_node, intra_link, inter_link)``), prices the all-to-all *per
shift phase* at the bottleneck link of each phase, and adds the
**hierarchical all-reduce** (intra-node reduce-scatter → inter-node rail
rings → intra-node all-gather) that beats the flat ring exactly when the
inter-node link is the bottleneck.

The default flat fabric is calibrated to the paper's evaluation setup: a
4 GB/s effective all-to-all (Section IV) with NVSwitch-class
(sub-microsecond) per-hop latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import GB
from repro.utils.validation import check_positive

__all__ = [
    "LinkSpec",
    "Topology",
    "NetworkModel",
    "PAPER_FABRIC",
    "NVLINK_LIKE",
    "IB_HDR_LIKE",
    "PCIE_LIKE",
]


@dataclass(frozen=True)
class LinkSpec:
    """One link class: bandwidth (bytes/s), per-message latency (s)."""

    bandwidth: float
    latency: float
    name: str = "link"

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_positive("latency", self.latency, strict=False)

    def oversubscribed(self, factor: float) -> "LinkSpec":
        """The same link class behind a ``factor``:1 oversubscribed switch
        tier: effective per-pair bandwidth divides by ``factor`` (latency
        unchanged) — the standard fat-tree taper of large training pods."""
        check_positive("factor", factor)
        return LinkSpec(
            bandwidth=self.bandwidth / factor,
            latency=self.latency,
            name=f"{self.name}/{factor:g}x",
        )


#: NVLink/NVSwitch-class intra-node link (A100 HGX: ~300 GB/s aggregate,
#: ~150 GB/s effective per direction, sub-microsecond hops).
NVLINK_LIKE = LinkSpec(bandwidth=150.0 * GB, latency=2e-7, name="nvlink")

#: HDR-InfiniBand-class inter-node link (200 Gb/s -> ~12.5 GB/s effective
#: per port after protocol overheads, microsecond-scale hops).
IB_HDR_LIKE = LinkSpec(bandwidth=12.5 * GB, latency=1.5e-6, name="ib-hdr")

#: PCIe-Gen3-x16-class host-mediated link (~16 GB/s raw -> ~8 GB/s
#: effective once staged through host memory without GPUDirect): the
#: inter-node class of commodity clouds and NVSwitch-less boxes.
PCIE_LIKE = LinkSpec(bandwidth=8.0 * GB, latency=1.2e-6, name="pcie")


class Topology:
    """Per-ordered-pair link map of a training cluster.

    ``bandwidth_matrix[src, dst]`` / ``latency_matrix[src, dst]`` price one
    message from ``src`` to ``dst``; ``node_ids[rank]`` records which node
    each rank lives on (for hierarchical collectives).  Diagonal entries
    are ignored — self-transfers are local.

    Build with :meth:`hierarchical` (the common NVLink-inside /
    IB-between-nodes shape) or :meth:`flat` (single fabric, equivalent to
    a plain :class:`NetworkModel`).
    """

    def __init__(
        self,
        bandwidth_matrix: np.ndarray,
        latency_matrix: np.ndarray,
        node_ids: np.ndarray | None = None,
        name: str = "custom",
        switch_aggregation: bool = False,
    ):
        # Copy (never alias) the inputs: they are frozen read-only below,
        # and freezing a caller's own array would poison it.
        bw = np.array(bandwidth_matrix, dtype=np.float64, copy=True)
        lat = np.array(latency_matrix, dtype=np.float64, copy=True)
        if bw.ndim != 2 or bw.shape[0] != bw.shape[1]:
            raise ValueError(f"bandwidth matrix must be square, got shape {bw.shape}")
        if lat.shape != bw.shape:
            raise ValueError(
                f"latency matrix shape {lat.shape} != bandwidth matrix shape {bw.shape}"
            )
        if (bw <= 0).any():
            raise ValueError("all pairwise bandwidths must be > 0")
        if (lat < 0).any():
            raise ValueError("all pairwise latencies must be >= 0")
        n = bw.shape[0]
        if node_ids is None:
            node_ids = np.zeros(n, dtype=np.int64)
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if node_ids.shape != (n,):
            raise ValueError(f"node_ids must have shape ({n},), got {node_ids.shape}")
        # Normalize arbitrary node labels to contiguous ids 0..k-1 (the
        # grouping is what matters; n_nodes/bincount assume dense labels).
        node_ids = np.unique(node_ids, return_inverse=True)[1].astype(np.int64)
        self.bandwidth_matrix = bw
        self.latency_matrix = lat
        self.node_ids = node_ids
        self.name = name
        #: whether the fabric's switches host aggregation nodes (one per
        #: node plus a spine) that sum *homomorphic* compressed payloads at
        #: wire speed — see :meth:`switch_all_reduce_time`.
        self.switch_aggregation = bool(switch_aggregation)
        for a in (self.bandwidth_matrix, self.latency_matrix, self.node_ids):
            a.setflags(write=False)

    # ------------------------------------------------------------- builders

    @classmethod
    def hierarchical(
        cls,
        n_nodes: int,
        gpus_per_node: int,
        intra_link: LinkSpec = NVLINK_LIKE,
        inter_link: LinkSpec = IB_HDR_LIKE,
        switch_aggregation: bool = False,
    ) -> "Topology":
        """NVLink-inside-node / IB-between-nodes cluster of
        ``n_nodes * gpus_per_node`` ranks (node-contiguous rank order)."""
        check_positive("n_nodes", n_nodes)
        check_positive("gpus_per_node", gpus_per_node)
        node_ids = np.repeat(np.arange(int(n_nodes), dtype=np.int64), int(gpus_per_node))
        same_node = node_ids[:, None] == node_ids[None, :]
        bw = np.where(same_node, intra_link.bandwidth, inter_link.bandwidth)
        lat = np.where(same_node, intra_link.latency, inter_link.latency)
        topo = cls(
            bw,
            lat,
            node_ids,
            name=f"{intra_link.name}x{gpus_per_node}+{inter_link.name}x{n_nodes}",
            switch_aggregation=switch_aggregation,
        )
        return topo

    @classmethod
    def flat(cls, n_ranks: int, link: LinkSpec) -> "Topology":
        """Single-fabric cluster: every pair uses the same link."""
        check_positive("n_ranks", n_ranks)
        n = int(n_ranks)
        return cls(
            np.full((n, n), link.bandwidth),
            np.full((n, n), link.latency),
            np.zeros(n, dtype=np.int64),
            name=f"{link.name}x{n}",
        )

    def with_switch_aggregation(self) -> "Topology":
        """The same fabric with in-network aggregation nodes enabled."""
        if self.switch_aggregation:
            return self
        return Topology(
            self.bandwidth_matrix,
            self.latency_matrix,
            self.node_ids,
            name=f"{self.name}+switch",
            switch_aggregation=True,
        )

    # ------------------------------------------------------------ structure

    @property
    def n_ranks(self) -> int:
        return self.bandwidth_matrix.shape[0]

    @property
    def n_nodes(self) -> int:
        return int(self.node_ids.max()) + 1

    def node_of(self, rank: int) -> int:
        return int(self.node_ids[rank])

    def is_intra(self, src: int, dst: int) -> bool:
        return self.node_ids[src] == self.node_ids[dst]

    def _balanced_gpus_per_node(self) -> int:
        counts = np.bincount(self.node_ids, minlength=self.n_nodes)
        if (counts != counts[0]).any():
            raise ValueError(
                f"hierarchical collectives need balanced nodes, got sizes {counts.tolist()}"
            )
        return int(counts[0])

    def _intra_inter_links(self) -> tuple[tuple[float, float], tuple[float, float]]:
        """Bottleneck ``(bandwidth, latency)`` among intra- and inter-node
        pairs.  With a single node (or single rank per node) the missing
        class falls back to the other, so degenerate layouts stay priced."""
        same = self.node_ids[:, None] == self.node_ids[None, :]
        off_diag = ~np.eye(self.n_ranks, dtype=bool)
        intra_mask = same & off_diag
        inter_mask = ~same
        def bottleneck(mask: np.ndarray) -> tuple[float, float] | None:
            if not mask.any():
                return None
            return (
                float(self.bandwidth_matrix[mask].min()),
                float(self.latency_matrix[mask].max()),
            )
        intra = bottleneck(intra_mask)
        inter = bottleneck(inter_mask)
        if intra is None and inter is None:  # single rank
            return (float("inf"), 0.0), (float("inf"), 0.0)
        return intra or inter, inter or intra

    # ----------------------------------------------------------- collectives

    def all_to_all_time(self, byte_matrix: np.ndarray) -> float:
        """Phased variable-size all-to-all: in shift phase ``k`` every rank
        ``i`` sends to ``(i + k) mod n``, and the phase lasts as long as its
        slowest pair — the bottleneck link.  On a uniform single fabric
        this reduces exactly to the flat model's ``(n-1) * alpha +
        busiest_port / bandwidth`` for uniform byte matrices; on a
        heterogeneous fabric every phase crosses at least one inter-node
        link, which is what makes the hetero exchange slower than any
        flat model built from the intra-node link."""
        matrix = np.asarray(byte_matrix, dtype=np.float64)
        n = self.n_ranks
        if matrix.shape != (n, n):
            raise ValueError(
                f"byte matrix shape {matrix.shape} does not match topology with {n} ranks"
            )
        if (matrix < 0).any():
            raise ValueError("byte matrix entries must be >= 0")
        if n <= 1:
            return 0.0
        total = 0.0
        src = np.arange(n)
        for k in range(1, n):
            dst = (src + k) % n
            pair_time = (
                self.latency_matrix[src, dst]
                + matrix[src, dst] / self.bandwidth_matrix[src, dst]
            )
            total += float(pair_time.max())
        return total

    def ring_all_reduce_time(self, nbytes: float) -> float:
        """Flat ring all-reduce over the node-contiguous ring
        ``0 -> 1 -> ... -> n-1 -> 0``: ``2 * (n-1)`` steps in which every
        rank forwards ``nbytes / n`` to its successor, each step paced by
        the slowest ring edge (the inter-node link, when there is one)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        n = self.n_ranks
        if n <= 1:
            return 0.0
        src = np.arange(n)
        dst = (src + 1) % n
        step = float(
            (self.latency_matrix[src, dst] + (nbytes / n) / self.bandwidth_matrix[src, dst]).max()
        )
        return 2 * (n - 1) * step

    def hierarchical_all_reduce_time(self, nbytes: float) -> float:
        """Hierarchical all-reduce: intra-node reduce-scatter, inter-node
        ring all-reduce of the ``1/g`` shards (one ring per intra-node
        *rail*, all rails concurrent), intra-node all-gather (broadcast of
        the reduced shards).

        With ``g`` GPUs per node and ``N`` nodes this moves ``2 (g-1)/g *
        nbytes`` over the intra link and ``2 (N-1)/(N g) * nbytes`` over
        the inter link — the same total bytes as the flat ring when the
        two links are equal (the bandwidth terms coincide exactly), but
        only a ``1/g`` fraction crosses the slow inter-node fabric."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        n = self.n_ranks
        if n <= 1:
            return 0.0
        g = self._balanced_gpus_per_node()
        n_nodes = self.n_nodes
        (intra_bw, intra_lat), (inter_bw, inter_lat) = self._intra_inter_links()
        total = 0.0
        if g > 1:
            # Intra-node reduce-scatter + (after the inter stage) all-gather.
            stage = (g - 1) * intra_lat + (g - 1) / g * nbytes / intra_bw
            total += 2 * stage
        if n_nodes > 1:
            shard = nbytes / g
            total += 2 * (n_nodes - 1) * inter_lat + 2 * (n_nodes - 1) / n_nodes * shard / inter_bw
        return total

    def switch_all_reduce_time(self, nbytes: float) -> float:
        """In-network (switch-hosted) aggregation-tree all-reduce.

        Only meaningful for payloads that *sum in compressed space* (the
        homomorphic codecs): each leaf sends its whole payload up one hop
        to its node's aggregator (all ports concurrent, summation at wire
        speed), node aggregates go up one more hop to a spine aggregator,
        and the reduced payload comes back down the same two hops —
        ``2 * (intra_lat + nbytes / intra_bw) + 2 * (inter_lat + nbytes /
        inter_bw)``.  Four latency terms total versus the hierarchical
        schedule's ``2 (g - 1) + 2 (N - 1)``, which is exactly why
        in-network aggregation wins latency-bound dense layers; the price
        is the full payload (not a ``1/g`` shard) on the inter link.

        With ``switch_aggregation`` disabled the fabric has no aggregation
        nodes, so this degenerates *exactly* to
        :meth:`hierarchical_all_reduce_time` — the property tests pin that
        equality.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        if not self.switch_aggregation:
            return self.hierarchical_all_reduce_time(nbytes)
        n = self.n_ranks
        if n <= 1:
            return 0.0
        g = self._balanced_gpus_per_node()
        n_nodes = self.n_nodes
        (intra_bw, intra_lat), (inter_bw, inter_lat) = self._intra_inter_links()
        total = 0.0
        if g > 1:
            total += 2 * (intra_lat + nbytes / intra_bw)
        if n_nodes > 1:
            total += 2 * (inter_lat + nbytes / inter_bw)
        return total

    def all_reduce_inter_bytes(self, nbytes: float, algorithm: str = "ring") -> float:
        """Total bytes an all-reduce of ``nbytes`` puts on *inter-node*
        links — the taper-constrained resource on oversubscribed fabrics.

        * ``"ring"`` — the node-contiguous ring has ``N`` node-crossing
          edges (``N > 1``), each carrying ``2 (n-1)/n * nbytes``.
        * ``"hierarchical"`` — ``g`` concurrent rail rings over ``N``
          nodes, each ring moving ``2 (N-1) * nbytes / g`` across nodes.
        * ``"switch"`` — every node aggregate travels up to the spine and
          back down: ``2 N * nbytes`` (with aggregation disabled the
          schedule is the hierarchical one, so its byte count applies).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        n, n_nodes = self.n_ranks, self.n_nodes
        if n <= 1 or n_nodes <= 1:
            return 0.0
        if algorithm == "ring":
            return n_nodes * 2 * (n - 1) / n * nbytes
        if algorithm == "hierarchical" or (
            algorithm == "switch" and not self.switch_aggregation
        ):
            return 2 * (n_nodes - 1) * nbytes
        if algorithm == "switch":
            return 2 * n_nodes * nbytes
        raise ValueError(
            f"algorithm must be 'ring', 'hierarchical', or 'switch', got {algorithm!r}"
        )

    # -------------------------------------------------------------- dunders

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            np.array_equal(self.bandwidth_matrix, other.bandwidth_matrix)
            and np.array_equal(self.latency_matrix, other.latency_matrix)
            and np.array_equal(self.node_ids, other.node_ids)
            and self.switch_aggregation == other.switch_aggregation
        )

    def __hash__(self) -> int:
        # Keep topology-bearing (frozen, nominally hashable) NetworkModels
        # usable as dict keys/set members.
        return hash(
            (
                self.bandwidth_matrix.tobytes(),
                self.latency_matrix.tobytes(),
                self.node_ids.tobytes(),
                self.switch_aggregation,
            )
        )

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, n_ranks={self.n_ranks}, "
            f"n_nodes={self.n_nodes}, switch_aggregation={self.switch_aggregation})"
        )


@dataclass(frozen=True)
class NetworkModel:
    """Cost model of the training fabric.

    Parameters
    ----------
    bandwidth:
        Per-rank injection bandwidth, bytes/second (beta = 1/bandwidth).
    latency:
        Per-message fixed cost, seconds (alpha).
    topology:
        Optional per-pair link map.  When set, the collectives are priced
        per link (phased all-to-all, bottleneck-edge ring, hierarchical
        all-reduce); the scalar ``bandwidth``/``latency`` remain the
        point-to-point (broadcast) fallback.
    """

    bandwidth: float = 4.0 * GB
    latency: float = 2e-7
    topology: Topology | None = None

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_positive("latency", self.latency, strict=False)

    @classmethod
    def from_topology(cls, topology: Topology) -> "NetworkModel":
        """Topology-priced model whose scalar fallback terms are the
        topology's bottleneck link (used only for point-to-point)."""
        off_diag = ~np.eye(topology.n_ranks, dtype=bool)
        if topology.n_ranks > 1:
            bandwidth = float(topology.bandwidth_matrix[off_diag].min())
            latency = float(topology.latency_matrix[off_diag].max())
        else:
            bandwidth, latency = 4.0 * GB, 2e-7
        return cls(bandwidth=bandwidth, latency=latency, topology=topology)

    # ------------------------------------------------------ point to point

    def point_to_point_time(self, nbytes: float) -> float:
        """One message of ``nbytes`` between two ranks."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        return self.latency + nbytes / self.bandwidth

    # --------------------------------------------------------- collectives

    def all_to_all_time(self, byte_matrix: np.ndarray) -> float:
        """Variable-size all-to-all from an ``n x n`` byte matrix where
        ``byte_matrix[src, dst]`` is the payload ``src`` sends ``dst``.

        Diagonal (self) transfers are local and free.  Flat fabric: the
        exchange is bottlenecked by the busiest port (largest per-rank
        off-diagonal row/column sum).  With a topology: phased costing,
        each shift phase paced by its slowest link."""
        matrix = np.asarray(byte_matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"byte matrix must be square, got shape {matrix.shape}")
        if (matrix < 0).any():
            raise ValueError("byte matrix entries must be >= 0")
        if self.topology is not None:
            return self.topology.all_to_all_time(matrix)
        n = matrix.shape[0]
        if n <= 1:
            return 0.0
        off_diagonal = matrix - np.diag(np.diag(matrix))
        busiest = float(max(off_diagonal.sum(axis=1).max(), off_diagonal.sum(axis=0).max()))
        return (n - 1) * self.latency + busiest / self.bandwidth

    def uniform_all_to_all_time(self, nbytes_per_pair: float, n_ranks: int) -> float:
        """All-to-all where every ordered pair exchanges the same payload
        (e.g. the fixed-size metadata round of pipeline stage ②)."""
        check_positive("n_ranks", n_ranks)
        if nbytes_per_pair < 0:
            raise ValueError(f"nbytes_per_pair must be >= 0, got {nbytes_per_pair!r}")
        n = int(n_ranks)
        if n <= 1:
            return 0.0
        if self.topology is not None:
            return self.topology.all_to_all_time(np.full((n, n), float(nbytes_per_pair)))
        return (n - 1) * self.latency + (n - 1) * nbytes_per_pair / self.bandwidth

    def all_reduce_time(self, nbytes: float, n_ranks: int) -> float:
        """Ring all-reduce of an ``nbytes`` buffer across ``n_ranks``
        (reduce-scatter + all-gather, each ``n-1`` steps).  With a
        topology the ring is node-contiguous and every step is paced by
        the slowest ring edge."""
        check_positive("n_ranks", n_ranks)
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        n = int(n_ranks)
        if n <= 1:
            return 0.0
        if self.topology is not None:
            self._check_topology_ranks(n)
            return self.topology.ring_all_reduce_time(nbytes)
        return 2 * (n - 1) * self.latency + 2 * (n - 1) / n * nbytes / self.bandwidth

    def hierarchical_all_reduce_time(self, nbytes: float, n_ranks: int) -> float:
        """Hierarchical (reduce-scatter intra-node → inter-node rail rings
        → intra-node all-gather) all-reduce.  Without a topology the whole
        cluster is one node, so this degenerates to the flat ring — the
        two strategies only diverge on heterogeneous fabrics."""
        check_positive("n_ranks", n_ranks)
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        n = int(n_ranks)
        if n <= 1:
            return 0.0
        if self.topology is None:
            return self.all_reduce_time(nbytes, n)
        self._check_topology_ranks(n)
        return self.topology.hierarchical_all_reduce_time(nbytes)

    def switch_all_reduce_time(self, nbytes: float, n_ranks: int) -> float:
        """In-network aggregation-tree all-reduce (homomorphic payloads
        only — see :meth:`Topology.switch_all_reduce_time`).  Without a
        topology there is no switch to host the aggregator, so this
        degenerates to the flat ring; without ``switch_aggregation`` it
        degenerates to the hierarchical schedule."""
        check_positive("n_ranks", n_ranks)
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        n = int(n_ranks)
        if n <= 1:
            return 0.0
        if self.topology is None:
            return self.all_reduce_time(nbytes, n)
        self._check_topology_ranks(n)
        return self.topology.switch_all_reduce_time(nbytes)

    def _check_topology_ranks(self, n_ranks: int) -> None:
        if self.topology is not None and self.topology.n_ranks != n_ranks:
            raise ValueError(
                f"collective over {n_ranks} ranks does not match topology "
                f"with {self.topology.n_ranks} ranks"
            )


#: The paper's evaluation fabric (Section IV): 4 GB/s effective all-to-all.
PAPER_FABRIC = NetworkModel()
