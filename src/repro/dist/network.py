"""Alpha-beta network cost model for the cluster's collectives.

Classic ``alpha + n * beta`` pricing (Hockney): every message pays a fixed
per-hop ``latency`` (alpha) plus a bandwidth term (beta = 1/bandwidth).
Collectives compose the point-to-point model the standard way:

* **all-to-all** — with full-bisection fabric every rank sends and
  receives concurrently, so the exchange finishes when the *busiest* rank
  has moved its bytes: ``(n-1) * alpha + max_rank(bytes sent or received)
  / bandwidth``.  The byte matrix may be non-uniform (variable-size
  compressed payloads) — this is exactly the paper's stage-③ exchange.
* **ring all-reduce** — ``2 * (n-1)`` steps moving ``nbytes / n`` each:
  ``2 * (n-1) * alpha + 2 * (n-1)/n * nbytes / bandwidth``.

The default is calibrated to the paper's evaluation fabric: a 4 GB/s
effective all-to-all (Section IV) with NVSwitch-class (sub-microsecond)
per-hop latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import GB
from repro.utils.validation import check_positive

__all__ = ["NetworkModel", "PAPER_FABRIC"]


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta cost model of the training fabric.

    Parameters
    ----------
    bandwidth:
        Per-rank injection bandwidth, bytes/second (beta = 1/bandwidth).
    latency:
        Per-message fixed cost, seconds (alpha).
    """

    bandwidth: float = 4.0 * GB
    latency: float = 2e-7

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_positive("latency", self.latency, strict=False)

    # ------------------------------------------------------ point to point

    def point_to_point_time(self, nbytes: float) -> float:
        """One message of ``nbytes`` between two ranks."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        return self.latency + nbytes / self.bandwidth

    # --------------------------------------------------------- collectives

    def all_to_all_time(self, byte_matrix: np.ndarray) -> float:
        """Variable-size all-to-all from an ``n x n`` byte matrix where
        ``byte_matrix[src, dst]`` is the payload ``src`` sends ``dst``.

        Diagonal (self) transfers are local and free.  The exchange is
        bottlenecked by the busiest port: the largest per-rank off-diagonal
        row sum (egress) or column sum (ingress).
        """
        matrix = np.asarray(byte_matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"byte matrix must be square, got shape {matrix.shape}")
        if (matrix < 0).any():
            raise ValueError("byte matrix entries must be >= 0")
        n = matrix.shape[0]
        if n <= 1:
            return 0.0
        off_diagonal = matrix - np.diag(np.diag(matrix))
        busiest = float(max(off_diagonal.sum(axis=1).max(), off_diagonal.sum(axis=0).max()))
        return (n - 1) * self.latency + busiest / self.bandwidth

    def uniform_all_to_all_time(self, nbytes_per_pair: float, n_ranks: int) -> float:
        """All-to-all where every ordered pair exchanges the same payload
        (e.g. the fixed-size metadata round of pipeline stage ②)."""
        check_positive("n_ranks", n_ranks)
        if nbytes_per_pair < 0:
            raise ValueError(f"nbytes_per_pair must be >= 0, got {nbytes_per_pair!r}")
        n = int(n_ranks)
        if n <= 1:
            return 0.0
        return (n - 1) * self.latency + (n - 1) * nbytes_per_pair / self.bandwidth

    def all_reduce_time(self, nbytes: float, n_ranks: int) -> float:
        """Ring all-reduce of an ``nbytes`` buffer across ``n_ranks``
        (reduce-scatter + all-gather, each ``n-1`` steps)."""
        check_positive("n_ranks", n_ranks)
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        n = int(n_ranks)
        if n <= 1:
            return 0.0
        return 2 * (n - 1) * self.latency + 2 * (n - 1) / n * nbytes / self.bandwidth


#: The paper's evaluation fabric (Section IV): 4 GB/s effective all-to-all.
PAPER_FABRIC = NetworkModel()
