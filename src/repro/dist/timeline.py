"""Per-rank event timeline: what every simulated GPU did, and when.

:class:`Timeline` is the ledger behind every breakdown figure (Figs. 1 and
12): each simulated operation appends a :class:`TimelineEvent` tagged with
its rank, an :class:`EventCategory`, the *stream* it ran on (``compute``
for device kernels, ``comm`` for wire occupancy — per-rank streams are how
the simulator models compression overlapping the exchange), a start time,
and a duration.  The profiling layer aggregates these into
category->seconds mappings and overlap-efficiency reports.

:class:`EventCategory` enumerates the 15 stages of one hybrid-parallel
DLRM iteration, in execution order — the forward pass, the 4-stage
compressed exchange (① compress, ② metadata, ③ payload, ④ decompress),
the backward pass, and the dense synchronization/update.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Mapping

__all__ = ["EventCategory", "TimelineEvent", "Timeline", "COMPUTE_STREAM", "COMM_STREAM"]


class EventCategory(str, Enum):
    """Stage labels for simulated events (string-valued, dict-key safe)."""

    BOTTOM_MLP_FWD = "bottom_mlp_fwd"
    EMB_LOOKUP = "emb_lookup"
    COMPRESS = "compress"
    METADATA = "metadata"
    ALLTOALL_FWD = "alltoall_fwd"
    DECOMPRESS = "decompress"
    INTERACTION_FWD = "interaction_fwd"
    TOP_MLP_FWD = "top_mlp_fwd"
    TOP_MLP_BWD = "top_mlp_bwd"
    INTERACTION_BWD = "interaction_bwd"
    ALLTOALL_BWD = "alltoall_bwd"
    EMB_UPDATE = "emb_update"
    BOTTOM_MLP_BWD = "bottom_mlp_bwd"
    ALLREDUCE = "allreduce"
    OPTIMIZER = "optimizer"

    def __str__(self) -> str:  # keep reports/keys readable
        return self.value


#: Categories that occupy the wire rather than the device — the "of which
#: communication" rows of the breakdown reports.
EventCategory.COMMUNICATION = (
    EventCategory.METADATA,
    EventCategory.ALLTOALL_FWD,
    EventCategory.ALLTOALL_BWD,
    EventCategory.ALLREDUCE,
)


#: default stream names: device kernels vs wire occupancy
COMPUTE_STREAM = "compute"
COMM_STREAM = "comm"


@dataclass(frozen=True, eq=True)
class TimelineEvent:
    """One simulated operation on one rank's clock.

    ``args`` carries optional structured labels (e.g. ``{"exchange": 3,
    "chunk": 1, "chunks": 8}`` for one chunk of a pipelined exchange);
    they ride into the chrome-trace export verbatim, so per-chunk events
    are distinguishable in the rendered timeline.
    """

    rank: int
    category: str
    start: float
    duration: float
    stream: str = COMPUTE_STREAM
    args: Mapping[str, object] | None = field(default=None, compare=True, hash=False)

    @property
    def end(self) -> float:
        return self.start + self.duration


class Timeline:
    """Append-only per-rank event ledger with category aggregation."""

    def __init__(self) -> None:
        self.events: list[TimelineEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def record(
        self,
        rank: int,
        category: str,
        start: float,
        duration: float,
        stream: str = COMPUTE_STREAM,
        args: Mapping[str, object] | None = None,
    ) -> TimelineEvent:
        """Append one event and return it."""
        if rank < 0:
            raise ValueError(f"rank must be >= 0, got {rank!r}")
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration!r}")
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start!r}")
        event = TimelineEvent(
            rank=int(rank),
            category=category,
            start=float(start),
            duration=float(duration),
            stream=str(stream),
            args=dict(args) if args else None,
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------- queries

    def events_for_rank(self, rank: int) -> list[TimelineEvent]:
        return [e for e in self.events if e.rank == rank]

    def events_in_category(self, category: str) -> list[TimelineEvent]:
        return [e for e in self.events if e.category == category]

    def ranks(self) -> list[int]:
        return sorted({e.rank for e in self.events})

    def streams(self) -> list[str]:
        """Stream names present in the ledger, compute lane first."""
        return sorted({e.stream for e in self.events}, key=lambda s: (s != COMPUTE_STREAM, s))

    def span(self, rank: int | None = None) -> float:
        """Latest event end on ``rank`` (or across all ranks)."""
        ends = [e.end for e in self.events if rank is None or e.rank == rank]
        return max(ends, default=0.0)

    def total_by_category(self, rank: int | None = None) -> dict[str, float]:
        """Category -> total seconds, for one rank or summed over all."""
        totals: dict[str, float] = {}
        for e in self.events:
            if rank is not None and e.rank != rank:
                continue
            totals[e.category] = totals.get(e.category, 0.0) + e.duration
        return totals

    # ------------------------------------------------------------- export

    def to_chrome_trace(self, *, process_name: str = "cluster-sim") -> dict:
        """Export the ledger as Chrome ``chrome://tracing`` / Perfetto JSON.

        Every event becomes a complete-duration (``"ph": "X"``) event with
        microsecond timestamps; every ``(rank, stream)`` pair maps to its
        own thread id inside a single process, so overlapped compute/comm
        events render side by side instead of stacked.  A single-stream
        ledger keeps the legacy ``tid == rank`` mapping.  ``"M"`` metadata
        events name the process and each lane.  Load the returned object
        (or the file written by :meth:`dump_chrome_trace`) directly in
        ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        streams = self.streams()
        n_streams = max(1, len(streams))
        stream_index = {stream: i for i, stream in enumerate(streams)}

        def lane(rank: int, stream: str) -> int:
            if n_streams == 1:
                return rank
            return rank * n_streams + stream_index[stream]

        trace_events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        streams_by_rank: dict[int, set[str]] = {}
        for e in self.events:
            streams_by_rank.setdefault(e.rank, set()).add(e.stream)
        for rank in self.ranks():
            for stream in streams:
                if stream not in streams_by_rank[rank]:
                    continue
                label = f"rank {rank}" if n_streams == 1 else f"rank {rank} [{stream}]"
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 0,
                        "tid": lane(rank, stream),
                        "args": {"name": label},
                    }
                )
        for e in self.events:
            entry = {
                "name": str(e.category),
                "cat": "sim",
                "ph": "X",
                "pid": 0,
                "tid": lane(e.rank, e.stream),
                "ts": e.start * 1e6,
                "dur": e.duration * 1e6,
            }
            if e.args:
                entry["args"] = dict(e.args)
            trace_events.append(entry)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def dump_chrome_trace(self, path: str | Path, *, process_name: str = "cluster-sim") -> Path:
        """Write :meth:`to_chrome_trace` JSON to ``path`` and return it."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome_trace(process_name=process_name)))
        return path
