"""Per-rank event timeline: what every simulated GPU did, and when.

:class:`Timeline` is the ledger behind every breakdown figure (Figs. 1 and
12): each simulated operation appends a :class:`TimelineEvent` tagged with
its rank, an :class:`EventCategory`, the *stream* it ran on (``compute``
for device kernels, ``comm`` for wire occupancy — per-rank streams are how
the simulator models compression overlapping the exchange), a start time,
and a duration.  The profiling layer aggregates these into
category->seconds mappings and overlap-efficiency reports.

:class:`EventCategory` enumerates the 15 stages of one hybrid-parallel
DLRM iteration, in execution order — the forward pass, the 4-stage
compressed exchange (① compress, ② metadata, ③ payload, ④ decompress),
the backward pass, and the dense synchronization/update — plus the
annotation categories the observability layer records (trainer-step and
serving-request spans, delta publications) on the dedicated
``OBS_STREAM`` lane, which time accounting ignores.

Timelines also carry *counter samples* (:class:`CounterSample`) — named
scalar tracks such as queue depth or bytes on wire — which export as
chrome-trace ``"C"`` events and render as counter plots above the lanes.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Mapping, Sequence

__all__ = [
    "EventCategory",
    "TimelineEvent",
    "CounterSample",
    "Timeline",
    "COMPUTE_STREAM",
    "COMM_STREAM",
    "OBS_STREAM",
]


class EventCategory(str, Enum):
    """Stage labels for simulated events (string-valued, dict-key safe)."""

    BOTTOM_MLP_FWD = "bottom_mlp_fwd"
    EMB_LOOKUP = "emb_lookup"
    COMPRESS = "compress"
    METADATA = "metadata"
    ALLTOALL_FWD = "alltoall_fwd"
    DECOMPRESS = "decompress"
    INTERACTION_FWD = "interaction_fwd"
    TOP_MLP_FWD = "top_mlp_fwd"
    TOP_MLP_BWD = "top_mlp_bwd"
    INTERACTION_BWD = "interaction_bwd"
    ALLTOALL_BWD = "alltoall_bwd"
    EMB_UPDATE = "emb_update"
    BOTTOM_MLP_BWD = "bottom_mlp_bwd"
    ALLREDUCE = "allreduce"
    OPTIMIZER = "optimizer"
    # annotation categories (observability spans — not simulated work)
    TRAIN_STEP = "train_step"
    PUBLISH = "publish"
    SERVE_REQUEST = "serve_request"
    # fault-tolerance categories: RETRY/CHECKPOINT/RESTORE are real charged
    # work (backoff waits, snapshot/reload memcpys); FAULT is an annotation
    # span marking an injected fault's window on the OBS lane
    RETRY = "retry"
    CHECKPOINT = "checkpoint"
    RESTORE = "restore"
    FAULT = "fault"

    def __str__(self) -> str:  # keep reports/keys readable
        return self.value


#: Categories that occupy the wire rather than the device — the "of which
#: communication" rows of the breakdown reports.
EventCategory.COMMUNICATION = (
    EventCategory.METADATA,
    EventCategory.ALLTOALL_FWD,
    EventCategory.ALLTOALL_BWD,
    EventCategory.ALLREDUCE,
)


#: default stream names: device kernels vs wire occupancy
COMPUTE_STREAM = "compute"
COMM_STREAM = "comm"
#: annotation lane for observability spans — events here mark *intervals*
#: (a whole trainer step, one serving request) over work already recorded
#: on the real streams, so :meth:`Timeline.total_by_category` and the
#: profiling reports exclude them to avoid double counting.
OBS_STREAM = "obs"


@dataclass(frozen=True, eq=True)
class TimelineEvent:
    """One simulated operation on one rank's clock.

    ``args`` carries optional structured labels (e.g. ``{"exchange": 3,
    "chunk": 1, "chunks": 8}`` for one chunk of a pipelined exchange);
    they ride into the chrome-trace export verbatim, so per-chunk events
    are distinguishable in the rendered timeline.

    ``release_edges`` optionally names the ledger indices (positions in
    ``Timeline.events``) of the events whose completion *released* this
    one — the communicator records them where it knows the chunk/slot
    release order exactly, so dependency-DAG reconstruction
    (:mod:`repro.obs.critpath`) does not have to infer those edges from
    coincident timestamps.  Edges always point backwards: every index
    refers to an event recorded earlier.
    """

    rank: int
    category: str
    start: float
    duration: float
    stream: str = COMPUTE_STREAM
    args: Mapping[str, object] | None = field(default=None, compare=True, hash=False)
    release_edges: tuple[int, ...] | None = None

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True, eq=True)
class CounterSample:
    """One point on a named counter track (queue depth, bytes on wire).

    Counter tracks are step functions over simulated time: each sample
    sets the track's value from ``time`` onward.  They export as chrome
    ``"ph": "C"`` events and render as plots above the event lanes.
    """

    name: str
    time: float
    value: float


class Timeline:
    """Append-only per-rank event ledger with category aggregation."""

    def __init__(self) -> None:
        self.events: list[TimelineEvent] = []
        self.counters: list[CounterSample] = []

    def __len__(self) -> int:
        return len(self.events)

    def record(
        self,
        rank: int,
        category: str,
        start: float,
        duration: float,
        stream: str = COMPUTE_STREAM,
        args: Mapping[str, object] | None = None,
        release_edges: Sequence[int] | None = None,
    ) -> TimelineEvent:
        """Append one event and return it.

        ``release_edges`` must name already-recorded events (indices into
        :attr:`events` at call time) — dependency edges only ever point
        backwards.
        """
        if rank < 0:
            raise ValueError(f"rank must be >= 0, got {rank!r}")
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration!r}")
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start!r}")
        edges: tuple[int, ...] | None = None
        if release_edges is not None:
            edges = tuple(dict.fromkeys(int(i) for i in release_edges))
            for i in edges:
                if not 0 <= i < len(self.events):
                    raise ValueError(
                        f"release edge {i} does not name an already-recorded "
                        f"event (ledger holds {len(self.events)})"
                    )
            if not edges:
                edges = None
        event = TimelineEvent(
            rank=int(rank),
            category=category,
            start=float(start),
            duration=float(duration),
            stream=str(stream),
            args=dict(args) if args else None,
            release_edges=edges,
        )
        self.events.append(event)
        return event

    def record_counter(self, name: str, time: float, value: float) -> CounterSample:
        """Append one sample to the named counter track and return it."""
        if not name:
            raise ValueError("counter name must be non-empty")
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time!r}")
        sample = CounterSample(name=str(name), time=float(time), value=float(value))
        self.counters.append(sample)
        return sample

    def counter_track(self, name: str) -> list[CounterSample]:
        """Samples of one counter track, in time order."""
        return sorted(
            (s for s in self.counters if s.name == name), key=lambda s: s.time
        )

    def counter_names(self) -> list[str]:
        return sorted({s.name for s in self.counters})

    # ------------------------------------------------------------- queries

    def events_for_rank(self, rank: int) -> list[TimelineEvent]:
        return [e for e in self.events if e.rank == rank]

    def events_in_category(self, category: str) -> list[TimelineEvent]:
        return [e for e in self.events if e.category == category]

    def ranks(self) -> list[int]:
        return sorted({e.rank for e in self.events})

    def streams(self) -> list[str]:
        """Stream names present in the ledger, compute lane first."""
        return sorted({e.stream for e in self.events}, key=lambda s: (s != COMPUTE_STREAM, s))

    def span(self, rank: int | None = None) -> float:
        """Latest event end on ``rank`` (or across all ranks)."""
        ends = [e.end for e in self.events if rank is None or e.rank == rank]
        return max(ends, default=0.0)

    def total_by_category(self, rank: int | None = None) -> dict[str, float]:
        """Category -> total seconds, for one rank or summed over all.

        Annotation spans on :data:`OBS_STREAM` cover work already recorded
        on the real streams, so they are excluded here.
        """
        totals: dict[str, float] = {}
        for e in self.events:
            if rank is not None and e.rank != rank:
                continue
            if e.stream == OBS_STREAM:
                continue
            totals[e.category] = totals.get(e.category, 0.0) + e.duration
        return totals

    # ------------------------------------------------------------- export

    def to_chrome_trace(self, *, process_name: str = "cluster-sim") -> dict:
        """Export the ledger as Chrome ``chrome://tracing`` / Perfetto JSON.

        Every event becomes a complete-duration (``"ph": "X"``) event with
        microsecond timestamps; every ``(rank, stream)`` pair maps to its
        own thread id inside a single process, so overlapped compute/comm
        events render side by side instead of stacked.  A single-stream
        ledger keeps the legacy ``tid == rank`` mapping.  ``"M"`` metadata
        events name the process and each lane.  Load the returned object
        (or the file written by :meth:`dump_chrome_trace`) directly in
        ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        streams = self.streams()
        n_streams = max(1, len(streams))
        stream_index = {stream: i for i, stream in enumerate(streams)}

        def lane(rank: int, stream: str) -> int:
            if n_streams == 1:
                return rank
            return rank * n_streams + stream_index[stream]

        trace_events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        streams_by_rank: dict[int, set[str]] = {}
        for e in self.events:
            streams_by_rank.setdefault(e.rank, set()).add(e.stream)
        for rank in self.ranks():
            for stream in streams:
                if stream not in streams_by_rank[rank]:
                    continue
                label = f"rank {rank}" if n_streams == 1 else f"rank {rank} [{stream}]"
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 0,
                        "tid": lane(rank, stream),
                        "args": {"name": label},
                    }
                )
        for e in self.events:
            entry = {
                "name": str(e.category),
                "cat": "sim",
                "ph": "X",
                "pid": 0,
                "tid": lane(e.rank, e.stream),
                "ts": e.start * 1e6,
                "dur": e.duration * 1e6,
                # Non-standard members (viewers ignore them): the exact
                # (rank, stream) identity and the dependency edges, so
                # `from_chrome_trace` round-trips the ledger without
                # parsing lane labels.
                "rank": e.rank,
                "stream": e.stream,
            }
            if e.release_edges is not None:
                entry["release_edges"] = list(e.release_edges)
            if e.args:
                entry["args"] = dict(e.args)
            trace_events.append(entry)
        for sample in self.counters:
            trace_events.append(
                {
                    "name": sample.name,
                    "cat": "obs",
                    "ph": "C",
                    "pid": 0,
                    "tid": 0,
                    "ts": sample.time * 1e6,
                    "args": {"value": sample.value},
                }
            )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    @classmethod
    def from_chrome_trace(cls, trace: Mapping[str, object]) -> "Timeline":
        """Rebuild a ledger from :meth:`to_chrome_trace` output.

        Complete-duration (``"X"``) entries become events — the exact
        (rank, stream) identity and any ``release_edges`` come from the
        non-standard members the exporter writes; traces from other tools
        (without those members) fall back to ``"rank N [stream]"`` lane
        labels.  Counter (``"C"``) entries become counter samples.
        Timestamps convert back from microseconds, so start/duration agree
        with the original ledger to float rounding (the analysis layer
        matches times with a tolerance for exactly this reason).
        """
        entries = trace.get("traceEvents", [])
        lanes: dict[int, tuple[int, str]] = {}
        for entry in entries:
            if entry.get("ph") != "M" or entry.get("name") != "thread_name":
                continue
            label = str(entry.get("args", {}).get("name", ""))
            match = re.fullmatch(r"rank (\d+)(?: \[(.+)\])?", label)
            if match:
                stream = match.group(2) or COMPUTE_STREAM
                lanes[int(entry["tid"])] = (int(match.group(1)), stream)
        timeline = cls()
        for entry in entries:
            ph = entry.get("ph")
            if ph == "C":
                timeline.record_counter(
                    str(entry["name"]),
                    float(entry["ts"]) / 1e6,
                    float(entry.get("args", {}).get("value", 0.0)),
                )
                continue
            if ph != "X":
                continue
            if "rank" in entry:
                rank, stream = int(entry["rank"]), str(entry["stream"])
            else:
                rank, stream = lanes.get(int(entry.get("tid", 0)), (int(entry.get("tid", 0)), COMPUTE_STREAM))
            timeline.record(
                rank,
                str(entry["name"]),
                float(entry["ts"]) / 1e6,
                float(entry.get("dur", 0.0)) / 1e6,
                stream=stream,
                args=entry.get("args"),
                release_edges=entry.get("release_edges"),
            )
        return timeline

    def dump_chrome_trace(self, path: str | Path, *, process_name: str = "cluster-sim") -> Path:
        """Write :meth:`to_chrome_trace` JSON to ``path`` and return it.

        Missing parent directories are created.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace(process_name=process_name)))
        return path
