"""The cluster simulator: per-rank clocks + cost models + timeline.

:class:`ClusterSimulator` owns everything one simulated training job
needs: ``n_ranks`` serial device clocks, the :class:`GpuModel` that prices
compute, the :class:`NetworkModel` that prices collectives, the
:class:`Communicator` that moves real data, and the :class:`Timeline`
ledger every charge lands in.

Two charging primitives cover the paper's whole execution model:

* :meth:`compute` — rank-local work: advances one rank's clock and logs
  an event starting at that rank's current time.
* :meth:`collective` — synchronizing work: all ranks first meet at the
  barrier (``max`` of clocks, modelling the straggler), then the charge
  spans the identical interval on every rank.

Per-rank events therefore never overlap, and collectives appear on all
ranks with identical spans — the invariants the integration tests pin.
"""

from __future__ import annotations

import math

from repro.dist.comm import Communicator
from repro.dist.gpu import A100_LIKE, GpuModel
from repro.dist.network import NetworkModel
from repro.dist.timeline import Timeline

__all__ = ["ClusterSimulator"]


class ClusterSimulator:
    """Per-rank clocks over shared GPU/network cost models."""

    def __init__(
        self,
        n_ranks: int,
        network: NetworkModel | None = None,
        gpu: GpuModel | None = None,
    ):
        if int(n_ranks) < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks!r}")
        self.n_ranks = int(n_ranks)
        self.network = network if network is not None else NetworkModel()
        self.gpu = gpu if gpu is not None else A100_LIKE
        self.timeline = Timeline()
        self._clocks = [0.0] * self.n_ranks
        self.comm = Communicator(self)

    # -------------------------------------------------------------- clocks

    @property
    def clocks(self) -> tuple[float, ...]:
        """Current per-rank clock readings."""
        return tuple(self._clocks)

    def now(self, rank: int) -> float:
        self._check_rank(rank)
        return self._clocks[rank]

    def makespan(self) -> float:
        """Latest clock across the cluster — total simulated wall time."""
        return max(self._clocks)

    def reset(self) -> None:
        """Zero all clocks and start a fresh timeline."""
        self._clocks = [0.0] * self.n_ranks
        self.timeline = Timeline()

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank must be in [0, {self.n_ranks}), got {rank!r}")

    @staticmethod
    def _check_seconds(seconds: float) -> float:
        seconds = float(seconds)
        if not math.isfinite(seconds) or seconds < 0:
            raise ValueError(f"seconds must be finite and >= 0, got {seconds!r}")
        return seconds

    # ------------------------------------------------------------ charging

    def compute(self, rank: int, seconds: float, category: str) -> float:
        """Charge rank-local work; returns the event's end time."""
        self._check_rank(rank)
        seconds = self._check_seconds(seconds)
        start = self._clocks[rank]
        self.timeline.record(rank, category, start, seconds)
        self._clocks[rank] = start + seconds
        return self._clocks[rank]

    def collective(self, seconds: float, category: str) -> float:
        """Barrier-synchronize all ranks, then charge ``seconds`` to each
        over the identical interval; returns the common end time."""
        seconds = self._check_seconds(seconds)
        start = max(self._clocks)
        for rank in range(self.n_ranks):
            self.timeline.record(rank, category, start, seconds)
        end = start + seconds
        self._clocks = [end] * self.n_ranks
        return end

    def barrier(self) -> float:
        """Synchronize clocks without charging time (no event logged)."""
        end = max(self._clocks)
        self._clocks = [end] * self.n_ranks
        return end

    def __repr__(self) -> str:
        return (
            f"ClusterSimulator(n_ranks={self.n_ranks}, makespan={self.makespan():.6f}s, "
            f"events={len(self.timeline)})"
        )
