"""The cluster simulator: per-rank stream clocks + cost models + timeline.

:class:`ClusterSimulator` owns everything one simulated training job
needs: ``n_ranks`` device clocks, the :class:`GpuModel` that prices
compute, the :class:`NetworkModel` that prices collectives, the
:class:`Communicator` that moves real data, and the :class:`Timeline`
ledger every charge lands in.

Each rank carries *named streams* — by default ``compute`` (device
kernels) and ``comm`` (wire occupancy) — so stage-① (de)compression can
overlap stage-③ transmission, pricing the paper's future-work NCCL
integration end to end.  A rank's clock is the max over its streams.

Charging primitives:

* :meth:`compute` — rank-local work on the ``compute`` stream: advances
  that stream's clock and logs an event starting at its current time.
* :meth:`stream_compute` — the same on an arbitrary named stream, with an
  optional ``not_before`` release time (an event may not start before its
  inputs exist — e.g. decompression before the first chunk arrives).
* :meth:`sync` — join all of one rank's streams (a device-wide event
  barrier), like ``cudaStreamSynchronize`` on every stream.
* :meth:`collective` — synchronizing work: all ranks (all streams) first
  meet at the barrier (``max`` of clocks, modelling the straggler), then
  the charge spans the identical interval on every rank's ``comm`` stream.

Per-(rank, stream) events never overlap, and collectives appear on all
ranks with identical spans — the invariants the integration tests pin.
Events on *different* streams of one rank may overlap; that is the point.

A :class:`~repro.faults.injector.FaultInjector` may be attached via the
``fault_injector`` attribute; when present, compute events stretch under
straggler slowdowns and comm events/collectives wait out fabric outages
and stretch under degraded links.  Unattached (the default), every charge
is exactly as priced — fault handling adds zero cost to healthy runs.
"""

from __future__ import annotations

import math

from repro.dist.comm import Communicator
from repro.dist.gpu import A100_LIKE, GpuModel
from repro.dist.network import NetworkModel
from repro.dist.timeline import COMM_STREAM, COMPUTE_STREAM, Timeline

__all__ = ["ClusterSimulator"]


class ClusterSimulator:
    """Per-rank stream clocks over shared GPU/network cost models."""

    #: streams preallocated on every rank
    STREAMS = (COMPUTE_STREAM, COMM_STREAM)

    def __init__(
        self,
        n_ranks: int,
        network: NetworkModel | None = None,
        gpu: GpuModel | None = None,
    ):
        if int(n_ranks) < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks!r}")
        self.n_ranks = int(n_ranks)
        self.network = network if network is not None else NetworkModel()
        if (
            self.network.topology is not None
            and self.network.topology.n_ranks != self.n_ranks
        ):
            raise ValueError(
                f"network topology spans {self.network.topology.n_ranks} ranks "
                f"but the simulator has {self.n_ranks}"
            )
        self.gpu = gpu if gpu is not None else A100_LIKE
        #: optional FaultInjector bending this simulator's charges
        self.fault_injector = None
        self.timeline = Timeline()
        self._streams: dict[str, list[float]] = {
            stream: [0.0] * self.n_ranks for stream in self.STREAMS
        }
        self.comm = Communicator(self)

    # -------------------------------------------------------------- clocks

    @property
    def clocks(self) -> tuple[float, ...]:
        """Current per-rank clock readings (max over each rank's streams)."""
        return tuple(
            max(clocks[rank] for clocks in self._streams.values())
            for rank in range(self.n_ranks)
        )

    def now(self, rank: int) -> float:
        self._check_rank(rank)
        return max(clocks[rank] for clocks in self._streams.values())

    def stream_now(self, rank: int, stream: str) -> float:
        """Current clock of one named stream on one rank."""
        self._check_rank(rank)
        return self._stream_clocks(stream)[rank]

    def makespan(self) -> float:
        """Latest clock across the cluster — total simulated wall time."""
        return max(self.clocks)

    def reset(self) -> None:
        """Zero all clocks and start a fresh timeline."""
        self._streams = {stream: [0.0] * self.n_ranks for stream in self.STREAMS}
        self.timeline = Timeline()

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank must be in [0, {self.n_ranks}), got {rank!r}")

    def _stream_clocks(self, stream: str) -> list[float]:
        clocks = self._streams.get(stream)
        if clocks is None:  # new named streams start joined to the rank clock
            clocks = list(self.clocks)
            self._streams[stream] = clocks
        return clocks

    @staticmethod
    def _check_seconds(seconds: float) -> float:
        seconds = float(seconds)
        if not math.isfinite(seconds) or seconds < 0:
            raise ValueError(f"seconds must be finite and >= 0, got {seconds!r}")
        return seconds

    # ------------------------------------------------------------ charging

    def compute(self, rank: int, seconds: float, category: str) -> float:
        """Charge rank-local work on the ``compute`` stream; returns the
        event's end time."""
        return self.stream_compute(rank, seconds, category, stream=COMPUTE_STREAM)

    def stream_compute(
        self,
        rank: int,
        seconds: float,
        category: str,
        stream: str = COMPUTE_STREAM,
        *,
        not_before: float | None = None,
        args: dict | None = None,
        release_edges: list[int] | None = None,
    ) -> float:
        """Charge work to one named stream of one rank.

        The event starts at the stream's clock, delayed to ``not_before``
        if given (the release time of the event's inputs); only that
        stream's clock advances, so events on the rank's other streams may
        run concurrently.  ``args`` attaches structured labels to the
        logged event (e.g. chunk indices of a pipelined exchange);
        ``release_edges`` names the already-logged events whose completion
        released this one (the provenance behind ``not_before``), carried
        into the timeline for exact dependency-DAG reconstruction.
        Returns the event's end time.
        """
        self._check_rank(rank)
        seconds = self._check_seconds(seconds)
        clocks = self._stream_clocks(stream)
        start = clocks[rank]
        if not_before is not None:
            start = max(start, self._check_seconds(not_before))
        if self.fault_injector is not None:
            start, seconds = self.fault_injector.adjust_stream_event(
                rank, stream, start, seconds
            )
        self.timeline.record(
            rank,
            category,
            start,
            seconds,
            stream=stream,
            args=args,
            release_edges=release_edges,
        )
        clocks[rank] = start + seconds
        return clocks[rank]

    def sync(self, rank: int) -> float:
        """Join all streams of one rank (device-wide event barrier); no
        event is logged.  Returns the joined clock."""
        self._check_rank(rank)
        joined = self.now(rank)
        for clocks in self._streams.values():
            clocks[rank] = joined
        return joined

    def collective(self, seconds: float, category: str, stream: str = COMM_STREAM) -> float:
        """Barrier-synchronize all ranks (all streams), then charge
        ``seconds`` to each rank's ``stream`` over the identical interval;
        returns the common end time."""
        seconds = self._check_seconds(seconds)
        start = self.barrier()
        if self.fault_injector is not None:
            start, seconds = self.fault_injector.adjust_collective(start, seconds)
        for rank in range(self.n_ranks):
            self.timeline.record(rank, category, start, seconds, stream=stream)
        end = start + seconds
        for clocks in self._streams.values():
            clocks[:] = [end] * self.n_ranks
        return end

    def barrier(self) -> float:
        """Synchronize all clocks without charging time (no event logged)."""
        end = self.makespan()
        for clocks in self._streams.values():
            clocks[:] = [end] * self.n_ranks
        return end

    def __repr__(self) -> str:
        return (
            f"ClusterSimulator(n_ranks={self.n_ranks}, makespan={self.makespan():.6f}s, "
            f"events={len(self.timeline)})"
        )
