"""Offline analysis: Algorithm 1's ``OfflineAnalysis`` + Algorithm 2.

Before training, a few iterations of lookups are sampled per table.  The
analyzer then:

1. computes each table's Homogenization Index at the global error bound;
2. classifies tables into small/medium/large error-bound categories;
3. runs compressor selection (Eq.-2 speedup) per table;

and emits a :class:`CompressionPlan` — the static configuration the online
controller applies during training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adaptive.classify import (
    ClassifierThresholds,
    ErrorBoundLevels,
    TableCategory,
    classify_by_rank,
    classify_by_threshold,
)
from repro.adaptive.homo_index import HomoIndexResult, homogenization_index
from repro.adaptive.selection import (
    PAPER_A100_PROFILE,
    DeviceThroughputProfile,
    SelectionResult,
    select_compressor,
)
from repro.compression.entropy import EntropyCompressor
from repro.compression.vector_lz import DEFAULT_WINDOW, VectorLZCompressor
from repro.utils.validation import check_positive

__all__ = ["TablePlan", "CompressionPlan", "OfflineAnalyzer"]


@dataclass(frozen=True)
class TablePlan:
    """Per-table static configuration produced by the offline analysis."""

    table_id: int
    category: TableCategory
    error_bound: float
    compressor: str
    homo: HomoIndexResult
    selection: SelectionResult


@dataclass(frozen=True)
class CompressionPlan:
    """Everything the online controller needs, table by table."""

    tables: dict[int, TablePlan]
    levels: ErrorBoundLevels
    global_error_bound: float

    def error_bound_for(self, table_id: int) -> float:
        return self.tables[table_id].error_bound

    def compressor_for(self, table_id: int) -> str:
        return self.tables[table_id].compressor

    def category_counts(self) -> dict[TableCategory, int]:
        counts: dict[TableCategory, int] = {"small": 0, "medium": 0, "large": 0}
        for plan in self.tables.values():
            counts[plan.category] += 1
        return counts


@dataclass
class OfflineAnalyzer:
    """Samples -> :class:`CompressionPlan` (Algorithms 1 + 2).

    Parameters
    ----------
    levels:
        The three error-bound levels for table categories.
    bandwidth:
        All-to-all bandwidth in bytes/s for the Eq.-2 selection.
    classifier:
        ``"rank"`` (tertile split, default — always yields all three
        classes, like the paper's Table II) or ``"threshold"``
        (Algorithm 1's fixed thresholds).
    thresholds:
        Thresholds for the ``"threshold"`` classifier.
    window:
        Vector-LZ window used during candidate evaluation.
    """

    levels: ErrorBoundLevels = field(default_factory=ErrorBoundLevels)
    bandwidth: float = 4.0e9
    profile: DeviceThroughputProfile = field(default_factory=lambda: PAPER_A100_PROFILE)
    classifier: str = "rank"
    thresholds: ClassifierThresholds = field(default_factory=ClassifierThresholds)
    small_fraction: float = 1.0 / 3.0
    large_fraction: float = 1.0 / 3.0
    window: int = DEFAULT_WINDOW

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        if self.classifier not in ("rank", "threshold"):
            raise ValueError(f"classifier must be 'rank' or 'threshold', got {self.classifier!r}")

    def analyze(self, samples: dict[int, np.ndarray]) -> CompressionPlan:
        """Build the plan from per-table sampled lookups.

        ``samples`` maps table id to a 2-D ``(batch, dim)`` sample of that
        table's lookup output.
        """
        if not samples:
            raise ValueError("no samples provided")
        homo: dict[int, HomoIndexResult] = {
            table_id: homogenization_index(batch, self.levels.medium)
            for table_id, batch in samples.items()
        }
        if self.classifier == "rank":
            categories = classify_by_rank(
                {t: h.homo_index for t, h in homo.items()},
                small_fraction=self.small_fraction,
                large_fraction=self.large_fraction,
            )
        else:
            categories = {
                t: classify_by_threshold(h.homo_index, self.thresholds)
                for t, h in homo.items()
            }
        tables: dict[int, TablePlan] = {}
        for table_id, batch in samples.items():
            category = categories[table_id]
            error_bound = self.levels.for_category(category)
            selection = select_compressor(
                batch,
                candidates={
                    "vector_lz": VectorLZCompressor(window=self.window),
                    "entropy": EntropyCompressor(),
                },
                error_bound=error_bound,
                bandwidth=self.bandwidth,
                profile=self.profile,
            )
            tables[table_id] = TablePlan(
                table_id=table_id,
                category=category,
                error_bound=error_bound,
                compressor=selection.best,
                homo=homo[table_id],
                selection=selection,
            )
        return CompressionPlan(
            tables=tables, levels=self.levels, global_error_bound=self.levels.medium
        )
