"""Table-wise error-bound configuration (the first adaptive level).

Tables are classified into three categories — **large**, **medium**, and
**small** error bound — from their Homogenization Index.  Strongly
homogenizing tables are accuracy-sensitive (a large bound fuses many
semantically distinct vectors), so they receive the *small* bound; tables
whose vectors stay distinct tolerate the *large* bound.

Two classifiers are provided:

* :func:`classify_by_threshold` — Algorithm 1 verbatim: fixed thresholds on
  the index.
* :func:`classify_by_rank` — rank tables by index and split into tertiles
  (configurable fractions).  This is what the evaluation uses: it always
  produces all three classes regardless of a dataset's index distribution,
  matching the paper's Table II where every dataset has L, M and S tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "TableCategory",
    "ErrorBoundLevels",
    "ClassifierThresholds",
    "classify_by_threshold",
    "classify_by_rank",
]

#: the three categories, in increasing error-bound order
TableCategory = str
CATEGORIES: tuple[TableCategory, ...] = ("small", "medium", "large")


@dataclass(frozen=True)
class ErrorBoundLevels:
    """The three error-bound levels assigned to table categories.

    The paper's chosen configuration is ``large=0.05, medium=0.03,
    small=0.01`` (Section IV-B).
    """

    large: float = 0.05
    medium: float = 0.03
    small: float = 0.01

    def __post_init__(self) -> None:
        check_positive("small", self.small)
        if not self.small <= self.medium <= self.large:
            raise ValueError(
                f"error-bound levels must be ordered small <= medium <= large, "
                f"got small={self.small}, medium={self.medium}, large={self.large}"
            )

    @classmethod
    def from_global(cls, global_eb: float, alpha: float = 5.0 / 3.0, beta: float = 3.0) -> "ErrorBoundLevels":
        """Algorithm 1's parametrization: large = global*alpha, small = global/beta."""
        check_positive("global_eb", global_eb)
        check_positive("alpha", alpha)
        check_positive("beta", beta)
        if alpha < 1 or beta < 1:
            raise ValueError("alpha and beta must be >= 1 so levels stay ordered")
        return cls(large=global_eb * alpha, medium=global_eb, small=global_eb / beta)

    def for_category(self, category: TableCategory) -> float:
        if category not in CATEGORIES:
            raise ValueError(f"unknown category {category!r}, expected one of {CATEGORIES}")
        return getattr(self, category)


@dataclass(frozen=True)
class ClassifierThresholds:
    """Algorithm 1's fixed thresholds on the Homogenization Index (Eq. 1 scale).

    ``homo_index > small_threshold``  -> 'small' (strongly homogenizing)
    ``homo_index < large_threshold``  -> 'large' (barely homogenizing)
    otherwise                          -> 'medium'
    """

    small_threshold: float = 0.25
    large_threshold: float = 0.02

    def __post_init__(self) -> None:
        if not 0 <= self.large_threshold <= self.small_threshold <= 1:
            raise ValueError(
                "need 0 <= large_threshold <= small_threshold <= 1, got "
                f"large={self.large_threshold}, small={self.small_threshold}"
            )


def classify_by_threshold(
    homo_index: float, thresholds: ClassifierThresholds = ClassifierThresholds()
) -> TableCategory:
    """Algorithm 1's ``EMBClassification`` on one table's index."""
    if not 0 <= homo_index <= 1:
        raise ValueError(f"homo_index must be in [0, 1], got {homo_index}")
    if homo_index > thresholds.small_threshold:
        return "small"
    if homo_index < thresholds.large_threshold:
        return "large"
    return "medium"


def classify_by_rank(
    homo_indices: dict[int, float],
    small_fraction: float = 1.0 / 3.0,
    large_fraction: float = 1.0 / 3.0,
) -> dict[int, TableCategory]:
    """Rank tables by Homogenization Index and split into three classes.

    The ``small_fraction`` most-homogenizing tables get the small bound, the
    ``large_fraction`` least-homogenizing get the large bound, the rest are
    medium.  Ties are broken by table id for determinism.
    """
    if not 0 <= small_fraction <= 1 or not 0 <= large_fraction <= 1:
        raise ValueError("fractions must be in [0, 1]")
    if small_fraction + large_fraction > 1:
        raise ValueError(
            f"fractions sum to {small_fraction + large_fraction:.3f} > 1"
        )
    for table_id, value in homo_indices.items():
        if not 0 <= value <= 1:
            raise ValueError(f"homo index for table {table_id} out of [0, 1]: {value}")
    ids = sorted(homo_indices)
    if not ids:
        return {}
    values = np.array([homo_indices[t] for t in ids])
    # Most homogenizing first; stable tiebreak on table id.
    order = np.lexsort((np.array(ids), -values))
    n = len(ids)
    n_small = int(round(n * small_fraction))
    n_large = int(round(n * large_fraction))
    n_large = min(n_large, n - n_small)
    result: dict[int, TableCategory] = {}
    for rank, pos in enumerate(order):
        table_id = ids[pos]
        if rank < n_small:
            result[table_id] = "small"
        elif rank >= n - n_large:
            result[table_id] = "large"
        else:
            result[table_id] = "medium"
    return result
