"""Offline compressor selection (Algorithm 2).

For each embedding table, sampled lookups are compressed with every
candidate encoder; the winner maximizes the Eq.-2 communication speedup —
not the raw compression ratio — so a fast encoder with a slightly lower
ratio can win on a fast network, and vice versa.

Throughputs come from a :class:`DeviceThroughputProfile`: Python wall-clock
is not a GPU, so the profile carries *modelled* device throughputs
calibrated to the numbers the paper reports for each codec family
(Section IV-C).  Profiles are plain data and can be re-calibrated for a
different device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.base import Compressor
from repro.compression.metrics import communication_speedup, compression_ratio
from repro.utils.units import GB
from repro.utils.validation import check_positive

__all__ = [
    "CodecThroughput",
    "DeviceThroughputProfile",
    "PAPER_A100_PROFILE",
    "CandidateResult",
    "SelectionResult",
    "select_compressor",
]


@dataclass(frozen=True)
class CodecThroughput:
    """Modelled device throughputs for one codec, bytes/second."""

    compress: float
    decompress: float

    def __post_init__(self) -> None:
        check_positive("compress", self.compress)
        check_positive("decompress", self.decompress)


@dataclass(frozen=True)
class DeviceThroughputProfile:
    """Per-codec modelled throughputs for a device.

    ``PAPER_A100_PROFILE`` carries the A100 numbers published in the paper
    (vector-LZ 40.5/205.4 GB/s, optimized Huffman 78.4/38.9 GB/s, FZ-GPU
    >136 GB/s both ways, nvCOMP-Deflate 30.1/109.7 GB/s); codecs the paper
    does not time are set to documented estimates of their family's
    published GPU throughput.
    """

    codecs: dict[str, CodecThroughput] = field(default_factory=dict)
    #: used when a codec has no entry
    default: CodecThroughput = CodecThroughput(compress=20.0 * GB, decompress=20.0 * GB)

    def for_codec(self, name: str) -> CodecThroughput:
        return self.codecs.get(name, self.default)


PAPER_A100_PROFILE = DeviceThroughputProfile(
    codecs={
        # Paper, Section IV-C (measured on A100).
        "vector_lz": CodecThroughput(compress=40.5 * GB, decompress=205.4 * GB),
        "entropy": CodecThroughput(compress=78.4 * GB, decompress=38.9 * GB),
        "fzgpu_like": CodecThroughput(compress=136.0 * GB, decompress=136.0 * GB),
        "deflate_like": CodecThroughput(compress=30.1 * GB, decompress=109.7 * GB),
        # Estimates for families the paper references but does not time:
        # nvCOMP-LZ4 sits between Deflate and FZ-GPU on published nvCOMP
        # numbers; cuSZ's PACT'20 paper reports tens of GB/s end to end.
        "lz4_like": CodecThroughput(compress=60.0 * GB, decompress=120.0 * GB),
        "cusz_like": CodecThroughput(compress=28.0 * GB, decompress=60.0 * GB),
        # Precision casts are bandwidth-bound elementwise kernels.
        "fp16": CodecThroughput(compress=600.0 * GB, decompress=600.0 * GB),
        "fp8": CodecThroughput(compress=600.0 * GB, decompress=600.0 * GB),
        # The hybrid pays the slower leg's cost bound; selection normally
        # scores its two legs separately.
        "hybrid": CodecThroughput(compress=40.5 * GB, decompress=38.9 * GB),
    }
)


@dataclass(frozen=True)
class CandidateResult:
    """One candidate's measured ratio and modelled speedup on a sample."""

    codec: str
    ratio: float
    speedup: float
    compressed_nbytes: int


@dataclass(frozen=True)
class SelectionResult:
    """Algorithm 2's outcome for one table."""

    best: str
    candidates: tuple[CandidateResult, ...]

    def speedup_of(self, codec: str) -> float:
        for cand in self.candidates:
            if cand.codec == codec:
                return cand.speedup
        raise KeyError(f"codec {codec!r} was not a candidate")


def select_compressor(
    sample: np.ndarray,
    candidates: dict[str, Compressor],
    error_bound: float,
    bandwidth: float,
    profile: DeviceThroughputProfile = PAPER_A100_PROFILE,
) -> SelectionResult:
    """Algorithm 2: pick the candidate maximizing Eq.-2 speedup on ``sample``.

    Parameters
    ----------
    sample:
        Sampled lookups from one table, shape ``(batch, dim)``.
    candidates:
        Codec name -> compressor instance; each is run on the sample.
    bandwidth:
        All-to-all network bandwidth in bytes/s (the ``B`` of Eq. 2).
    """
    if not candidates:
        raise ValueError("need at least one candidate compressor")
    check_positive("bandwidth", bandwidth)
    sample = np.ascontiguousarray(sample)
    results = []
    for name, codec in candidates.items():
        payload = codec.compress(sample, error_bound if codec.error_bounded else None)
        ratio = compression_ratio(sample.nbytes, len(payload))
        throughput = profile.for_codec(name)
        speedup = communication_speedup(
            ratio, bandwidth, throughput.compress, throughput.decompress
        )
        results.append(
            CandidateResult(
                codec=name, ratio=ratio, speedup=speedup, compressed_nbytes=len(payload)
            )
        )
    results.sort(key=lambda r: (-r.speedup, r.codec))
    return SelectionResult(best=results[0].codec, candidates=tuple(results))
