"""Automated global error-bound selection (the paper's stated future work).

The paper picks its fixed global error bound (0.02) "through extensive
experimentation" and names automating that search as future work.  This
module implements the search: find the **largest** global error bound whose
trained accuracy stays within a tolerance of the exact-training baseline —
larger bounds compress better (monotone), so the largest acceptable bound
maximizes communication savings.

The tuner treats the trial as a black box ``error_bound -> (accuracy,
compression_ratio)`` (typically a short proxy training run) and performs a
bisection on the log-spaced bound axis, assuming accuracy degrades
monotonically as the bound grows.  Training noise can violate strict
monotonicity; the bisection then still converges to *a* feasible bound,
and every trial is recorded so callers can audit the decision.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.utils.validation import check_positive

__all__ = ["TrialResult", "AutoTuneResult", "autotune_global_error_bound"]

#: trial callback signature: error_bound -> (accuracy, compression_ratio)
TrialFn = Callable[[float], tuple[float, float]]


@dataclass(frozen=True)
class TrialResult:
    """One evaluated candidate bound."""

    error_bound: float
    accuracy: float
    ratio: float
    acceptable: bool


@dataclass(frozen=True)
class AutoTuneResult:
    """Outcome of the bound search."""

    chosen: float
    feasible: bool
    baseline_accuracy: float
    tolerance: float
    trials: tuple[TrialResult, ...]

    @property
    def chosen_trial(self) -> TrialResult:
        for trial in self.trials:
            if trial.error_bound == self.chosen:
                return trial
        raise AssertionError("chosen bound missing from trials")  # pragma: no cover


def autotune_global_error_bound(
    evaluate: TrialFn,
    baseline_accuracy: float,
    *,
    accuracy_tolerance: float = 0.005,
    lower: float = 1e-4,
    upper: float = 0.2,
    max_trials: int = 8,
) -> AutoTuneResult:
    """Find the largest global bound keeping accuracy within tolerance.

    Parameters
    ----------
    evaluate:
        Black-box trial: runs (proxy) training at the given bound and
        returns ``(accuracy, compression_ratio)``.
    baseline_accuracy:
        Accuracy of exact (uncompressed) training under the same protocol.
    accuracy_tolerance:
        Maximum acceptable accuracy drop versus the baseline.
    lower, upper:
        Search interval for the bound (log-spaced bisection).
    max_trials:
        Trial budget, including the two endpoint probes.

    Returns
    -------
    AutoTuneResult:
        ``feasible`` is False when even ``lower`` violates the tolerance;
        ``chosen`` is then ``lower`` (the least-bad option) and the caller
        should fall back to uncompressed training.
    """
    check_positive("accuracy_tolerance", accuracy_tolerance)
    check_positive("lower", lower)
    if not lower < upper:
        raise ValueError(f"need lower < upper, got [{lower}, {upper}]")
    if max_trials < 2:
        raise ValueError(f"max_trials must be >= 2, got {max_trials}")

    floor = baseline_accuracy - accuracy_tolerance
    trials: list[TrialResult] = []

    def run(bound: float) -> TrialResult:
        accuracy, ratio = evaluate(bound)
        trial = TrialResult(
            error_bound=bound,
            accuracy=accuracy,
            ratio=ratio,
            acceptable=accuracy >= floor,
        )
        trials.append(trial)
        return trial

    # Endpoint probes: the cheap exits.
    top = run(upper)
    if top.acceptable:
        return AutoTuneResult(
            chosen=upper,
            feasible=True,
            baseline_accuracy=baseline_accuracy,
            tolerance=accuracy_tolerance,
            trials=tuple(trials),
        )
    bottom = run(lower)
    if not bottom.acceptable:
        return AutoTuneResult(
            chosen=lower,
            feasible=False,
            baseline_accuracy=baseline_accuracy,
            tolerance=accuracy_tolerance,
            trials=tuple(trials),
        )

    # Invariant: lo is acceptable, hi is not; bisect in log space.
    lo, hi = lower, upper
    for _ in range(max_trials - 2):
        mid = math.exp(0.5 * (math.log(lo) + math.log(hi)))
        if run(mid).acceptable:
            lo = mid
        else:
            hi = mid
    return AutoTuneResult(
        chosen=lo,
        feasible=True,
        baseline_accuracy=baseline_accuracy,
        tolerance=accuracy_tolerance,
        trials=tuple(trials),
    )
