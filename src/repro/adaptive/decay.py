"""Iteration-wise error-bound decay (the second adaptive level).

The controller treats the error bound like a learning rate: training starts
with a *larger* bound (more compression while gradients are coarse) and
tightens it as optimization needs precision.  Training is split into an
initial phase — where a decay function takes the multiplier from
``initial_scale`` down to 1 — and a later phase where the bound stays at its
base value so the model converges cleanly.

Schedules (paper, Fig. 5 and Fig. 10):

* :class:`StepwiseDecay` — staircase descent; the paper's default (best
  compression at equal accuracy).
* :class:`LinearDecay`, :class:`LogarithmicDecay`, :class:`ExponentialDecay`
  — the alternative decay functions compared in Fig. 5.
* :class:`AbruptDrop` — holds ``initial_scale`` for the whole initial phase
  then drops to 1 at once; the aggressive baseline of Fig. 10 that hurts
  convergence.
* :class:`ConstantSchedule` — no iteration-wise adaptation (fixed global
  error bound baseline).

All schedules guarantee ``multiplier(0) == initial_scale`` (except the
constant schedule), ``multiplier(i) == 1`` for ``i >= phase_iterations``,
and monotone non-increasing multipliers.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.utils.validation import check_positive

__all__ = [
    "DecaySchedule",
    "ConstantSchedule",
    "StepwiseDecay",
    "LinearDecay",
    "LogarithmicDecay",
    "ExponentialDecay",
    "AbruptDrop",
    "make_schedule",
]


class DecaySchedule(ABC):
    """Maps iteration number to an error-bound multiplier (>= 1)."""

    @abstractmethod
    def multiplier(self, iteration: int) -> float:
        """Error-bound scale at ``iteration`` (relative to the base bound)."""

    def __call__(self, iteration: int) -> float:
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration}")
        value = self.multiplier(iteration)
        assert value >= 1.0 - 1e-12, f"schedule produced multiplier {value} < 1"
        return value


class ConstantSchedule(DecaySchedule):
    """Fixed global error bound: multiplier is always 1."""

    def multiplier(self, iteration: int) -> float:
        return 1.0


class _PhasedDecay(DecaySchedule):
    """Shared validation for schedules with an initial decay phase."""

    def __init__(self, initial_scale: float, phase_iterations: int):
        check_positive("phase_iterations", phase_iterations)
        if initial_scale < 1.0:
            raise ValueError(f"initial_scale must be >= 1, got {initial_scale}")
        self.initial_scale = float(initial_scale)
        self.phase_iterations = int(phase_iterations)

    def _progress(self, iteration: int) -> float:
        """Fraction of the initial phase completed, clipped to [0, 1]."""
        return min(max(iteration / self.phase_iterations, 0.0), 1.0)


class StepwiseDecay(_PhasedDecay):
    """Staircase descent over ``n_steps`` equal plateaus (the default)."""

    def __init__(self, initial_scale: float, phase_iterations: int, n_steps: int = 4):
        super().__init__(initial_scale, phase_iterations)
        check_positive("n_steps", n_steps)
        self.n_steps = int(n_steps)

    def multiplier(self, iteration: int) -> float:
        if iteration >= self.phase_iterations:
            return 1.0
        step = int(self._progress(iteration) * self.n_steps)  # 0 .. n_steps-1
        # Linear interpolation of the plateau levels between initial and 1.
        return self.initial_scale - (self.initial_scale - 1.0) * step / self.n_steps


class LinearDecay(_PhasedDecay):
    """Straight-line descent from ``initial_scale`` to 1."""

    def multiplier(self, iteration: int) -> float:
        t = self._progress(iteration)
        return self.initial_scale - (self.initial_scale - 1.0) * t


class LogarithmicDecay(_PhasedDecay):
    """Fast early descent, slow tail: ``scale - span * log(1+kt)/log(1+k)``."""

    def __init__(self, initial_scale: float, phase_iterations: int, curvature: float = 9.0):
        super().__init__(initial_scale, phase_iterations)
        check_positive("curvature", curvature)
        self.curvature = float(curvature)

    def multiplier(self, iteration: int) -> float:
        t = self._progress(iteration)
        shape = math.log1p(self.curvature * t) / math.log1p(self.curvature)
        return self.initial_scale - (self.initial_scale - 1.0) * shape


class ExponentialDecay(_PhasedDecay):
    """Geometric descent: multiplier ``initial^(1-t)``."""

    def multiplier(self, iteration: int) -> float:
        t = self._progress(iteration)
        return self.initial_scale ** (1.0 - t)


class AbruptDrop(_PhasedDecay):
    """Hold ``initial_scale`` through the initial phase, then drop to 1.

    This is the "Drop_Nx" baseline of Fig. 10: same starting bound as the
    decay schedules, but the sudden tightening late in the initial phase
    hurts convergence.
    """

    def multiplier(self, iteration: int) -> float:
        return self.initial_scale if iteration < self.phase_iterations else 1.0


_SCHEDULES = {
    "constant": ConstantSchedule,
    "stepwise": StepwiseDecay,
    "linear": LinearDecay,
    "logarithmic": LogarithmicDecay,
    "exponential": ExponentialDecay,
    "drop": AbruptDrop,
}


def make_schedule(name: str, **kwargs: float) -> DecaySchedule:
    """Construct a schedule by name (``constant``/``stepwise``/``linear``/
    ``logarithmic``/``exponential``/``drop``)."""
    try:
        cls = _SCHEDULES[name]
    except KeyError:
        raise KeyError(f"unknown schedule {name!r}; available: {sorted(_SCHEDULES)}") from None
    return cls(**kwargs)
