"""Online dual-level error-bound controller (Algorithm 1's ``OnlineDecay``).

Combines the two adaptive levels at runtime:

* **table-wise** — each table's base bound comes from the offline
  :class:`~repro.adaptive.offline.CompressionPlan`;
* **iteration-wise** — a :class:`~repro.adaptive.decay.DecaySchedule`
  multiplies the base bound, larger early in training and 1.0 after the
  initial phase.

The controller also answers which encoder (vector-LZ or Huffman) each
table uses, per the offline Algorithm-2 selection.
"""

from __future__ import annotations

from repro.adaptive.decay import ConstantSchedule, DecaySchedule
from repro.adaptive.offline import CompressionPlan

__all__ = ["AdaptiveController"]


class AdaptiveController:
    """Runtime view of the dual-level adaptive strategy."""

    def __init__(self, plan: CompressionPlan, schedule: DecaySchedule | None = None):
        self.plan = plan
        self.schedule = schedule if schedule is not None else ConstantSchedule()

    def error_bound(self, table_id: int, iteration: int) -> float:
        """Effective bound = table base bound x decay multiplier."""
        return self.plan.error_bound_for(table_id) * self.schedule(iteration)

    def compressor_name(self, table_id: int) -> str:
        """The encoder the offline analysis selected for this table."""
        return self.plan.compressor_for(table_id)

    def table_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self.plan.tables))

    def describe(self, iteration: int) -> dict[int, tuple[str, float]]:
        """Snapshot ``{table_id: (compressor, effective_bound)}`` at an iteration."""
        return {
            t: (self.compressor_name(t), self.error_bound(t, iteration))
            for t in self.table_ids()
        }
