"""Homogenization Index (Equation 1 of the paper).

Quantization can make two nearly identical embedding vectors byte-identical
("vector homogenization", observation ❷).  The Homogenization Index measures
how strongly a table's sampled batch homogenizes under a given error bound:

    eta = (N_original - N_quantized) / N_original            (Eq. 1)

where ``N_original`` is the number of distinct vectors in the raw batch and
``N_quantized`` the number of distinct vectors after quantization.  ``eta``
is 0 when quantization collapses nothing and approaches 1 when all vectors
fuse into one.

Note on conventions: the paper's Tables III/IV tabulate the *pattern ratio*
``N_quantized / N_original`` (= 1 - eta) under the same column name; both
quantities are exposed here so either presentation can be produced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.quantizer import quantize
from repro.utils.validation import check_positive, check_shape

__all__ = ["count_patterns", "HomoIndexResult", "homogenization_index"]


def count_patterns(rows: np.ndarray) -> int:
    """Number of distinct rows (vectors) in a 2-D batch."""
    rows = np.ascontiguousarray(rows)
    check_shape("rows", rows, 2)
    if rows.shape[0] == 0:
        return 0
    return int(np.unique(rows, axis=0).shape[0])


@dataclass(frozen=True)
class HomoIndexResult:
    """Pattern counts and derived indices for one sampled batch."""

    n_original: int  # distinct vectors before quantization
    n_quantized: int  # distinct vectors after quantization
    batch_size: int
    error_bound: float

    @property
    def homo_index(self) -> float:
        """Eq. (1): 0 = no homogenization, -> 1 = complete homogenization."""
        if self.n_original == 0:
            return 0.0
        return (self.n_original - self.n_quantized) / self.n_original

    @property
    def pattern_ratio(self) -> float:
        """The Tables III/IV presentation: ``N_quantized / N_original``."""
        if self.n_original == 0:
            return 1.0
        return self.n_quantized / self.n_original


def homogenization_index(batch: np.ndarray, error_bound: float) -> HomoIndexResult:
    """Measure vector homogenization of a sampled batch under ``error_bound``.

    The batch rows are embedding lookups sampled from one table during the
    offline-analysis phase.
    """
    batch = np.ascontiguousarray(batch)
    check_shape("batch", batch, 2)
    check_positive("error_bound", error_bound)
    n_original = count_patterns(batch)
    codes = quantize(batch, error_bound)
    n_quantized = count_patterns(codes)
    # Quantization is a many-to-one map on rows, so it can only merge.
    assert n_quantized <= n_original
    return HomoIndexResult(
        n_original=n_original,
        n_quantized=n_quantized,
        batch_size=batch.shape[0],
        error_bound=float(error_bound),
    )
