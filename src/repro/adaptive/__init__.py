"""Dual-level adaptive error-bound strategy (table-wise + iteration-wise)."""

from repro.adaptive.classify import (
    ClassifierThresholds,
    ErrorBoundLevels,
    classify_by_rank,
    classify_by_threshold,
)
from repro.adaptive.autotune import (
    AutoTuneResult,
    TrialResult,
    autotune_global_error_bound,
)
from repro.adaptive.controller import AdaptiveController
from repro.adaptive.decay import (
    AbruptDrop,
    ConstantSchedule,
    DecaySchedule,
    ExponentialDecay,
    LinearDecay,
    LogarithmicDecay,
    StepwiseDecay,
    make_schedule,
)
from repro.adaptive.homo_index import (
    HomoIndexResult,
    count_patterns,
    homogenization_index,
)
from repro.adaptive.offline import CompressionPlan, OfflineAnalyzer, TablePlan
from repro.adaptive.selection import (
    PAPER_A100_PROFILE,
    CandidateResult,
    CodecThroughput,
    DeviceThroughputProfile,
    SelectionResult,
    select_compressor,
)

__all__ = [
    "homogenization_index",
    "count_patterns",
    "HomoIndexResult",
    "ErrorBoundLevels",
    "ClassifierThresholds",
    "classify_by_threshold",
    "classify_by_rank",
    "DecaySchedule",
    "ConstantSchedule",
    "StepwiseDecay",
    "LinearDecay",
    "LogarithmicDecay",
    "ExponentialDecay",
    "AbruptDrop",
    "make_schedule",
    "CodecThroughput",
    "DeviceThroughputProfile",
    "PAPER_A100_PROFILE",
    "CandidateResult",
    "SelectionResult",
    "select_compressor",
    "OfflineAnalyzer",
    "CompressionPlan",
    "TablePlan",
    "AdaptiveController",
    "autotune_global_error_bound",
    "AutoTuneResult",
    "TrialResult",
]
