"""DLRM model configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.specs import DatasetSpec
from repro.utils.validation import check_positive

__all__ = ["DLRMConfig"]


@dataclass(frozen=True)
class DLRMConfig:
    """Architecture of a DLRM instance.

    ``bottom_hidden``/``top_hidden`` are hidden-layer widths only; the
    bottom MLP's output width is always ``embedding_dim`` (so the dense
    vector joins the interaction), and the top MLP ends in a single logit.
    """

    n_dense: int
    table_cardinalities: tuple[int, ...]
    embedding_dim: int = 16
    bottom_hidden: tuple[int, ...] = (32,)
    top_hidden: tuple[int, ...] = (32,)
    table_value_scales: tuple[float, ...] | None = None
    table_value_distributions: tuple[str, ...] | None = None
    table_cluster_counts: tuple[int, ...] | None = None
    #: jitter std for clustered rows.  A full row collapses only if *every*
    #: coordinate lands in the same quantization bin, so the jitter must be
    #: far below the bin width (2 x 0.01 for the small bound) divided by the
    #: dimension count for same-cluster rows to homogenize reliably.
    cluster_jitter: float = 5e-5
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_dense", self.n_dense)
        check_positive("embedding_dim", self.embedding_dim)
        if not self.table_cardinalities:
            raise ValueError("need at least one embedding table")
        for i, cardinality in enumerate(self.table_cardinalities):
            if cardinality < 1:
                raise ValueError(f"table {i}: cardinality must be >= 1, got {cardinality}")
        n = len(self.table_cardinalities)
        for field_name in ("table_value_scales", "table_value_distributions", "table_cluster_counts"):
            value = getattr(self, field_name)
            if value is not None and len(value) != n:
                raise ValueError(f"{field_name} must match table_cardinalities in length")
        if self.cluster_jitter < 0:
            raise ValueError(f"cluster_jitter must be >= 0, got {self.cluster_jitter}")

    @property
    def n_tables(self) -> int:
        return len(self.table_cardinalities)

    @property
    def interaction_features(self) -> int:
        """Slots entering the interaction: dense vector + one per table."""
        return self.n_tables + 1

    @classmethod
    def from_dataset(
        cls,
        spec: DatasetSpec,
        embedding_dim: int = 16,
        bottom_hidden: tuple[int, ...] = (32,),
        top_hidden: tuple[int, ...] = (32,),
        seed: int = 0,
    ) -> "DLRMConfig":
        """Derive a model config from a dataset spec (carries the per-table
        value scales, distributions and cluster structure)."""
        return cls(
            n_dense=spec.n_dense,
            table_cardinalities=tuple(t.cardinality for t in spec.tables),
            embedding_dim=embedding_dim,
            bottom_hidden=bottom_hidden,
            top_hidden=top_hidden,
            table_value_scales=tuple(t.value_scale for t in spec.tables),
            table_value_distributions=tuple(t.value_distribution for t in spec.tables),
            table_cluster_counts=tuple(t.n_clusters for t in spec.tables),
            seed=seed,
        )
