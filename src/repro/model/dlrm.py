"""The DLRM model (Naumov et al.) on the NumPy NN substrate.

The forward pass is deliberately split into the stages hybrid-parallel
training distributes (Section II-A of the paper):

1. :meth:`lookup` — embedding-table gathers (model parallel: each rank owns
   a subset of tables);
2. :meth:`forward_dense` — bottom MLP on dense features (data parallel);
3. :meth:`forward_interaction` — dot interaction + top MLP on a local
   sub-batch whose embedding lookups arrived via all-to-all;
4. the symmetric backward methods, producing the lookup gradients that flow
   back through the second all-to-all.

The single-process :meth:`forward` / :meth:`backward` compose these stages,
so distributed execution and the reference trainer share all arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.model.config import DLRMConfig
from repro.nn.embedding import EmbeddingTable
from repro.nn.interaction import DotInteraction
from repro.nn.mlp import MLP
from repro.nn.param import Parameter
from repro.utils.rng import spawn_rng

__all__ = ["DLRM"]


class DLRM:
    """Deep Learning Recommendation Model with stage-level access."""

    def __init__(self, config: DLRMConfig):
        self.config = config
        bottom_sizes = [config.n_dense, *config.bottom_hidden, config.embedding_dim]
        self.bottom_mlp = MLP(
            bottom_sizes, spawn_rng(config.seed, "bottom"), final_activation="relu", name="bottom"
        )
        self.interaction = DotInteraction(config.interaction_features, config.embedding_dim)
        top_sizes = [self.interaction.output_dim, *config.top_hidden, 1]
        self.top_mlp = MLP(
            top_sizes, spawn_rng(config.seed, "top"), final_activation="none", name="top"
        )
        n = len(config.table_cardinalities)
        scales = config.table_value_scales or tuple(0.1 for _ in range(n))
        distributions = config.table_value_distributions or tuple("normal" for _ in range(n))
        clusters = config.table_cluster_counts or tuple(0 for _ in range(n))
        self.tables = [
            EmbeddingTable(
                cardinality,
                config.embedding_dim,
                spawn_rng(config.seed, "table", i),
                scale=scales[i],
                name=f"emb{i}",
                distribution=distributions[i],
                n_clusters=clusters[i],
                jitter=config.cluster_jitter,
            )
            for i, cardinality in enumerate(config.table_cardinalities)
        ]
        self._z_cache: np.ndarray | None = None

    # ---------------------------------------------------------------- stages

    def lookup(self, table_index: int, indices: np.ndarray) -> np.ndarray:
        """Stage 1: gather one table's rows (float32 wire format)."""
        return self.tables[table_index].lookup(indices)

    def lookup_all(self, sparse: np.ndarray) -> list[np.ndarray]:
        """Gather every table for a ``(batch, n_tables)`` id matrix."""
        sparse = np.asarray(sparse)
        if sparse.ndim != 2 or sparse.shape[1] != self.config.n_tables:
            raise ValueError(
                f"expected (batch, {self.config.n_tables}) sparse ids, got {sparse.shape}"
            )
        return [self.lookup(j, sparse[:, j]) for j in range(self.config.n_tables)]

    def forward_dense(self, dense: np.ndarray) -> np.ndarray:
        """Stage 2: bottom MLP, output width = embedding_dim."""
        return self.bottom_mlp.forward(dense)

    def forward_interaction(
        self, bottom_out: np.ndarray, emb_rows: list[np.ndarray]
    ) -> np.ndarray:
        """Stage 3: interaction + top MLP -> logits ``(batch,)``.

        ``emb_rows`` holds one ``(batch, dim)`` array per table — locally
        looked up or reconstructed from the all-to-all.
        """
        if len(emb_rows) != self.config.n_tables:
            raise ValueError(
                f"expected {self.config.n_tables} embedding inputs, got {len(emb_rows)}"
            )
        z = np.stack(
            [np.asarray(bottom_out, dtype=np.float64)]
            + [np.asarray(rows, dtype=np.float64) for rows in emb_rows],
            axis=1,
        )
        self._z_cache = z
        interacted = self.interaction.forward(z)
        return self.top_mlp.forward(interacted).ravel()

    def backward_interaction(self, dlogits: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Backward through top MLP + interaction.

        Returns ``(d_bottom_out, d_emb_rows)`` — the latter are the lookup
        gradients that travel through the backward all-to-all.
        """
        if self._z_cache is None:
            raise RuntimeError("backward_interaction called before forward_interaction")
        d_interacted = self.top_mlp.backward(np.asarray(dlogits, dtype=np.float64).reshape(-1, 1))
        dz = self.interaction.backward(d_interacted)
        self._z_cache = None
        d_bottom = dz[:, 0, :]
        d_emb = [dz[:, 1 + j, :] for j in range(self.config.n_tables)]
        return d_bottom, d_emb

    def backward_dense(self, d_bottom_out: np.ndarray) -> np.ndarray:
        """Backward through the bottom MLP; returns d(dense features)."""
        return self.bottom_mlp.backward(d_bottom_out)

    def accumulate_embedding_grad(
        self, table_index: int, indices: np.ndarray, grad_rows: np.ndarray
    ) -> None:
        """Scatter lookup gradients into one table."""
        self.tables[table_index].accumulate_grad(indices, grad_rows)

    # ------------------------------------------------------- single process

    def forward(self, dense: np.ndarray, sparse: np.ndarray) -> np.ndarray:
        """Full forward pass -> logits."""
        self._sparse_cache = np.asarray(sparse)
        bottom_out = self.forward_dense(dense)
        emb_rows = self.lookup_all(sparse)
        return self.forward_interaction(bottom_out, emb_rows)

    def backward(self, dlogits: np.ndarray) -> None:
        """Full backward pass; accumulates all parameter gradients."""
        d_bottom, d_emb = self.backward_interaction(dlogits)
        self.backward_dense(d_bottom)
        sparse = self._sparse_cache
        for j in range(self.config.n_tables):
            self.accumulate_embedding_grad(j, sparse[:, j], d_emb[j])

    # ------------------------------------------------------------ parameters

    def mlp_parameters(self) -> list[Parameter]:
        """Dense parameters — replicated (data parallel) in hybrid training."""
        return self.bottom_mlp.parameters() + self.top_mlp.parameters()

    def table_parameters(self) -> list[Parameter]:
        """Embedding parameters — sharded (model parallel) in hybrid training."""
        return [p for table in self.tables for p in table.parameters()]

    def parameters(self) -> list[Parameter]:
        return self.mlp_parameters() + self.table_parameters()
