"""DLRM model."""

from repro.model.config import DLRMConfig
from repro.model.dlrm import DLRM

__all__ = ["DLRMConfig", "DLRM"]
