"""Per-dependency circuit breaker on the simulated clock.

The classic three-state breaker, with time supplied by the caller (the
simulated clock) instead of a wall clock:

* **closed** — requests flow; consecutive failures are counted, and at
  ``failure_threshold`` the breaker opens.
* **open** — requests fail fast (no wire, no timeout wait) until
  ``reset_timeout_seconds`` has elapsed since opening.
* **half-open** — one probe request is let through; success closes the
  breaker, failure re-opens it and restarts the cooldown.

The serving tier keeps one breaker per shard server, so a crashed shard
costs at most ``failure_threshold`` timed-out pulls before every later
pull degrades instantly instead of queueing behind a dead node.
"""

from __future__ import annotations

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Closed / open / half-open breaker driven by explicit timestamps."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, *, failure_threshold: int = 3, reset_timeout_seconds: float = 0.25) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if reset_timeout_seconds <= 0:
            raise ValueError(
                f"reset_timeout_seconds must be > 0, got {reset_timeout_seconds!r}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_seconds = float(reset_timeout_seconds)
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.opened_total = 0  # times the breaker tripped (for reports)

    def state(self, now: float) -> str:
        """Current state at simulated time ``now`` (open may decay to
        half-open once the cooldown has elapsed)."""
        if self._state == self.OPEN and now >= self._opened_at + self.reset_timeout_seconds:
            return self.HALF_OPEN
        return self._state

    def allows(self, now: float) -> bool:
        """Whether a request may be attempted at ``now``.

        Open rejects (fail fast); half-open admits the probe; closed
        admits everything.
        """
        return self.state(now) != self.OPEN

    def record_success(self, now: float) -> None:
        """A request succeeded: close the breaker, clear the failure run."""
        self._state = self.CLOSED
        self._consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """A request failed (timeout, corruption, refusal).

        In closed state this extends the consecutive-failure run and trips
        the breaker at the threshold; a failed half-open probe re-opens
        immediately and restarts the cooldown.
        """
        if self.state(now) == self.HALF_OPEN:
            self._trip(now)
            return
        self._consecutive_failures += 1
        if self._state == self.CLOSED and self._consecutive_failures >= self.failure_threshold:
            self._trip(now)

    def _trip(self, now: float) -> None:
        self._state = self.OPEN
        self._opened_at = now
        self._consecutive_failures = self.failure_threshold
        self.opened_total += 1
