"""A day in the life of the system — under injected chaos.

:func:`run_day_in_the_life_under_faults` runs the full train → publish →
serve loop twice from identical seeds:

1. a **healthy twin** — no faults, no retries — establishing the baseline
   makespan and the uninterrupted final parameters;
2. a **chaos run** — the same workload with a :class:`FaultPlan` injected:
   a straggler rank and a fabric outage during training, a rank failure
   forcing a checkpoint restore, corrupted publication payloads (one
   round abandoned entirely, one recovered by retry), and a shard crash
   window during serving with stale-store fallback.

The function checks the robustness invariants inline (raising
``ChaosInvariantViolation`` on any breach) and returns everything in a
:class:`ChaosResult`:

* **bit-identical resume** — the chaos run's final parameters equal the
  healthy twin's byte for byte, despite the mid-run crash/restore;
* **no staleness accumulation** — after every *successful* publication
  round the publisher's staleness is within that round's bound, no matter
  how many failed rounds preceded it (error-feedback replay);
* **makespan ordering** — the chaos run's training makespan is never
  below the healthy twin's (faults only delay or stretch work);
* **no silent degradation** — every served row is either from live state
  (within the compound publication + shard-storage bound) or explicitly
  counted stale/degraded.

With ``out_dir`` set it writes ``metrics.json`` (schema-validated),
``metrics.prom``, ``chaos_trace.json`` (the unified chrome trace with
FAULT annotation spans), and ``run_report.txt`` — the artifacts behind
``examples/faults_day_in_the_life.py`` and the CI ``chaos-smoke`` job.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.obs.registry import MetricsRegistry, RegistrySnapshot
from repro.obs.runtime import capture, enable

__all__ = [
    "ChaosInvariantViolation",
    "ChaosResult",
    "run_day_in_the_life_under_faults",
]


class ChaosInvariantViolation(AssertionError):
    """A robustness invariant did not survive the chaos run."""


@dataclass(frozen=True)
class ChaosResult:
    """Everything one chaos run produces, invariants already checked."""

    snapshot: RegistrySnapshot
    trace: dict  # unified chrome trace incl. FAULT annotation spans
    report: str  # human run_report text
    healthy_train_makespan: float
    faulty_train_makespan: float
    params_bit_identical: bool
    checkpoints_taken: int
    restores: int
    publish_rounds: int
    failed_publish_rounds: int
    publish_attempts_total: int
    staleness_after_last_success: float
    last_success_staleness_bound: float
    compound_bound: float  # publication bound + shard-storage bound
    stale_rows: int
    degraded_rows: int
    impaired_requests: int
    fresh_requests: int
    n_requests: int
    #: paths written when ``out_dir`` was given, keyed by artifact name
    paths: dict[str, Path]


def _final_param_bytes(model) -> bytes:
    return b"".join(p.data.tobytes() for p in model.parameters())


def run_day_in_the_life_under_faults(
    *,
    n_iterations: int = 4,
    n_requests: int = 200,
    n_tables: int = 6,
    cardinality: int = 400,
    qps: float = 2000.0,
    checkpoint_every: int = 2,
    out_dir: str | Path | None = None,
    seed: int = 7,
) -> ChaosResult:
    """Run the chaos scenario, verify its invariants, return the evidence.

    ``n_iterations`` pure training steps are followed by two
    publish-interleaved steps (one publication round abandoned to
    corruption, one recovered by retry), then the serving trace runs
    against a crashed-then-restarted shard.  The same workload runs
    healthy first; both runs share every seed.
    """
    # Heavy imports stay local, mirroring repro.obs.scenario.
    from repro.adaptive import AdaptiveController, OfflineAnalyzer
    from repro.data import SyntheticClickDataset, make_uniform_spec
    from repro.dist import ClusterSimulator
    from repro.dist.timeline import Timeline
    from repro.faults.checkpoint import TrainerCheckpoint
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import (
        CorruptionFault,
        FaultPlan,
        LinkFault,
        RankFailureFault,
        ShardCrashFault,
        StragglerFault,
    )
    from repro.faults.retry import RetryPolicy
    from repro.model import DLRM, DLRMConfig
    from repro.obs.exporters import run_report, snapshot_to_json, to_prometheus
    from repro.obs.schema import validate_snapshot_json
    from repro.obs.trace import unified_chrome_trace
    from repro.serve import build_serving_tier
    from repro.serve.loadgen import RequestLoadGenerator
    from repro.serve.simulator import ServingSimulator
    from repro.train import CompressionPipeline, HybridParallelTrainer

    if n_iterations < 2:
        raise ValueError(f"n_iterations must be >= 2, got {n_iterations}")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")

    publish_rounds = 2
    total_iterations = n_iterations + publish_rounds
    global_batch = 64

    def build_world():
        """One fresh, fully-seeded workload (twin runs must match)."""
        spec = make_uniform_spec(
            "chaos-day", n_tables=n_tables, cardinality=cardinality, zipf_exponent=1.2
        )
        dataset = SyntheticClickDataset(spec, seed=seed, teacher_scale=3.0)
        config = DLRMConfig.from_dataset(spec, embedding_dim=8, seed=seed + 1)
        model = DLRM(config)
        batch = dataset.batch(128, batch_index=10_000_000)
        samples = {j: model.lookup(j, batch.sparse[:, j]) for j in range(n_tables)}
        plan = OfflineAnalyzer().analyze(samples)
        pipeline = CompressionPipeline(AdaptiveController(plan))
        trainer = HybridParallelTrainer(
            model,
            dataset,
            ClusterSimulator(2),
            pipeline=pipeline,
            lr=0.2,
            overlap=True,
            pipeline_chunks=4,
        )
        return dataset, config, trainer

    # ------------------------------------------------- 1. the healthy twin
    dataset, config, healthy_trainer = build_world()
    for iteration in range(total_iterations):
        healthy_trainer.train_step(global_batch, iteration=iteration)
    healthy_makespan = healthy_trainer.simulator.makespan()
    healthy_params = _final_param_bytes(healthy_trainer.model)
    healthy_tier = build_serving_tier(
        healthy_trainer, n_shard_ranks=2, n_replicas=2, cache_rows=64
    )
    healthy_tier.publisher.publish(iteration=total_iterations - 1)

    # ------------------------------------------------------ the fault plan
    # Windows scale with the measured healthy makespan (training faults)
    # and the request trace span (the serving shard crash), so the chaos
    # actually lands on live work at any problem size.
    span = n_requests / qps
    fail_at = max(1, n_iterations // 2 + 1)
    fault_plan = FaultPlan(
        links=(
            # one degraded link mid-training, one short fabric outage
            LinkFault(
                start=0.15 * healthy_makespan,
                duration=0.2 * healthy_makespan,
                src=0,
                dst=1,
                bandwidth_factor=0.5,
            ),
            LinkFault(
                start=0.55 * healthy_makespan,
                duration=0.05 * healthy_makespan,
                outage=True,
            ),
        ),
        stragglers=(
            StragglerFault(
                rank=1,
                start=0.3 * healthy_makespan,
                duration=0.25 * healthy_makespan,
                slowdown=2.5,
            ),
        ),
        shard_crashes=(
            # shard 0 is down for over half the serving trace — long enough
            # to outlast the retry budget, so early requests exhaust their
            # attempts, trip the breaker, and fall back to degraded answers
            ShardCrashFault(shard_rank=0, start=0.0, duration=0.6 * span),
        ),
        corruptions=(
            # round 0: every delivery attempt corrupted -> round abandoned
            CorruptionFault(round_index=0, table_index=0, attempt=0),
            CorruptionFault(round_index=0, table_index=1, attempt=1),
            CorruptionFault(round_index=0, table_index=0, attempt=2),
            # round 1: first attempt corrupted -> retry recovers it
            CorruptionFault(round_index=1, table_index=1, attempt=0),
        ),
        rank_failures=(RankFailureFault(rank=1, at_iteration=fail_at),),
    )
    # The pull timeout scales with the trace span so the full retry budget
    # (~3 timeouts + backoffs ~= span/4) stays well inside the crash window
    # at any problem size: early requests genuinely exhaust their retries.
    retry_policy = RetryPolicy(
        max_attempts=3,
        timeout_seconds=span / 12,
        base_backoff_seconds=span / 100,
        seed=seed,
    )

    # ------------------------------------------------------- 2. chaos run
    with capture():
        registry = enable(MetricsRegistry())
        injector = FaultInjector(fault_plan, seed=seed + 3)
        _, _, trainer = build_world()
        trainer.simulator.fault_injector = injector

        snapshots: list[TrainerCheckpoint] = []
        handled_failures: set[int] = set()
        restores = 0
        iteration = 0
        while iteration < n_iterations:
            failure = fault_plan.rank_failure_at(iteration)
            if failure is not None and iteration not in handled_failures:
                handled_failures.add(iteration)
                if not snapshots:
                    raise ChaosInvariantViolation(
                        f"rank {failure.rank} failed before the first checkpoint"
                    )
                iteration = snapshots[-1].restore(trainer)
                restores += 1
                continue
            if iteration % checkpoint_every == 0:
                snapshots.append(TrainerCheckpoint.capture(trainer, iteration))
            trainer.train_step(global_batch, iteration=iteration)
            iteration += 1

        # --- publish under corruption: interleave the remaining steps
        tier = build_serving_tier(
            trainer,
            n_shard_ranks=2,
            n_replicas=2,
            cache_rows=64,
            retry_policy=retry_policy,
            checksum=True,
            fault_injector=injector,
            keep_stale=True,
        )
        pub_reports = []
        staleness_after_last_success = 0.0
        last_success_bound = 0.0
        for round_index in range(publish_rounds):
            trainer.train_step(global_batch, iteration=n_iterations + round_index)
            report = tier.publisher.publish(iteration=n_iterations + round_index)
            pub_reports.append(report)
            if report.succeeded:
                staleness_after_last_success = tier.publisher.staleness()
                last_success_bound = report.staleness_bound
                if report.compressed and staleness_after_last_success > (
                    last_success_bound * (1 + 1e-6) + 1e-12
                ):
                    raise ChaosInvariantViolation(
                        "staleness accumulated across failed rounds: "
                        f"{staleness_after_last_success} > bound {last_success_bound}"
                    )
        if pub_reports[0].succeeded:
            raise ChaosInvariantViolation(
                "round 0 was fully corrupted and should have been abandoned"
            )
        if not pub_reports[-1].succeeded:
            raise ChaosInvariantViolation("round 1 should have recovered by retry")
        faulty_makespan = trainer.simulator.makespan()

        # --- serve through the shard crash with stale fallback + breaker
        serve_trace = Timeline()
        loadgen = RequestLoadGenerator(dataset, qps=qps, seed=seed + 2)
        requests = loadgen.generate(n_requests)
        serving = ServingSimulator(
            tier.replicas,
            config,
            fault_injector=injector,
            retry_policy=retry_policy,
            hedge_delay=span / 20,
            breaker_reset_seconds=span / 3,
        )
        serving_report = serving.run(
            requests,
            replica_available_at=pub_reports[-1].downtime_seconds,
            trace=serve_trace,
        )

        # --- fault spans onto the training timeline's OBS lane
        injector.annotate(trainer.simulator.timeline)

        snapshot = registry.snapshot()
        timelines = {
            "train": trainer.simulator.timeline,
            "publish": tier.publisher.simulator.timeline,
            "serve": serve_trace,
        }
        offsets = {"publish": faulty_makespan, "serve": faulty_makespan}
        trace = unified_chrome_trace(timelines, offsets=offsets)
        report_text = run_report(
            snapshot, timelines=timelines, title="Day in the life under faults"
        )

    # ------------------------------------------------------ the invariants
    faulty_params = _final_param_bytes(trainer.model)
    params_identical = faulty_params == healthy_params
    if not params_identical:
        raise ChaosInvariantViolation(
            "post-restore training diverged: final parameters are not "
            "byte-identical to the uninterrupted twin"
        )
    if faulty_makespan < healthy_makespan:
        raise ChaosInvariantViolation(
            f"chaos training makespan {faulty_makespan} fell below the healthy "
            f"twin's {healthy_makespan} — injected faults can only delay work"
        )
    accounted = (
        serving_report.fresh_requests + serving_report.impaired_requests
    )
    if accounted != serving_report.n_requests:
        raise ChaosInvariantViolation(
            f"response accounting leak: {serving_report.n_requests} requests, "
            f"{accounted} accounted (fresh + impaired)"
        )
    if serving_report.stale_rows + serving_report.degraded_rows == 0:
        raise ChaosInvariantViolation(
            "the shard crash window produced no counted stale/degraded rows — "
            "failures were served silently"
        )

    # Compound bound: live rows are within publication bound + shard
    # storage bound of the trainer's tables; everything else is counted.
    shard_bound = max(
        (
            tier.servers[rank].error_bound(table_id)
            for rank in range(len(tier.servers))
            for table_id in tier.sharding.tables_of(rank)
        ),
        default=0.0,
    )
    compound_bound = last_success_bound + shard_bound

    paths: dict[str, Path] = {}
    if out_dir is not None:
        import json

        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        metrics_json = snapshot_to_json(snapshot, indent=2)
        validate_snapshot_json(metrics_json)  # never ship an invalid artifact
        paths["metrics.json"] = out / "metrics.json"
        paths["metrics.json"].write_text(metrics_json)
        paths["metrics.prom"] = out / "metrics.prom"
        paths["metrics.prom"].write_text(to_prometheus(snapshot))
        paths["chaos_trace.json"] = out / "chaos_trace.json"
        paths["chaos_trace.json"].write_text(json.dumps(trace))
        paths["run_report.txt"] = out / "run_report.txt"
        paths["run_report.txt"].write_text(report_text + "\n")

    return ChaosResult(
        snapshot=snapshot,
        trace=trace,
        report=report_text,
        healthy_train_makespan=healthy_makespan,
        faulty_train_makespan=faulty_makespan,
        params_bit_identical=params_identical,
        checkpoints_taken=len(snapshots),
        restores=restores,
        publish_rounds=len(pub_reports),
        failed_publish_rounds=sum(1 for r in pub_reports if not r.succeeded),
        publish_attempts_total=sum(r.attempts for r in pub_reports),
        staleness_after_last_success=staleness_after_last_success,
        last_success_staleness_bound=last_success_bound,
        compound_bound=compound_bound,
        stale_rows=serving_report.stale_rows,
        degraded_rows=serving_report.degraded_rows,
        impaired_requests=serving_report.impaired_requests,
        fresh_requests=serving_report.fresh_requests,
        n_requests=serving_report.n_requests,
        paths=paths,
    )
