"""Deterministic fault schedules for the simulated cluster.

A :class:`FaultPlan` is an immutable, fully-enumerated schedule of
misbehavior on the simulated fabric and fleet — the chaos input of the
fault-injection subsystem.  Everything is expressed against the *simulated*
clock (seconds) or the training iteration counter, so a plan replays
bit-identically: the same plan over the same workload produces the same
timeline, the same retries, the same degraded responses.

Five fault families cover what production clusters actually do to the
paper's compression pipeline:

* :class:`LinkFault` — per-link bandwidth degradation, latency spikes, and
  hard outages on the :class:`~repro.dist.network.Topology` fabric.
* :class:`StragglerFault` — a rank's compute stream slows by a factor for
  a window (thermal throttling, a noisy neighbor).
* :class:`ShardCrashFault` — a serving shard node is down for a window and
  restarts at its end (pulls fail fast, then recover).
* :class:`CorruptionFault` — a publication payload is corrupted in transit
  on a given round/attempt (detected by the CRC32 checksum frame).
* :class:`RankFailureFault` — a trainer rank dies *before* running a given
  iteration, forcing a checkpoint restore.

:meth:`FaultPlan.random` draws a schedule from a seeded RNG so chaos tests
can sweep many deterministic plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.utils.rng import spawn_rng

__all__ = [
    "LinkFault",
    "StragglerFault",
    "ShardCrashFault",
    "CorruptionFault",
    "RankFailureFault",
    "LinkState",
    "FaultPlan",
]


def _check_window(name: str, start: float, duration: float) -> None:
    if start < 0:
        raise ValueError(f"{name}: start must be >= 0, got {start!r}")
    if duration <= 0:
        raise ValueError(f"{name}: duration must be > 0, got {duration!r}")


@dataclass(frozen=True)
class LinkFault:
    """One link misbehaving for a window.

    ``src``/``dst`` name an ordered rank pair on the fabric; ``None``
    matches every rank (a fabric-wide event such as a ToR switch brownout).
    ``symmetric`` also matches the reversed pair — physical links carry
    both directions.  ``bandwidth_factor < 1`` degrades throughput,
    ``extra_latency`` adds a per-message spike, ``outage=True`` takes the
    link down entirely (messages cannot start until the window ends).
    """

    start: float
    duration: float
    src: int | None = None
    dst: int | None = None
    bandwidth_factor: float = 1.0
    extra_latency: float = 0.0
    outage: bool = False
    symmetric: bool = True

    def __post_init__(self) -> None:
        _check_window("LinkFault", self.start, self.duration)
        if not 0 < self.bandwidth_factor <= 1.0:
            raise ValueError(
                f"LinkFault: bandwidth_factor must be in (0, 1], got {self.bandwidth_factor!r}"
            )
        if self.extra_latency < 0:
            raise ValueError(
                f"LinkFault: extra_latency must be >= 0, got {self.extra_latency!r}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, t: float) -> bool:
        return self.start <= t < self.end

    def matches(self, src: int, dst: int) -> bool:
        """Whether this fault applies to the ordered link ``src -> dst``."""
        def one_way(a: int | None, b: int | None) -> bool:
            return (a is None or a == src) and (b is None or b == dst)

        if one_way(self.src, self.dst):
            return True
        return self.symmetric and one_way(self.dst, self.src)


@dataclass(frozen=True)
class StragglerFault:
    """One rank's compute runs ``slowdown``x slower for a window."""

    rank: int
    start: float
    duration: float
    slowdown: float

    def __post_init__(self) -> None:
        _check_window("StragglerFault", self.start, self.duration)
        if self.rank < 0:
            raise ValueError(f"StragglerFault: rank must be >= 0, got {self.rank!r}")
        if self.slowdown < 1.0:
            raise ValueError(
                f"StragglerFault: slowdown must be >= 1, got {self.slowdown!r}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class ShardCrashFault:
    """A serving shard node is unreachable for a window, then restarts."""

    shard_rank: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        _check_window("ShardCrashFault", self.start, self.duration)
        if self.shard_rank < 0:
            raise ValueError(
                f"ShardCrashFault: shard_rank must be >= 0, got {self.shard_rank!r}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class CorruptionFault:
    """Corrupt one publication payload in transit.

    Keys on the publication ``round_index``, the delivery ``attempt``
    (0 = the first send, so a retry with the same plan succeeds), and the
    index of the table record within the round.
    """

    round_index: int
    table_index: int = 0
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.round_index < 0 or self.table_index < 0 or self.attempt < 0:
            raise ValueError(
                "CorruptionFault: round_index/table_index/attempt must be >= 0, got "
                f"{(self.round_index, self.table_index, self.attempt)!r}"
            )


@dataclass(frozen=True)
class RankFailureFault:
    """A trainer rank dies before running ``at_iteration``."""

    rank: int
    at_iteration: int

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"RankFailureFault: rank must be >= 0, got {self.rank!r}")
        if self.at_iteration < 0:
            raise ValueError(
                f"RankFailureFault: at_iteration must be >= 0, got {self.at_iteration!r}"
            )


@dataclass(frozen=True)
class LinkState:
    """Effective state of one ordered link at one instant."""

    up: bool = True
    bandwidth_factor: float = 1.0
    extra_latency: float = 0.0


_HEALTHY_LINK = LinkState()


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, deterministic schedule of injected faults.

    All query methods are pure functions of (fault list, arguments), so a
    plan can be shared between an injector, a report, and a test without
    any coordination.
    """

    links: tuple[LinkFault, ...] = ()
    stragglers: tuple[StragglerFault, ...] = ()
    shard_crashes: tuple[ShardCrashFault, ...] = ()
    corruptions: tuple[CorruptionFault, ...] = ()
    rank_failures: tuple[RankFailureFault, ...] = ()

    def __post_init__(self) -> None:
        for name in ("links", "stragglers", "shard_crashes", "corruptions", "rank_failures"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    def __bool__(self) -> bool:
        return any(getattr(self, f.name) for f in fields(self))

    @property
    def n_faults(self) -> int:
        return sum(len(getattr(self, f.name)) for f in fields(self))

    # ------------------------------------------------------------- queries

    def link_state(self, src: int, dst: int, t: float) -> LinkState:
        """Effective state of the ordered link ``src -> dst`` at time ``t``
        (worst case over all active matching faults)."""
        up = True
        factor = 1.0
        latency = 0.0
        for fault in self.links:
            if fault.active(t) and fault.matches(src, dst):
                up = up and not fault.outage
                factor = min(factor, fault.bandwidth_factor)
                latency += fault.extra_latency
        if up and factor == 1.0 and latency == 0.0:
            return _HEALTHY_LINK
        return LinkState(up=up, bandwidth_factor=factor, extra_latency=latency)

    def wire_slowdown(self, t: float) -> float:
        """Fabric-wide wire slowdown at ``t`` — the worst active link
        degradation.  Collectives are bottleneck-link bound (every rank
        waits for the slowest pairwise transfer), so one degraded link
        stretches the whole exchange by ``1 / bandwidth_factor``."""
        worst = 1.0
        for fault in self.links:
            if fault.active(t) and not fault.outage:
                worst = max(worst, 1.0 / fault.bandwidth_factor)
        return worst

    def wire_available_at(self, t: float) -> float:
        """Earliest time >= ``t`` at which no fabric-wide outage is active
        (when a collective blocked at ``t`` can start)."""
        current = t
        while True:
            blocked = [
                f.end for f in self.links if f.outage and f.active(current)
            ]
            if not blocked:
                return current
            current = max(blocked)

    def compute_slowdown(self, rank: int, t: float) -> float:
        """Compute-stream slowdown of ``rank`` at ``t`` (1 = healthy)."""
        worst = 1.0
        for fault in self.stragglers:
            if fault.rank == rank and fault.active(t):
                worst = max(worst, fault.slowdown)
        return worst

    def shard_down(self, shard_rank: int, t: float) -> bool:
        """Whether the serving shard node is inside a crash window."""
        return any(
            f.shard_rank == shard_rank and f.active(t) for f in self.shard_crashes
        )

    def corrupts(self, round_index: int, table_index: int, attempt: int) -> bool:
        """Whether this (round, table record, delivery attempt) payload is
        corrupted in transit."""
        return any(
            f.round_index == round_index
            and f.table_index == table_index
            and f.attempt == attempt
            for f in self.corruptions
        )

    def rank_failure_at(self, iteration: int) -> RankFailureFault | None:
        """The rank failure injected before ``iteration``, if any."""
        for fault in self.rank_failures:
            if fault.at_iteration == iteration:
                return fault
        return None

    # ---------------------------------------------------------- generation

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        horizon_seconds: float,
        n_ranks: int,
        n_shards: int = 0,
        n_iterations: int = 0,
        n_link_faults: int = 2,
        n_stragglers: int = 1,
        n_shard_crashes: int = 1,
        n_corruptions: int = 1,
        n_rank_failures: int = 0,
        mean_duration_fraction: float = 0.1,
    ) -> "FaultPlan":
        """Draw a deterministic chaos schedule from a seed.

        Windows are placed uniformly over ``[0, horizon_seconds)`` with
        exponential durations around ``mean_duration_fraction * horizon``;
        the same seed and shape arguments always produce the same plan.
        """
        if horizon_seconds <= 0:
            raise ValueError(f"horizon_seconds must be > 0, got {horizon_seconds!r}")
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks!r}")
        rng = spawn_rng(seed, "fault-plan")
        mean = mean_duration_fraction * horizon_seconds

        def window() -> tuple[float, float]:
            start = float(rng.uniform(0.0, horizon_seconds))
            duration = float(max(1e-9, rng.exponential(mean)))
            return start, duration

        links = []
        for _ in range(n_link_faults):
            start, duration = window()
            src, dst = (int(v) for v in rng.choice(n_ranks, size=2, replace=n_ranks < 2))
            outage = bool(rng.random() < 0.25)
            links.append(
                LinkFault(
                    start=start,
                    duration=duration,
                    src=src,
                    dst=dst,
                    bandwidth_factor=1.0 if outage else float(rng.uniform(0.1, 0.9)),
                    extra_latency=0.0 if outage else float(rng.uniform(0.0, 1e-4)),
                    outage=outage,
                )
            )
        stragglers = []
        for _ in range(n_stragglers):
            start, duration = window()
            stragglers.append(
                StragglerFault(
                    rank=int(rng.integers(n_ranks)),
                    start=start,
                    duration=duration,
                    slowdown=float(rng.uniform(1.5, 4.0)),
                )
            )
        crashes = []
        for _ in range(n_shard_crashes if n_shards else 0):
            start, duration = window()
            crashes.append(
                ShardCrashFault(
                    shard_rank=int(rng.integers(n_shards)), start=start, duration=duration
                )
            )
        corruptions = tuple(
            CorruptionFault(round_index=i, table_index=int(rng.integers(8)), attempt=0)
            for i in range(n_corruptions)
        )
        failures = []
        for _ in range(n_rank_failures if n_iterations > 1 else 0):
            failures.append(
                RankFailureFault(
                    rank=int(rng.integers(n_ranks)),
                    at_iteration=int(rng.integers(1, n_iterations)),
                )
            )
        return cls(
            links=tuple(links),
            stragglers=tuple(stragglers),
            shard_crashes=tuple(crashes),
            corruptions=corruptions,
            rank_failures=tuple(failures),
        )
