"""Reusable retry policy priced on the simulated clock.

:class:`RetryPolicy` packages the standard production recipe — per-attempt
timeout, capped exponential backoff, and *deterministic* jitter — as a
frozen value object.  Jitter is derived from the policy seed and a caller
key via :func:`repro.utils.rng.spawn_rng`, so two runs of the same
scenario back off by exactly the same amounts: retries are part of the
simulation, not noise on top of it.

Callers (the delta publisher, the serving simulator's shard pulls) drive
their own attempt loops; the policy only answers two questions — *may I
try again?* and *how long do I wait first?* — and the waits are charged
to the simulated clock by the caller.  :class:`RetryOutcome` is the
shared record of how one retried operation went.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import spawn_rng

__all__ = ["RetryPolicy", "RetryOutcome"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + capped exponential backoff + deterministic jitter.

    ``backoff_seconds(attempt, key)`` prices the wait *before* retry
    number ``attempt`` (attempt 0 is the first try and never waits):
    ``base * factor**(attempt-1)``, capped at ``max_backoff_seconds``,
    then jittered by a uniform factor in ``[1-j, 1+j]`` drawn
    deterministically from ``(seed, key, attempt)``.
    """

    max_attempts: int = 3
    timeout_seconds: float = 0.05
    base_backoff_seconds: float = 0.002
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 0.1
    jitter_fraction: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be > 0, got {self.timeout_seconds!r}"
            )
        if self.base_backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if not 0 <= self.jitter_fraction < 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1), got {self.jitter_fraction!r}"
            )

    def allows(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) may run."""
        return 0 <= attempt < self.max_attempts

    def backoff_seconds(self, attempt: int, *key: object) -> float:
        """Deterministic wait before (0-based) retry ``attempt``.

        ``key`` identifies the operation being retried (e.g.
        ``("publish", round_index)`` or ``("pull", request, shard)``) so
        distinct operations jitter independently but reproducibly.
        """
        if attempt <= 0:
            return 0.0
        raw = self.base_backoff_seconds * self.backoff_factor ** (attempt - 1)
        capped = min(raw, self.max_backoff_seconds)
        if self.jitter_fraction == 0.0 or capped == 0.0:
            return capped
        rng = spawn_rng(self.seed, "retry", *key, attempt)
        lo, hi = 1.0 - self.jitter_fraction, 1.0 + self.jitter_fraction
        return capped * float(rng.uniform(lo, hi))

    def total_backoff_seconds(self, *key: object) -> float:
        """Worst-case total backoff if every allowed retry is taken."""
        return sum(
            self.backoff_seconds(attempt, *key) for attempt in range(1, self.max_attempts)
        )


@dataclass(frozen=True)
class RetryOutcome:
    """How one retried operation went, on the simulated clock."""

    succeeded: bool
    attempts: int
    backoff_seconds: float
    wasted_seconds: float  # charged work from failed attempts (timeouts, redecode)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts!r}")
        if self.backoff_seconds < 0 or self.wasted_seconds < 0:
            raise ValueError("seconds fields must be >= 0")
