"""Trainer checkpoint/restore with bit-identical resume.

:class:`TrainerCheckpoint` snapshots everything that feeds the numerics of
a :class:`~repro.train.hybrid.HybridParallelTrainer` step:

* every model parameter array (dense MLPs and embedding tables) and its
  pending gradient accumulation;
* the optimizer's per-element state (Adagrad accumulators; SGD has none);
* the **compression pipeline**, deep-copied — its encoder-pin and
  codebook caches influence payload bytes, and payload bytes influence
  what receivers reconstruct, so resuming with cold caches would *not* be
  bit-identical.

Resuming after an injected rank failure therefore replays the remaining
iterations to byte-for-byte the same parameters as the uninterrupted run
(`np.ndarray.tobytes()` equality — the chaos scenario's invariant).

Wire-byte counters (``forward_wire_bytes``/``forward_raw_bytes``) are
deliberately **not** restored: they meter real traffic, and the traffic of
the lost iterations genuinely happened before the failure.

Snapshot and reload both charge real time: a CHECKPOINT (or RESTORE)
memcpy of the state bytes on every rank's compute stream, priced by the
GPU model, so checkpoint cadence shows up in the makespan like it would
in production.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.dist.timeline import EventCategory
from repro.obs.runtime import OBS

__all__ = ["TrainerCheckpoint"]


@dataclass(frozen=True)
class TrainerCheckpoint:
    """Immutable snapshot of a trainer's numeric state at one iteration.

    Build with :meth:`capture`; apply with :meth:`restore`.  One snapshot
    can be restored any number of times — restores hand out fresh copies,
    never aliases into the snapshot.
    """

    iteration: int  # next iteration to run after a restore
    params: tuple[np.ndarray, ...]
    grads: tuple[np.ndarray, ...]
    opt_state: tuple[np.ndarray, ...]
    pipeline: object | None
    nbytes: int = field(default=0)

    @classmethod
    def capture(cls, trainer, iteration: int, *, charge: bool = True) -> "TrainerCheckpoint":
        """Snapshot ``trainer`` as of *before* running ``iteration``.

        With ``charge`` (default), a CHECKPOINT memcpy of the state bytes
        is charged to every rank's compute stream at the current clock.
        """
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration!r}")
        params = tuple(p.data.copy() for p in trainer.model.parameters())
        grads = tuple(p.grad.copy() for p in trainer.model.parameters())
        opt_state = tuple(a.copy() for a in getattr(trainer._opt, "_state", ()))
        pipeline = copy.deepcopy(trainer.pipeline) if trainer.pipeline is not None else None
        nbytes = int(
            sum(a.nbytes for a in params)
            + sum(a.nbytes for a in grads)
            + sum(a.nbytes for a in opt_state)
        )
        snapshot = cls(
            iteration=int(iteration),
            params=params,
            grads=grads,
            opt_state=opt_state,
            pipeline=pipeline,
            nbytes=nbytes,
        )
        if charge:
            snapshot._charge(trainer, EventCategory.CHECKPOINT)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("checkpoints_taken_total", "trainer snapshots captured").inc()
            reg.gauge("checkpoint_nbytes_last", "size of the latest snapshot").set(nbytes)
        return snapshot

    def restore(self, trainer, *, charge: bool = True) -> int:
        """Load this snapshot back into ``trainer``; returns the iteration
        to resume from.

        Parameters, pending gradients, and optimizer accumulators are
        copied in place (``np.copyto``); the pipeline is replaced with a
        deep copy of the snapshot's, so the snapshot itself stays pristine
        across repeated restores.  Wire-byte counters are left alone —
        lost work's traffic still happened.
        """
        live_params = list(trainer.model.parameters())
        if len(live_params) != len(self.params):
            raise ValueError(
                f"snapshot holds {len(self.params)} parameters but the trainer "
                f"has {len(live_params)}"
            )
        for param, saved_data, saved_grad in zip(live_params, self.params, self.grads):
            if param.data.shape != saved_data.shape:
                raise ValueError(
                    f"parameter shape mismatch on restore: {param.data.shape} "
                    f"vs snapshot {saved_data.shape}"
                )
            np.copyto(param.data, saved_data)
            np.copyto(param.grad, saved_grad)
        live_state = getattr(trainer._opt, "_state", ())
        if len(live_state) != len(self.opt_state):
            raise ValueError(
                f"snapshot holds {len(self.opt_state)} optimizer arrays but the "
                f"trainer has {len(live_state)}"
            )
        for accum, saved in zip(live_state, self.opt_state):
            np.copyto(accum, saved)
        trainer.pipeline = copy.deepcopy(self.pipeline) if self.pipeline is not None else None
        if charge:
            self._charge(trainer, EventCategory.RESTORE)
        if OBS.enabled:
            OBS.registry.counter(
                "checkpoint_restores_total", "trainer restores from snapshot"
            ).inc()
        return self.iteration

    def _charge(self, trainer, category: str) -> None:
        """Price a snapshot/reload as a state-sized memcpy on every rank."""
        sim = trainer.simulator
        seconds = sim.gpu.memcpy_time(self.nbytes)
        for rank in range(sim.n_ranks):
            sim.compute(rank, seconds, category)
