"""Fault injection, retry/backoff, and graceful degradation.

Production DLRM clusters lose links, ranks, and shard servers; this
package makes the reproduction survive the same chaos — deterministically,
on the simulated clock — across the whole train → publish → serve path:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: seeded, clock-scheduled
  fault schedules (link degradation/outage, stragglers, shard crashes,
  payload corruption, rank failures).
* :mod:`repro.faults.injector` — :class:`FaultInjector`: bends simulator
  charges, damages payloads, answers per-pull health queries, annotates
  timelines with FAULT spans.
* :mod:`repro.faults.retry` — :class:`RetryPolicy`: timeout + capped
  exponential backoff + deterministic jitter, shared by the delta
  publisher and the serving tier's shard pulls.
* :mod:`repro.faults.breaker` — :class:`CircuitBreaker`: per-shard
  fail-fast so a dead node degrades responses instead of queueing them.
* :mod:`repro.faults.checkpoint` — :class:`TrainerCheckpoint`:
  parameter/optimizer/pipeline snapshots with bit-identical resume.
* :mod:`repro.faults.scenario` — the day-in-the-life chaos scenario and
  its invariants.
"""

from repro.faults.breaker import CircuitBreaker
from repro.faults.checkpoint import TrainerCheckpoint
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CorruptionFault,
    FaultPlan,
    LinkFault,
    LinkState,
    RankFailureFault,
    ShardCrashFault,
    StragglerFault,
)
from repro.faults.retry import RetryOutcome, RetryPolicy
from repro.faults.scenario import (
    ChaosInvariantViolation,
    ChaosResult,
    run_day_in_the_life_under_faults,
)

__all__ = [
    "ChaosInvariantViolation",
    "ChaosResult",
    "run_day_in_the_life_under_faults",
    "FaultPlan",
    "FaultInjector",
    "LinkFault",
    "LinkState",
    "StragglerFault",
    "ShardCrashFault",
    "CorruptionFault",
    "RankFailureFault",
    "RetryPolicy",
    "RetryOutcome",
    "CircuitBreaker",
    "TrainerCheckpoint",
]
