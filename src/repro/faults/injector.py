"""Apply a :class:`~repro.faults.plan.FaultPlan` to the simulation.

:class:`FaultInjector` is the active half of the fault subsystem: the
plan says *what* goes wrong and *when*; the injector bends the simulated
execution accordingly and leaves an audit trail.

Integration points:

* :class:`~repro.dist.simulator.ClusterSimulator` consults
  :meth:`adjust_stream_event` / :meth:`adjust_collective` when an injector
  is attached — compute-stream events stretch under straggler slowdowns,
  comm-stream events and collectives wait out fabric outages and stretch
  under degraded links.
* The serving tier asks :meth:`shard_down` / :meth:`link_state` per pull,
  so a crashed shard or severed link turns into timeouts there.
* The publisher asks :meth:`corrupt_payload` per (round, table, attempt)
  to damage bytes in transit — detectably, past the CRC32 envelope prefix.
* :meth:`annotate` stamps every fault window onto a timeline's OBS lane
  (:data:`~repro.dist.timeline.EventCategory.FAULT` spans), so injected
  chaos is visible in the same chrome trace as the work it disturbed.

All bookkeeping is observable: injections land on
``faults_injected_total`` / ``fault_seconds_total`` counters when the obs
registry is enabled.
"""

from __future__ import annotations

from repro.dist.timeline import (
    COMM_STREAM,
    COMPUTE_STREAM,
    OBS_STREAM,
    EventCategory,
    Timeline,
)
from repro.faults.plan import FaultPlan, LinkState
from repro.obs.runtime import OBS
from repro.utils.rng import spawn_rng

__all__ = ["FaultInjector"]


class FaultInjector:
    """Deterministically realizes a fault plan against the simulation."""

    def __init__(self, plan: FaultPlan, *, seed: int = 0) -> None:
        self.plan = plan
        self.seed = int(seed)
        self.injected: dict[str, int] = {}  # fault kind -> times it actually bit

    # ------------------------------------------------------------ accounting

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if OBS.enabled:
            OBS.registry.counter(
                "faults_injected_total", "injected faults that affected execution"
            ).inc(1, kind=kind)

    # ------------------------------------------------------- simulator hooks

    def adjust_stream_event(
        self, rank: int, stream: str, start: float, seconds: float
    ) -> tuple[float, float]:
        """Bend one per-rank stream event: returns (start, seconds).

        Compute streams stretch under active straggler slowdowns; comm
        streams first wait out fabric-wide outages, then stretch under the
        worst active link degradation.  Unknown streams pass through.
        """
        if seconds <= 0:
            return start, seconds
        if stream == COMPUTE_STREAM:
            factor = self.plan.compute_slowdown(rank, start)
            if factor > 1.0:
                self._count("straggler")
                seconds = seconds * factor
        elif stream == COMM_STREAM:
            delayed = self.plan.wire_available_at(start)
            if delayed > start:
                self._count("outage")
                start = delayed
            factor = self.plan.wire_slowdown(start)
            if factor > 1.0:
                self._count("degraded_link")
                seconds = seconds * factor
        return start, seconds

    def adjust_collective(self, start: float, seconds: float) -> tuple[float, float]:
        """Bend one cluster-wide collective: returns (start, seconds)."""
        if seconds <= 0:
            return start, seconds
        delayed = self.plan.wire_available_at(start)
        if delayed > start:
            self._count("outage")
            start = delayed
        factor = self.plan.wire_slowdown(start)
        if factor > 1.0:
            self._count("degraded_link")
            seconds = seconds * factor
        return start, seconds

    # ---------------------------------------------------------- serve hooks

    def shard_down(self, shard_rank: int, t: float) -> bool:
        down = self.plan.shard_down(shard_rank, t)
        if down:
            self._count("shard_crash")
        return down

    def link_state(self, src: int, dst: int, t: float) -> LinkState:
        return self.plan.link_state(src, dst, t)

    # ------------------------------------------------------ publisher hooks

    def corrupts(self, round_index: int, table_index: int, attempt: int) -> bool:
        return self.plan.corrupts(round_index, table_index, attempt)

    def corrupt_payload(self, payload: bytes, *key: object) -> bytes:
        """Deterministically damage a payload in transit.

        Flips a handful of bytes *past* the 5-byte checksum envelope
        prefix (magic + CRC32), so the damage lands in the protected body
        and is guaranteed detectable — never silently decodable.  The flip
        positions and masks derive from ``(seed, key)``.
        """
        body = bytearray(payload)
        lo = min(5, max(0, len(body) - 1))
        if len(body) <= lo:
            raise ValueError(f"payload too short to corrupt: {len(body)} bytes")
        rng = spawn_rng(self.seed, "corrupt", *key)
        n_flips = min(len(body) - lo, 1 + int(rng.integers(4)))
        positions = rng.choice(len(body) - lo, size=n_flips, replace=False)
        for pos in positions:
            # XOR with a nonzero mask so every flip really changes the byte
            body[lo + int(pos)] ^= 1 + int(rng.integers(255))
        self._count("corruption")
        return bytes(body)

    # ------------------------------------------------------------ reporting

    def annotate(self, timeline: Timeline, *, rank: int = 0) -> int:
        """Stamp every planned fault window onto ``timeline``'s OBS lane.

        Returns the number of FAULT spans recorded.  Spans carry the fault
        kind and parameters in ``args`` so the chrome trace names them.
        """
        n = 0
        for fault in self.plan.links:
            kind = "link_outage" if fault.outage else "link_degraded"
            timeline.record(
                rank,
                EventCategory.FAULT,
                fault.start,
                fault.duration,
                stream=OBS_STREAM,
                args={
                    "kind": kind,
                    "src": fault.src,
                    "dst": fault.dst,
                    "bandwidth_factor": fault.bandwidth_factor,
                    "extra_latency": fault.extra_latency,
                },
            )
            n += 1
        for fault in self.plan.stragglers:
            timeline.record(
                fault.rank,
                EventCategory.FAULT,
                fault.start,
                fault.duration,
                stream=OBS_STREAM,
                args={"kind": "straggler", "slowdown": fault.slowdown},
            )
            n += 1
        for fault in self.plan.shard_crashes:
            timeline.record(
                rank,
                EventCategory.FAULT,
                fault.start,
                fault.duration,
                stream=OBS_STREAM,
                args={"kind": "shard_crash", "shard_rank": fault.shard_rank},
            )
            n += 1
        if OBS.enabled and n:
            hist = OBS.registry.histogram(
                "fault_window_seconds", "durations of injected fault windows"
            )
            for fault in (*self.plan.links, *self.plan.stragglers, *self.plan.shard_crashes):
                hist.observe(fault.duration)
        return n
