"""Throughput benchmark harness for the compression hot paths.

The paper's speedup claim (Figs. 11/12) only holds if compression plus wire
time beats the raw all-to-all, so codec throughput is a first-class,
*tracked* quantity in this reproduction.  This module times the hot
kernels — quantization, vector-LZ encode/decode, Huffman encode/decode, and
the byte-LZ / bit-plane baselines — on the paper's table shapes, against
the frozen seed implementations (``_reference_*``), and persists the
results as machine-readable JSON (``BENCH_compression.json`` at the repo
root) so every subsequent change has a trajectory to compare against.

Three entry points:

* :func:`run_suite` — measure, returning :class:`PerfRecord` rows.
* :func:`write_bench` / :func:`load_bench` — persist / read the JSON.
* :func:`compare_to_baseline` — regression gate used by CI's perf-smoke
  step (fails on > ``max_regression``x throughput loss per kernel).

CLI::

    python -m repro.profiling.perfbench --out BENCH_compression.json
    python -m repro.profiling.perfbench --smoke --check BENCH_compression.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
import tracemalloc
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.compression.baselines.fzgpu_like import (
    _reference_pack_bitplanes,
    _reference_unpack_bitplanes,
    pack_bitplanes,
    unpack_bitplanes,
    zigzag_encode,
)
from repro.compression.baselines.lz_generic import (
    _reference_lz77_decode_bytes,
    _reference_lz77_encode_bytes,
    lz77_decode_bytes,
    lz77_encode_bytes,
)
from repro.compression.huffman import (
    _reference_huffman_decode,
    _reference_huffman_encode,
    huffman_decode,
    huffman_encode,
)
from repro.compression.hybrid import HybridCompressor
from repro.compression.parallel import BitstreamPool, CodecExecutor, CompressJob
from repro.compression.quantizer import quantize_batch
from repro.compression.homomorphic import agg_sum
from repro.compression.registry import decompress_any, get_compressor
from repro.compression.serialization import (
    _reference_frame_with_checksum,
    _reference_verify_checksum_frame,
    frame_with_checksum,
    verify_checksum_frame,
)
from repro.obs import runtime as obs_runtime
from repro.obs.registry import MetricsRegistry
from repro.compression.vector_lz import (
    _reference_vector_lz_decode,
    vector_lz_decode,
    vector_lz_encode,
)

__all__ = [
    "PerfRecord",
    "PAPER_SHAPES",
    "SMOKE_SHAPES",
    "DEFAULT_ERROR_BOUND",
    "TIGHTENED_GATES",
    "PARALLEL_WORKER_COUNTS",
    "make_lookup_batch",
    "run_suite",
    "write_bench",
    "load_bench",
    "load_trajectory",
    "write_trajectory",
    "append_run",
    "compare_to_baseline",
    "format_table",
    "main",
]

SCHEMA_VERSION = 1

#: trajectory files: ``{"schema_version": 2, "runs": [run, run, ...]}``
#: where each run is a v1 payload minus its own ``schema_version`` —
#: one entry per landed PR, oldest first, so the perf-regression sentry
#: has a per-kernel history to fit robust baselines over
TRAJECTORY_SCHEMA_VERSION = 2

#: evaluation geometry: (batch rows, embedding dim) per the paper's setups
#: (Criteo-Kaggle batch 128, Terabyte batch 2048, Fig.-12 cluster dim 64)
PAPER_SHAPES: dict[str, tuple[int, int]] = {
    "kaggle": (128, 32),
    "terabyte": (2048, 32),
    "cluster": (4096, 64),
}

#: single small shape for CI perf-smoke runs
SMOKE_SHAPES: dict[str, tuple[int, int]] = {"terabyte": (2048, 32)}

DEFAULT_ERROR_BOUND = 1e-2
_SEED = 2024

#: pin window for the hybrid_pinned rows — large enough that best-of-N
#: timing loops (N <= 9 across the harness and CLI) never straddle a
#: re-trial, so the measured call is the steady-state pinned replay
PIN_REFRESH = 64

#: worker counts the parallel_hybrid rows sweep (the raw-speed PR's claim
#: is measured against the serial loop over the same jobs)
PARALLEL_WORKER_COUNTS = (1, 2, 4)

#: slice count for the parallel_hybrid jobs — one exchange's worth of
#: independent per-destination slices on an 8-rank fabric
PARALLEL_JOB_SLICES = 8

#: kernels whose committed speedups carry comfortable headroom over their
#: seed references get a tighter regression gate than the default 3x —
#: a real regression on them shows up well before the generic band
TIGHTENED_GATES: dict[tuple[str, str], float] = {
    ("vector_lz", "decode"): 2.5,
    ("huffman", "encode"): 2.5,
    ("huffman", "decode"): 2.5,
    ("lz4_like", "encode"): 2.5,
    ("lz4_like", "decode"): 2.5,
    ("fzgpu_like", "pack"): 2.5,
    ("fzgpu_like", "unpack"): 2.5,
    ("hybrid_pinned", "compress"): 2.5,
}


@dataclass(frozen=True)
class PerfRecord:
    """One timed kernel on one table shape."""

    codec: str  # e.g. "vector_lz", "huffman", "quantizer", "lz4_like", "fzgpu_like"
    op: str  # "encode" | "decode" | "quantize" | "pack" | "unpack"
    shape_name: str
    rows: int
    dim: int
    input_nbytes: int  # uncompressed float32 bytes the kernel accounts for
    seconds: float  # best-of wall time of the current implementation
    throughput_mb_s: float
    reference_seconds: float | None = None  # frozen seed implementation
    speedup: float | None = None  # reference_seconds / seconds
    #: peak tracemalloc bytes over one call (zero_copy rows only): what the
    #: kernel *allocates*, as opposed to how fast it runs
    alloc_nbytes: int | None = None
    reference_alloc_nbytes: int | None = None

    @staticmethod
    def from_timing(
        codec: str,
        op: str,
        shape_name: str,
        rows: int,
        dim: int,
        input_nbytes: int,
        seconds: float,
        reference_seconds: float | None = None,
        alloc_nbytes: int | None = None,
        reference_alloc_nbytes: int | None = None,
    ) -> "PerfRecord":
        return PerfRecord(
            codec=codec,
            op=op,
            shape_name=shape_name,
            rows=rows,
            dim=dim,
            input_nbytes=input_nbytes,
            seconds=seconds,
            throughput_mb_s=input_nbytes / seconds / 1e6,
            reference_seconds=reference_seconds,
            speedup=None if reference_seconds is None else reference_seconds / seconds,
            alloc_nbytes=alloc_nbytes,
            reference_alloc_nbytes=reference_alloc_nbytes,
        )


def make_lookup_batch(
    rows: int, dim: int, *, pool: int = 64, cold_fraction: float = 0.1, seed: int = _SEED
) -> np.ndarray:
    """A DLRM-like lookup batch: hot rows recur with a skewed distribution.

    Mirrors the unbalanced query pattern the vector-LZ encoder exploits
    (Section III-D): a small pool of embedding rows sampled Zipf-style with
    per-lookup noise well below the default error bound (so quantization
    homogenizes the repeats, the paper's vector-homogenization effect),
    plus a ``cold_fraction`` of one-off rows that stay literals.
    """
    rng = np.random.default_rng(seed)
    base = rng.normal(0.0, 0.1, size=(pool, dim)).astype(np.float32)
    ranks = rng.zipf(1.5, size=rows)
    picks = np.minimum(ranks - 1, pool - 1).astype(np.int64)
    noise = rng.normal(0.0, 1e-4, size=(rows, dim)).astype(np.float32)
    batch = base[picks] + noise
    is_cold = rng.random(rows) < cold_fraction
    n_cold = int(is_cold.sum())
    if n_cold:
        batch[is_cold] = rng.normal(0.0, 0.1, size=(n_cold, dim)).astype(np.float32)
    return batch


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _traced_peak(fn: Callable[[], object], repeats: int = 3) -> int:
    """Smallest peak tracemalloc footprint of one call.

    NumPy routes array data through the tracemalloc domain hooks, so this
    covers the buffers that matter, not just Python objects.  Best-of
    because interpreter-side caches can inflate the first call."""
    best = None
    for _ in range(max(1, repeats)):
        tracemalloc.start()
        try:
            fn()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        best = peak if best is None else min(best, peak)
    return int(best or 0)


def _best_of_pair(
    fn: Callable[[], object], ref_fn: Callable[[], object], repeats: int
) -> tuple[float, float]:
    """Best-of timing with the two sides alternated call by call, so both
    minima come from the same load/frequency window.  Sequential timing
    (all of ``fn`` then all of ``ref_fn``) lets load drift between the two
    windows masquerade as a speedup difference — fatal when the real gap
    is small, as for the instrumentation-overhead rows."""
    best = ref_best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        ref_fn()
        ref_best = min(ref_best, time.perf_counter() - t0)
    return best, ref_best


def run_suite(
    shapes: dict[str, tuple[int, int]] | None = None,
    *,
    error_bound: float = DEFAULT_ERROR_BOUND,
    repeats: int = 5,
    include_reference: bool = True,
    seed: int = _SEED,
) -> list[PerfRecord]:
    """Time every hot kernel on every shape; returns one record per (kernel, shape)."""
    if shapes is None:
        shapes = PAPER_SHAPES
    records: list[PerfRecord] = []

    def add(
        codec, op, shape_name, rows, dim, nbytes, fn, ref_fn=None,
        *, interleave=False, measure_alloc=False,
    ):
        if ref_fn is not None and include_reference and interleave:
            seconds, ref_seconds = _best_of_pair(fn, ref_fn, repeats)
        else:
            seconds = _best_of(fn, repeats)
            ref_seconds = (
                _best_of(ref_fn, repeats) if (ref_fn is not None and include_reference) else None
            )
        alloc = ref_alloc = None
        if measure_alloc:
            alloc = _traced_peak(fn)
            if ref_fn is not None and include_reference:
                ref_alloc = _traced_peak(ref_fn)
        records.append(
            PerfRecord.from_timing(
                codec, op, shape_name, rows, dim, nbytes, seconds, ref_seconds,
                alloc, ref_alloc,
            )
        )

    for shape_name, (rows, dim) in shapes.items():
        batch = make_lookup_batch(rows, dim, seed=seed)
        nbytes = batch.nbytes

        add(
            "quantizer", "quantize", shape_name, rows, dim, nbytes,
            lambda: quantize_batch(batch, error_bound),
        )
        quantized = quantize_batch(batch, error_bound)
        codes = quantized.codes

        # --- vector-LZ (the paper's LZ leg) ---
        add(
            "vector_lz", "encode", shape_name, rows, dim, nbytes,
            lambda: vector_lz_encode(codes),
        )
        lz_stream = vector_lz_encode(codes)
        add(
            "vector_lz", "decode", shape_name, rows, dim, nbytes,
            lambda: vector_lz_decode(lz_stream),
            lambda: _reference_vector_lz_decode(lz_stream),
        )

        # --- optimized Huffman (the paper's entropy leg) ---
        alphabet = quantized.alphabet_size
        add(
            "huffman", "encode", shape_name, rows, dim, nbytes,
            lambda: huffman_encode(codes, alphabet),
            lambda: _reference_huffman_encode(codes, alphabet),
        )
        huff_stream = huffman_encode(codes, alphabet)
        add(
            "huffman", "decode", shape_name, rows, dim, nbytes,
            lambda: huffman_decode(huff_stream),
            lambda: _reference_huffman_decode(huff_stream),
        )

        # --- generic byte-LZ baseline (nvCOMP-LZ4 family) ---
        raw = batch.tobytes()
        add(
            "lz4_like", "encode", shape_name, rows, dim, nbytes,
            lambda: lz77_encode_bytes(raw),
            lambda: _reference_lz77_encode_bytes(raw),
        )
        byte_stream = lz77_encode_bytes(raw)
        add(
            "lz4_like", "decode", shape_name, rows, dim, nbytes,
            lambda: lz77_decode_bytes(byte_stream, len(raw)),
            lambda: _reference_lz77_decode_bytes(byte_stream, len(raw)),
        )

        # --- end-to-end hybrid codec, framing included (what one table
        # slice actually pays on the training hot path) ---
        hybrid = HybridCompressor()
        add(
            "hybrid", "compress", shape_name, rows, dim, nbytes,
            lambda: hybrid.compress(batch, error_bound),
        )
        hybrid_payload = hybrid.compress(batch, error_bound)
        add(
            "hybrid", "decompress", shape_name, rows, dim, nbytes,
            lambda: hybrid.decompress(hybrid_payload),
        )

        # --- CRC32 checksum envelope (the fault-tolerance framing): what
        # integrity costs on top of the codec.  The serve_degraded/pull
        # row is one faultable shard pull — verify the envelope, then the
        # registry-level decode that strips it — against the bare decode,
        # so the speedup column reads as the degraded-fabric overhead. ---
        framed_payload = frame_with_checksum(hybrid_payload)
        add(
            "checksum", "frame", shape_name, rows, dim, nbytes,
            lambda: frame_with_checksum(hybrid_payload),
        )
        add(
            "checksum", "verify", shape_name, rows, dim, nbytes,
            lambda: verify_checksum_frame(framed_payload),
        )

        def _degraded_pull():
            verify_checksum_frame(framed_payload)
            return decompress_any(framed_payload)

        add(
            "serve_degraded", "pull", shape_name, rows, dim, nbytes,
            _degraded_pull,
            lambda: hybrid.decompress(hybrid_payload),
            interleave=True,
        )

        # --- hybrid codec with the observability runtime enabled: prices
        # what instrumentation costs on the hot path.  Reference: the
        # same call with the runtime disabled, so the speedup is exactly
        # 1 / (1 + overhead) — the ≤3% budget the obs tests pin. ---
        obs_registry = MetricsRegistry()

        def _with_obs(fn):
            obs_runtime.enable(obs_registry)
            try:
                return fn()
            finally:
                obs_runtime.disable()

        add(
            "hybrid_obs", "compress", shape_name, rows, dim, nbytes,
            lambda: _with_obs(lambda: hybrid.compress(batch, error_bound)),
            lambda: hybrid.compress(batch, error_bound),
            interleave=True,
        )
        add(
            "hybrid_obs", "decompress", shape_name, rows, dim, nbytes,
            lambda: _with_obs(lambda: hybrid.decompress(hybrid_payload)),
            lambda: hybrid.decompress(hybrid_payload),
            interleave=True,
        )

        # --- hybrid auto with pinned-encoder replay: the training hot
        # loop's configuration (compress_keyed + pin_refresh) amortizes
        # the try-both trial over the refresh window, so steady-state
        # calls run a single leg.  Reference: the per-call try-both auto
        # path, so the speedup is exactly what pinning buys. ---
        pinned = HybridCompressor(pin_refresh=PIN_REFRESH)
        pinned.compress_keyed("bench", batch, error_bound)  # pin the winner
        add(
            "hybrid_pinned", "compress", shape_name, rows, dim, nbytes,
            lambda: pinned.compress_keyed("bench", batch, error_bound),
            lambda: hybrid.compress(batch, error_bound),
        )

        # --- multicore codec executor: one exchange's worth of independent
        # slices (the per-destination splits of this batch) compressed at
        # 1/2/4 workers.  Reference: the serial in-process loop over the
        # same jobs, so the speedup column reads as parallel efficiency —
        # honest on any machine, including single-core CI boxes where it
        # sits near (or below) 1.0x. ---
        slices = [
            np.ascontiguousarray(piece)
            for piece in np.array_split(batch, PARALLEL_JOB_SLICES, axis=0)
            if piece.shape[0]
        ]
        jobs = [CompressJob("hybrid", piece, error_bound) for piece in slices]
        with CodecExecutor(1) as serial_executor:
            serial_executor.compress_batch(jobs)  # warm codec caches
            for workers in PARALLEL_WORKER_COUNTS:
                with CodecExecutor(workers) as executor:
                    executor.compress_batch(jobs)  # warm the worker pool
                    add(
                        "parallel_hybrid", f"workers{workers}", shape_name, rows, dim, nbytes,
                        lambda executor=executor: executor.compress_batch(jobs),
                        lambda: serial_executor.compress_batch(jobs),
                        interleave=True,
                    )

        # --- zero-copy bitstream discipline: the pooled/view paths against
        # the frozen copying seed implementations.  These rows carry
        # ``alloc_nbytes`` (peak tracemalloc bytes per call) next to the
        # wall time — the claim is fewer allocations, not just speed. ---
        zero_pool = BitstreamPool()
        frame_with_checksum(hybrid_payload, pool=zero_pool).release()  # warm arena
        add(
            "zero_copy", "frame", shape_name, rows, dim, nbytes,
            lambda: frame_with_checksum(hybrid_payload, pool=zero_pool).release(),
            lambda: _reference_frame_with_checksum(hybrid_payload),
            measure_alloc=True,
        )
        add(
            "zero_copy", "verify", shape_name, rows, dim, nbytes,
            lambda: verify_checksum_frame(framed_payload),
            lambda: _reference_verify_checksum_frame(framed_payload),
            measure_alloc=True,
        )
        hybrid.compress_into(batch, error_bound, pool=zero_pool).release()  # warm arena
        add(
            "zero_copy", "compress_into", shape_name, rows, dim, nbytes,
            lambda: hybrid.compress_into(batch, error_bound, pool=zero_pool).release(),
            lambda: hybrid.compress(batch, error_bound),
            measure_alloc=True,
        )

        # --- FZ-GPU-like bit-plane baseline ---
        unsigned = zigzag_encode(quantized.codes.ravel() + quantized.code_min)
        add(
            "fzgpu_like", "pack", shape_name, rows, dim, nbytes,
            lambda: pack_bitplanes(unsigned, 256),
            lambda: _reference_pack_bitplanes(unsigned, 256),
        )
        bitmap, payload, n_blocks = pack_bitplanes(unsigned, 256)
        add(
            "fzgpu_like", "unpack", shape_name, rows, dim, nbytes,
            lambda: unpack_bitplanes(bitmap, payload, unsigned.size, 256, n_blocks),
            lambda: _reference_unpack_bitplanes(bitmap, payload, unsigned.size, 256, n_blocks),
        )

        # --- homomorphic aggregation: one in-network all-reduce hop.  The
        # agg rows sum two payloads *in compressed space*; the reference
        # is the decode-sum-recode discipline a non-homomorphic codec
        # forces on every intermediate hop, so the speedup column reads
        # as the per-hop saving of in-network aggregation. ---
        quant = get_compressor("quant_sum")
        half = batch * np.float32(0.5)
        q_payload = quant.compress(half, error_bound)

        def _quant_hop():
            total = quant.decompress(q_payload) + quant.decompress(q_payload)
            return quant.compress(total, error_bound)

        add(
            "homomorphic_allreduce", "agg_quant", shape_name, rows, dim, nbytes,
            lambda: agg_sum(q_payload, q_payload),
            _quant_hop,
            interleave=True,
        )
        count = get_compressor("count_sum")
        c_payload = count.compress(half, None)

        def _count_hop():
            total = count.decompress(c_payload) + count.decompress(c_payload)
            return count.compress(total, None)

        add(
            "homomorphic_allreduce", "agg_count", shape_name, rows, dim, nbytes,
            lambda: agg_sum(c_payload, c_payload),
            _count_hop,
            interleave=True,
        )

    # --- critical-path analyzer: dependency-DAG reconstruction plus the
    # walk-back over a chunk-pipelined exchange timeline — the
    # repro.obs.critpath hot path the obs-smoke job runs over the
    # day-in-the-life trace.  One row regardless of the shape sweep; the
    # rows/dim columns carry the fabric (8 ranks x 4 chunks) and
    # input_nbytes the chrome-trace JSON the analyzer would otherwise be
    # fed from disk. ---
    from repro.dist.simulator import ClusterSimulator
    from repro.obs.critpath import extract_critical_path

    dag_ranks, dag_chunks = 8, 4
    dag_sim = ClusterSimulator(dag_ranks)
    dag_bufs = [[b"x" * 4096] * dag_ranks for _ in range(dag_ranks)]
    for _ in range(3):
        dag_sim.comm.compressed_all_to_all(
            dag_bufs,
            overlap=True,
            compress_seconds=[2e-3 + 1e-4 * r for r in range(dag_ranks)],
            decompress_seconds=[1e-3 + 5e-5 * r for r in range(dag_ranks)],
            chunks_per_rank=dag_chunks,
        )
    trace_nbytes = len(json.dumps(dag_sim.timeline.to_chrome_trace()))
    add(
        "critpath", "extract", "fabric8x4", dag_ranks, dag_chunks, trace_nbytes,
        lambda: extract_critical_path(dag_sim.timeline),
    )
    return records


# --------------------------------------------------------------- persistence


def write_bench(records: Iterable[PerfRecord], path: str | Path) -> Path:
    """Persist records (plus environment provenance) as JSON."""
    path = Path(path)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "records": [asdict(r) for r in records],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _run_records(run: dict) -> list[PerfRecord]:
    return [PerfRecord(**r) for r in run["records"]]


def load_bench(path: str | Path) -> list[PerfRecord]:
    """Read records written by :func:`write_bench`.

    Accepts both the flat v1 payload and a v2 trajectory (in which case
    the *latest* run's records are returned — the committed baseline the
    ``--check`` gate compares against).
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version == SCHEMA_VERSION:
        return _run_records(payload)
    if version == TRAJECTORY_SCHEMA_VERSION:
        runs = payload.get("runs") or []
        if not runs:
            raise ValueError(f"trajectory {path} has no runs")
        return _run_records(runs[-1])
    raise ValueError(f"unsupported bench schema {version!r} in {path}")


def load_trajectory(path: str | Path) -> list[list[PerfRecord]]:
    """All runs in a bench file, oldest first.

    A v1 payload is a trajectory of one run, so callers (the sentry) can
    consume either format.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version == SCHEMA_VERSION:
        return [_run_records(payload)]
    if version == TRAJECTORY_SCHEMA_VERSION:
        return [_run_records(run) for run in payload.get("runs") or []]
    raise ValueError(f"unsupported bench schema {version!r} in {path}")


def _run_payload(records: Iterable[PerfRecord]) -> dict:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "records": [asdict(r) for r in records],
    }


def write_trajectory(
    runs: Sequence[Sequence[PerfRecord]], path: str | Path
) -> Path:
    """Persist a v2 trajectory (one environment stanza per run; the runs
    passed in are stamped with the *current* environment — use
    :func:`append_run` to extend a file that keeps its history's stanzas)."""
    path = Path(path)
    payload = {
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "runs": [_run_payload(run) for run in runs],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def append_run(records: Iterable[PerfRecord], path: str | Path) -> Path:
    """Append one run to a trajectory file, migrating a v1 payload (its
    environment stanza preserved) or starting a fresh trajectory if the
    file does not exist."""
    path = Path(path)
    runs: list[dict] = []
    if path.exists():
        payload = json.loads(path.read_text())
        version = payload.get("schema_version")
        if version == SCHEMA_VERSION:
            runs = [{k: v for k, v in payload.items() if k != "schema_version"}]
        elif version == TRAJECTORY_SCHEMA_VERSION:
            runs = list(payload.get("runs") or [])
        else:
            raise ValueError(f"unsupported bench schema {version!r} in {path}")
    runs.append(_run_payload(records))
    path.write_text(
        json.dumps(
            {"schema_version": TRAJECTORY_SCHEMA_VERSION, "runs": runs}, indent=2
        )
        + "\n"
    )
    return path


def compare_to_baseline(
    current: Sequence[PerfRecord],
    baseline: Sequence[PerfRecord],
    *,
    max_regression: float = 3.0,
) -> list[str]:
    """Regression check: current throughput must stay within
    ``max_regression``x of the committed baseline, kernel by kernel.

    The committed baseline may come from a different machine, so absolute
    MB/s alone would flag hardware differences as regressions.  The frozen
    ``_reference_*`` implementations never change, so their wall times are
    a pure machine-speed probe: the median ratio of current-to-baseline
    reference times rescales every absolute floor to the current machine.
    A kernel then passes if its rescaled throughput is within the band, or
    — for kernels with a reference — if its speedup over that reference
    (same machine, same run) is within the band of the baseline's speedup.

    Kernels listed in :data:`TIGHTENED_GATES` use their (tighter) per-kernel
    factor instead of ``max_regression`` — their committed speedups have
    headroom, so a real regression shows up well before the generic band.

    Returns human-readable failure lines (empty = pass).  Kernels present
    on only one side are ignored — the gate compares, it doesn't enforce
    coverage.
    """
    if max_regression <= 1.0:
        raise ValueError(f"max_regression must be > 1, got {max_regression}")
    base_by_key = {(r.codec, r.op, r.shape_name): r for r in baseline}
    pairs = [
        (record, base)
        for record in current
        if (base := base_by_key.get((record.codec, record.op, record.shape_name)))
        is not None
    ]
    speed_ratios = [
        record.reference_seconds / base.reference_seconds
        for record, base in pairs
        if record.reference_seconds is not None and base.reference_seconds is not None
    ]
    machine_factor = float(np.median(speed_ratios)) if speed_ratios else 1.0
    failures = []
    for record, base in pairs:
        gate = min(
            max_regression, TIGHTENED_GATES.get((record.codec, record.op), max_regression)
        )
        floor = base.throughput_mb_s / gate / max(machine_factor, 1.0)
        if record.throughput_mb_s >= floor:
            continue
        if (
            record.speedup is not None
            and base.speedup is not None
            and record.speedup >= base.speedup / gate
        ):
            continue  # reference regressed identically: machine, not code
        failures.append(
            f"{record.codec}.{record.op} [{record.shape_name}]: "
            f"{record.throughput_mb_s:.1f} MB/s < floor {floor:.1f} MB/s "
            f"(baseline {base.throughput_mb_s:.1f} MB/s / {gate:g}x, "
            f"machine factor {machine_factor:.2f})"
        )
    return failures


def format_table(records: Sequence[PerfRecord]) -> str:
    """Human-readable throughput/speedup table."""
    header = f"{'codec':<12} {'op':<8} {'shape':<10} {'MB/s':>10} {'ref MB/s':>10} {'speedup':>8}"
    lines = [header, "-" * len(header)]
    for r in records:
        ref = "" if r.reference_seconds is None else f"{r.input_nbytes / r.reference_seconds / 1e6:10.1f}"
        spd = "" if r.speedup is None else f"{r.speedup:7.1f}x"
        alloc = ""
        if r.alloc_nbytes is not None and r.reference_alloc_nbytes is not None:
            alloc = f"  alloc {r.alloc_nbytes}B vs {r.reference_alloc_nbytes}B"
        lines.append(
            f"{r.codec:<12} {r.op:<8} {r.shape_name:<10} {r.throughput_mb_s:>10.1f} {ref:>10} {spd:>8}{alloc}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None, help="write BENCH JSON here")
    parser.add_argument(
        "--append", type=Path, default=None,
        help="append this run to a v2 trajectory JSON (migrating v1 in place)",
    )
    parser.add_argument(
        "--check", type=Path, default=None, help="compare against a committed BENCH JSON"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="small single-shape run (CI perf-smoke)"
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--regression-factor", type=float, default=3.0,
        help="fail --check when throughput drops more than this factor",
    )
    args = parser.parse_args(argv)
    shapes = SMOKE_SHAPES if args.smoke else PAPER_SHAPES
    records = run_suite(shapes, repeats=args.repeats)
    print(format_table(records))
    if args.out is not None:
        write_bench(records, args.out)
        print(f"[written to {args.out}]")
    if args.append is not None:
        append_run(records, args.append)
        print(f"[appended to {args.append}]")
    if args.check is not None:
        failures = compare_to_baseline(
            records, load_bench(args.check), max_regression=args.regression_factor
        )
        if failures:
            print(f"PERF REGRESSION vs {args.check}:")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"perf-smoke OK vs {args.check} (within {args.regression_factor:g}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
