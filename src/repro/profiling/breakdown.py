"""Training-time breakdown reports (Fig. 1 and Fig. 12 style).

Turns a :class:`~repro.dist.timeline.Timeline` (or a category->seconds
mapping) into the stacked-fraction rows the paper plots, compares a
baseline run against a compressed run for the end-to-end speedup numbers,
and measures *overlap efficiency* — how much of the wire time a pipelined
(per-rank-stream) run actually hides behind compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist.timeline import (
    COMM_STREAM,
    COMPUTE_STREAM,
    OBS_STREAM,
    EventCategory,
    Timeline,
)
from repro.utils.tables import format_table

__all__ = [
    "CATEGORY_LABELS",
    "breakdown_rows",
    "breakdown_report",
    "SpeedupSummary",
    "compare_runs",
    "overlap_report",
    "overlap_efficiency",
    "chunk_pipeline_report",
]

CATEGORY_LABELS: dict[str, str] = {
    EventCategory.BOTTOM_MLP_FWD: "Bottom MLP (fwd)",
    EventCategory.EMB_LOOKUP: "Embedding lookup",
    EventCategory.COMPRESS: "Compression",
    EventCategory.METADATA: "Metadata all-to-all",
    EventCategory.ALLTOALL_FWD: "All-to-all (fwd)",
    EventCategory.DECOMPRESS: "Decompression",
    EventCategory.INTERACTION_FWD: "Interaction (fwd)",
    EventCategory.TOP_MLP_FWD: "Top MLP (fwd)",
    EventCategory.TOP_MLP_BWD: "Top MLP (bwd)",
    EventCategory.INTERACTION_BWD: "Interaction (bwd)",
    EventCategory.ALLTOALL_BWD: "All-to-all (bwd)",
    EventCategory.EMB_UPDATE: "Embedding update",
    EventCategory.BOTTOM_MLP_BWD: "Bottom MLP (bwd)",
    EventCategory.ALLREDUCE: "All-reduce (dense)",
    EventCategory.OPTIMIZER: "Optimizer step",
    EventCategory.TRAIN_STEP: "Trainer step (span)",
    EventCategory.PUBLISH: "Delta publication",
    EventCategory.SERVE_REQUEST: "Serving request",
    EventCategory.RETRY: "Retry backoff",
    EventCategory.CHECKPOINT: "Checkpoint save",
    EventCategory.RESTORE: "Checkpoint restore",
    EventCategory.FAULT: "Injected fault (span)",
}

#: display order for breakdown tables (forward pass, backward pass, sync)
_ORDER = list(CATEGORY_LABELS)


def breakdown_rows(category_seconds: dict[str, float]) -> list[tuple[str, float, float]]:
    """(label, seconds, fraction) rows in canonical order."""
    total = sum(category_seconds.values())
    rows = []
    for category in _ORDER:
        seconds = category_seconds.get(category, 0.0)
        if seconds == 0.0:
            continue
        fraction = seconds / total if total else 0.0
        rows.append((CATEGORY_LABELS[category], seconds, fraction))
    # Any custom categories the canonical list does not know about.
    for category, seconds in category_seconds.items():
        if category not in CATEGORY_LABELS and seconds > 0:
            rows.append((category, seconds, seconds / total if total else 0.0))
    return rows


def breakdown_report(
    source: Timeline | dict[str, float], title: str = "Training-time breakdown", rank: int | None = 0
) -> str:
    """Render the per-category breakdown as an ASCII table."""
    if isinstance(source, Timeline):
        category_seconds = source.total_by_category(rank=rank)
    else:
        category_seconds = dict(source)
    rows = [
        (label, f"{seconds * 1e3:.3f} ms", f"{fraction * 100:.1f}%")
        for label, seconds, fraction in breakdown_rows(category_seconds)
    ]
    comm = sum(
        category_seconds.get(c, 0.0) for c in EventCategory.COMMUNICATION
    )
    total = sum(category_seconds.values())
    rows.append(("TOTAL", f"{total * 1e3:.3f} ms", "100.0%"))
    rows.append(
        ("  of which communication", f"{comm * 1e3:.3f} ms", f"{100 * comm / total if total else 0:.1f}%")
    )
    return format_table(["Stage", "Time", "Share"], rows, title=title)


def _union_seconds(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    total = 0.0
    current_start = current_end = None
    for start, end in sorted(intervals):
        if current_end is None or start > current_end:
            if current_end is not None:
                total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_end is not None:
        total += current_end - current_start
    return total


def overlap_report(timeline: Timeline) -> dict[int, dict[str, float]]:
    """Per-rank overlap accounting from a (possibly multi-stream) timeline.

    For each rank: ``busy`` is the union of all its event intervals,
    ``charged`` the plain sum of durations, ``overlapped`` their
    difference (time during which at least two streams were double-booked
    — zero for any sequential run), ``comm`` the charged wire seconds,
    and ``efficiency`` the fraction of wire time hidden behind compute,
    ``overlapped / comm`` (clamped to [0, 1]).
    """
    report: dict[int, dict[str, float]] = {}
    for rank in timeline.ranks():
        # Annotation spans (obs stream) cover work already on the real
        # streams; counting them would fabricate overlap.
        events = [e for e in timeline.events_for_rank(rank) if e.stream != OBS_STREAM]
        charged = sum(e.duration for e in events)
        busy = _union_seconds([(e.start, e.end) for e in events])
        overlapped = max(0.0, charged - busy)
        comm = sum(
            e.duration for e in events if e.category in EventCategory.COMMUNICATION
        )
        report[rank] = {
            "charged": charged,
            "busy": busy,
            "overlapped": overlapped,
            "comm": comm,
            "efficiency": min(1.0, overlapped / comm) if comm > 0 else 0.0,
        }
    return report


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Sorted, disjoint union of ``(start, end)`` intervals."""
    merged: list[tuple[float, float]] = []
    for s, e in sorted(intervals):
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


def _overlap_with_merged(span: tuple[float, float], merged: list[tuple[float, float]]) -> float:
    """Length of ``span``'s intersection with pre-merged disjoint intervals."""
    start, end = span
    return sum(
        max(0.0, min(end, e) - max(start, s)) for s, e in merged if s < end and e > start
    )


def chunk_pipeline_report(timeline: Timeline) -> dict[int, dict[str, float]]:
    """Per-rank accounting of the chunk-level pipelined wire.

    Chunk events are the comm-stream events recorded with ``chunk`` args
    (one per wire chunk of a pipelined exchange).  For each rank:

    * ``chunks`` — number of chunk wire events;
    * ``wire`` — their total charged wire seconds;
    * ``stall`` — wire-port idle time *inside* the pipeline: gaps between
      consecutive chunk events of one exchange, i.e. the wire waiting on a
      chunk's compression (zero for a perfectly fed pipeline);
    * ``hidden`` — the part of the chunked wire time that ran while the
      rank's compute stream was busy (compression/decode/cross-stage
      kernels), i.e. the wire the pipeline actually hid;
    * ``hidden_fraction`` — ``hidden / wire`` (0 with no chunk events).
    """
    report: dict[int, dict[str, float]] = {}
    for rank in timeline.ranks():
        events = timeline.events_for_rank(rank)
        chunked = [
            e
            for e in events
            if e.stream == COMM_STREAM and e.args and "chunk" in e.args
        ]
        if not chunked:
            continue
        wire = sum(e.duration for e in chunked)
        by_exchange: dict[object, list] = {}
        for e in chunked:
            by_exchange.setdefault(e.args.get("exchange"), []).append(e)
        stall = 0.0
        for group in by_exchange.values():
            group.sort(key=lambda e: (e.start, e.end))
            stall += sum(
                max(0.0, later.start - earlier.end)
                for earlier, later in zip(group, group[1:])
            )
        compute_intervals = _merge_intervals(
            [
                (e.start, e.end)
                for e in events
                if e.stream == COMPUTE_STREAM and e.duration > 0
            ]
        )
        hidden = sum(
            _overlap_with_merged((e.start, e.end), compute_intervals) for e in chunked
        )
        report[rank] = {
            "chunks": float(len(chunked)),
            "wire": wire,
            "stall": stall,
            "hidden": hidden,
            "hidden_fraction": hidden / wire if wire > 0 else 0.0,
        }
    return report


def overlap_efficiency(timeline: Timeline) -> float:
    """Cluster-wide overlap efficiency: total double-booked seconds over
    total wire seconds — 0 for a fully sequential run, approaching 1 when
    the whole exchange hides behind compute."""
    per_rank = overlap_report(timeline)
    total_comm = sum(r["comm"] for r in per_rank.values())
    if total_comm == 0:
        return 0.0
    total_overlap = sum(r["overlapped"] for r in per_rank.values())
    return min(1.0, total_overlap / total_comm)


@dataclass(frozen=True)
class SpeedupSummary:
    """End-to-end and communication speedups between two runs."""

    baseline_total: float
    optimized_total: float
    baseline_comm: float
    optimized_comm: float

    @property
    def end_to_end(self) -> float:
        return self.baseline_total / self.optimized_total

    @property
    def communication(self) -> float:
        """Forward-exchange speedup: baseline all-to-all vs compressed
        pipeline (compress + metadata + payload + decompress)."""
        return self.baseline_comm / self.optimized_comm


def compare_runs(
    baseline: dict[str, float], optimized: dict[str, float]
) -> SpeedupSummary:
    """Fig. 12's headline numbers from two category->seconds mappings."""
    pipeline_categories = (
        EventCategory.ALLTOALL_FWD,
        EventCategory.METADATA,
        EventCategory.COMPRESS,
        EventCategory.DECOMPRESS,
    )
    return SpeedupSummary(
        baseline_total=sum(baseline.values()),
        optimized_total=sum(optimized.values()),
        baseline_comm=baseline.get(EventCategory.ALLTOALL_FWD, 0.0),
        optimized_comm=sum(optimized.get(c, 0.0) for c in pipeline_categories),
    )
