"""Training-time breakdown reports (Fig. 1 and Fig. 12 style).

Turns a :class:`~repro.dist.timeline.Timeline` (or a category->seconds
mapping) into the stacked-fraction rows the paper plots, and compares a
baseline run against a compressed run for the end-to-end speedup numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist.timeline import EventCategory, Timeline
from repro.utils.tables import format_table

__all__ = ["CATEGORY_LABELS", "breakdown_rows", "breakdown_report", "SpeedupSummary", "compare_runs"]

CATEGORY_LABELS: dict[str, str] = {
    EventCategory.BOTTOM_MLP_FWD: "Bottom MLP (fwd)",
    EventCategory.EMB_LOOKUP: "Embedding lookup",
    EventCategory.COMPRESS: "Compression",
    EventCategory.METADATA: "Metadata all-to-all",
    EventCategory.ALLTOALL_FWD: "All-to-all (fwd)",
    EventCategory.DECOMPRESS: "Decompression",
    EventCategory.INTERACTION_FWD: "Interaction (fwd)",
    EventCategory.TOP_MLP_FWD: "Top MLP (fwd)",
    EventCategory.TOP_MLP_BWD: "Top MLP (bwd)",
    EventCategory.INTERACTION_BWD: "Interaction (bwd)",
    EventCategory.ALLTOALL_BWD: "All-to-all (bwd)",
    EventCategory.EMB_UPDATE: "Embedding update",
    EventCategory.BOTTOM_MLP_BWD: "Bottom MLP (bwd)",
    EventCategory.ALLREDUCE: "All-reduce (dense)",
    EventCategory.OPTIMIZER: "Optimizer step",
}

#: display order for breakdown tables (forward pass, backward pass, sync)
_ORDER = list(CATEGORY_LABELS)


def breakdown_rows(category_seconds: dict[str, float]) -> list[tuple[str, float, float]]:
    """(label, seconds, fraction) rows in canonical order."""
    total = sum(category_seconds.values())
    rows = []
    for category in _ORDER:
        seconds = category_seconds.get(category, 0.0)
        if seconds == 0.0:
            continue
        fraction = seconds / total if total else 0.0
        rows.append((CATEGORY_LABELS[category], seconds, fraction))
    # Any custom categories the canonical list does not know about.
    for category, seconds in category_seconds.items():
        if category not in CATEGORY_LABELS and seconds > 0:
            rows.append((category, seconds, seconds / total if total else 0.0))
    return rows


def breakdown_report(
    source: Timeline | dict[str, float], title: str = "Training-time breakdown", rank: int | None = 0
) -> str:
    """Render the per-category breakdown as an ASCII table."""
    if isinstance(source, Timeline):
        category_seconds = source.total_by_category(rank=rank)
    else:
        category_seconds = dict(source)
    rows = [
        (label, f"{seconds * 1e3:.3f} ms", f"{fraction * 100:.1f}%")
        for label, seconds, fraction in breakdown_rows(category_seconds)
    ]
    comm = sum(
        category_seconds.get(c, 0.0) for c in EventCategory.COMMUNICATION
    )
    total = sum(category_seconds.values())
    rows.append(("TOTAL", f"{total * 1e3:.3f} ms", "100.0%"))
    rows.append(
        ("  of which communication", f"{comm * 1e3:.3f} ms", f"{100 * comm / total if total else 0:.1f}%")
    )
    return format_table(["Stage", "Time", "Share"], rows, title=title)


@dataclass(frozen=True)
class SpeedupSummary:
    """End-to-end and communication speedups between two runs."""

    baseline_total: float
    optimized_total: float
    baseline_comm: float
    optimized_comm: float

    @property
    def end_to_end(self) -> float:
        return self.baseline_total / self.optimized_total

    @property
    def communication(self) -> float:
        """Forward-exchange speedup: baseline all-to-all vs compressed
        pipeline (compress + metadata + payload + decompress)."""
        return self.baseline_comm / self.optimized_comm


def compare_runs(
    baseline: dict[str, float], optimized: dict[str, float]
) -> SpeedupSummary:
    """Fig. 12's headline numbers from two category->seconds mappings."""
    pipeline_categories = (
        EventCategory.ALLTOALL_FWD,
        EventCategory.METADATA,
        EventCategory.COMPRESS,
        EventCategory.DECOMPRESS,
    )
    return SpeedupSummary(
        baseline_total=sum(baseline.values()),
        optimized_total=sum(optimized.values()),
        baseline_comm=baseline.get(EventCategory.ALLTOALL_FWD, 0.0),
        optimized_comm=sum(optimized.get(c, 0.0) for c in pipeline_categories),
    )
