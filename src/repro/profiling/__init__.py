"""Profiling and breakdown reporting."""

from repro.profiling.breakdown import (
    CATEGORY_LABELS,
    SpeedupSummary,
    breakdown_report,
    breakdown_rows,
    compare_runs,
)

__all__ = [
    "CATEGORY_LABELS",
    "breakdown_rows",
    "breakdown_report",
    "SpeedupSummary",
    "compare_runs",
]
