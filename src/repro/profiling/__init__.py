"""Profiling, breakdown reporting, and codec throughput tracking."""

from repro.profiling.breakdown import (
    CATEGORY_LABELS,
    SpeedupSummary,
    breakdown_report,
    breakdown_rows,
    chunk_pipeline_report,
    compare_runs,
    overlap_efficiency,
    overlap_report,
)

#: perfbench names re-exported lazily (PEP 562): an eager import here would
#: make ``python -m repro.profiling.perfbench`` execute the module twice
#: (runpy imports the package first), with a RuntimeWarning and duplicated
#: module globals.
_PERFBENCH_EXPORTS = {
    "PAPER_SHAPES",
    "PerfRecord",
    "compare_to_baseline",
    "format_table",
    "load_bench",
    "make_lookup_batch",
    "run_suite",
    "write_bench",
}


def __getattr__(name):
    if name in _PERFBENCH_EXPORTS:
        from repro.profiling import perfbench

        return getattr(perfbench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CATEGORY_LABELS",
    "breakdown_rows",
    "breakdown_report",
    "SpeedupSummary",
    "compare_runs",
    "overlap_report",
    "overlap_efficiency",
    "chunk_pipeline_report",
    "PAPER_SHAPES",
    "PerfRecord",
    "make_lookup_batch",
    "run_suite",
    "write_bench",
    "load_bench",
    "compare_to_baseline",
    "format_table",
]
