"""A day in the life of the system, observed end to end.

:func:`run_day_in_the_life` runs the smallest honest version of the
paper's full loop — train with compressed exchanges, publish deltas to a
serving tier, serve a Zipf-skewed request trace — with the observability
runtime enabled throughout, and returns every artifact the ``repro.obs``
stack can produce from one run:

* a :class:`~repro.obs.registry.RegistrySnapshot` covering all three
  tiers (pipeline/comm/train/publish/serve metric families),
* one *unified* chrome trace (train, publication, and serving timelines
  as separate process lanes, each with its spans and counter tracks),
* the human :func:`~repro.obs.exporters.run_report` text.

On top of the raw artifacts, the run is *analyzed*: each tier's
timeline gets a critical-path extraction (rendered as a highlight lane
in the unified trace and as makespan-attribution tables in the report)
and the three tiers feed live SLO burn-rate monitors (serve p99 vs
target, publication staleness vs the adaptive plan's bound, train step
time vs budget).

This is the scenario behind ``examples/obs_day_in_the_life.py`` and the
CI ``obs-smoke`` job: with ``out_dir`` set it writes ``metrics.json``
(validated against the snapshot schema, including the ``reports``
block), ``metrics.prom``, ``obs_trace.json``, ``run_report.txt``, and
``critical_path.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.obs.registry import MetricsRegistry, RegistrySnapshot
from repro.obs.runtime import capture, enable

__all__ = ["ScenarioResult", "run_day_in_the_life"]


@dataclass(frozen=True)
class ScenarioResult:
    """Everything one observed train→publish→serve run produces."""

    snapshot: RegistrySnapshot
    trace: dict  # unified chrome trace (traceEvents + metadata)
    report: str  # human run_report text
    train_makespan: float
    publish_wire_nbytes: int
    serve_p99_latency: float
    #: paths written when ``out_dir`` was given, keyed by artifact name
    paths: dict[str, Path]
    #: tier name -> CriticalPathResult over that tier's timeline
    critical_paths: dict | None = None
    #: the run's SloHub (burn-rate monitors, already fed)
    slo: object | None = None


def run_day_in_the_life(
    *,
    n_iterations: int = 3,
    n_requests: int = 200,
    n_tables: int = 6,
    cardinality: int = 400,
    qps: float = 2000.0,
    serve_latency_target: float = 2e-3,
    train_step_target: float = 5e-3,
    out_dir: str | Path | None = None,
    seed: int = 7,
) -> ScenarioResult:
    """Run the observed end-to-end scenario and collect its artifacts.

    The observability runtime is enabled onto a fresh private registry for
    the duration of the run (prior enable/disable state is restored), so
    calling this never perturbs the caller's metrics.
    """
    # Heavy imports stay local: repro.obs must be importable without
    # pulling the model/train/serve stack (the hot paths import obs, not
    # the other way around).
    from repro.adaptive import AdaptiveController, OfflineAnalyzer
    from repro.data import SyntheticClickDataset, make_uniform_spec
    from repro.dist import ClusterSimulator
    from repro.dist.timeline import Timeline
    from repro.model import DLRM, DLRMConfig
    from repro.obs.critpath import (
        extract_critical_path,
        highlight_trace_events,
        report_json_block,
    )
    from repro.obs.exporters import run_report, snapshot_to_json, to_prometheus
    from repro.obs.schema import validate_snapshot_json
    from repro.obs.slo import SloHub, attach_hub, default_monitors
    from repro.obs.trace import unified_chrome_trace
    from repro.serve import build_serving_tier
    from repro.serve.loadgen import RequestLoadGenerator
    from repro.serve.simulator import ServingSimulator
    from repro.train import CompressionPipeline, HybridParallelTrainer

    if n_iterations < 1:
        raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")

    with capture():
        registry = enable(MetricsRegistry())

        # --- train: compressed hybrid-parallel steps on a 2-rank cluster
        spec = make_uniform_spec(
            "obs-day", n_tables=n_tables, cardinality=cardinality, zipf_exponent=1.2
        )
        dataset = SyntheticClickDataset(spec, seed=seed, teacher_scale=3.0)
        config = DLRMConfig.from_dataset(spec, embedding_dim=8, seed=seed + 1)
        model = DLRM(config)
        batch = dataset.batch(128, batch_index=10_000_000)
        samples = {j: model.lookup(j, batch.sparse[:, j]) for j in range(n_tables)}
        plan = OfflineAnalyzer().analyze(samples)
        pipeline = CompressionPipeline(AdaptiveController(plan))

        # --- SLOs: the staleness bound is exactly what the adaptive plan
        # promises (worst per-table effective error bound at the publish
        # iteration); serve latency and step time get scenario budgets.
        controller = pipeline.controller
        staleness_bound = max(
            controller.error_bound(t, n_iterations - 1)
            for t in controller.table_ids()
        )
        slo_hub = attach_hub(
            SloHub(
                default_monitors(
                    serve_p99_target=serve_latency_target,
                    publish_staleness_bound=staleness_bound,
                    train_step_target=train_step_target,
                )
            )
        )

        trainer = HybridParallelTrainer(
            model,
            dataset,
            ClusterSimulator(2),
            pipeline=pipeline,
            lr=0.2,
            overlap=True,  # chunked overlapped exchanges -> chunk events + stall/hidden metrics
            pipeline_chunks=4,
        )
        for iteration in range(n_iterations):
            trainer.train_step(64, iteration=iteration)
        train_makespan = trainer.simulator.makespan()

        # --- publish: ship the trained deltas to a 2-shard serving tier
        tier = build_serving_tier(
            trainer, n_shard_ranks=2, n_replicas=2, cache_rows=64
        )
        publication = tier.publisher.publish(iteration=n_iterations - 1)

        # --- serve: a Zipf-skewed open-loop trace over the fresh tables
        serve_trace = Timeline()
        loadgen = RequestLoadGenerator(dataset, qps=qps, seed=seed + 2)
        requests = loadgen.generate(n_requests)
        serving = ServingSimulator(tier.replicas, config)
        serving_report = serving.run(
            requests,
            replica_available_at=publication.downtime_seconds,
            trace=serve_trace,
        )

        snapshot = registry.snapshot()
        timelines = {
            "train": trainer.simulator.timeline,
            "publish": tier.publisher.simulator.timeline,
            "serve": serve_trace,
        }
        # Lay the tiers out in wall-clock-ish order: publication begins
        # when training pauses; serving resumes behind the publication.
        offsets = {
            "publish": train_makespan,
            "serve": train_makespan,
        }
        trace = unified_chrome_trace(timelines, offsets=offsets)
        # --- critical path per tier, rendered as an extra highlight lane
        # on each tier's process in the unified trace
        critical_paths = {
            name: extract_critical_path(timeline)
            for name, timeline in timelines.items()
            if len(timeline.events)
        }
        tier_meta = trace["metadata"]["tiers"]
        for name, result in critical_paths.items():
            trace["traceEvents"].extend(
                highlight_trace_events(
                    result,
                    pid=tier_meta[name]["pid"],
                    offset_seconds=tier_meta[name]["offset_seconds"],
                )
            )
        report = run_report(
            snapshot,
            timelines=timelines,
            critical_paths=critical_paths,
            slo=slo_hub,
            title="Day in the life",
        )

    paths: dict[str, Path] = {}
    if out_dir is not None:
        import json

        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        reports_block = {
            "critical_path": report_json_block(critical_paths),
            "slo": slo_hub.to_json_dict(),
        }
        metrics_json = snapshot_to_json(snapshot, indent=2, reports=reports_block)
        validate_snapshot_json(metrics_json)  # never ship an invalid artifact
        paths["metrics.json"] = out / "metrics.json"
        paths["metrics.json"].write_text(metrics_json)
        paths["metrics.prom"] = out / "metrics.prom"
        paths["metrics.prom"].write_text(to_prometheus(snapshot))
        paths["obs_trace.json"] = out / "obs_trace.json"
        paths["obs_trace.json"].write_text(json.dumps(trace))
        paths["run_report.txt"] = out / "run_report.txt"
        paths["run_report.txt"].write_text(report + "\n")
        paths["critical_path.json"] = out / "critical_path.json"
        paths["critical_path.json"].write_text(
            json.dumps(report_json_block(critical_paths), indent=2) + "\n"
        )

    return ScenarioResult(
        snapshot=snapshot,
        trace=trace,
        report=report,
        train_makespan=train_makespan,
        publish_wire_nbytes=publication.wire_nbytes,
        serve_p99_latency=serving_report.p99_latency,
        paths=paths,
        critical_paths=critical_paths,
        slo=slo_hub,
    )
