"""Critical-path analysis over simulation timelines.

The simulator's :class:`~repro.dist.timeline.Timeline` is a flat ledger
of per-(rank, stream) events, but the *schedule* that produced it is a
dependency DAG: events on one stream serialize (the stream clock), chunk
wire/decode events wait on explicit release edges (the communicator
records them — see ``TimelineEvent.release_edges``), and collectives
barrier every clock.  :class:`TimelineDag` reconstructs that DAG from the
ledger and answers the question the raw trace cannot: *which chain of
events actually set the makespan, and what would change if one stage got
faster?*

* :meth:`TimelineDag.critical_path` walks back from the event that ends
  at the makespan, at each step following the latest-finishing releaser
  (explicit edge > same-stream predecessor > coincident-end inference).
  The result partitions ``[0, makespan]`` into contiguous segments, each
  attributed to its event's (rank, stream, category) — or to ``"idle"``
  where no recorded event explains a wait (e.g. open-loop request
  arrivals).  Because the segments partition the interval, the
  per-(rank, stream, category) attribution sums *exactly* to the
  makespan — :meth:`CriticalPathResult.attribution_exact` does the sums
  in :class:`fractions.Fraction`, so the conservation law is exact
  rational arithmetic, not float luck.
* :meth:`TimelineDag.speedup_if` re-schedules the whole DAG with one
  category's durations scaled and reports the predicted makespan — the
  what-if the adaptive controller (and a human) needs before touching a
  kernel.  Unexplained start delays are treated as exogenous floors
  (arrivals do not speed up because a codec did).
* :func:`highlight_trace_events` renders the extracted path as one extra
  chrome-trace lane, and :func:`critical_path_report` as an ASCII table
  for ``run_report``.

Analysis is strictly offline — nothing here runs unless asked, so the
``OBS.enabled`` zero-overhead contract is untouched.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Mapping

from repro.dist.timeline import OBS_STREAM, Timeline, TimelineEvent

__all__ = [
    "IDLE_CATEGORY",
    "CriticalStep",
    "CriticalPathResult",
    "SpeedupEstimate",
    "TimelineDag",
    "extract_critical_path",
    "critical_path_report",
    "highlight_trace_events",
    "report_json_block",
]

#: category attributed to critical-path waits no recorded event explains
IDLE_CATEGORY = "idle"


@dataclass(frozen=True)
class CriticalStep:
    """One contiguous segment of the critical path.

    ``start``/``end`` bound the *attributed* interval: the segment runs
    from the previous step's release to this event's completion, so
    consecutive steps tile ``[0, makespan]`` with no gaps or overlaps.
    ``event_index`` is the ledger index of the event the segment is
    attributed to, or ``None`` for an :data:`IDLE_CATEGORY` wait.
    """

    event_index: int | None
    rank: int
    stream: str
    category: str
    start: float
    end: float

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class SpeedupEstimate:
    """What-if prediction: one category's durations scaled by ``1/factor``."""

    category: str
    factor: float
    baseline_makespan: float
    predicted_makespan: float

    @property
    def speedup(self) -> float:
        if self.predicted_makespan <= 0.0:
            return math.inf if self.baseline_makespan > 0.0 else 1.0
        return self.baseline_makespan / self.predicted_makespan


@dataclass(frozen=True)
class CriticalPathResult:
    """The extracted path plus its exact makespan attribution."""

    makespan: float
    steps: tuple[CriticalStep, ...]

    def attribution_exact(self) -> dict[tuple[int, str, str], Fraction]:
        """(rank, stream, category) -> attributed seconds, as exact
        rationals.  Summing every value reproduces ``Fraction(makespan)``
        identically — the conservation law the property tests pin."""
        totals: dict[tuple[int, str, str], Fraction] = {}
        for step in self.steps:
            key = (step.rank, step.stream, step.category)
            totals[key] = totals.get(key, Fraction(0)) + (
                Fraction(step.end) - Fraction(step.start)
            )
        return totals

    def attribution(self) -> dict[tuple[int, str, str], float]:
        """(rank, stream, category) -> attributed seconds (floats)."""
        return {k: float(v) for k, v in self.attribution_exact().items()}

    def by_category(self) -> dict[str, float]:
        """category -> attributed seconds, summed over ranks/streams."""
        totals: dict[str, float] = {}
        for (rank, stream, category), seconds in self.attribution().items():
            totals[category] = totals.get(category, 0.0) + seconds
        return totals

    def to_json_dict(self) -> dict:
        """The machine-readable ``critical_path`` report block (see
        ``repro.obs.schema``)."""
        return {
            "makespan": self.makespan,
            "attribution": [
                {"rank": rank, "stream": stream, "category": category, "seconds": seconds}
                for (rank, stream, category), seconds in sorted(
                    self.attribution().items(), key=lambda kv: -kv[1]
                )
            ],
            "steps": [
                {
                    "event_index": step.event_index,
                    "rank": step.rank,
                    "stream": step.stream,
                    "category": step.category,
                    "start": step.start,
                    "end": step.end,
                }
                for step in self.steps
            ],
        }


class _Node:
    __slots__ = ("event", "index", "lane_pred", "explicit", "group", "new_end")

    def __init__(self, event: TimelineEvent, index: int):
        self.event = event
        self.index = index  # ledger index
        self.lane_pred: int | None = None  # ledger index of same-lane predecessor
        self.explicit: tuple[int, ...] = ()  # ledger indices of release edges
        self.group: int | None = None  # collective-barrier group id
        self.new_end: float = 0.0


class TimelineDag:
    """Dependency DAG reconstructed from one timeline's event ledger."""

    def __init__(self, nodes: dict[int, _Node], groups: list[list[int]], eps: float):
        self._nodes = nodes
        self._groups = groups
        self._eps = eps
        self._ends_sorted = sorted(
            ((node.event.end, index) for index, node in nodes.items())
        )
        self._end_values = [end for end, _ in self._ends_sorted]

    # ---------------------------------------------------------- construction

    @classmethod
    def from_timeline(cls, timeline: Timeline) -> "TimelineDag":
        """Reconstruct the DAG: stream-order edges, explicit release
        edges, and collective-barrier groups (contiguously-recorded runs
        of identical spans on distinct ranks — how ``collective()``
        writes them)."""
        nodes: dict[int, _Node] = {}
        for index, event in enumerate(timeline.events):
            if event.stream == OBS_STREAM:
                continue  # annotation spans cover work already recorded
            nodes[index] = _Node(event, index)

        lanes: dict[tuple[int, str], list[int]] = {}
        for index, node in nodes.items():
            lanes.setdefault((node.event.rank, node.event.stream), []).append(index)
        for members in lanes.values():
            members.sort(key=lambda i: (nodes[i].event.start, i))
            for prev, cur in zip(members, members[1:]):
                nodes[cur].lane_pred = prev

        for index, node in nodes.items():
            if node.event.release_edges:
                node.explicit = tuple(
                    i for i in node.event.release_edges if i in nodes and i < index
                )

        groups: list[list[int]] = []
        ordered = sorted(nodes)
        run: list[int] = []

        def flush() -> None:
            # A genuine collective() barrier: one identical span per rank,
            # recorded contiguously, with no explicit release edges (events
            # that carry edges — e.g. the pipelined metadata round — are
            # released by those edges, not by a barrier over every clock).
            if (
                len(run) >= 2
                and len({nodes[i].event.rank for i in run}) == len(run)
                and all(not nodes[i].explicit for i in run)
            ):
                gid = len(groups)
                groups.append(list(run))
                for i in run:
                    nodes[i].group = gid

        for index in ordered:
            event = nodes[index].event
            if run:
                head = nodes[run[0]].event
                same = (
                    index == run[-1] + 1
                    and event.category == head.category
                    and event.stream == head.stream
                    and event.start == head.start
                    and event.duration == head.duration
                    and event.rank not in {nodes[i].event.rank for i in run}
                )
                if not same:
                    flush()
                    run.clear()
            run.append(index)
        flush()

        makespan = max((n.event.end for n in nodes.values()), default=0.0)
        eps = 1e-9 * max(1.0, makespan)
        return cls(nodes, groups, eps)

    # --------------------------------------------------------------- queries

    @property
    def makespan(self) -> float:
        return self._end_values[-1] if self._end_values else 0.0

    def __len__(self) -> int:
        return len(self._nodes)

    def _ending_at(self, time: float) -> list[int]:
        """Ledger indices of events whose end matches ``time`` within the
        tolerance (exact in fresh ledgers; the tolerance absorbs the
        microsecond round-trip of parsed chrome traces)."""
        lo = bisect.bisect_left(self._end_values, time - self._eps)
        hi = bisect.bisect_right(self._end_values, time + self._eps)
        return [index for _, index in self._ends_sorted[lo:hi]]

    def _releaser(self, index: int, visited: set[int]) -> int | None:
        """The latest-finishing dependency of one event: explicit release
        edges and the same-lane predecessor always qualify; events ending
        exactly at this event's start qualify when the lane alone does not
        explain the start (a cross-stream join or collective barrier)."""
        node = self._nodes[index]
        event = node.event
        candidates: list[int] = [i for i in node.explicit if i not in visited]
        lane_pred = node.lane_pred
        gap = event.start - self._eps > (
            self._nodes[lane_pred].event.end if lane_pred is not None else 0.0
        )
        if lane_pred is not None and lane_pred not in visited:
            candidates.append(lane_pred)
        if gap or lane_pred is None:
            candidates.extend(
                i for i in self._ending_at(event.start) if i != index and i not in visited
            )
        candidates = [
            i for i in candidates if self._nodes[i].event.end <= event.start + self._eps
        ]
        if not candidates:
            return None
        # Latest end wins (the binding constraint); prefer explicit edges,
        # then the lane, on exact ties so the rendered path reads causally.
        def priority(i: int) -> tuple:
            n = self._nodes[i]
            return (n.event.end, i in node.explicit, i == lane_pred, -i)

        return max(candidates, key=priority)

    # --------------------------------------------------------- critical path

    def critical_path(self) -> CriticalPathResult:
        """Walk back from the makespan event, tiling ``[0, makespan]``
        into attributed segments (see :class:`CriticalStep`)."""
        if not self._nodes:
            return CriticalPathResult(makespan=0.0, steps=())
        terminal = max(self._nodes, key=lambda i: (self._nodes[i].event.end, i))
        steps: list[CriticalStep] = []
        visited: set[int] = set()
        current: int | None = terminal
        while current is not None:
            visited.add(current)
            event = self._nodes[current].event
            pred = self._releaser(current, visited)
            pred_end = self._nodes[pred].event.end if pred is not None else 0.0
            if pred_end < event.start - self._eps:
                # Unexplained wait: attribute the gap honestly as idle
                # time on this event's lane instead of inflating the event.
                steps.append(
                    CriticalStep(
                        event_index=current,
                        rank=event.rank,
                        stream=event.stream,
                        category=event.category,
                        start=event.start,
                        end=event.end,
                    )
                )
                steps.append(
                    CriticalStep(
                        event_index=None,
                        rank=event.rank,
                        stream=event.stream,
                        category=IDLE_CATEGORY,
                        start=pred_end,
                        end=event.start,
                    )
                )
            else:
                steps.append(
                    CriticalStep(
                        event_index=current,
                        rank=event.rank,
                        stream=event.stream,
                        category=event.category,
                        start=pred_end,
                        end=event.end,
                    )
                )
            current = pred
        steps.reverse()
        return CriticalPathResult(makespan=self.makespan, steps=tuple(steps))

    # -------------------------------------------------------------- what-ifs

    def reschedule(self, scale: Callable[[TimelineEvent], float]) -> float:
        """Forward-simulate the DAG with per-event duration scaling and
        return the new makespan.

        Constraints honored: stream order, explicit release edges,
        inferred cross-stream joins (only where the original schedule
        shows one binding), collective barriers (a group starts when every
        earlier-recorded event finished), and exogenous start floors where
        no dependency explains an event's start (open-loop arrivals keep
        their clock).  ``scale(event) == 1.0`` for every event reproduces
        the original makespan exactly.
        """
        order = sorted(
            self._nodes,
            key=lambda i: (self._nodes[i].event.start, self._nodes[i].event.end, i),
        )
        processed: set[int] = set()
        group_start: dict[int, float] = {}
        makespan = 0.0
        for index in order:
            node = self._nodes[index]
            event = node.event
            start = 0.0
            deps: list[int] = list(node.explicit)
            if node.lane_pred is not None:
                deps.append(node.lane_pred)
            lane_end = (
                self._nodes[node.lane_pred].event.end
                if node.lane_pred is not None
                else 0.0
            )
            explained = max(
                [lane_end]
                + [self._nodes[i].event.end for i in node.explicit],
                default=0.0,
            )
            if node.group is not None:
                gid = node.group
                if gid not in group_start:
                    # A collective barriers every clock: the group starts
                    # once every earlier-recorded event has finished.
                    first = min(self._groups[gid])
                    group_start[gid] = max(
                        (
                            self._nodes[i].new_end
                            for i in processed
                            if i < first
                        ),
                        default=0.0,
                    )
                start = group_start[gid]
                explained = event.start  # the barrier fully explains it
            elif event.start - self._eps > lane_end:
                joins = [
                    i
                    for i in self._ending_at(event.start)
                    if i != index and i < index
                ]
                deps.extend(joins)
                if joins:
                    explained = max(
                        explained, max(self._nodes[i].event.end for i in joins)
                    )
            for i in deps:
                if i in processed:  # guaranteed by the processing order
                    start = max(start, self._nodes[i].new_end)
            if event.start - self._eps > explained:
                # Exogenous delay (e.g. a request arrival): keep it.
                start = max(start, event.start)
            factor = float(scale(event))
            if not math.isfinite(factor) or factor < 0.0:
                raise ValueError(f"scale must be finite and >= 0, got {factor!r}")
            node.new_end = start + event.duration * factor
            processed.add(index)
            makespan = max(makespan, node.new_end)
        return makespan

    def speedup_if(self, category: str, factor: float) -> SpeedupEstimate:
        """Predicted makespan if every ``category`` event ran ``factor``
        times faster (``factor < 1`` models a slowdown)."""
        factor = float(factor)
        if not math.isfinite(factor) or factor <= 0.0:
            raise ValueError(f"factor must be finite and > 0, got {factor!r}")
        predicted = self.reschedule(
            lambda event: 1.0 / factor if str(event.category) == str(category) else 1.0
        )
        return SpeedupEstimate(
            category=str(category),
            factor=factor,
            baseline_makespan=self.makespan,
            predicted_makespan=predicted,
        )


def extract_critical_path(timeline: Timeline) -> CriticalPathResult:
    """Reconstruct the DAG and extract the critical path in one call."""
    return TimelineDag.from_timeline(timeline).critical_path()


def critical_path_report(
    result: CriticalPathResult, *, title: str = "Critical path"
) -> str:
    """The ``critical_path_report`` table ``run_report`` embeds: makespan
    attribution per (rank, stream, category), heaviest first."""
    from repro.utils.tables import format_table

    rows = [
        (
            category,
            rank,
            stream,
            f"{seconds:.6f}",
            f"{100.0 * seconds / result.makespan:.1f}%" if result.makespan else "-",
        )
        for (rank, stream, category), seconds in sorted(
            result.attribution().items(), key=lambda kv: -kv[1]
        )
    ]
    table = format_table(
        ["category", "rank", "stream", "seconds", "share"],
        rows,
        title=f"{title} — makespan {result.makespan:.6f}s over {len(result.steps)} steps",
    )
    return table


def highlight_trace_events(
    result: CriticalPathResult,
    *,
    pid: int = 0,
    tid: int = 10_000,
    offset_seconds: float = 0.0,
    process_name: str | None = None,
) -> list[dict]:
    """Render the critical path as one chrome-trace highlight lane.

    Returns ``"X"`` entries (plus lane/process metadata) on a dedicated
    thread id; append them to an existing trace's ``traceEvents`` to see
    the binding chain as its own swim lane above the per-rank lanes.
    """
    entries: list[dict] = []
    if process_name is not None:
        entries.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": process_name},
            }
        )
    entries.append(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": "critical path"},
        }
    )
    shift_us = float(offset_seconds) * 1e6
    for step in result.steps:
        entries.append(
            {
                "name": f"{step.category} (rank {step.rank})",
                "cat": "critpath",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": step.start * 1e6 + shift_us,
                "dur": step.seconds * 1e6,
                "args": {
                    "rank": step.rank,
                    "stream": step.stream,
                    "event_index": step.event_index,
                },
            }
        )
    return entries


def report_json_block(
    results: Mapping[str, CriticalPathResult]
) -> dict[str, dict]:
    """tier name -> machine-readable critical-path block (the shape the
    snapshot schema validates under ``reports.critical_path``)."""
    return {name: result.to_json_dict() for name, result in results.items()}
