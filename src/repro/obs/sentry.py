"""Perf-regression sentry over the committed benchmark trajectory.

``BENCH_compression.json`` carries one :mod:`repro.profiling.perfbench`
run per landed change (a v2 *trajectory*).  A single-baseline gate like
``perfbench --check`` answers "did this run fall off a cliff?"; the
sentry answers the sharper question "is this run outside the band the
kernel's own history predicts?" — per kernel, with robust statistics, on
whatever machine happens to run it.

Per (codec, op, shape) kernel:

1. every historical run's throughput is **normalized to the current
   machine** — the frozen ``_reference_*`` implementations never change,
   so the median ratio of that run's reference times to the current
   run's is a pure machine-speed factor;
2. the baseline is the **median** of the normalized points and the noise
   scale is ``1.4826 * MAD`` (both immune to the odd loaded-CI outlier);
3. the acceptance band is ``median ± max(mad_k * sigma, width_floor *
   median)`` — the floor keeps a kernel whose history happens to be
   eerily quiet from flagging ordinary timing jitter;
4. kernels with fewer than ``min_points`` history points are reported as
   ``insufficient`` and never fail the gate.

The verdict is machine-readable JSON (``sentry_verdict.json`` in CI's
obs-smoke artifact); below-band kernels are ``regressions`` and fail the
gate, above-band kernels are ``improvements`` (informational — refresh
the trajectory).  ``--warn-only`` reports without failing, the first
landing's configuration.

CLI::

    python -m repro.obs.sentry --bench BENCH_compression.json --smoke
    python -m repro.obs.sentry --bench BENCH_compression.json \
        --current fresh.json --out sentry_verdict.json --warn-only
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.profiling.perfbench import (
    PerfRecord,
    SMOKE_SHAPES,
    load_bench,
    load_trajectory,
    run_suite,
)

__all__ = [
    "VERDICT_SCHEMA_VERSION",
    "KernelVerdict",
    "SentryVerdict",
    "normalization_factor",
    "evaluate",
    "main",
]

VERDICT_SCHEMA_VERSION = 1

#: scale factor turning a median absolute deviation into a robust sigma
#: (exact for Gaussian noise)
MAD_SIGMA = 1.4826


def _key(record: PerfRecord) -> tuple[str, str, str]:
    return (record.codec, record.op, record.shape_name)


@dataclass(frozen=True)
class KernelVerdict:
    """One kernel's position against its history band."""

    codec: str
    op: str
    shape_name: str
    status: str  # "ok" | "regression" | "improvement" | "insufficient"
    throughput_mb_s: float
    baseline_mb_s: float | None = None
    band_low_mb_s: float | None = None
    band_high_mb_s: float | None = None
    history_points: int = 0

    def to_json_dict(self) -> dict:
        out = {
            "codec": self.codec,
            "op": self.op,
            "shape": self.shape_name,
            "status": self.status,
            "throughput_mb_s": self.throughput_mb_s,
            "history_points": self.history_points,
        }
        if self.baseline_mb_s is not None:
            out["baseline_mb_s"] = self.baseline_mb_s
            out["band_low_mb_s"] = self.band_low_mb_s
            out["band_high_mb_s"] = self.band_high_mb_s
        return out


@dataclass(frozen=True)
class SentryVerdict:
    """The whole run's verdict: fails only on in-band history breaches."""

    kernels: tuple[KernelVerdict, ...]
    warn_only: bool = False

    def _with(self, status: str) -> list[KernelVerdict]:
        return [k for k in self.kernels if k.status == status]

    @property
    def regressions(self) -> list[KernelVerdict]:
        return self._with("regression")

    @property
    def improvements(self) -> list[KernelVerdict]:
        return self._with("improvement")

    @property
    def insufficient(self) -> list[KernelVerdict]:
        return self._with("insufficient")

    @property
    def passed(self) -> bool:
        return self.warn_only or not self.regressions

    def to_json_dict(self) -> dict:
        return {
            "schema_version": VERDICT_SCHEMA_VERSION,
            "status": "pass" if self.passed else "fail",
            "warn_only": self.warn_only,
            "checked": sum(
                1 for k in self.kernels if k.status != "insufficient"
            ),
            "regressions": [k.to_json_dict() for k in self.regressions],
            "improvements": [k.to_json_dict() for k in self.improvements],
            "insufficient": [k.to_json_dict() for k in self.insufficient],
        }

    def summary(self) -> str:
        counts = {
            status: len(self._with(status))
            for status in ("ok", "regression", "improvement", "insufficient")
        }
        head = "sentry PASS" if self.passed else "sentry FAIL"
        if self.warn_only and self._with("regression"):
            head = "sentry WARN (warn-only)"
        body = ", ".join(f"{n} {status}" for status, n in counts.items() if n)
        lines = [f"{head}: {body or 'no kernels'}"]
        for k in self.regressions + self.improvements:
            lines.append(
                f"  {k.status}: {k.codec}.{k.op} [{k.shape_name}] "
                f"{k.throughput_mb_s:.1f} MB/s vs band "
                f"[{k.band_low_mb_s:.1f}, {k.band_high_mb_s:.1f}] "
                f"(median {k.baseline_mb_s:.1f}, {k.history_points} points)"
            )
        return "\n".join(lines)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def normalization_factor(
    run: Sequence[PerfRecord], current: Sequence[PerfRecord]
) -> float:
    """Predicted current-machine over run-machine speed: the median ratio
    of the run's frozen-reference wall times to the current run's, over
    the kernels both sides timed.  Multiplying the run's throughputs by
    this maps them onto the current machine; 1.0 when no common
    references exist (same-machine assumption)."""
    current_by_key = {_key(r): r for r in current}
    ratios = [
        record.reference_seconds / base.reference_seconds
        for record in run
        if record.reference_seconds
        if (base := current_by_key.get(_key(record))) is not None
        if base.reference_seconds
    ]
    return _median(ratios) if ratios else 1.0


def evaluate(
    history: Sequence[Sequence[PerfRecord]],
    current: Sequence[PerfRecord],
    *,
    min_points: int = 3,
    mad_k: float = 4.0,
    width_floor: float = 0.3,
    warn_only: bool = False,
) -> SentryVerdict:
    """Judge ``current`` against the per-kernel history bands.

    ``history`` is the trajectory's runs, oldest first (the current run,
    if it is the trajectory's own tail, must not be included — pass
    ``trajectory[:-1]`` and ``trajectory[-1]``).
    """
    if min_points < 2:
        raise ValueError(f"min_points must be >= 2, got {min_points}")
    points: dict[tuple[str, str, str], list[float]] = {}
    for run in history:
        factor = normalization_factor(run, current)
        for record in run:
            points.setdefault(_key(record), []).append(
                record.throughput_mb_s * factor
            )
    kernels = []
    for record in current:
        normalized = points.get(_key(record), [])
        if len(normalized) < min_points:
            kernels.append(
                KernelVerdict(
                    codec=record.codec,
                    op=record.op,
                    shape_name=record.shape_name,
                    status="insufficient",
                    throughput_mb_s=record.throughput_mb_s,
                    history_points=len(normalized),
                )
            )
            continue
        center = _median(normalized)
        sigma = MAD_SIGMA * _median([abs(p - center) for p in normalized])
        width = max(mad_k * sigma, width_floor * center)
        low, high = center - width, center + width
        if record.throughput_mb_s < low:
            status = "regression"
        elif record.throughput_mb_s > high:
            status = "improvement"
        else:
            status = "ok"
        kernels.append(
            KernelVerdict(
                codec=record.codec,
                op=record.op,
                shape_name=record.shape_name,
                status=status,
                throughput_mb_s=record.throughput_mb_s,
                baseline_mb_s=center,
                band_low_mb_s=low,
                band_high_mb_s=high,
                history_points=len(normalized),
            )
        )
    return SentryVerdict(kernels=tuple(kernels), warn_only=warn_only)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench", type=Path, required=True,
        help="committed trajectory JSON (v2; a v1 file is one point)",
    )
    parser.add_argument(
        "--current", type=Path, default=None,
        help="bench JSON of the run under judgment (default: measure now)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the verdict JSON here"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="when measuring, use the small CI shape set",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--min-points", type=int, default=3)
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report regressions without failing the gate",
    )
    args = parser.parse_args(argv)
    history = load_trajectory(args.bench)
    if args.current is not None:
        current = load_bench(args.current)
    else:
        current = run_suite(
            SMOKE_SHAPES if args.smoke else None, repeats=args.repeats
        )
    verdict = evaluate(
        history,
        current,
        min_points=args.min_points,
        warn_only=args.warn_only,
    )
    print(verdict.summary())
    if args.out is not None:
        args.out.write_text(json.dumps(verdict.to_json_dict(), indent=2) + "\n")
        print(f"[verdict written to {args.out}]")
    return 0 if verdict.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
