"""Offline run-report CLI: re-render a run from its archived artifacts.

The obs-smoke job (and any local run with ``out_dir`` set) leaves
``metrics.json`` and ``obs_trace.json`` behind.  This CLI turns them
back into the human report — including per-tier time breakdowns and
fresh critical-path extractions — *without re-running anything*::

    python -m repro.obs.report results/obs/metrics.json
    python -m repro.obs.report results/obs/metrics.json \
        --trace results/obs/obs_trace.json

With ``--trace`` the unified chrome trace is split back into per-tier
timelines (via its ``metadata.tiers`` block) and each tier's critical
path is re-extracted from the archived events — so the critical-path
summary works even on metrics.json files from before the ``reports``
block existed.  Without it, the summary falls back to the archived
``reports.critical_path`` block when present.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.exporters import reports_from_json, run_report, snapshot_from_json

__all__ = ["main"]


def _archived_critical_path_summary(block: dict) -> str:
    lines = ["Archived critical paths:"]
    for tier, result in block.items():
        top = result["attribution"][0] if result["attribution"] else None
        head = f"  {tier}: makespan {result['makespan']:.6f}s"
        if top is not None:
            head += (
                f", dominated by {top['category']} "
                f"(rank {top['rank']}, {top['stream']}) at {top['seconds']:.6f}s"
            )
        lines.append(head)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("metrics", type=Path, help="metrics.json snapshot")
    parser.add_argument(
        "--trace", type=Path, default=None,
        help="obs_trace.json unified chrome trace (enables per-tier "
        "breakdowns and fresh critical-path extraction)",
    )
    parser.add_argument("--title", default="Run report")
    args = parser.parse_args(argv)

    try:
        text = args.metrics.read_text()
    except OSError as exc:
        print(f"error: cannot read {args.metrics}: {exc}", file=sys.stderr)
        return 2
    try:
        snapshot = snapshot_from_json(text)
    except (ValueError, KeyError) as exc:
        print(f"error: {args.metrics} is not a snapshot: {exc}", file=sys.stderr)
        return 2
    reports = reports_from_json(text)

    timelines = None
    critical_paths = None
    if args.trace is not None:
        from repro.obs.critpath import extract_critical_path
        from repro.obs.trace import timelines_from_chrome_trace

        try:
            trace = json.loads(args.trace.read_text())
        except OSError as exc:
            print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
            return 2
        try:
            timelines = timelines_from_chrome_trace(trace)
        except ValueError as exc:
            print(f"error: {args.trace}: {exc}", file=sys.stderr)
            return 2
        critical_paths = {
            name: extract_critical_path(timeline)
            for name, timeline in timelines.items()
            if len(timeline.events)
        }

    print(
        run_report(
            snapshot,
            timelines=timelines,
            critical_paths=critical_paths,
            title=args.title,
        )
    )
    if critical_paths is None and reports.get("critical_path"):
        print()
        print(_archived_critical_path_summary(reports["critical_path"]))
    if reports.get("slo"):
        monitors = reports["slo"].get("monitors", [])
        firing = [m["name"] for m in monitors if m.get("firing")]
        print()
        print(
            f"Archived SLOs: {len(monitors)} monitors, "
            + (f"FIRING: {', '.join(firing)}" if firing else "none firing")
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
