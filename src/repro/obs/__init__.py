"""repro.obs — unified metrics, spans, and run reports.

One substrate for every tier's numbers:

* :class:`MetricsRegistry` — process-wide counters, gauges, and
  fixed-bucket histograms with label sets and mergeable snapshots.
* :func:`enable` / :func:`disable` / :func:`capture` — the
  zero-overhead-when-disabled switch the hot paths guard on.
* :class:`Tracer` / :class:`Span` — interval annotations recorded onto
  the simulation :class:`~repro.dist.timeline.Timeline`, so trainer
  steps, exchange stages, publications, and serving requests land in one
  chrome trace (see :func:`unified_chrome_trace`) with counter tracks.
* Exporters — :func:`snapshot_to_json`, :func:`to_prometheus`, and the
  human :func:`run_report` table.
* Analysis — :func:`extract_critical_path` (dependency-DAG makespan
  attribution with ``speedup_if`` what-ifs), the :class:`SloHub`
  burn-rate monitors fed live by the tiers, and the
  ``repro.obs.sentry`` perf-regression gate over the committed
  benchmark trajectory.  ``python -m repro.obs.report`` re-renders the
  run report and critical paths from archived artifacts.

Only the registry and the runtime switch load eagerly (they are what the
hot paths import); the span/trace/exporter layers — which pull in
``repro.dist`` and ``repro.profiling`` — load lazily on first attribute
access to keep import cycles impossible.
"""

from __future__ import annotations

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DEFAULT_EXACT_LIMIT,
    UNIT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricsRegistry,
    RegistrySnapshot,
    exponential_buckets,
    linear_buckets,
)
from repro.obs.runtime import OBS, capture, disable, enable, enabled, get_registry

_LAZY_EXPORTS = {
    "Span": "repro.obs.span",
    "Tracer": "repro.obs.span",
    "unified_chrome_trace": "repro.obs.trace",
    "dump_unified_chrome_trace": "repro.obs.trace",
    "timelines_from_chrome_trace": "repro.obs.trace",
    "SNAPSHOT_SCHEMA_ID": "repro.obs.exporters",
    "snapshot_to_json": "repro.obs.exporters",
    "snapshot_from_json": "repro.obs.exporters",
    "reports_from_json": "repro.obs.exporters",
    "to_prometheus": "repro.obs.exporters",
    "from_prometheus": "repro.obs.exporters",
    "run_report": "repro.obs.exporters",
    "validate_snapshot_json": "repro.obs.schema",
    "SnapshotSchemaError": "repro.obs.schema",
    "run_day_in_the_life": "repro.obs.scenario",
    "ScenarioResult": "repro.obs.scenario",
    "CriticalPathResult": "repro.obs.critpath",
    "CriticalStep": "repro.obs.critpath",
    "SpeedupEstimate": "repro.obs.critpath",
    "TimelineDag": "repro.obs.critpath",
    "extract_critical_path": "repro.obs.critpath",
    "critical_path_report": "repro.obs.critpath",
    "highlight_trace_events": "repro.obs.critpath",
    "report_json_block": "repro.obs.critpath",
    "SLOSpec": "repro.obs.slo",
    "SLOState": "repro.obs.slo",
    "BurnRateMonitor": "repro.obs.slo",
    "SloHub": "repro.obs.slo",
    "default_monitors": "repro.obs.slo",
    "attach_hub": "repro.obs.slo",
    "detach_hub": "repro.obs.slo",
    "SentryVerdict": "repro.obs.sentry",
    "KernelVerdict": "repro.obs.sentry",
}

__all__ = [
    "DEFAULT_BUCKETS",
    "UNIT_BUCKETS",
    "DEFAULT_EXACT_LIMIT",
    "exponential_buckets",
    "linear_buckets",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "MetricsRegistry",
    "RegistrySnapshot",
    "OBS",
    "enable",
    "disable",
    "enabled",
    "get_registry",
    "capture",
    *sorted(_LAZY_EXPORTS),
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
