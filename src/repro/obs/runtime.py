"""The zero-overhead-when-disabled instrumentation switch.

Hot paths (``CompressionPipeline.compress_slice``, the Communicator's
exchange stages, the serving gather loop) guard their metric writes with::

    from repro.obs.runtime import OBS

    if OBS.enabled:
        OBS.registry.counter("...").inc(...)

When observability is off — the default — the cost at each site is one
attribute load and a falsy branch; no registry exists and no labels are
materialized.  ``repro.profiling.perfbench`` ships ``hybrid_obs`` rows
that hold the enabled-vs-disabled overhead under 3 % on the hybrid codec.

This module imports nothing from the rest of ``repro`` so every tier can
depend on it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.registry import MetricsRegistry

__all__ = ["OBS", "enable", "disable", "enabled", "get_registry", "capture"]


class _ObsState:
    """Process-wide observability switch (a singleton, like a logger root)."""

    __slots__ = ("enabled", "registry", "slo_hub")

    def __init__(self) -> None:
        self.enabled = False
        self.registry: MetricsRegistry | None = None
        # An optional repro.obs.slo.SloHub; kept as an opaque attribute so
        # this module stays import-cycle-free.  Feed sites double-guard:
        # ``if OBS.enabled and OBS.slo_hub is not None``.
        self.slo_hub = None


OBS = _ObsState()


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Turn instrumentation on, recording into ``registry`` (or a new one)."""
    reg = MetricsRegistry() if registry is None else registry
    OBS.registry = reg
    OBS.enabled = True
    return reg


def disable() -> None:
    """Turn instrumentation off and drop the active registry and SLO hub."""
    OBS.enabled = False
    OBS.registry = None
    OBS.slo_hub = None


def enabled() -> bool:
    return OBS.enabled


def get_registry() -> MetricsRegistry | None:
    """The active registry, or ``None`` when observability is off."""
    return OBS.registry


@contextmanager
def capture(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Enable observability for a ``with`` block, restoring the prior state.

    The workhorse for tests and scenarios::

        with capture() as reg:
            trainer.train(iterations=3)
        snap = reg.snapshot()
    """
    prior = (OBS.enabled, OBS.registry, OBS.slo_hub)
    reg = enable(registry)
    try:
        yield reg
    finally:
        OBS.enabled, OBS.registry, OBS.slo_hub = prior
