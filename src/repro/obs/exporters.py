"""Snapshot exporters: JSON, Prometheus text format, and run reports.

Three consumers, three formats:

* :func:`snapshot_to_json` / :func:`snapshot_from_json` — lossless
  round-trip of a :class:`~repro.obs.registry.RegistrySnapshot`,
  including histogram exact-sample reservoirs.  This is the archival
  format the CI smoke job validates against ``repro.obs.schema``.
* :func:`to_prometheus` / :func:`from_prometheus` — the Prometheus text
  exposition format.  Buckets, sums, counts, and min/max survive; exact
  reservoirs do not (Prometheus has no such concept), so the round-trip
  law is ``from_prometheus(to_prometheus(s)) == s.scrub_exact()``.
* :func:`run_report` — the human table.  Given the snapshot (and
  optionally the per-tier timelines) it renders counters, gauges,
  histogram quantiles, and the per-category time breakdowns that
  ``breakdown_report`` used to print on its own.
"""

from __future__ import annotations

import json
import math
import re
from typing import Mapping

from repro.obs.registry import (
    HistogramData,
    LabelKey,
    MetricsRegistry,
    RegistrySnapshot,
    _FamilySnapshot,
    _freeze_series,
)
from repro.utils.tables import format_table

__all__ = [
    "SNAPSHOT_SCHEMA_ID",
    "SNAPSHOT_SCHEMA_V1",
    "snapshot_to_json",
    "snapshot_from_json",
    "reports_from_json",
    "to_prometheus",
    "from_prometheus",
    "run_report",
]

#: v2 adds the optional top-level ``reports`` object (critical-path and
#: SLO blocks); the metric families are unchanged, so v1 documents stay
#: parseable — :func:`snapshot_from_json` accepts both.
SNAPSHOT_SCHEMA_ID = "repro.obs.snapshot/v2"
SNAPSHOT_SCHEMA_V1 = "repro.obs.snapshot/v1"


def _coerce_snapshot(source: RegistrySnapshot | MetricsRegistry) -> RegistrySnapshot:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


# --------------------------------------------------------------------------
# JSON (lossless)
# --------------------------------------------------------------------------


def _labels_dict(key: LabelKey) -> dict[str, str]:
    return dict(key)


def snapshot_to_json(
    source: RegistrySnapshot | MetricsRegistry,
    *,
    indent: int | None = None,
    reports: Mapping[str, object] | None = None,
) -> str:
    """Serialize a snapshot (or a live registry) to schema-tagged JSON.

    ``reports`` attaches derived-analysis blocks (``critical_path`` from
    :func:`repro.obs.critpath.report_json_block`, ``slo`` from
    :meth:`repro.obs.slo.SloHub.to_json_dict`) under the top-level
    ``reports`` key — see ``repro.obs.schema`` for their shapes.
    """
    snapshot = _coerce_snapshot(source)
    families = []
    for name, fam in snapshot.families:
        series = []
        for key, value in fam.series:
            entry: dict[str, object] = {"labels": _labels_dict(key)}
            if fam.kind == "histogram":
                data = value  # type: ignore[assignment]
                entry["histogram"] = {
                    "bounds": list(data.bounds),
                    "counts": list(data.counts),
                    "count": data.count,
                    "total": data.total,
                    "min": data.min,
                    "max": data.max,
                    "exact": None if data.exact is None else list(data.exact),
                    "exact_limit": data.exact_limit,
                }
            else:
                entry["value"] = value
            series.append(entry)
        families.append(
            {"name": name, "kind": fam.kind, "help": fam.help, "series": series}
        )
    payload: dict[str, object] = {"schema": SNAPSHOT_SCHEMA_ID, "families": families}
    if reports:
        payload["reports"] = dict(reports)
    return json.dumps(payload, indent=indent)


def snapshot_from_json(text: str) -> RegistrySnapshot:
    """Parse :func:`snapshot_to_json` output back into a snapshot.

    Accepts the current v2 documents and archived v1 snapshots (identical
    families block, no ``reports``) — the migration path for metrics.json
    files written before the schema bump.
    """
    payload = json.loads(text)
    if payload.get("schema") not in (SNAPSHOT_SCHEMA_ID, SNAPSHOT_SCHEMA_V1):
        raise ValueError(
            f"expected schema {SNAPSHOT_SCHEMA_ID!r} (or {SNAPSHOT_SCHEMA_V1!r}), "
            f"got {payload.get('schema')!r}"
        )
    families = []
    for fam in payload["families"]:
        kind = fam["kind"]
        series: dict[LabelKey, object] = {}
        for entry in fam["series"]:
            key = tuple(sorted((str(k), str(v)) for k, v in entry["labels"].items()))
            if kind == "histogram":
                h = entry["histogram"]
                series[key] = HistogramData(
                    bounds=tuple(float(b) for b in h["bounds"]),
                    counts=tuple(int(c) for c in h["counts"]),
                    count=int(h["count"]),
                    total=float(h["total"]),
                    min=None if h["min"] is None else float(h["min"]),
                    max=None if h["max"] is None else float(h["max"]),
                    exact=None
                    if h["exact"] is None
                    else tuple(float(x) for x in h["exact"]),
                    exact_limit=int(h["exact_limit"]),
                )
            else:
                series[key] = float(entry["value"])
        families.append(
            (
                fam["name"],
                _FamilySnapshot(
                    kind=kind, help=fam["help"], series=_freeze_series(series)
                ),
            )
        )
    return RegistrySnapshot(families=tuple(families))


def reports_from_json(text: str) -> dict:
    """The ``reports`` block of a snapshot document ({} for v1 files or
    v2 files written without one)."""
    payload = json.loads(text)
    reports = payload.get("reports")
    return dict(reports) if isinstance(reports, dict) else {}


# --------------------------------------------------------------------------
# Prometheus text exposition
# --------------------------------------------------------------------------


def _esc_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _esc_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unesc_label(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _fmt_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = tuple(key) + extra
    if not items:
        return ""
    body = ",".join(f'{k}="{_esc_label(v)}"' for k, v in items)
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if value != value:  # NaN never occurs in our metrics, but be safe
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(source: RegistrySnapshot | MetricsRegistry) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Histograms emit the standard ``_bucket``/``_sum``/``_count`` series
    plus non-standard ``_min``/``_max`` companion series (untyped, which
    real scrapers tolerate); exact reservoirs are not representable.
    """
    snapshot = _coerce_snapshot(source)
    lines: list[str] = []
    for name, fam in snapshot.families:
        if fam.help:
            lines.append(f"# HELP {name} {_esc_help(fam.help)}")
        lines.append(f"# TYPE {name} {fam.kind}")
        for key, value in fam.series:
            if fam.kind != "histogram":
                lines.append(f"{name}{_fmt_labels(key)} {_fmt_value(value)}")
                continue
            data = value  # type: ignore[assignment]
            cumulative = 0
            for upper, n in zip(data.bounds, data.counts):
                cumulative += n
                le = _fmt_labels(key, (("le", _fmt_value(upper)),))
                lines.append(f"{name}_bucket{le} {cumulative}")
            le = _fmt_labels(key, (("le", "+Inf"),))
            lines.append(f"{name}_bucket{le} {data.count}")
            lines.append(f"{name}_sum{_fmt_labels(key)} {_fmt_value(data.total)}")
            lines.append(f"{name}_count{_fmt_labels(key)} {data.count}")
            if data.min is not None:
                lines.append(f"{name}_min{_fmt_labels(key)} {_fmt_value(data.min)}")
            if data.max is not None:
                lines.append(f"{name}_max{_fmt_labels(key)} {_fmt_value(data.max)}")
    return "\n".join(lines) + "\n"


_LINE_RE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{.*\})?\s+(?P<value>\S+)$")
_LABEL_ITEM_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


class _HistogramAccumulator:
    """Rebuilds a :class:`HistogramData` from exposition lines."""

    def __init__(self) -> None:
        self.buckets: list[tuple[float, int]] = []
        self.total = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def finish(self) -> HistogramData:
        finite = [(u, c) for u, c in self.buckets if u != math.inf]
        finite.sort(key=lambda item: item[0])
        bounds = tuple(u for u, _ in finite)
        cumulative = [c for _, c in finite]
        counts = []
        prev = 0
        for c in cumulative:
            counts.append(c - prev)
            prev = c
        counts.append(self.count - prev)  # overflow bucket from +Inf/count
        return HistogramData(
            bounds=bounds,
            counts=tuple(counts),
            count=self.count,
            total=self.total,
            min=self.min,
            max=self.max,
            exact=None,
            exact_limit=0,
        )


def from_prometheus(text: str) -> RegistrySnapshot:
    """Parse :func:`to_prometheus` output back into a snapshot.

    The result equals the exported snapshot's :meth:`scrub_exact` view —
    exact reservoirs are the one thing the exposition format drops.
    """
    kinds: dict[str, str] = {}
    helps: dict[str, str] = {}
    order: list[str] = []
    scalars: dict[str, dict[LabelKey, float]] = {}
    hists: dict[str, dict[LabelKey, _HistogramAccumulator]] = {}

    def hist_owner(name: str) -> tuple[str, str] | None:
        """(family, part) when ``name`` is a suffix series of a declared
        histogram family."""
        for suffix in ("_bucket", "_sum", "_count", "_min", "_max"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                if kinds.get(family) == "histogram":
                    return family, suffix[1:]
        return None

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text.replace("\\n", "\n").replace("\\\\", "\\")
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            kinds[name] = kind.strip()
            if name not in order:
                order.append(name)
            continue
        if line.startswith("#"):
            continue
        match = _LINE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        name = match.group("name")
        label_text = match.group("labels") or ""
        labels = [
            (k, _unesc_label(v)) for k, v in _LABEL_ITEM_RE.findall(label_text)
        ]
        value = _parse_value(match.group("value"))
        owner = hist_owner(name)
        if owner is not None:
            family, part = owner
            if part == "bucket":
                le = next(v for k, v in labels if k == "le")
                labels = [(k, v) for k, v in labels if k != "le"]
            key = tuple(sorted(labels))
            acc = hists.setdefault(family, {}).setdefault(key, _HistogramAccumulator())
            if part == "bucket":
                acc.buckets.append((_parse_value(le), int(value)))
            elif part == "sum":
                acc.total = value
            elif part == "count":
                acc.count = int(value)
            elif part == "min":
                acc.min = value
            elif part == "max":
                acc.max = value
            continue
        if name not in kinds:
            raise ValueError(f"series {name!r} appears before its # TYPE line")
        scalars.setdefault(name, {})[tuple(sorted(labels))] = value

    families = []
    for name in order:
        kind = kinds[name]
        if kind == "histogram":
            series: dict[LabelKey, object] = {
                key: acc.finish() for key, acc in hists.get(name, {}).items()
            }
        else:
            series = dict(scalars.get(name, {}))
        families.append(
            (
                name,
                _FamilySnapshot(
                    kind=kind, help=helps.get(name, ""), series=_freeze_series(series)
                ),
            )
        )
    return RegistrySnapshot(families=tuple(families))


# --------------------------------------------------------------------------
# human run report
# --------------------------------------------------------------------------


def _series_label(name: str, key: LabelKey) -> str:
    if not key:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


def run_report(
    source: RegistrySnapshot | MetricsRegistry,
    *,
    timelines: Mapping[str, object] | None = None,
    critical_paths: Mapping[str, object] | None = None,
    slo: object | None = None,
    title: str = "Run report",
) -> str:
    """Render the whole run as aligned ASCII tables.

    One table per metric kind (counters, gauges, histograms with
    exact-rank p50/p99), then — when ``timelines`` maps tier names to
    :class:`~repro.dist.timeline.Timeline` objects — the per-category
    time breakdown of each tier, subsuming what ``breakdown_report``
    printed per-timeline.  ``critical_paths`` maps tier names to
    :class:`~repro.obs.critpath.CriticalPathResult` objects and renders
    each tier's makespan attribution; ``slo`` takes a
    :class:`~repro.obs.slo.SloHub` (or a list of its states) and renders
    the burn-rate table.
    """
    from repro.profiling.breakdown import breakdown_report  # avoid import cycle

    snapshot = _coerce_snapshot(source)
    sections: list[str] = []
    counter_rows = []
    gauge_rows = []
    hist_rows = []
    for name, kind, key, value in snapshot.iter_series():
        label = _series_label(name, key)
        if kind == "counter":
            counter_rows.append((label, value))
        elif kind == "gauge":
            gauge_rows.append((label, value))
        else:
            data = value  # type: ignore[assignment]
            if data.count == 0:
                continue
            hist_rows.append(
                (
                    label,
                    data.count,
                    data.mean,
                    data.quantile(0.5),
                    data.quantile(0.99),
                    data.max,
                )
            )
    if counter_rows:
        sections.append(
            format_table(["counter", "value"], counter_rows, title=f"{title} — counters")
        )
    if gauge_rows:
        sections.append(
            format_table(["gauge", "value"], gauge_rows, title=f"{title} — gauges")
        )
    if hist_rows:
        sections.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p99", "max"],
                hist_rows,
                title=f"{title} — histograms (exact-rank quantiles)",
            )
        )
    for tier_name, timeline in (timelines or {}).items():
        sections.append(
            breakdown_report(
                timeline, title=f"{title} — {tier_name} time breakdown"
            )
        )
    if critical_paths:
        from repro.obs.critpath import critical_path_report

        for tier_name, result in critical_paths.items():
            sections.append(
                critical_path_report(
                    result, title=f"{title} — {tier_name} critical path"
                )
            )
    if slo is not None:
        states = slo.states() if hasattr(slo, "states") else list(slo)
        slo_rows = [
            (
                s.name,
                s.source,
                s.samples,
                s.bad_samples,
                f"{s.fast_burn_rate:.2f}",
                f"{s.slow_burn_rate:.2f}",
                "FIRING" if s.firing else "ok",
            )
            for s in states
        ]
        if slo_rows:
            sections.append(
                format_table(
                    ["slo", "source", "samples", "bad", "fast burn", "slow burn", "state"],
                    slo_rows,
                    title=f"{title} — SLO burn rates",
                )
            )
    if not sections:
        return f"{title}: no metrics recorded"
    return "\n\n".join(sections)
