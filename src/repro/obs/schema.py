"""Schema validation for exported metrics snapshots.

The CI ``obs-smoke`` job runs the day-in-the-life scenario, writes
``metrics.json`` via :func:`repro.obs.exporters.snapshot_to_json`, and
validates it here::

    PYTHONPATH=src python -m repro.obs.schema results/obs/metrics.json

Validation is hand-rolled (no jsonschema dependency): every structural
rule the parser relies on is checked, and violations raise
:class:`SnapshotSchemaError` with a JSON-pointer-ish path to the bad
node.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

__all__ = ["SnapshotSchemaError", "validate_snapshot_json", "main"]

SCHEMA_ID = "repro.obs.snapshot/v1"
_KINDS = ("counter", "gauge", "histogram")


class SnapshotSchemaError(ValueError):
    """A snapshot JSON document violates the v1 schema."""


def _fail(path: str, message: str) -> None:
    raise SnapshotSchemaError(f"{path}: {message}")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        _fail(path, message)


def _is_num(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_histogram(hist: object, path: str) -> None:
    _require(isinstance(hist, dict), path, "histogram must be an object")
    assert isinstance(hist, dict)
    required = {"bounds", "counts", "count", "total", "min", "max", "exact", "exact_limit"}
    missing = required - set(hist)
    _require(not missing, path, f"missing keys: {sorted(missing)}")
    bounds = hist["bounds"]
    _require(
        isinstance(bounds, list) and len(bounds) >= 1 and all(_is_num(b) for b in bounds),
        f"{path}.bounds",
        "must be a non-empty list of numbers",
    )
    _require(
        all(a < b for a, b in zip(bounds, bounds[1:])),
        f"{path}.bounds",
        "must be strictly increasing",
    )
    counts = hist["counts"]
    _require(
        isinstance(counts, list)
        and all(isinstance(c, int) and not isinstance(c, bool) and c >= 0 for c in counts),
        f"{path}.counts",
        "must be a list of non-negative integers",
    )
    _require(
        len(counts) == len(bounds) + 1,
        f"{path}.counts",
        f"expected {len(bounds) + 1} entries (one per bound + overflow), got {len(counts)}",
    )
    count = hist["count"]
    _require(
        isinstance(count, int) and not isinstance(count, bool) and count >= 0,
        f"{path}.count",
        "must be a non-negative integer",
    )
    _require(sum(counts) == count, f"{path}.count", "must equal sum of bucket counts")
    _require(_is_num(hist["total"]), f"{path}.total", "must be a number")
    for edge in ("min", "max"):
        value = hist[edge]
        if count == 0:
            _require(value is None, f"{path}.{edge}", "must be null for an empty series")
        else:
            _require(_is_num(value), f"{path}.{edge}", "must be a number")
    exact_limit = hist["exact_limit"]
    _require(
        isinstance(exact_limit, int) and not isinstance(exact_limit, bool) and exact_limit >= 0,
        f"{path}.exact_limit",
        "must be a non-negative integer",
    )
    exact = hist["exact"]
    if exact is not None:
        _require(
            isinstance(exact, list) and all(_is_num(x) for x in exact),
            f"{path}.exact",
            "must be null or a list of numbers",
        )
        _require(len(exact) == count, f"{path}.exact", "must hold exactly count samples")
        _require(
            all(a <= b for a, b in zip(exact, exact[1:])),
            f"{path}.exact",
            "must be sorted ascending",
        )


def validate_snapshot_json(text: str) -> dict:
    """Validate a snapshot JSON document; return the parsed object."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SnapshotSchemaError(f"$: not valid JSON ({exc})") from exc
    _require(isinstance(payload, dict), "$", "document must be an object")
    _require(
        payload.get("schema") == SCHEMA_ID,
        "$.schema",
        f"must be {SCHEMA_ID!r}, got {payload.get('schema')!r}",
    )
    families = payload.get("families")
    _require(isinstance(families, list), "$.families", "must be a list")
    seen_names: set[str] = set()
    for i, fam in enumerate(families):
        path = f"$.families[{i}]"
        _require(isinstance(fam, dict), path, "must be an object")
        for key in ("name", "kind", "help", "series"):
            _require(key in fam, path, f"missing key {key!r}")
        name = fam["name"]
        _require(isinstance(name, str) and bool(name), f"{path}.name", "must be a non-empty string")
        _require(name not in seen_names, f"{path}.name", f"duplicate family {name!r}")
        seen_names.add(name)
        _require(fam["kind"] in _KINDS, f"{path}.kind", f"must be one of {_KINDS}")
        _require(isinstance(fam["help"], str), f"{path}.help", "must be a string")
        series = fam["series"]
        _require(isinstance(series, list), f"{path}.series", "must be a list")
        seen_labels: set[tuple[tuple[str, str], ...]] = set()
        for j, entry in enumerate(series):
            spath = f"{path}.series[{j}]"
            _require(isinstance(entry, dict), spath, "must be an object")
            labels = entry.get("labels")
            _require(
                isinstance(labels, dict)
                and all(isinstance(k, str) and isinstance(v, str) for k, v in labels.items()),
                f"{spath}.labels",
                "must be an object of string->string",
            )
            key = tuple(sorted(labels.items()))
            _require(key not in seen_labels, f"{spath}.labels", "duplicate label set")
            seen_labels.add(key)
            if fam["kind"] == "histogram":
                _require("histogram" in entry, spath, "histogram series needs 'histogram'")
                _check_histogram(entry["histogram"], f"{spath}.histogram")
            else:
                _require("value" in entry, spath, f"{fam['kind']} series needs 'value'")
                _require(_is_num(entry["value"]), f"{spath}.value", "must be a number")
    return payload


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.schema <metrics.json>", file=sys.stderr)
        return 2
    path = Path(argv[0])
    try:
        payload = validate_snapshot_json(path.read_text())
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    except SnapshotSchemaError as exc:
        print(f"INVALID {path}: {exc}", file=sys.stderr)
        return 1
    n_series = sum(len(f["series"]) for f in payload["families"])
    print(f"OK {path}: {len(payload['families'])} families, {n_series} series")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
