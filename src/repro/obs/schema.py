"""Schema validation for exported metrics snapshots.

The CI ``obs-smoke`` job runs the day-in-the-life scenario, writes
``metrics.json`` via :func:`repro.obs.exporters.snapshot_to_json`, and
validates it here::

    PYTHONPATH=src python -m repro.obs.schema results/obs/metrics.json

Validation is hand-rolled (no jsonschema dependency): every structural
rule the parser relies on is checked, and violations raise
:class:`SnapshotSchemaError` with a JSON-pointer-ish path to the bad
node.

Two document versions are accepted:

* ``repro.obs.snapshot/v1`` — ``{"schema", "families"}``: the metric
  families (counters, gauges, histograms with exact reservoirs).
* ``repro.obs.snapshot/v2`` — v1 plus an optional top-level ``reports``
  object carrying derived-analysis blocks:

  * ``reports.critical_path`` — tier name to
    ``{"makespan", "attribution", "steps"}`` as produced by
    :meth:`repro.obs.critpath.CriticalPathResult.to_json_dict`.
    ``attribution`` rows are ``{rank, stream, category, seconds}`` and
    must sum to the makespan (the conservation law, checked here to a
    1e-6 relative tolerance); ``steps`` rows are ``{event_index, rank,
    stream, category, start, end}`` tiling ``[0, makespan]``.
  * ``reports.slo`` — ``{"monitors": [...]}`` as produced by
    :meth:`repro.obs.slo.SloHub.to_json_dict`; each monitor carries its
    spec (``name``, ``source``, ``threshold``, ``objective``, windows)
    and evaluation (``samples``, ``bad_samples``, ``fast_burn_rate``,
    ``slow_burn_rate`` — numbers or the string ``"inf"`` — and
    ``firing``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

__all__ = ["SnapshotSchemaError", "validate_snapshot_json", "main"]

SCHEMA_ID = "repro.obs.snapshot/v2"
SCHEMA_ID_V1 = "repro.obs.snapshot/v1"
_KINDS = ("counter", "gauge", "histogram")


class SnapshotSchemaError(ValueError):
    """A snapshot JSON document violates the schema."""


def _fail(path: str, message: str) -> None:
    raise SnapshotSchemaError(f"{path}: {message}")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        _fail(path, message)


def _is_num(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_histogram(hist: object, path: str) -> None:
    _require(isinstance(hist, dict), path, "histogram must be an object")
    assert isinstance(hist, dict)
    required = {"bounds", "counts", "count", "total", "min", "max", "exact", "exact_limit"}
    missing = required - set(hist)
    _require(not missing, path, f"missing keys: {sorted(missing)}")
    bounds = hist["bounds"]
    _require(
        isinstance(bounds, list) and len(bounds) >= 1 and all(_is_num(b) for b in bounds),
        f"{path}.bounds",
        "must be a non-empty list of numbers",
    )
    _require(
        all(a < b for a, b in zip(bounds, bounds[1:])),
        f"{path}.bounds",
        "must be strictly increasing",
    )
    counts = hist["counts"]
    _require(
        isinstance(counts, list)
        and all(isinstance(c, int) and not isinstance(c, bool) and c >= 0 for c in counts),
        f"{path}.counts",
        "must be a list of non-negative integers",
    )
    _require(
        len(counts) == len(bounds) + 1,
        f"{path}.counts",
        f"expected {len(bounds) + 1} entries (one per bound + overflow), got {len(counts)}",
    )
    count = hist["count"]
    _require(
        isinstance(count, int) and not isinstance(count, bool) and count >= 0,
        f"{path}.count",
        "must be a non-negative integer",
    )
    _require(sum(counts) == count, f"{path}.count", "must equal sum of bucket counts")
    _require(_is_num(hist["total"]), f"{path}.total", "must be a number")
    for edge in ("min", "max"):
        value = hist[edge]
        if count == 0:
            _require(value is None, f"{path}.{edge}", "must be null for an empty series")
        else:
            _require(_is_num(value), f"{path}.{edge}", "must be a number")
    exact_limit = hist["exact_limit"]
    _require(
        isinstance(exact_limit, int) and not isinstance(exact_limit, bool) and exact_limit >= 0,
        f"{path}.exact_limit",
        "must be a non-negative integer",
    )
    exact = hist["exact"]
    if exact is not None:
        _require(
            isinstance(exact, list) and all(_is_num(x) for x in exact),
            f"{path}.exact",
            "must be null or a list of numbers",
        )
        _require(len(exact) == count, f"{path}.exact", "must hold exactly count samples")
        _require(
            all(a <= b for a, b in zip(exact, exact[1:])),
            f"{path}.exact",
            "must be sorted ascending",
        )


def validate_snapshot_json(text: str) -> dict:
    """Validate a snapshot JSON document; return the parsed object."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SnapshotSchemaError(f"$: not valid JSON ({exc})") from exc
    _require(isinstance(payload, dict), "$", "document must be an object")
    schema = payload.get("schema")
    _require(
        schema in (SCHEMA_ID, SCHEMA_ID_V1),
        "$.schema",
        f"must be {SCHEMA_ID!r} or {SCHEMA_ID_V1!r}, got {schema!r}",
    )
    families = payload.get("families")
    _require(isinstance(families, list), "$.families", "must be a list")
    seen_names: set[str] = set()
    for i, fam in enumerate(families):
        path = f"$.families[{i}]"
        _require(isinstance(fam, dict), path, "must be an object")
        for key in ("name", "kind", "help", "series"):
            _require(key in fam, path, f"missing key {key!r}")
        name = fam["name"]
        _require(isinstance(name, str) and bool(name), f"{path}.name", "must be a non-empty string")
        _require(name not in seen_names, f"{path}.name", f"duplicate family {name!r}")
        seen_names.add(name)
        _require(fam["kind"] in _KINDS, f"{path}.kind", f"must be one of {_KINDS}")
        _require(isinstance(fam["help"], str), f"{path}.help", "must be a string")
        series = fam["series"]
        _require(isinstance(series, list), f"{path}.series", "must be a list")
        seen_labels: set[tuple[tuple[str, str], ...]] = set()
        for j, entry in enumerate(series):
            spath = f"{path}.series[{j}]"
            _require(isinstance(entry, dict), spath, "must be an object")
            labels = entry.get("labels")
            _require(
                isinstance(labels, dict)
                and all(isinstance(k, str) and isinstance(v, str) for k, v in labels.items()),
                f"{spath}.labels",
                "must be an object of string->string",
            )
            key = tuple(sorted(labels.items()))
            _require(key not in seen_labels, f"{spath}.labels", "duplicate label set")
            seen_labels.add(key)
            if fam["kind"] == "histogram":
                _require("histogram" in entry, spath, "histogram series needs 'histogram'")
                _check_histogram(entry["histogram"], f"{spath}.histogram")
            else:
                _require("value" in entry, spath, f"{fam['kind']} series needs 'value'")
                _require(_is_num(entry["value"]), f"{spath}.value", "must be a number")
    if "reports" in payload:
        _require(
            schema == SCHEMA_ID,
            "$.reports",
            f"only allowed in {SCHEMA_ID!r} documents",
        )
        _check_reports(payload["reports"], "$.reports")
    return payload


def _is_burn(value: object) -> bool:
    return _is_num(value) or value == "inf"


def _check_reports(reports: object, path: str) -> None:
    _require(isinstance(reports, dict), path, "must be an object")
    assert isinstance(reports, dict)
    known = {"critical_path", "slo"}
    unknown = set(reports) - known
    _require(not unknown, path, f"unknown report blocks: {sorted(unknown)}")
    if "critical_path" in reports:
        block = reports["critical_path"]
        bpath = f"{path}.critical_path"
        _require(isinstance(block, dict), bpath, "must map tier -> result")
        for tier, result in block.items():
            _check_critical_path(result, f"{bpath}.{tier}")
    if "slo" in reports:
        _check_slo(reports["slo"], f"{path}.slo")


def _check_critical_path(result: object, path: str) -> None:
    _require(isinstance(result, dict), path, "must be an object")
    assert isinstance(result, dict)
    missing = {"makespan", "attribution", "steps"} - set(result)
    _require(not missing, path, f"missing keys: {sorted(missing)}")
    makespan = result["makespan"]
    _require(
        _is_num(makespan) and makespan >= 0, f"{path}.makespan", "must be a number >= 0"
    )
    attribution = result["attribution"]
    _require(isinstance(attribution, list), f"{path}.attribution", "must be a list")
    total = 0.0
    for i, row in enumerate(attribution):
        rpath = f"{path}.attribution[{i}]"
        _require(isinstance(row, dict), rpath, "must be an object")
        _require(
            isinstance(row.get("rank"), int) and not isinstance(row.get("rank"), bool),
            f"{rpath}.rank",
            "must be an integer",
        )
        for key in ("stream", "category"):
            _require(isinstance(row.get(key), str), f"{rpath}.{key}", "must be a string")
        _require(
            _is_num(row.get("seconds")) and row["seconds"] >= 0,
            f"{rpath}.seconds",
            "must be a number >= 0",
        )
        total += row["seconds"]
    _require(
        abs(total - makespan) <= 1e-6 * max(1.0, abs(makespan)),
        f"{path}.attribution",
        f"seconds must sum to the makespan (got {total!r} vs {makespan!r})",
    )
    steps = result["steps"]
    _require(isinstance(steps, list), f"{path}.steps", "must be a list")
    for i, step in enumerate(steps):
        spath = f"{path}.steps[{i}]"
        _require(isinstance(step, dict), spath, "must be an object")
        idx = step.get("event_index")
        _require(
            idx is None or (isinstance(idx, int) and not isinstance(idx, bool)),
            f"{spath}.event_index",
            "must be null (idle) or an integer ledger index",
        )
        for key in ("start", "end"):
            _require(_is_num(step.get(key)), f"{spath}.{key}", "must be a number")
        _require(
            step["start"] <= step["end"], spath, "start must not exceed end"
        )


def _check_slo(block: object, path: str) -> None:
    _require(isinstance(block, dict), path, "must be an object")
    assert isinstance(block, dict)
    monitors = block.get("monitors")
    _require(isinstance(monitors, list), f"{path}.monitors", "must be a list")
    for i, mon in enumerate(monitors):
        mpath = f"{path}.monitors[{i}]"
        _require(isinstance(mon, dict), mpath, "must be an object")
        for key in ("name", "source"):
            _require(
                isinstance(mon.get(key), str) and bool(mon.get(key)),
                f"{mpath}.{key}",
                "must be a non-empty string",
            )
        for key in ("threshold", "objective", "fast_window", "slow_window", "now"):
            _require(_is_num(mon.get(key)), f"{mpath}.{key}", "must be a number")
        for key in ("samples", "bad_samples"):
            value = mon.get(key)
            _require(
                isinstance(value, int) and not isinstance(value, bool) and value >= 0,
                f"{mpath}.{key}",
                "must be a non-negative integer",
            )
        for key in ("fast_burn_rate", "slow_burn_rate"):
            _require(
                _is_burn(mon.get(key)),
                f"{mpath}.{key}",
                'must be a number or "inf"',
            )
        _require(
            isinstance(mon.get("firing"), bool), f"{mpath}.firing", "must be a boolean"
        )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.schema <metrics.json>", file=sys.stderr)
        return 2
    path = Path(argv[0])
    try:
        payload = validate_snapshot_json(path.read_text())
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    except SnapshotSchemaError as exc:
        print(f"INVALID {path}: {exc}", file=sys.stderr)
        return 1
    n_series = sum(len(f["series"]) for f in payload["families"])
    print(f"OK {path}: {len(payload['families'])} families, {n_series} series")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
