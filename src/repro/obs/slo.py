"""SLO burn-rate monitors over live tier feeds.

The SRE framing: an SLO promises that a fraction ``objective`` of
observations are *good* (a serve latency under its target, a publication
staleness under its bound, a train step under its budget).  The error
budget is ``1 - objective``; the **burn rate** over a window is the
fraction of bad observations in that window divided by the budget — 1.0
means the budget is being spent exactly as fast as it accrues, 14.4 means
a 30-day budget would be gone in 50 hours.

:class:`BurnRateMonitor` keeps the raw ``(time, value)`` samples and
answers windowed burn rates at any instant of *simulated* time, with the
standard multi-window alert: page when both the fast window (is it
happening right now?) and the slow window (has it burned enough to
matter?) exceed their thresholds.  The monotonicity law the property
tests pin: with the totals fixed, more bad observations in the window
never lower the burn rate.

:class:`SloHub` routes live feeds from the tiers.  The hot paths guard
with the same zero-overhead switch as every other obs write::

    if OBS.enabled and OBS.slo_hub is not None:
        OBS.slo_hub.feed("serve_latency", completion, latency)

``ServingSimulator`` feeds per-request latency, ``DeltaPublisher`` feeds
post-round staleness, and ``HybridParallelTrainer`` feeds per-iteration
step time; :func:`default_monitors` builds the standard three.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.obs.runtime import OBS

__all__ = [
    "SLOSpec",
    "SLOState",
    "BurnRateMonitor",
    "SloHub",
    "default_monitors",
    "attach_hub",
    "detach_hub",
]


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective over a live feed.

    ``source`` names the feed (``serve_latency``, ``publish_staleness``,
    ``train_step``); an observation is *good* when ``value <= threshold``.
    ``objective`` is the promised good fraction in ``(0, 1]`` —
    ``objective == 1`` gives a zero budget, so any bad observation burns
    at infinite rate.  Windows are in the feed's own (simulated) seconds;
    the fast pair confirms the burn is happening *now*, the slow pair
    that enough budget went to matter.
    """

    name: str
    source: str
    threshold: float
    objective: float = 0.99
    fast_window: float = 0.005
    slow_window: float = 0.05
    fast_burn: float = 14.4
    slow_burn: float = 6.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO name must be non-empty")
        if not self.source:
            raise ValueError("SLO source must be non-empty")
        if not 0.0 < self.objective <= 1.0:
            raise ValueError(f"objective must be in (0, 1], got {self.objective!r}")
        for field_name in ("threshold", "fast_window", "slow_window"):
            value = getattr(self, field_name)
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{field_name} must be finite and >= 0, got {value!r}")
        if self.fast_window > self.slow_window:
            raise ValueError(
                f"fast_window ({self.fast_window}) must not exceed "
                f"slow_window ({self.slow_window})"
            )

    @property
    def budget(self) -> float:
        return 1.0 - self.objective


@dataclass(frozen=True)
class SLOState:
    """One monitor's evaluation at an instant."""

    name: str
    source: str
    now: float
    samples: int
    bad_samples: int
    fast_burn_rate: float
    slow_burn_rate: float
    firing: bool

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "source": self.source,
            "now": self.now,
            "samples": self.samples,
            "bad_samples": self.bad_samples,
            "fast_burn_rate": _json_num(self.fast_burn_rate),
            "slow_burn_rate": _json_num(self.slow_burn_rate),
            "firing": self.firing,
        }


def _json_num(value: float) -> float | str:
    # JSON has no Infinity; the schema validator wants numbers-or-"inf".
    if value == math.inf:
        return "inf"
    return value


class BurnRateMonitor:
    """Rolling-window burn-rate evaluation over one feed's samples."""

    def __init__(self, spec: SLOSpec):
        self.spec = spec
        self._samples: list[tuple[float, bool]] = []  # (time, bad)

    def __len__(self) -> int:
        return len(self._samples)

    def observe(self, time: float, value: float) -> None:
        """Record one observation at ``time`` (simulated seconds)."""
        time = float(time)
        if not math.isfinite(time):
            raise ValueError(f"time must be finite, got {time!r}")
        self._samples.append((time, float(value) > self.spec.threshold))

    @property
    def last_time(self) -> float:
        return max((t for t, _ in self._samples), default=0.0)

    def window_counts(self, window: float, now: float) -> tuple[int, int]:
        """(total, bad) observations with ``now - window < t <= now``."""
        lo = now - window
        total = bad = 0
        for t, is_bad in self._samples:
            if lo < t <= now:
                total += 1
                bad += is_bad
        return total, bad

    def burn_rate(self, window: float, now: float | None = None) -> float:
        """Windowed bad fraction over the error budget (0 with no samples)."""
        now = self.last_time if now is None else float(now)
        total, bad = self.window_counts(window, now)
        if total == 0 or bad == 0:
            return 0.0
        fraction = bad / total
        if self.spec.budget == 0.0:
            return math.inf
        return fraction / self.spec.budget

    def state(self, now: float | None = None) -> SLOState:
        """Multi-window evaluation: fires only when the fast *and* slow
        windows both exceed their burn thresholds."""
        now = self.last_time if now is None else float(now)
        fast = self.burn_rate(self.spec.fast_window, now)
        slow = self.burn_rate(self.spec.slow_window, now)
        total = len(self._samples)
        bad = sum(1 for _, is_bad in self._samples if is_bad)
        return SLOState(
            name=self.spec.name,
            source=self.spec.source,
            now=now,
            samples=total,
            bad_samples=bad,
            fast_burn_rate=fast,
            slow_burn_rate=slow,
            firing=fast >= self.spec.fast_burn and slow >= self.spec.slow_burn,
        )


class SloHub:
    """Route live tier feeds to every monitor watching that source."""

    def __init__(self, monitors: Iterable[BurnRateMonitor] = ()):
        self.monitors: list[BurnRateMonitor] = list(monitors)

    def add(self, monitor: BurnRateMonitor) -> BurnRateMonitor:
        self.monitors.append(monitor)
        return monitor

    def feed(self, source: str, time: float, value: float) -> None:
        """One observation from a tier; fans out to matching monitors."""
        for monitor in self.monitors:
            if monitor.spec.source == source:
                monitor.observe(time, value)

    def states(self, now: float | None = None) -> list[SLOState]:
        return [monitor.state(now) for monitor in self.monitors]

    def firing(self, now: float | None = None) -> list[SLOState]:
        return [state for state in self.states(now) if state.firing]

    def to_json_dict(self) -> dict:
        """The machine-readable ``slo`` report block (see
        ``repro.obs.schema``)."""
        return {
            "monitors": [
                {
                    "name": monitor.spec.name,
                    "source": monitor.spec.source,
                    "threshold": monitor.spec.threshold,
                    "objective": monitor.spec.objective,
                    "fast_window": monitor.spec.fast_window,
                    "slow_window": monitor.spec.slow_window,
                    **monitor.state().to_json_dict(),
                }
                for monitor in self.monitors
            ]
        }


def default_monitors(
    *,
    serve_p99_target: float,
    publish_staleness_bound: float,
    train_step_target: float,
    serve_window: float = 0.05,
    train_window: float = 0.05,
    objective: float = 0.99,
) -> list[BurnRateMonitor]:
    """The standard three monitors: serve p99-vs-target, publish
    staleness-vs-bound, train step-time-vs-budget.  Fast windows are a
    fifth of the slow ones; publication rounds are sparse, so the
    staleness monitor promises a 100% objective (any breach of the bound
    burns at infinite rate — exactly the alarm you want)."""
    return [
        BurnRateMonitor(
            SLOSpec(
                name="serve_p99_latency",
                source="serve_latency",
                threshold=serve_p99_target,
                objective=objective,
                fast_window=serve_window / 5.0,
                slow_window=serve_window,
            )
        ),
        BurnRateMonitor(
            SLOSpec(
                name="publish_staleness",
                source="publish_staleness",
                threshold=publish_staleness_bound,
                objective=1.0,
                fast_window=serve_window / 5.0,
                slow_window=serve_window,
                fast_burn=1.0,
                slow_burn=1.0,
            )
        ),
        BurnRateMonitor(
            SLOSpec(
                name="train_step_time",
                source="train_step",
                threshold=train_step_target,
                objective=objective,
                fast_window=train_window / 5.0,
                slow_window=train_window,
            )
        ),
    ]


def attach_hub(hub: SloHub | None = None) -> SloHub:
    """Install ``hub`` (or a fresh one) as the live feed target the
    instrumented tiers check behind ``OBS.enabled``."""
    hub = SloHub() if hub is None else hub
    OBS.slo_hub = hub
    return hub


def detach_hub() -> None:
    OBS.slo_hub = None
