"""Span tracing over the simulation :class:`~repro.dist.timeline.Timeline`.

A *span* is an interval annotation — "trainer step 3", "serving request
17" — layered over the fine-grained events the simulator already records.
Spans land on the dedicated ``OBS_STREAM`` annotation lane by default so
the profiling layer's time accounting never double-counts them, while the
chrome-trace export renders them as their own swimlane above the
compute/comm lanes.

:class:`Tracer` is a thin recorder bound to one timeline; it also proxies
counter tracks (:meth:`Tracer.counter`) so an instrumentation site needs
a single handle for both spans and counters.
"""

from __future__ import annotations

from typing import Mapping

from repro.dist.timeline import OBS_STREAM, CounterSample, Timeline, TimelineEvent

__all__ = ["Span", "Tracer"]


class Span:
    """An open interval started by :meth:`Tracer.begin`.

    Usable directly (``span.end(t)``) or as a context manager when the
    end time is supplied via :meth:`close_at`::

        span = tracer.begin(EventCategory.TRAIN_STEP, start=t0, iteration=i)
        ...
        span.end(simulator.makespan(), loss=float(loss))
    """

    __slots__ = ("_tracer", "category", "rank", "start", "args", "event")

    def __init__(
        self,
        tracer: "Tracer",
        category: str,
        rank: int,
        start: float,
        args: dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.category = category
        self.rank = rank
        self.start = start
        self.args = args
        self.event: TimelineEvent | None = None

    def end(self, end_time: float, **extra_args: object) -> TimelineEvent:
        """Close the span at ``end_time`` and record it on the timeline."""
        if self.event is not None:
            raise RuntimeError(f"span {self.category!r} already ended")
        if end_time < self.start:
            raise ValueError(
                f"span end {end_time} precedes start {self.start}"
            )
        args = {**self.args, **extra_args}
        self.event = self._tracer.span(
            self.category,
            self.start,
            end_time - self.start,
            rank=self.rank,
            args=args or None,
        )
        return self.event


class Tracer:
    """Records annotation spans and counter samples onto one timeline."""

    def __init__(
        self, timeline: Timeline, *, rank: int = 0, stream: str = OBS_STREAM
    ) -> None:
        self.timeline = timeline
        self.rank = rank
        self.stream = stream

    def span(
        self,
        category: str,
        start: float,
        duration: float,
        *,
        rank: int | None = None,
        args: Mapping[str, object] | None = None,
    ) -> TimelineEvent:
        """Record a completed span (start and duration already known)."""
        return self.timeline.record(
            self.rank if rank is None else rank,
            category,
            start,
            duration,
            stream=self.stream,
            args=args,
        )

    def begin(
        self, category: str, start: float, *, rank: int | None = None, **args: object
    ) -> Span:
        """Open a span; close it with :meth:`Span.end` when the interval
        is over (simulated clocks advance between the two calls)."""
        return Span(
            self,
            category,
            self.rank if rank is None else rank,
            start,
            dict(args),
        )

    def counter(self, name: str, time: float, value: float) -> CounterSample:
        """Add one sample to a named counter track."""
        return self.timeline.record_counter(name, time, value)
