"""Merge per-tier timelines into one unified chrome trace.

The trainer, the delta publisher, and the serving tier each simulate on
their own :class:`~repro.dist.timeline.Timeline` (their clocks are
independent).  ``unified_chrome_trace`` stitches them into a single
chrome-trace object — one *process* per tier, with every lane, span, and
counter track preserved — so a whole train→publish→serve run reads as one
picture in ``chrome://tracing`` / Perfetto.

Optional per-tier ``offsets`` (seconds) shift a tier along the shared
time axis, e.g. to place the publication after the training steps it
follows and the serving burst after the publication.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.dist.timeline import Timeline

__all__ = [
    "unified_chrome_trace",
    "dump_unified_chrome_trace",
    "timelines_from_chrome_trace",
]


def unified_chrome_trace(
    tiers: Mapping[str, Timeline],
    *,
    offsets: Mapping[str, float] | None = None,
) -> dict:
    """Combine named timelines into one multi-process chrome trace.

    ``tiers`` maps a tier name (becomes the chrome process name) to its
    timeline; iteration order fixes the process ids.  ``offsets`` maps
    tier names to a shift in *seconds* applied to every timed entry of
    that tier (metadata events carry no timestamps and are unaffected).

    The result's top-level ``metadata.tiers`` object records each tier's
    ``pid`` and ``offset_seconds`` (viewers ignore it), so
    :func:`timelines_from_chrome_trace` can split the merged trace back
    into per-tier timelines without re-running anything.
    """
    offsets = dict(offsets or {})
    unknown = set(offsets) - set(tiers)
    if unknown:
        raise ValueError(f"offsets name unknown tiers: {sorted(unknown)}")
    merged: list[dict] = []
    tier_meta: dict[str, dict] = {}
    for pid, (name, timeline) in enumerate(tiers.items()):
        shift = float(offsets.get(name, 0.0))
        tier_meta[name] = {"pid": pid, "offset_seconds": shift}
        for entry in timeline.to_chrome_trace(process_name=name)["traceEvents"]:
            entry = dict(entry)
            entry["pid"] = pid
            if "ts" in entry:
                entry["ts"] = entry["ts"] + shift * 1e6
            merged.append(entry)
    return {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "metadata": {"tiers": tier_meta},
    }


def timelines_from_chrome_trace(trace: dict) -> dict[str, Timeline]:
    """Split a :func:`unified_chrome_trace` object back into per-tier
    timelines, offsets undone — the inverse the ``repro.obs.report`` CLI
    uses to analyze an archived trace without re-running the scenario.

    Requires the ``metadata.tiers`` block this module writes; raises
    :class:`ValueError` on traces that lack it (e.g. hand-edited files).
    """
    tiers = (trace.get("metadata") or {}).get("tiers")
    if not isinstance(tiers, dict) or not tiers:
        raise ValueError("trace has no metadata.tiers block (not a unified trace)")
    timelines: dict[str, Timeline] = {}
    for name, meta in tiers.items():
        pid = meta["pid"]
        shift_us = float(meta.get("offset_seconds", 0.0)) * 1e6
        events = []
        for entry in trace.get("traceEvents", ()):
            if entry.get("pid") != pid:
                continue
            # The critical-path highlight lane is derived, not recorded
            # work — re-importing it would double-count every step.
            if entry.get("cat") == "critpath":
                continue
            entry = dict(entry)
            if "ts" in entry:
                entry["ts"] = entry["ts"] - shift_us
            events.append(entry)
        timelines[name] = Timeline.from_chrome_trace({"traceEvents": events})
    return timelines


def dump_unified_chrome_trace(
    tiers: Mapping[str, Timeline],
    path: str | Path,
    *,
    offsets: Mapping[str, float] | None = None,
) -> Path:
    """Write :func:`unified_chrome_trace` JSON to ``path`` (parents are
    created) and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(unified_chrome_trace(tiers, offsets=offsets)))
    return path
