"""Process-wide metrics primitives: counters, gauges, histograms.

The registry is the shared substrate every tier (train, comm, serve)
records into — per-table compression ratios, per-stage exchange bytes,
cache hit counts, request latencies.  Three metric kinds cover all of
them:

* :class:`Counter` — monotonically increasing totals (bytes on wire,
  requests served).
* :class:`Gauge` — last-written values (current error-bound utilization,
  overlap efficiency of the most recent iteration).
* :class:`Histogram` — fixed-bucket distributions with an exact-sample
  reservoir, so small samples get *exact-rank* quantiles and large runs
  degrade gracefully to bucketed estimates.

Every metric family supports label sets (``codec="hybrid"``,
``stage="payload"``); a (name, labels) pair identifies one series.
:meth:`MetricsRegistry.snapshot` freezes the whole registry into a
:class:`RegistrySnapshot` that merges associatively across processes or
runs — the property the exporters and the property tests lean on.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "UNIT_BUCKETS",
    "DEFAULT_EXACT_LIMIT",
    "exponential_buckets",
    "linear_buckets",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "LabelKey",
    "MetricsRegistry",
    "RegistrySnapshot",
]

#: canonical series identity: label items sorted by key
LabelKey = tuple[tuple[str, str], ...]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` upper bounds starting at ``start``, each ``factor`` apart."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


def linear_buckets(start: float, width: float, count: int) -> tuple[float, ...]:
    """``count`` upper bounds ``start, start+width, ...`` (for bounded ranges)."""
    if width <= 0 or count < 1:
        raise ValueError("need width > 0, count >= 1")
    return tuple(start + width * i for i in range(count))


#: 1 µs .. ~537 s in powers of two — covers kernel times through makespans
DEFAULT_BUCKETS = exponential_buckets(1e-6, 2.0, 30)
#: 0.05 .. 1.0 — for fractions (hit rates, overlap efficiency)
UNIT_BUCKETS = linear_buckets(0.05, 0.05, 20)
#: exact samples kept per histogram series before falling back to buckets
DEFAULT_EXACT_LIMIT = 4096


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    for name in labels:
        if not _LABEL_NAME_RE.match(name):
            raise ValueError(f"invalid label name: {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _check_value(value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"metric value must be finite, got {value!r}")
    return value


# --------------------------------------------------------------------------
# histogram data (immutable; the unit of snapshot/merge/quantile)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class HistogramData:
    """Frozen state of one histogram series.

    ``bounds`` are inclusive upper edges; ``counts`` has one entry per
    bound plus a final overflow bucket.  ``exact`` is the sorted sample
    reservoir (``None`` once more than ``exact_limit`` samples have been
    absorbed, e.g. through a merge).
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    count: int
    total: float
    min: float | None
    max: float | None
    exact: tuple[float, ...] | None
    exact_limit: int

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Exact-rank quantile: the smallest sample with rank
        ``max(1, ceil(q * n))`` — no interpolation, so on small samples
        the answer is always an observed value.

        Once the exact reservoir is gone, falls back to the bucket upper
        edge containing that rank, clamped to the observed max (and the
        observed max for ranks landing in the overflow bucket).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("quantile of an empty histogram")
        rank = max(1, math.ceil(q * self.count))
        if self.exact is not None:
            return self.exact[rank - 1]
        seen = 0
        for upper, n in zip(self.bounds, self.counts):
            seen += n
            if seen >= rank:
                assert self.max is not None
                return min(upper, self.max)
        assert self.max is not None
        return self.max

    def merge(self, other: "HistogramData") -> "HistogramData":
        """Combine two series states (associative, see snapshot laws).

        The exact reservoir survives only while both sides still have
        theirs and the union fits the smaller ``exact_limit``.
        """
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        limit = min(self.exact_limit, other.exact_limit)
        exact: tuple[float, ...] | None = None
        if (
            self.exact is not None
            and other.exact is not None
            and len(self.exact) + len(other.exact) <= limit
        ):
            exact = tuple(sorted(self.exact + other.exact))
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        return HistogramData(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(mins) if mins else None,
            max=max(maxs) if maxs else None,
            exact=exact,
            exact_limit=limit,
        )

    def scrub_exact(self) -> "HistogramData":
        """Bucket-only view (what the Prometheus exposition preserves)."""
        return HistogramData(
            bounds=self.bounds,
            counts=self.counts,
            count=self.count,
            total=self.total,
            min=self.min,
            max=self.max,
            exact=None,
            exact_limit=0,
        )


class _HistogramSeries:
    """Mutable per-labelset accumulator behind a :class:`Histogram`."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max", "exact", "exact_limit")

    def __init__(self, bounds: tuple[float, ...], exact_limit: int) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.exact: list[float] | None = [] if exact_limit > 0 else None
        self.exact_limit = exact_limit

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.exact is not None:
            if self.count > self.exact_limit:
                self.exact = None
            else:
                insort(self.exact, value)

    def data(self) -> HistogramData:
        return HistogramData(
            bounds=self.bounds,
            counts=tuple(self.counts),
            count=self.count,
            total=self.total,
            min=self.min,
            max=self.max,
            exact=None if self.exact is None else tuple(self.exact),
            exact_limit=self.exact_limit,
        )


# --------------------------------------------------------------------------
# live metric families
# --------------------------------------------------------------------------


class Counter:
    """Monotonic sum per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._series: dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: object) -> None:
        value = _check_value(value)
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {value})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> dict[LabelKey, float]:
        return dict(self._series)


class Gauge:
    """Last-written value per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._series: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._series[_label_key(labels)] = _check_value(value)

    def add(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + _check_value(value)

    def value(self, **labels: object) -> float:
        key = _label_key(labels)
        if key not in self._series:
            raise KeyError(f"gauge {self.name} has no series {dict(labels)!r}")
        return self._series[key]

    def series(self) -> dict[LabelKey, float]:
        return dict(self._series)


class Histogram:
    """Fixed-bucket distribution per label set (see :class:`HistogramData`)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        exact_limit: int = DEFAULT_EXACT_LIMIT,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if exact_limit < 0:
            raise ValueError("exact_limit must be >= 0")
        self.bounds = bounds
        self.exact_limit = exact_limit
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(self.bounds, self.exact_limit)
        series.observe(_check_value(value))

    def data(self, **labels: object) -> HistogramData:
        key = _label_key(labels)
        if key not in self._series:
            raise KeyError(f"histogram {self.name} has no series {dict(labels)!r}")
        return self._series[key].data()

    def quantile(self, q: float, **labels: object) -> float:
        return self.data(**labels).quantile(q)

    def series(self) -> dict[LabelKey, HistogramData]:
        return {key: s.data() for key, s in self._series.items()}


# --------------------------------------------------------------------------
# registry + snapshot
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _FamilySnapshot:
    kind: str
    help: str
    series: tuple[tuple[LabelKey, object], ...]

    def as_dict(self) -> dict[LabelKey, object]:
        return dict(self.series)


def _freeze_series(series: Mapping[LabelKey, object]) -> tuple[tuple[LabelKey, object], ...]:
    return tuple(sorted(series.items(), key=lambda item: item[0]))


@dataclass(frozen=True)
class RegistrySnapshot:
    """Immutable point-in-time view of a registry.

    Snapshots merge associatively:

    * counters — per-series sum;
    * gauges — right-biased (the right operand's value wins);
    * histograms — bucket-count sums via :meth:`HistogramData.merge`.

    Family help strings are left-biased (first writer wins).  These rules
    make ``(a | b) | c == a | (b | c)`` for every snapshot triple — the
    law the property tests pin.
    """

    families: tuple[tuple[str, _FamilySnapshot], ...]

    @property
    def _by_name(self) -> dict[str, _FamilySnapshot]:
        return dict(self.families)

    def names(self) -> list[str]:
        return [name for name, _ in self.families]

    def family(self, name: str) -> _FamilySnapshot:
        for fam_name, fam in self.families:
            if fam_name == name:
                return fam
        raise KeyError(f"no metric family named {name!r}")

    def counter_value(self, name: str, **labels: object) -> float:
        fam = self.family(name)
        if fam.kind != "counter":
            raise TypeError(f"{name} is a {fam.kind}, not a counter")
        return float(fam.as_dict().get(_label_key(labels), 0.0))  # type: ignore[arg-type]

    def gauge_value(self, name: str, **labels: object) -> float:
        fam = self.family(name)
        if fam.kind != "gauge":
            raise TypeError(f"{name} is a {fam.kind}, not a gauge")
        return float(fam.as_dict()[_label_key(labels)])  # type: ignore[index]

    def histogram_data(self, name: str, **labels: object) -> HistogramData:
        fam = self.family(name)
        if fam.kind != "histogram":
            raise TypeError(f"{name} is a {fam.kind}, not a histogram")
        return fam.as_dict()[_label_key(labels)]  # type: ignore[return-value,index]

    def iter_series(self) -> Iterator[tuple[str, str, LabelKey, object]]:
        """Yield ``(name, kind, label_key, value_or_data)`` rows."""
        for name, fam in self.families:
            for key, value in fam.series:
                yield name, fam.kind, key, value

    def merge(self, other: "RegistrySnapshot") -> "RegistrySnapshot":
        merged: dict[str, _FamilySnapshot] = dict(self.families)
        for name, fam in other.families:
            mine = merged.get(name)
            if mine is None:
                merged[name] = fam
                continue
            if mine.kind != fam.kind:
                raise ValueError(
                    f"metric {name} is a {mine.kind} on one side and a "
                    f"{fam.kind} on the other"
                )
            left = mine.as_dict()
            if mine.kind == "counter":
                for key, value in fam.series:
                    left[key] = float(left.get(key, 0.0)) + float(value)  # type: ignore[arg-type]
            elif mine.kind == "gauge":
                for key, value in fam.series:
                    left[key] = value
            else:
                for key, value in fam.series:
                    prior = left.get(key)
                    left[key] = value if prior is None else prior.merge(value)  # type: ignore[union-attr]
            merged[name] = _FamilySnapshot(
                kind=mine.kind, help=mine.help, series=_freeze_series(left)
            )
        return RegistrySnapshot(
            families=tuple(sorted(merged.items(), key=lambda item: item[0]))
        )

    __or__ = merge

    def scrub_exact(self) -> "RegistrySnapshot":
        """Drop every histogram's exact reservoir (Prometheus fidelity)."""
        families = []
        for name, fam in self.families:
            if fam.kind == "histogram":
                series = _freeze_series(
                    {key: data.scrub_exact() for key, data in fam.series}  # type: ignore[union-attr]
                )
                fam = _FamilySnapshot(kind=fam.kind, help=fam.help, series=series)
            families.append((name, fam))
        return RegistrySnapshot(families=tuple(families))


class MetricsRegistry:
    """Get-or-create home for metric families.

    Accessors are idempotent: ``registry.counter("x")`` returns the same
    family every call, so instrumentation sites don't coordinate
    creation.  Asking for an existing name with a different kind raises.
    """

    def __init__(self) -> None:
        self._families: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs: object):
        existing = self._families.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._families[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        exact_limit: int = DEFAULT_EXACT_LIMIT,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, bounds=bounds, exact_limit=exact_limit
        )

    def names(self) -> list[str]:
        return sorted(self._families)

    def snapshot(self) -> RegistrySnapshot:
        families = []
        for name in sorted(self._families):
            metric = self._families[name]
            families.append(
                (
                    name,
                    _FamilySnapshot(
                        kind=metric.kind,
                        help=metric.help,
                        series=_freeze_series(metric.series()),
                    ),
                )
            )
        return RegistrySnapshot(families=tuple(families))
