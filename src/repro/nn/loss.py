"""Binary cross-entropy with logits (numerically stable)."""

from __future__ import annotations

import numpy as np

__all__ = ["bce_with_logits", "bce_grad", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


def _check(logits: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    logits = np.asarray(logits, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if logits.shape != labels.shape:
        raise ValueError(f"logits/labels shape mismatch: {logits.shape} vs {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() > 1):
        raise ValueError("labels must be in [0, 1]")
    return logits, labels


def bce_with_logits(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary cross-entropy, computed stably from logits."""
    logits, labels = _check(logits, labels)
    if logits.size == 0:
        return 0.0
    # max(z,0) - z*y + log(1 + exp(-|z|))
    loss = np.maximum(logits, 0.0) - logits * labels + np.log1p(np.exp(-np.abs(logits)))
    return float(loss.mean())


def bce_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """d(mean BCE)/d logits = (sigmoid(z) - y) / batch."""
    logits, labels = _check(logits, labels)
    if logits.size == 0:
        return np.zeros(0)
    return (sigmoid(logits) - labels) / logits.size
