"""Multi-layer perceptron built from Linear + ReLU."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.linear import Linear, ReLU, Sigmoid
from repro.nn.param import Parameter

__all__ = ["MLP"]

_FINAL_ACTIVATIONS = ("relu", "sigmoid", "none")


class MLP:
    """A stack ``Linear -> ReLU -> ... -> Linear [-> final activation]``.

    ``sizes`` gives the full layer widths, e.g. ``[13, 64, 32]`` builds two
    linear layers; hidden layers get ReLU, the output layer gets
    ``final_activation``.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        final_activation: str = "relu",
        name: str = "mlp",
    ):
        if len(sizes) < 2:
            raise ValueError(f"need at least input and output sizes, got {list(sizes)}")
        if final_activation not in _FINAL_ACTIVATIONS:
            raise ValueError(
                f"final_activation must be one of {_FINAL_ACTIVATIONS}, got {final_activation!r}"
            )
        self.sizes = tuple(int(s) for s in sizes)
        self.layers: list[object] = []
        for i in range(len(self.sizes) - 1):
            self.layers.append(Linear(self.sizes[i], self.sizes[i + 1], rng, name=f"{name}.{i}"))
            is_last = i == len(self.sizes) - 2
            if not is_last:
                self.layers.append(ReLU())
            elif final_activation == "relu":
                self.layers.append(ReLU())
            elif final_activation == "sigmoid":
                self.layers.append(Sigmoid())

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        grad = dout
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params
