"""Embedding table with sparse gradient accumulation.

Lookups return float32 rows — the wire format of DLRM all-to-all traffic
and the input to the compressors.  Gradients are scattered back with
``np.add.at`` so duplicate ids within a batch accumulate correctly (the
sparse-gradient semantics of a real embedding bag).
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import clustered_embedding, embedding_init
from repro.nn.param import Parameter

__all__ = ["EmbeddingTable"]


class EmbeddingTable:
    """A ``(cardinality, dim)`` table supporting lookup and sparse update.

    ``distribution``/``n_clusters``/``jitter`` select the initializer (see
    :mod:`repro.nn.init`): these plant the per-table data regimes the
    paper's compressor analysis depends on.
    """

    def __init__(
        self,
        cardinality: int,
        dim: int,
        rng: np.random.Generator,
        scale: float = 0.1,
        name: str = "emb",
        distribution: str = "normal",
        n_clusters: int = 0,
        jitter: float = 0.0,
    ):
        if cardinality < 1 or dim < 1:
            raise ValueError(f"cardinality and dim must be >= 1, got {cardinality}, {dim}")
        self.cardinality = int(cardinality)
        self.dim = int(dim)
        if n_clusters > 0:
            data = clustered_embedding(
                rng, cardinality, dim, scale, min(n_clusters, cardinality), jitter, distribution
            )
        else:
            data = embedding_init(rng, cardinality, dim, scale, distribution)
        self.weight = Parameter(data, name=f"{name}.weight")

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices)
        if indices.ndim != 1:
            raise ValueError(f"indices must be 1-D, got shape {indices.shape}")
        if indices.size and (indices.min() < 0 or indices.max() >= self.cardinality):
            raise IndexError(
                f"indices out of range [0, {self.cardinality}): "
                f"[{indices.min()}, {indices.max()}]"
            )
        return indices.astype(np.int64)

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """Gather rows for ``indices``; float32, the all-to-all wire format."""
        indices = self._check_indices(indices)
        return self.weight.data[indices].astype(np.float32)

    def accumulate_grad(self, indices: np.ndarray, grad_rows: np.ndarray) -> None:
        """Scatter-add ``grad_rows`` into the table gradient.

        Duplicate indices accumulate — the defining property of sparse
        embedding gradients.
        """
        indices = self._check_indices(indices)
        grad_rows = np.asarray(grad_rows, dtype=np.float64)
        if grad_rows.shape != (indices.size, self.dim):
            raise ValueError(
                f"grad_rows must be ({indices.size}, {self.dim}), got {grad_rows.shape}"
            )
        np.add.at(self.weight.grad, indices, grad_rows)

    def parameters(self) -> list[Parameter]:
        return [self.weight]
