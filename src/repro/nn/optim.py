"""Optimizers: SGD and Adagrad over :class:`~repro.nn.param.Parameter`.

DLRM reference training uses SGD; Adagrad is the common production choice
for the sparse embedding side.  Both consume accumulated gradients and zero
them after stepping.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.nn.param import Parameter
from repro.utils.validation import check_positive

__all__ = ["SGD", "Adagrad"]


class SGD:
    """Vanilla stochastic gradient descent."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        check_positive("lr", lr)
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = float(lr)

    def step(self) -> None:
        for param in self.parameters:
            param.data -= self.lr * param.grad
            param.zero_grad()


class Adagrad:
    """Adagrad with per-element accumulators."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, eps: float = 1e-10):
        check_positive("lr", lr)
        check_positive("eps", eps)
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = float(lr)
        self.eps = float(eps)
        self._state = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, accum in zip(self.parameters, self._state):
            accum += param.grad**2
            param.data -= self.lr * param.grad / (np.sqrt(accum) + self.eps)
            param.zero_grad()
