"""Weight initializers.

Embedding initializers double as the mechanism for planting the paper's
observed data regimes (Section III-B): the value *distribution* (normal =
concentrated Gaussian histograms, uniform = broad dispersion) and optional
*cluster* structure (many rows = centroid + tiny jitter), which produces
vector homogenization once quantization rounds the jitter away.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "xavier_uniform",
    "uniform_embedding",
    "normal_embedding",
    "laplace_embedding",
    "embedding_init",
    "clustered_embedding",
]


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform init for a (fan_in, fan_out) weight matrix."""
    if fan_in < 1 or fan_out < 1:
        raise ValueError(f"fan_in/fan_out must be >= 1, got {fan_in}, {fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def uniform_embedding(rng: np.random.Generator, cardinality: int, dim: int, scale: float) -> np.ndarray:
    """DLRM-style uniform embedding init in ``[-scale, scale]``.

    Produces the broad, flat value histograms of the paper's "EMB Table 5"
    regime (hard for entropy coding).
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    return rng.uniform(-scale, scale, size=(cardinality, dim))


def normal_embedding(rng: np.random.Generator, cardinality: int, dim: int, scale: float) -> np.ndarray:
    """Gaussian embedding init, std ``scale``.

    Produces concentrated value histograms (observation ❸).
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    return rng.normal(0.0, scale, size=(cardinality, dim))


def laplace_embedding(rng: np.random.Generator, cardinality: int, dim: int, scale: float) -> np.ndarray:
    """Heavy-tailed (Laplace) embedding init, std ``scale``.

    Learned embeddings are heavy-tailed in practice: most mass is tightly
    concentrated but rare large coordinates stretch the value range.  Under
    quantization this yields a *wide* alphabet with *low* entropy — the
    regime where the paper's optimized Huffman wins decisively over
    fixed-width literals ("EMB Table 1" of Fig. 13).
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    return rng.laplace(0.0, scale / np.sqrt(2.0), size=(cardinality, dim))


_DISTRIBUTIONS = {
    "uniform": uniform_embedding,
    "normal": normal_embedding,
    "laplace": laplace_embedding,
}


def embedding_init(
    rng: np.random.Generator, cardinality: int, dim: int, scale: float, distribution: str
) -> np.ndarray:
    """Dispatch to the named embedding initializer."""
    try:
        fn = _DISTRIBUTIONS[distribution]
    except KeyError:
        raise ValueError(
            f"distribution must be one of {sorted(_DISTRIBUTIONS)}, got {distribution!r}"
        ) from None
    return fn(rng, cardinality, dim, scale)


def clustered_embedding(
    rng: np.random.Generator,
    cardinality: int,
    dim: int,
    scale: float,
    n_clusters: int,
    jitter: float,
    distribution: str = "normal",
) -> np.ndarray:
    """Rows = cluster centroid + small jitter.

    When ``jitter`` is below the compression error bound, quantization
    collapses same-cluster rows into identical vectors — the paper's
    *vector homogenization* (observation ❷).  Cluster sizes are skewed
    (Zipf-ish) so homogenization strength varies within a table.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {jitter}")
    centroids = embedding_init(rng, n_clusters, dim, scale, distribution)
    weights = 1.0 / np.arange(1, n_clusters + 1, dtype=np.float64)
    assignment = rng.choice(n_clusters, size=cardinality, p=weights / weights.sum())
    return centroids[assignment] + rng.normal(0.0, jitter, size=(cardinality, dim))
