"""DLRM dot-product feature interaction.

Stacks the bottom-MLP output with the embedding lookups into
``Z in R^{batch x (T+1) x dim}``, computes all pairwise dot products
``P = Z Z^T``, and concatenates the strictly-lower-triangular entries of
``P`` with the dense vector — the second-order interaction of the DLRM
paper (Naumov et al.).
"""

from __future__ import annotations

import numpy as np

__all__ = ["DotInteraction"]


class DotInteraction:
    """Pairwise dot interaction with manual backward."""

    def __init__(self, n_features: int, dim: int):
        if n_features < 1 or dim < 1:
            raise ValueError(f"n_features and dim must be >= 1, got {n_features}, {dim}")
        self.n_features = int(n_features)  # T+1 (dense slot + T tables)
        self.dim = int(dim)
        rows, cols = np.tril_indices(self.n_features, k=-1)
        self._rows = rows
        self._cols = cols
        self._cache: np.ndarray | None = None

    @property
    def output_dim(self) -> int:
        """dense dim + number of pairwise terms."""
        return self.dim + self.n_features * (self.n_features - 1) // 2

    def forward(self, z: np.ndarray) -> np.ndarray:
        """``z``: (batch, n_features, dim) -> (batch, output_dim)."""
        z = np.asarray(z, dtype=np.float64)
        if z.ndim != 3 or z.shape[1] != self.n_features or z.shape[2] != self.dim:
            raise ValueError(
                f"expected (batch, {self.n_features}, {self.dim}), got {z.shape}"
            )
        self._cache = z
        products = np.einsum("bij,bkj->bik", z, z)
        pairs = products[:, self._rows, self._cols]
        return np.concatenate([z[:, 0, :], pairs], axis=1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. ``z`` given gradient of the concatenated output."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        z = self._cache
        batch = z.shape[0]
        if dout.shape != (batch, self.output_dim):
            raise ValueError(f"expected dout ({batch}, {self.output_dim}), got {dout.shape}")
        d_dense = dout[:, : self.dim]
        d_pairs = dout[:, self.dim :]
        # Scatter pair grads into the (symmetric) dP matrix.
        dP = np.zeros((batch, self.n_features, self.n_features))
        dP[:, self._rows, self._cols] = d_pairs
        # P = Z Z^T with only lower-tri read; dZ = (dP + dP^T) Z.
        dz = np.einsum("bik,bkj->bij", dP + dP.transpose(0, 2, 1), z)
        dz[:, 0, :] += d_dense
        self._cache = None
        return dz
