"""Parameter container for the NumPy NN substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Layers accumulate into ``grad`` during ``backward``; optimizers consume
    and reset it.  Data is always float64 internally for stable gradient
    checks; lookup outputs are cast to float32 at the communication edge,
    matching the paper's setting where the wire format is float32.
    """

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(name={self.name!r}, shape={self.shape})"
