"""Fully connected layer and activations with manual backward passes."""

from __future__ import annotations

import numpy as np

from repro.nn.init import xavier_uniform
from repro.nn.param import Parameter

__all__ = ["Linear", "ReLU", "Sigmoid"]


class Linear:
    """``y = x @ W + b`` with gradient accumulation."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, name: str = ""):
        self.weight = Parameter(xavier_uniform(rng, in_features, out_features), name=f"{name}.weight")
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias")
        self._cache: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise ValueError(
                f"Linear expected (batch, {self.weight.shape[0]}), got {x.shape}"
            )
        self._cache = x
        return x @ self.weight.data + self.bias.data

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache
        self.weight.grad += x.T @ dout
        self.bias.grad += dout.sum(axis=0)
        self._cache = None
        return dout @ self.weight.data.T

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class ReLU:
    """Elementwise max(x, 0)."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        dx = np.where(self._mask, dout, 0.0)
        self._mask = None
        return dx

    def parameters(self) -> list[Parameter]:
        return []


class Sigmoid:
    """Elementwise logistic function."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        expx = np.exp(x[~pos])
        out[~pos] = expx / (1.0 + expx)
        self._out = out
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        dx = dout * self._out * (1.0 - self._out)
        self._out = None
        return dx

    def parameters(self) -> list[Parameter]:
        return []
