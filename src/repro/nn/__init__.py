"""Minimal NumPy neural-network substrate with manual backward passes."""

from repro.nn.embedding import EmbeddingTable
from repro.nn.init import uniform_embedding, xavier_uniform
from repro.nn.interaction import DotInteraction
from repro.nn.linear import Linear, ReLU, Sigmoid
from repro.nn.loss import bce_grad, bce_with_logits, sigmoid
from repro.nn.mlp import MLP
from repro.nn.optim import SGD, Adagrad
from repro.nn.param import Parameter

__all__ = [
    "Parameter",
    "Linear",
    "ReLU",
    "Sigmoid",
    "MLP",
    "EmbeddingTable",
    "DotInteraction",
    "bce_with_logits",
    "bce_grad",
    "sigmoid",
    "SGD",
    "Adagrad",
    "xavier_uniform",
    "uniform_embedding",
]
