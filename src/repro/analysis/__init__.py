"""Embedding-data feature analysis."""

from repro.analysis.features import (
    GAUSSIANITY_THRESHOLD,
    VIOLENT_HOMOGENIZATION_THRESHOLD,
    TableFeatures,
    analyze_table,
    code_entropy,
    gaussianity_score,
    lorenzo_entropy_inflation,
)

__all__ = [
    "code_entropy",
    "lorenzo_entropy_inflation",
    "gaussianity_score",
    "TableFeatures",
    "analyze_table",
    "VIOLENT_HOMOGENIZATION_THRESHOLD",
    "GAUSSIANITY_THRESHOLD",
]
