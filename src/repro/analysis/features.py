"""Embedding-data feature analysis (Section III-B, Table I, Figs. 13-14).

Quantifies the three observations the paper's compressor design rests on:

* **False prediction** — Lorenzo prediction *raises* the entropy of
  quantized embedding batches (neighbouring rows are independent lookups).
  Measured as the ratio of residual-code entropy to raw-code entropy;
  ratios above 1 mean prediction hurts.
* **Vector homogenization** — quantization merges near-identical vectors;
  measured by the Homogenization Index (Eq. 1).
* **Gaussian value distribution** — hot tables show concentrated, roughly
  Gaussian value histograms; measured by excess kurtosis against the
  uniform alternative (uniform has kurtosis -1.2, Gaussian 0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adaptive.homo_index import HomoIndexResult, homogenization_index
from repro.compression.baselines.cusz_like import lorenzo_residuals_2d
from repro.compression.quantizer import quantize
from repro.utils.validation import check_positive, check_shape

__all__ = [
    "code_entropy",
    "lorenzo_entropy_inflation",
    "gaussianity_score",
    "TableFeatures",
    "analyze_table",
]

#: homogenization index above which Table I marks "violent" homogenization
VIOLENT_HOMOGENIZATION_THRESHOLD = 0.25
#: excess-kurtosis score above which the value histogram reads as Gaussian
#: (halfway between uniform's -1.2 and Gaussian's 0.0)
GAUSSIANITY_THRESHOLD = -0.6


def code_entropy(codes: np.ndarray) -> float:
    """Shannon entropy (bits/symbol) of an integer code array."""
    codes = np.asarray(codes).ravel()
    if codes.size == 0:
        return 0.0
    _, counts = np.unique(codes, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def lorenzo_entropy_inflation(batch: np.ndarray, error_bound: float) -> float:
    """Entropy(Lorenzo residuals) / Entropy(raw quantization codes).

    Values > 1 are the paper's *false prediction*: the predictor spreads
    the code distribution instead of concentrating it.
    """
    batch = np.ascontiguousarray(batch)
    check_shape("batch", batch, 2)
    check_positive("error_bound", error_bound)
    codes = quantize(batch, error_bound)
    raw_entropy = code_entropy(codes)
    residual_entropy = code_entropy(lorenzo_residuals_2d(codes))
    if raw_entropy == 0.0:
        # Degenerate constant batch: any nonzero residual entropy inflates.
        return np.inf if residual_entropy > 0 else 1.0
    return residual_entropy / raw_entropy


def gaussianity_score(values: np.ndarray) -> float:
    """Excess kurtosis of the pooled values.

    0 for a Gaussian, -1.2 for a uniform distribution; heavier-than-normal
    tails go positive.  Concentrated (Gaussian-ish) tables score near or
    above 0, broad uniform-ish tables score near -1.2.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size < 4:
        raise ValueError(f"need at least 4 values, got {values.size}")
    centred = values - values.mean()
    variance = float((centred**2).mean())
    if variance == 0.0:
        return 0.0
    return float((centred**4).mean() / variance**2 - 3.0)


@dataclass(frozen=True)
class TableFeatures:
    """Table I-style characterization of one table's sampled batch."""

    table_id: int
    homo: HomoIndexResult
    entropy_inflation: float
    gaussianity: float

    @property
    def false_prediction(self) -> bool:
        """Lorenzo prediction raises entropy on this table."""
        return self.entropy_inflation > 1.0

    @property
    def violent_homogenization(self) -> bool:
        return self.homo.homo_index > VIOLENT_HOMOGENIZATION_THRESHOLD

    @property
    def gaussian_distribution(self) -> bool:
        return self.gaussianity > GAUSSIANITY_THRESHOLD


def analyze_table(table_id: int, batch: np.ndarray, error_bound: float) -> TableFeatures:
    """Compute all Table I characteristics for one sampled batch."""
    return TableFeatures(
        table_id=table_id,
        homo=homogenization_index(batch, error_bound),
        entropy_inflation=lorenzo_entropy_inflation(batch, error_bound),
        gaussianity=gaussianity_score(batch),
    )
