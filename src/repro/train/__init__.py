"""Training: reference (single process) and hybrid-parallel (simulated)."""

from repro.train.hybrid import HybridParallelTrainer, HybridTrainingReport
from repro.train.metrics import TrainingHistory, binary_accuracy, roc_auc
from repro.train.pipeline import CompressionPipeline, TransferStats
from repro.train.reference import LookupTransform, ReferenceTrainer, evaluate_model
from repro.train.sharding import ShardingPlan

__all__ = [
    "binary_accuracy",
    "roc_auc",
    "TrainingHistory",
    "CompressionPipeline",
    "TransferStats",
    "ReferenceTrainer",
    "LookupTransform",
    "evaluate_model",
    "ShardingPlan",
    "HybridParallelTrainer",
    "HybridTrainingReport",
]
