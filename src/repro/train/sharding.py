"""Embedding-table sharding across ranks (model parallelism)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ShardingPlan"]


@dataclass(frozen=True)
class ShardingPlan:
    """Assignment of each embedding table to its owning rank."""

    owners: tuple[int, ...]
    n_ranks: int

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {self.n_ranks}")
        for table_id, owner in enumerate(self.owners):
            if not 0 <= owner < self.n_ranks:
                raise ValueError(
                    f"table {table_id} assigned to rank {owner}, "
                    f"out of range [0, {self.n_ranks})"
                )

    @property
    def n_tables(self) -> int:
        return len(self.owners)

    def owner_of(self, table_id: int) -> int:
        return self.owners[table_id]

    def tables_of(self, rank: int) -> tuple[int, ...]:
        return tuple(t for t, owner in enumerate(self.owners) if owner == rank)

    @classmethod
    def round_robin(cls, n_tables: int, n_ranks: int) -> "ShardingPlan":
        """Table ``t`` goes to rank ``t % n_ranks``."""
        if n_tables < 1:
            raise ValueError(f"n_tables must be >= 1, got {n_tables}")
        return cls(owners=tuple(t % n_ranks for t in range(n_tables)), n_ranks=n_ranks)

    @classmethod
    def size_balanced(cls, cardinalities: list[int] | np.ndarray, n_ranks: int) -> "ShardingPlan":
        """Greedy largest-first bin packing on table cardinalities.

        Balances per-rank embedding memory, the production placement
        objective for terabyte-scale tables.
        """
        cardinalities = np.asarray(cardinalities, dtype=np.int64)
        if cardinalities.size < 1:
            raise ValueError("need at least one table")
        if (cardinalities < 1).any():
            raise ValueError("cardinalities must be >= 1")
        owners = np.zeros(cardinalities.size, dtype=np.int64)
        loads = np.zeros(n_ranks, dtype=np.int64)
        for table_id in np.argsort(-cardinalities, kind="stable"):
            rank = int(np.argmin(loads))
            owners[table_id] = rank
            loads[rank] += cardinalities[table_id]
        return cls(owners=tuple(int(o) for o in owners), n_ranks=n_ranks)
