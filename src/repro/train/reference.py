"""Single-process reference trainer.

Runs DLRM training without any cluster simulation.  An optional *lookup
transform* injects the compression round-trip into the forward pass, which
is numerically identical to what a distributed receiver sees after the
compressed all-to-all — so every accuracy experiment (Figs. 5, 8, 9, 10)
can run at single-process speed, while the hybrid-parallel trainer is
reserved for timing experiments.  (An integration test pins the
equivalence of the two trainers.)
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import SyntheticClickDataset
from repro.model.dlrm import DLRM
from repro.nn.loss import bce_grad, bce_with_logits
from repro.nn.optim import SGD, Adagrad
from repro.train.metrics import TrainingHistory, binary_accuracy, roc_auc
from repro.utils.validation import check_in, check_positive

__all__ = ["LookupTransform", "ReferenceTrainer", "evaluate_model"]

#: hook applied to each table's lookup rows: (table_id, rows, iteration) -> rows
LookupTransform = Callable[[int, np.ndarray, int], np.ndarray]


def evaluate_model(
    model: DLRM,
    dataset: SyntheticClickDataset,
    batch_size: int = 512,
    n_batches: int = 4,
    batch_offset: int = 1_000_000,
) -> tuple[float, float]:
    """Held-out (accuracy, AUC): evaluation batches never overlap training
    batches because their indices start at ``batch_offset``."""
    logits_all = []
    labels_all = []
    for i in range(n_batches):
        batch = dataset.batch(batch_size, batch_index=batch_offset + i)
        logits_all.append(model.forward(batch.dense, batch.sparse))
        labels_all.append(batch.labels)
    logits = np.concatenate(logits_all)
    labels = np.concatenate(labels_all)
    return binary_accuracy(logits, labels), roc_auc(logits, labels)


@dataclass
class ReferenceTrainer:
    """Plain mini-batch training with an optional lossy lookup hook."""

    model: DLRM
    dataset: SyntheticClickDataset
    lr: float = 0.1
    optimizer: str = "sgd"
    lookup_transform: LookupTransform | None = None

    def __post_init__(self) -> None:
        check_positive("lr", self.lr)
        check_in("optimizer", self.optimizer, ("sgd", "adagrad"))
        opt_cls = SGD if self.optimizer == "sgd" else Adagrad
        self._opt = opt_cls(self.model.parameters(), lr=self.lr)

    def train_step(self, batch_size: int, iteration: int) -> float:
        """One mini-batch step; returns the training loss."""
        batch = self.dataset.batch(batch_size, batch_index=iteration)
        bottom_out = self.model.forward_dense(batch.dense)
        emb_rows = self.model.lookup_all(batch.sparse)
        if self.lookup_transform is not None:
            emb_rows = [
                self.lookup_transform(j, rows, iteration)
                for j, rows in enumerate(emb_rows)
            ]
        logits = self.model.forward_interaction(bottom_out, emb_rows)
        loss = bce_with_logits(logits, batch.labels)
        dlogits = bce_grad(logits, batch.labels)
        d_bottom, d_emb = self.model.backward_interaction(dlogits)
        self.model.backward_dense(d_bottom)
        for j in range(self.model.config.n_tables):
            self.model.accumulate_embedding_grad(j, batch.sparse[:, j], d_emb[j])
        self._opt.step()
        return loss

    def train(
        self,
        n_iterations: int,
        batch_size: int,
        eval_every: int = 0,
        eval_batch_size: int = 512,
        eval_batches: int = 4,
    ) -> TrainingHistory:
        """Run ``n_iterations`` steps, optionally evaluating periodically."""
        check_positive("n_iterations", n_iterations)
        check_positive("batch_size", batch_size)
        history = TrainingHistory()
        for iteration in range(n_iterations):
            loss = self.train_step(batch_size, iteration)
            history.record_loss(loss)
            last = iteration == n_iterations - 1
            if eval_every and (iteration % eval_every == eval_every - 1 or last):
                accuracy, auc = evaluate_model(
                    self.model, self.dataset, eval_batch_size, eval_batches
                )
                history.record_eval(iteration, accuracy, auc)
        return history
