"""Training metrics: accuracy, AUC, and history containers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.loss import sigmoid

__all__ = ["binary_accuracy", "roc_auc", "TrainingHistory"]


def binary_accuracy(logits: np.ndarray, labels: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of correct 0/1 predictions at a probability threshold."""
    logits = np.asarray(logits, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if logits.shape != labels.shape:
        raise ValueError(f"shape mismatch: {logits.shape} vs {labels.shape}")
    if logits.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    predictions = sigmoid(logits) >= threshold
    return float((predictions == (labels >= 0.5)).mean())


def roc_auc(logits: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) statistic."""
    logits = np.asarray(logits, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if logits.shape != labels.shape:
        raise ValueError(f"shape mismatch: {logits.shape} vs {labels.shape}")
    positive = labels >= 0.5
    n_pos = int(positive.sum())
    n_neg = logits.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc needs both classes present")
    order = np.argsort(logits, kind="stable")
    ranks = np.empty(logits.size, dtype=np.float64)
    ranks[order] = np.arange(1, logits.size + 1)
    # Midranks for ties keep the estimator unbiased.
    sorted_logits = logits[order]
    i = 0
    while i < logits.size:
        j = i
        while j + 1 < logits.size and sorted_logits[j + 1] == sorted_logits[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    rank_sum = float(ranks[positive].sum())
    u_statistic = rank_sum - n_pos * (n_pos + 1) / 2.0
    return u_statistic / (n_pos * n_neg)


@dataclass
class TrainingHistory:
    """Loss/accuracy traces collected during a run."""

    losses: list[float] = field(default_factory=list)
    eval_iterations: list[int] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    aucs: list[float] = field(default_factory=list)

    def record_loss(self, value: float) -> None:
        self.losses.append(float(value))

    def record_eval(self, iteration: int, accuracy: float, auc: float | None = None) -> None:
        self.eval_iterations.append(int(iteration))
        self.accuracies.append(float(accuracy))
        if auc is not None:
            self.aucs.append(float(auc))

    @property
    def final_accuracy(self) -> float:
        if not self.accuracies:
            raise ValueError("no evaluations recorded")
        return self.accuracies[-1]

    def smoothed_losses(self, window: int = 10) -> np.ndarray:
        """Trailing moving average of the loss trace."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        losses = np.asarray(self.losses, dtype=np.float64)
        if losses.size == 0:
            return losses
        kernel = np.ones(min(window, losses.size)) / min(window, losses.size)
        return np.convolve(losses, kernel, mode="valid")
