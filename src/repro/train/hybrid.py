"""Hybrid-parallel DLRM training over the cluster simulator.

Reproduces the paper's training system (Section II-A): embedding tables are
*model parallel* (each rank owns a table subset and looks up the **global**
batch for its tables), MLPs are *data parallel* (each rank handles its
sub-batch; gradients are all-reduced).  The forward all-to-all redistributes
per-table lookups from table owners to sub-batch owners; the backward
all-to-all returns the lookup gradients.

With a :class:`~repro.train.pipeline.CompressionPipeline`, the forward
exchange runs the paper's 4-stage compressed pipeline: per-slice
compression under the dual-level adaptive controller, a metadata all-to-all
(stage ②, needed because error-bounded payloads have variable size), the
payload all-to-all, and per-slice decompression.

**Every collective goes through the** :class:`~repro.dist.comm.Communicator`
— the trainer never charges ``simulator.collective`` directly, so trainer
and communicator cannot drift apart.  ``overlap=True`` runs the compressed
exchanges in the communicator's chunk-level pipelined mode (stage ①
overlapping stage ③ on per-rank streams, ``pipeline_chunks`` wire chunks
per rank); ``overlap="cross_stage"`` additionally issues the *backward*
embedding-gradient exchange before charging the bottom-MLP backward
kernels, so that exchange overlaps compute across pipeline stages (the
kernels ride into the communicator as ``overlap_compute_seconds`` — the
numerics are bit-identical in every mode, only the charge schedule moves).
``allreduce_algorithm="hierarchical"`` prices the dense synchronization
with the topology-aware hierarchical schedule (``"switch"`` with the
in-network aggregation tree, meaningful alongside ``allreduce_codec=``).

``allreduce_codec="count_sum"`` / ``"quant_sum"`` routes the dense
gradient all-reduce through
:meth:`~repro.dist.comm.Communicator.compressed_all_reduce`: each rank
encodes a disjoint strided shard of the global MLP gradient (rank ``r``
owns elements ``r::n``, so the shards sum *exactly* to the gradient), the
payloads aggregate in compressed space with no intermediate decode, and
the decoded total lands back in ``param.grad`` before the optimizer step.
With the lossless ``count_sum`` the parameters stay bit-identical to the
uncompressed path; with ``quant_sum`` they stay within the composed bound
``lr_effective * n_ranks * allreduce_error_bound`` per step.

**Numerics vs. timing.**  All ranks of the simulation share one
:class:`~repro.model.dlrm.DLRM` parameter set: replicated data-parallel
MLPs with all-reduced gradients are numerically identical to a single copy
trained on the global batch, and each sharded table has exactly one owner.
What the receivers see — decompressed lookups — is computed for real, so
accuracy effects are exact; compute and communication *times* are charged
to per-rank clocks through the GPU/network cost models, with byte counts
taken from the actual compressed payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import SyntheticClickDataset
from repro.dist.simulator import ClusterSimulator
from repro.dist.timeline import OBS_STREAM, EventCategory, Timeline
from repro.model.dlrm import DLRM
from repro.obs.registry import UNIT_BUCKETS
from repro.obs.runtime import OBS
from repro.nn.loss import bce_grad, bce_with_logits
from repro.nn.optim import SGD, Adagrad
from repro.train.metrics import TrainingHistory
from repro.train.pipeline import CompressionPipeline
from repro.train.reference import evaluate_model
from repro.train.sharding import ShardingPlan
from repro.utils.validation import check_in, check_positive

__all__ = ["HybridParallelTrainer", "HybridTrainingReport"]


@dataclass
class HybridTrainingReport:
    """Outcome of a simulated hybrid-parallel run."""

    history: TrainingHistory
    timeline: Timeline
    makespan: float
    n_iterations: int
    global_batch_size: int
    n_ranks: int
    forward_wire_bytes: int  # bytes actually sent in forward all-to-alls
    forward_raw_bytes: int  # what uncompressed forward all-to-alls would send
    category_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def iteration_seconds(self) -> float:
        return self.makespan / max(1, self.n_iterations)

    @property
    def forward_compression_ratio(self) -> float:
        """Overall forward-exchange data reduction."""
        return self.forward_raw_bytes / max(1, self.forward_wire_bytes)

    def breakdown_fractions(self) -> dict[str, float]:
        total = sum(self.category_seconds.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in sorted(self.category_seconds.items())}


class HybridParallelTrainer:
    """SPMD driver for hybrid-parallel DLRM over the simulator."""

    def __init__(
        self,
        model: DLRM,
        dataset: SyntheticClickDataset,
        simulator: ClusterSimulator,
        pipeline: CompressionPipeline | None = None,
        lr: float = 0.1,
        optimizer: str = "sgd",
        sharding: ShardingPlan | None = None,
        overlap: bool | str = False,
        allreduce_algorithm: str = "ring",
        pipeline_chunks: int = 8,
        autotuner=None,
        codec_executor=None,
        allreduce_codec: str | None = None,
        allreduce_error_bound: float = 1e-3,
    ):
        check_positive("lr", lr)
        check_in("optimizer", optimizer, ("sgd", "adagrad"))
        check_in(
            "allreduce_algorithm", allreduce_algorithm, ("ring", "hierarchical", "switch")
        )
        check_positive("allreduce_error_bound", allreduce_error_bound)
        if allreduce_codec is not None:
            from repro.compression.homomorphic import homomorphic_codecs

            check_in("allreduce_codec", allreduce_codec, homomorphic_codecs())
        if overlap not in (False, True, "cross_stage"):
            raise ValueError(
                f"overlap must be False, True, or 'cross_stage', got {overlap!r}"
            )
        check_positive("pipeline_chunks", pipeline_chunks)
        if int(pipeline_chunks) != pipeline_chunks:
            raise ValueError(
                f"pipeline_chunks must be an integer, got {pipeline_chunks!r}"
            )
        self.model = model
        self.dataset = dataset
        self.simulator = simulator
        self.comm = simulator.comm
        self.pipeline = pipeline
        self.overlap = bool(overlap)
        self.cross_stage = overlap == "cross_stage"
        self.pipeline_chunks = int(pipeline_chunks)
        #: optional :class:`~repro.compression.parallel.ExchangeAutotuner`:
        #: when set, each exchange's measured compress/wire/decompress
        #: balance feeds it and the *next* exchange adopts its recommended
        #: pipeline chunk count (and codec parallelism, via the pipeline's
        #: executor).  Numerics are unaffected — only scheduling changes.
        self.autotuner = autotuner
        if codec_executor is not None:
            if pipeline is None:
                raise ValueError("codec_executor requires a compression pipeline")
            pipeline.executor = codec_executor
        if autotuner is not None and pipeline is not None and pipeline.autotuner is None:
            pipeline.autotuner = autotuner
        self.allreduce_algorithm = allreduce_algorithm
        self.allreduce_codec = allreduce_codec
        self.allreduce_error_bound = float(allreduce_error_bound)
        #: pooled scratch for the dense-path decode (ROADMAP 5b): the
        #: aggregated payload decodes into a BitstreamPool lease, not a
        #: fresh per-step output allocation.
        self._allreduce_pool = None
        if allreduce_codec is not None:
            from repro.compression.parallel import BitstreamPool

            self._allreduce_pool = BitstreamPool()
        n_tables = model.config.n_tables
        self.sharding = sharding or ShardingPlan.size_balanced(
            list(model.config.table_cardinalities), simulator.n_ranks
        )
        if self.sharding.n_tables != n_tables or self.sharding.n_ranks != simulator.n_ranks:
            raise ValueError("sharding plan does not match model/simulator layout")
        opt_cls = SGD if optimizer == "sgd" else Adagrad
        self._opt = opt_cls(model.parameters(), lr=lr)
        self._mlp_param_bytes = int(
            sum(p.data.size for p in model.mlp_parameters()) * 4
        )
        self.forward_wire_bytes = 0
        self.forward_raw_bytes = 0

    # ------------------------------------------------------------ internals

    @property
    def n_ranks(self) -> int:
        return self.simulator.n_ranks

    def _slices(self, batch_size: int) -> list[tuple[int, int]]:
        local = batch_size // self.n_ranks
        return [(r * local, (r + 1) * local) for r in range(self.n_ranks)]

    def _charge_mlp(self, batch: int, sizes: tuple[int, ...], category: str, scale: float = 1.0) -> None:
        gpu = self.simulator.gpu
        for rank in range(self.n_ranks):
            self.simulator.compute(rank, scale * gpu.mlp_time(batch, sizes), category)

    def _tuned_chunk_cap(self) -> int:
        """Pipeline chunk cap: the autotuner's recommendation once it has
        observed an exchange, else the constructor's ``pipeline_chunks``."""
        if self.autotuner is not None:
            decision = self.autotuner.recommend()
            if decision.observations:
                return decision.pipeline_chunks
        return self.pipeline_chunks

    def _forward_exchange(
        self, sparse: np.ndarray, iteration: int
    ) -> list[np.ndarray]:
        """Lookup + stages ①-④; returns per-table full-batch lookup rows
        (exactly what receivers reconstruct)."""
        gpu = self.simulator.gpu
        cfg = self.model.config
        batch_size = sparse.shape[0]
        slices = self._slices(batch_size)
        local = batch_size // self.n_ranks

        # Stage 0: every owner gathers its tables for the global batch.
        raw_lookups: dict[int, np.ndarray] = {}
        for rank in range(self.n_ranks):
            owned = self.sharding.tables_of(rank)
            if owned:
                self.simulator.compute(
                    rank,
                    gpu.lookup_time(batch_size, cfg.embedding_dim, len(owned)),
                    EventCategory.EMB_LOOKUP,
                )
            for table_id in owned:
                raw_lookups[table_id] = self.model.lookup(table_id, sparse[:, table_id])

        slice_bytes = local * cfg.embedding_dim * 4
        raw_matrix = np.zeros((self.n_ranks, self.n_ranks), dtype=np.int64)
        for table_id in range(cfg.n_tables):
            raw_matrix[self.sharding.owner_of(table_id), :] += slice_bytes
        self.forward_raw_bytes += int(raw_matrix.sum())

        if self.pipeline is None:
            # Uncompressed: each owner posts its per-destination row slices
            # (views — wire size equals the raw bytes) and receivers stitch
            # the full-batch rows back per table, bit-identically.
            sendbufs = [
                [
                    [raw_lookups[t][lo:hi] for t in self.sharding.tables_of(rank)]
                    for (lo, hi) in slices
                ]
                for rank in range(self.n_ranks)
            ]
            received = self.comm.all_to_all(sendbufs, EventCategory.ALLTOALL_FWD)
            self.forward_wire_bytes += int(raw_matrix.sum())
            reconstructed = []
            for table_id in range(cfg.n_tables):
                owner = self.sharding.owner_of(table_id)
                index = self.sharding.tables_of(owner).index(table_id)
                reconstructed.append(
                    np.concatenate(
                        [received[dst][owner][index] for dst in range(self.n_ranks)],
                        axis=0,
                    )
                )
            return reconstructed

        # Stage ①: compress per (owned table x destination slice); the
        # communicator charges all four stages (and, in overlap mode,
        # pipelines stage ① against the wire on per-rank streams).
        payloads: dict[tuple[int, int], bytes] = {}  # (table, dst) -> payload
        wire_matrix = np.zeros((self.n_ranks, self.n_ranks), dtype=np.int64)
        entries_matrix = np.zeros((self.n_ranks, self.n_ranks), dtype=np.int64)
        compress_seconds = [0.0] * self.n_ranks
        chunks_per_rank = [1] * self.n_ranks
        chunk_cap = self._tuned_chunk_cap()
        # Gather every (table x destination) slice first, then compress the
        # whole exchange as one batch — the executor (when attached to the
        # pipeline) spreads the independent slices across its workers.
        slice_plan: list[tuple[int, int, int, np.ndarray]] = []  # rank, table, dst, rows
        for rank in range(self.n_ranks):
            for table_id in self.sharding.tables_of(rank):
                rows = raw_lookups[table_id]
                for dst, (lo, hi) in enumerate(slices):
                    slice_plan.append((rank, table_id, dst, rows[lo:hi]))
        slice_payloads = self.pipeline.compress_slices(
            [(table_id, rows) for (_, table_id, _, rows) in slice_plan], iteration
        )
        rank_chunks: dict[int, list[tuple[str, int]]] = {}
        for (rank, table_id, dst, rows), payload in zip(slice_plan, slice_payloads):
            payloads[(table_id, dst)] = payload
            wire_matrix[rank, dst] += len(payload)
            entries_matrix[rank, dst] += 1
            rank_chunks.setdefault(rank, []).append(
                (self.pipeline.controller.compressor_name(table_id), rows.nbytes)
            )
        for rank, chunks in rank_chunks.items():
            compress_seconds[rank] = self.pipeline.compression_seconds(chunks)
            # Pipeline depth: the communicator emits one real wire
            # event per chunk, so cap the granularity at the trainer's
            # pipeline_chunks knob (or the autotuner's recommendation)
            # — slices batch into that many chunk-sized kernels/messages.
            chunks_per_rank[rank] = min(len(chunks), chunk_cap)

        # Every receiver decodes the same per-slice chunk set.
        decompress_seconds = [
            self.pipeline.decompression_seconds(
                [
                    (self.pipeline.controller.compressor_name(t), slice_bytes)
                    for t in range(cfg.n_tables)
                ]
            )
        ] * self.n_ranks
        sendbufs = [
            [
                [payloads[(t, dst)] for t in self.sharding.tables_of(rank)]
                for dst in range(self.n_ranks)
            ]
            for rank in range(self.n_ranks)
        ]
        # Stages ②+③(+①/④ timing): metadata round, then payloads.
        self.comm.compressed_all_to_all(
            sendbufs,
            metadata_bytes_per_entry=self.pipeline.metadata_bytes_per_entry,
            entries_per_pair=entries_matrix,
            category=EventCategory.ALLTOALL_FWD,
            overlap=self.overlap,
            compress_seconds=compress_seconds,
            decompress_seconds=decompress_seconds,
            chunks_per_rank=chunks_per_rank,
        )
        self.forward_wire_bytes += int(wire_matrix.sum())
        if self.autotuner is not None:
            # Feed the measured balance: critical-path compress/decompress
            # vs. the fabric's makespan for this wire matrix.  The *next*
            # exchange adopts the updated recommendation.
            self.autotuner.observe(
                max(compress_seconds),
                float(self.simulator.network.all_to_all_time(wire_matrix)),
                max(decompress_seconds),
            )

        # Stage ④ numerics: every receiver decodes all tables for its
        # slice; the batched decode keeps codec caches hot per table.
        reconstructed: list[np.ndarray] = []
        for table_id in range(cfg.n_tables):
            parts = self.pipeline.decompress_batch(
                [payloads[(table_id, dst)] for dst in range(self.n_ranks)]
            )
            reconstructed.append(np.concatenate(parts, axis=0))
        return reconstructed

    def _backward_exchange(
        self,
        sparse: np.ndarray,
        d_emb: list[np.ndarray],
        iteration: int,
        overlap_compute: list[float] | None = None,
    ) -> None:
        """Gradient all-to-all (uncompressed unless the pipeline opts in) +
        sparse accumulation at the table owners.

        ``overlap_compute`` (cross-stage mode) carries the bottom-MLP
        backward kernel times into the communicator so the exchange's wire
        overlaps them — the exchange is issued first, the kernels launch
        behind the compression chunks, decode trails the arrivals."""
        gpu = self.simulator.gpu
        cfg = self.model.config
        batch_size = sparse.shape[0]
        slices = self._slices(batch_size)
        local = batch_size // self.n_ranks
        slice_bytes = local * cfg.embedding_dim * 4

        compress = self.pipeline is not None and self.pipeline.compress_backward
        grads_to_apply: list[np.ndarray] = list(d_emb)
        if compress:
            # Gradient payloads are self-describing (no metadata round);
            # sendbufs[src][owner] batches every table slice src owes owner.
            sendbufs: list[list[list[bytes]]] = [
                [[] for _ in range(self.n_ranks)] for _ in range(self.n_ranks)
            ]
            grads_to_apply = [g.copy() for g in d_emb]  # slices replaced below
            compress_seconds = [0.0] * self.n_ranks
            chunks_per_rank = [1] * self.n_ranks
            for src, (lo, hi) in enumerate(slices):
                chunks: list[tuple[str, int]] = []
                for table_id in range(cfg.n_tables):
                    owner = self.sharding.owner_of(table_id)
                    rows = np.ascontiguousarray(d_emb[table_id][lo:hi], dtype=np.float32)
                    payload = self.pipeline.compress_slice(table_id, rows, iteration)
                    grads_to_apply[table_id][lo:hi] = self.pipeline.decompress_slice(payload)
                    sendbufs[src][owner].append(payload)
                    chunks.append(
                        (self.pipeline.controller.compressor_name(table_id), rows.nbytes)
                    )
                compress_seconds[src] = self.pipeline.compression_seconds(chunks)
                chunks_per_rank[src] = max(1, min(len(chunks), self._tuned_chunk_cap()))
            decompress_seconds = [
                self.pipeline.decompression_seconds(
                    [
                        (self.pipeline.controller.compressor_name(t), slice_bytes)
                        for t in self.sharding.tables_of(rank)
                        for _ in range(self.n_ranks)
                    ]
                )
                if self.sharding.tables_of(rank)
                else 0.0
                for rank in range(self.n_ranks)
            ]
            self.comm.compressed_all_to_all(
                sendbufs,
                entries_per_pair=np.zeros((self.n_ranks, self.n_ranks), dtype=np.int64),
                category=EventCategory.ALLTOALL_BWD,
                overlap=self.overlap,
                compress_seconds=compress_seconds,
                decompress_seconds=decompress_seconds,
                chunks_per_rank=chunks_per_rank,
                overlap_compute_seconds=overlap_compute,
                overlap_compute_category=EventCategory.BOTTOM_MLP_BWD,
            )
        else:
            grad_matrix = np.zeros((self.n_ranks, self.n_ranks), dtype=np.int64)
            for table_id in range(cfg.n_tables):
                grad_matrix[:, self.sharding.owner_of(table_id)] += slice_bytes
            self.comm.all_to_all_bytes(
                grad_matrix,
                EventCategory.ALLTOALL_BWD,
                overlap_compute_seconds=overlap_compute,
                overlap_compute_category=EventCategory.BOTTOM_MLP_BWD,
            )

        for rank in range(self.n_ranks):
            owned = self.sharding.tables_of(rank)
            if owned:
                self.simulator.compute(
                    rank,
                    gpu.lookup_time(batch_size, cfg.embedding_dim, len(owned)),
                    EventCategory.EMB_UPDATE,
                )
            for table_id in owned:
                self.model.accumulate_embedding_grad(
                    table_id, sparse[:, table_id], grads_to_apply[table_id]
                )

    def _homomorphic_dense_sync(self) -> None:
        """Dense gradient all-reduce in compressed space.

        The replicated-MLP trainer computes the *global* gradient in
        process, so the per-rank contributions are reconstructed as
        disjoint strided shards: rank ``r`` encodes a payload holding
        elements ``r::n`` of the gradient (zeros elsewhere).  The shards
        sum exactly to the gradient — each element has exactly one nonzero
        leaf — so ``count_sum`` reproduces it bit for bit and ``quant_sum``
        stays within the composed bound.  Encode/decode device time is
        priced as one gradient-sized memcpy per rank (quantize / limb
        kernels are memory-bound), and the final decode lands in a pooled
        scratch lease.
        """
        params = self.model.mlp_parameters()
        grads = np.concatenate([p.grad.ravel() for p in params])
        n = self.n_ranks
        shards = []
        for rank in range(n):
            shard = np.zeros_like(grads)
            shard[rank::n] = grads[rank::n]
            shards.append(shard)
        codec_seconds = self.simulator.gpu.memcpy_time(grads.nbytes)
        totals = self.comm.compressed_all_reduce(
            shards,
            codec=self.allreduce_codec,
            error_bound=self.allreduce_error_bound,
            algorithm=self.allreduce_algorithm,
            encode_seconds=[codec_seconds] * n,
            decode_seconds=[codec_seconds] * n,
            pool=self._allreduce_pool,
        )
        total = totals[0]
        offset = 0
        for param in params:
            size = param.grad.size
            param.grad[...] = total[offset : offset + size].reshape(param.grad.shape)
            offset += size

    # -------------------------------------------------------------- public

    def train_step(self, global_batch_size: int, iteration: int) -> float:
        """One hybrid-parallel iteration; returns the global-batch loss."""
        check_positive("global_batch_size", global_batch_size)
        if global_batch_size % self.n_ranks:
            raise ValueError(
                f"global batch {global_batch_size} not divisible by {self.n_ranks} ranks"
            )
        cfg = self.model.config
        gpu = self.simulator.gpu
        local = global_batch_size // self.n_ranks
        batch = self.dataset.batch(global_batch_size, batch_index=iteration)
        obs_on = OBS.enabled
        if obs_on:
            step_start = self.simulator.makespan()
            events_before = len(self.simulator.timeline.events)
            wire_before = self.forward_wire_bytes
            raw_before = self.forward_raw_bytes

        # Forward: bottom MLP (data parallel) + embedding exchange.
        self._charge_mlp(local, self.model.bottom_mlp.sizes, EventCategory.BOTTOM_MLP_FWD)
        bottom_out = self.model.forward_dense(batch.dense)
        emb_rows = self._forward_exchange(batch.sparse, iteration)
        for rank in range(self.n_ranks):
            self.simulator.compute(
                rank,
                gpu.interaction_time(local, cfg.interaction_features, cfg.embedding_dim),
                EventCategory.INTERACTION_FWD,
            )
        self._charge_mlp(local, self.model.top_mlp.sizes, EventCategory.TOP_MLP_FWD)
        logits = self.model.forward_interaction(bottom_out, emb_rows)
        loss = bce_with_logits(logits, batch.labels)

        # Backward: symmetric stages.
        dlogits = bce_grad(logits, batch.labels)
        self._charge_mlp(local, self.model.top_mlp.sizes, EventCategory.TOP_MLP_BWD, scale=2.0)
        for rank in range(self.n_ranks):
            self.simulator.compute(
                rank,
                2.0 * gpu.interaction_time(local, cfg.interaction_features, cfg.embedding_dim),
                EventCategory.INTERACTION_BWD,
            )
        d_bottom, d_emb = self.model.backward_interaction(dlogits)
        if self.cross_stage:
            # Cross-stage overlap: the gradient exchange is issued first
            # and the bottom-MLP backward kernels ride into it, so the
            # wire hides behind them (charge schedule only — numerics are
            # identical to the sequential order below).
            mlp_bwd = 2.0 * self.simulator.gpu.mlp_time(local, self.model.bottom_mlp.sizes)
            self._backward_exchange(
                batch.sparse, d_emb, iteration, overlap_compute=[mlp_bwd] * self.n_ranks
            )
        else:
            self._backward_exchange(batch.sparse, d_emb, iteration)
            self._charge_mlp(local, self.model.bottom_mlp.sizes, EventCategory.BOTTOM_MLP_BWD, scale=2.0)
        self.model.backward_dense(d_bottom)

        # Dense gradient synchronization + update (numerics are exact by
        # construction: replicated MLPs over the global batch).
        if self.allreduce_codec is None:
            self.comm.all_reduce_bytes(
                self._mlp_param_bytes, algorithm=self.allreduce_algorithm
            )
        else:
            self._homomorphic_dense_sync()
        param_bytes = sum(p.data.nbytes for p in self.model.parameters())
        for rank in range(self.n_ranks):
            self.simulator.compute(
                rank,
                gpu.memcpy_time(param_bytes / max(1, self.n_ranks)),
                EventCategory.OPTIMIZER,
            )
        self._opt.step()
        if obs_on:
            self._obs_step(
                iteration, float(loss), step_start, events_before, wire_before, raw_before
            )
        return loss

    def _obs_step(
        self,
        iteration: int,
        loss: float,
        step_start: float,
        events_before: int,
        wire_before: int,
        raw_before: int,
    ) -> None:
        """Per-iteration step breakdown: a TRAIN_STEP annotation span on
        the obs lane (so one chrome trace shows step boundaries over the
        compute/comm events), the step-time histogram, wire-byte counters,
        and this iteration's overlap efficiency measured over exactly the
        events the step recorded."""
        from repro.profiling.breakdown import overlap_efficiency

        timeline = self.simulator.timeline
        step_end = self.simulator.makespan()
        wire_bytes = self.forward_wire_bytes - wire_before
        timeline.record(
            0,
            EventCategory.TRAIN_STEP,
            step_start,
            step_end - step_start,
            stream=OBS_STREAM,
            args={"iteration": iteration, "loss": loss},
        )
        timeline.record_counter(
            "train_wire_bytes", step_end, float(self.forward_wire_bytes)
        )
        window = Timeline()
        window.events = timeline.events[events_before:]
        efficiency = overlap_efficiency(window)
        reg = OBS.registry
        if OBS.slo_hub is not None:
            OBS.slo_hub.feed("train_step", step_end, step_end - step_start)
        reg.histogram(
            "train_step_seconds", "simulated wall time per iteration"
        ).observe(step_end - step_start)
        reg.histogram(
            "train_overlap_efficiency",
            "per-iteration fraction of wire time hidden behind compute",
            bounds=UNIT_BUCKETS,
        ).observe(efficiency)
        reg.gauge(
            "train_overlap_efficiency_last", "overlap efficiency of the latest iteration"
        ).set(efficiency)
        reg.counter("train_iterations_total", "completed iterations").inc()
        reg.counter(
            "train_forward_wire_bytes_total", "compressed forward-exchange bytes"
        ).inc(wire_bytes)
        reg.counter(
            "train_forward_raw_bytes_total", "uncompressed-equivalent forward bytes"
        ).inc(self.forward_raw_bytes - raw_before)

    def train(
        self,
        n_iterations: int,
        global_batch_size: int,
        eval_every: int = 0,
        eval_batch_size: int = 512,
        eval_batches: int = 4,
    ) -> HybridTrainingReport:
        """Run the simulated training loop and collect the full report."""
        check_positive("n_iterations", n_iterations)
        history = TrainingHistory()
        for iteration in range(n_iterations):
            loss = self.train_step(global_batch_size, iteration)
            history.record_loss(loss)
            last = iteration == n_iterations - 1
            if eval_every and (iteration % eval_every == eval_every - 1 or last):
                accuracy, auc = evaluate_model(
                    self.model, self.dataset, eval_batch_size, eval_batches
                )
                history.record_eval(iteration, accuracy, auc)
        return HybridTrainingReport(
            history=history,
            timeline=self.simulator.timeline,
            makespan=self.simulator.makespan(),
            n_iterations=n_iterations,
            global_batch_size=global_batch_size,
            n_ranks=self.n_ranks,
            forward_wire_bytes=self.forward_wire_bytes,
            forward_raw_bytes=self.forward_raw_bytes,
            category_seconds=self.simulator.timeline.total_by_category(rank=0),
        )
