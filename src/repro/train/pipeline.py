"""The compressed all-to-all pipeline (Section III-A).

The paper's training pipeline adds four stages around the embedding
exchange: ① compress per-table/per-destination chunks on each device,
② exchange compressed-size *metadata* (a small fixed-size all-to-all),
③ exchange the variable-size payloads, ④ decompress on each receiver.

:class:`CompressionPipeline` owns stages ① and ④: it applies the dual-level
adaptive controller (per-table encoder + effective error bound at the
current iteration), collects per-transfer statistics, and prices the
modelled GPU cost of each stage — fused single-kernel compression per the
paper's buffer optimization, or naive per-chunk kernels for ablations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.adaptive.controller import AdaptiveController
from repro.adaptive.selection import PAPER_A100_PROFILE, DeviceThroughputProfile
from repro.compression.buffer import BufferCostModel
from repro.compression.cache import TableCodebookCache
from repro.compression.entropy import EntropyCompressor
from repro.compression.registry import decompress_any
from repro.compression.vector_lz import DEFAULT_WINDOW, VectorLZCompressor
from repro.dist.gpu import A100_LIKE, GpuModel
from repro.obs.registry import exponential_buckets
from repro.obs.runtime import OBS

__all__ = ["TransferStats", "CompressionPipeline"]

#: compression-ratio histogram buckets: 1x .. ~2900x in sqrt-2 steps
RATIO_BUCKETS = exponential_buckets(1.0, 2**0.5, 24)


@dataclass(frozen=True)
class TransferStats:
    """Accounting for one compressed table-slice transfer."""

    iteration: int
    table_id: int
    codec: str
    error_bound: float
    original_nbytes: int
    compressed_nbytes: int

    @property
    def ratio(self) -> float:
        return self.original_nbytes / max(1, self.compressed_nbytes)


@dataclass
class CompressionPipeline:
    """Stages ① and ④ of the compressed training pipeline.

    Parameters
    ----------
    controller:
        The dual-level adaptive controller (per-table codec + decayed
        error bound).
    profile:
        Modelled device throughputs per codec (for simulated timing).
    gpu:
        GPU cost model used for kernel pricing.
    fused_kernels:
        ``True`` (default) prices stage ① as one fused kernel per codec —
        the paper's buffer optimization; ``False`` prices naive per-chunk
        kernels (the Fig. 15 ablation).
    compress_backward:
        Also compress the gradient all-to-all.  Off by default: the paper
        compresses the forward exchange (Fig. 12).
    codebook_refresh:
        Staleness window (in uses per table) for the shared Huffman
        codebook cache on the compress hot loop; ``0`` disables caching.
    """

    controller: AdaptiveController
    profile: DeviceThroughputProfile = field(default_factory=lambda: PAPER_A100_PROFILE)
    gpu: GpuModel = field(default_factory=lambda: A100_LIKE)
    window: int = DEFAULT_WINDOW
    fused_kernels: bool = True
    compress_backward: bool = False
    #: metadata bytes exchanged per (pair, table): compressed size + codec id
    metadata_bytes_per_entry: int = 16
    codebook_refresh: int = 8
    #: optional :class:`~repro.compression.parallel.CodecExecutor`: batch
    #: stage-①/④ calls run across its workers (payload bytes independent of
    #: worker count).  ``None`` keeps the seed's serial keyed path.
    executor: object | None = None
    #: optional :class:`~repro.compression.parallel.ExchangeAutotuner`
    #: supplying the per-batch parallelism hint for the executor
    autotuner: object | None = None

    def __post_init__(self) -> None:
        self.codebook_cache = (
            TableCodebookCache(refresh_every=self.codebook_refresh)
            if self.codebook_refresh > 0
            else None
        )
        self._codecs = {
            "vector_lz": VectorLZCompressor(window=self.window),
            "entropy": EntropyCompressor(codebook_cache=self.codebook_cache),
        }
        self._buffer_models: dict[tuple[str, str], BufferCostModel] = {}
        self.stats: list[TransferStats] = []
        self._last_codec: dict[int, str] = {}

    # ------------------------------------------------------------ stage ①/④

    def compress_slice(self, table_id: int, rows: np.ndarray, iteration: int) -> bytes:
        """Compress one table's rows bound for one destination rank."""
        codec_name = self.controller.compressor_name(table_id)
        error_bound = self.controller.error_bound(table_id, iteration)
        payload = self._codecs[codec_name].compress_keyed(table_id, rows, error_bound)
        self.stats.append(
            TransferStats(
                iteration=iteration,
                table_id=table_id,
                codec=codec_name,
                error_bound=error_bound,
                original_nbytes=rows.nbytes,
                compressed_nbytes=len(payload),
            )
        )
        if OBS.enabled:
            self._obs_transfer(table_id, codec_name, error_bound, iteration, rows.nbytes, len(payload))
        return payload

    def _obs_transfer(
        self,
        table_id: int,
        codec_name: str,
        error_bound: float,
        iteration: int,
        raw_nbytes: int,
        compressed_nbytes: int,
    ) -> None:
        """Per-transfer stage-① metrics: bytes, ratio, bound utilization,
        and codec-selection churn (how often the controller's per-table
        pick changes between consecutive transfers of one table)."""
        reg = OBS.registry
        reg.counter("pipeline_raw_bytes_total", "stage-① input bytes").inc(
            raw_nbytes, codec=codec_name
        )
        reg.counter(
            "pipeline_compressed_bytes_total", "stage-① output bytes"
        ).inc(compressed_nbytes, codec=codec_name)
        reg.histogram(
            "pipeline_compression_ratio",
            "per-transfer compression ratio",
            bounds=RATIO_BUCKETS,
        ).observe(raw_nbytes / max(1, compressed_nbytes), table=str(table_id))
        base = self.controller.error_bound(table_id, 0)
        reg.gauge(
            "pipeline_bound_utilization",
            "effective error bound over the table's base bound",
        ).set(error_bound / base if base > 0 else 0.0, table=str(table_id))
        last = self._last_codec.get(table_id)
        if last is not None and last != codec_name:
            reg.counter(
                "pipeline_codec_switch_total",
                "per-table codec-selection changes between transfers",
            ).inc(1, table=str(table_id))
        self._last_codec[table_id] = codec_name

    def _tuned_parallelism(self) -> int | None:
        if self.autotuner is None:
            return None
        decision = self.autotuner.recommend()
        return decision.workers if decision.observations else None

    def compress_slices(
        self, slices: Sequence[tuple[int, np.ndarray]], iteration: int
    ) -> list:
        """Stage ① over many independent ``(table_id, rows)`` slices.

        Without an executor this is exactly a loop of
        :meth:`compress_slice` (the seed's serial keyed path).  With one,
        slices compress through the executor's stateless parallel path at
        the autotuner's recommended parallelism — payload bytes are then
        independent of worker count *and* of keyed cache state, so the
        wire traffic is reproducible run to run.  Stats/obs accounting is
        identical in either mode.
        """
        if self.executor is None:
            return [self.compress_slice(t, rows, iteration) for t, rows in slices]
        from repro.compression.parallel import CompressJob

        jobs = []
        routes = []
        for table_id, rows in slices:
            codec_name = self.controller.compressor_name(table_id)
            error_bound = self.controller.error_bound(table_id, iteration)
            kwargs = (("window", self.window),) if codec_name == "vector_lz" else ()
            jobs.append(CompressJob(codec_name, np.ascontiguousarray(rows), error_bound, kwargs))
            routes.append((table_id, codec_name, error_bound))
        payloads = self.executor.compress_batch(jobs, parallelism=self._tuned_parallelism())
        for (table_id, codec_name, error_bound), job, payload in zip(routes, jobs, payloads):
            self.stats.append(
                TransferStats(
                    iteration=iteration,
                    table_id=table_id,
                    codec=codec_name,
                    error_bound=error_bound,
                    original_nbytes=job.array.nbytes,
                    compressed_nbytes=len(payload),
                )
            )
            if OBS.enabled:
                self._obs_transfer(
                    table_id, codec_name, error_bound, iteration, job.array.nbytes, len(payload)
                )
        return payloads

    def decompress_slice(self, payload: bytes) -> np.ndarray:
        """Stage ④: reconstruct a slice (self-describing payload)."""
        arr = decompress_any(payload)
        if OBS.enabled:
            OBS.registry.counter(
                "pipeline_decompressed_bytes_total", "stage-④ output bytes"
            ).inc(arr.nbytes)
        return arr

    def decompress_batch(self, payloads: Sequence[bytes]) -> list[np.ndarray]:
        """Stage ④ over a whole received batch (e.g. every slice of one
        exchange, as handed back by
        :meth:`~repro.dist.comm.Communicator.compressed_all_to_all`).

        Decoding back to back keeps the Huffman peek-table and codebook
        caches hot across payloads that share a table's codebook — one
        cache fill amortizes over the exchange instead of per slice.  With
        an executor attached, the batch decodes across its workers
        (decompression is stateless, so results are identical).
        """
        if self.executor is not None:
            arrays = self.executor.decompress_batch(
                payloads, parallelism=self._tuned_parallelism()
            )
        else:
            arrays = [decompress_any(payload) for payload in payloads]
        if OBS.enabled:
            OBS.registry.counter(
                "pipeline_decompressed_bytes_total", "stage-④ output bytes"
            ).inc(sum(a.nbytes for a in arrays))
        return arrays

    def roundtrip(self, table_id: int, rows: np.ndarray, iteration: int) -> np.ndarray:
        """Compress + decompress — the noise the receiver actually sees.

        Used by the single-process reference trainer to study accuracy
        effects without simulating a cluster.
        """
        return self.decompress_slice(self.compress_slice(table_id, rows, iteration))

    # ------------------------------------------------------------- timing

    def _codec_throughputs(self, codec: str) -> tuple[float, float]:
        t = self.profile.for_codec(codec)
        return t.compress, t.decompress

    def _buffer_model(self, codec: str, stage: str) -> BufferCostModel:
        """Memoized per-(codec, stage) cost model — these are rebuilt for
        every simulated exchange otherwise (the timing hot loop)."""
        key = (codec, stage)
        model = self._buffer_models.get(key)
        if model is None:
            tc, td = self._codec_throughputs(codec)
            if stage == "compress":
                model = BufferCostModel(gpu=self.gpu, compress_throughput=tc)
            else:
                model = BufferCostModel(gpu=self.gpu, decompress_throughput=td)
            self._buffer_models[key] = model
        return model

    def compression_seconds(self, chunks: list[tuple[str, int]]) -> float:
        """Modelled stage-① time for ``(codec, input_nbytes)`` chunks.

        Chunks are grouped by codec; each group runs as one fused kernel
        (buffer optimization) or as per-chunk kernels.
        """
        by_codec: dict[str, list[float]] = defaultdict(list)
        for codec, nbytes in chunks:
            by_codec[codec].append(float(nbytes))
        total = 0.0
        for codec, sizes in by_codec.items():
            model = self._buffer_model(codec, "compress")
            if self.fused_kernels:
                total += model.fused_compression_seconds(sizes)
            else:
                total += model.chunked_compression_seconds(sizes)
        return total

    def decompression_seconds(self, chunks: list[tuple[str, int]]) -> float:
        """Modelled stage-④ time (parallel chunk decode when fused)."""
        by_codec: dict[str, list[float]] = defaultdict(list)
        for codec, nbytes in chunks:
            by_codec[codec].append(float(nbytes))
        total = 0.0
        for codec, sizes in by_codec.items():
            model = self._buffer_model(codec, "decompress")
            if self.fused_kernels:
                total += model.parallel_decompression_seconds(sizes)
            else:
                total += model.serial_decompression_seconds(sizes)
        return total

    # ------------------------------------------------- future-work overlap

    def pipelined_exchange_seconds(
        self, chunks: list[tuple[str, int]], wire_seconds_per_chunk: list[float]
    ) -> float:
        """Makespan of a compression⇄transmission *pipeline* (future work).

        The paper's future work proposes integrating (de)compression with
        the communication library so chunk ``i+1`` compresses while chunk
        ``i`` is on the wire.  For per-chunk compress times ``c_i`` and
        wire times ``w_i``, the classic two-stage pipeline makespan is::

            max_k ( sum_{i<=k} c_i  +  sum_{i>=k} w_i )

        Chunks run as individual kernels here (they must be available
        incrementally), so this composes with ``fused_kernels=False``
        pricing.  Compare with :meth:`sequential_exchange_seconds`.
        """
        if len(chunks) != len(wire_seconds_per_chunk):
            raise ValueError(
                f"{len(chunks)} chunks but {len(wire_seconds_per_chunk)} wire times"
            )
        if not chunks:
            return 0.0
        if any(w < 0 for w in wire_seconds_per_chunk):
            raise ValueError("wire times must be >= 0")
        compress_times = []
        for codec, nbytes in chunks:
            model = self._buffer_model(codec, "compress")
            compress_times.append(model.chunked_compression_seconds([float(nbytes)]))
        prefix_c = 0.0
        best = 0.0
        suffix_w = [0.0] * (len(chunks) + 1)
        for i in range(len(chunks) - 1, -1, -1):
            suffix_w[i] = suffix_w[i + 1] + wire_seconds_per_chunk[i]
        for k in range(len(chunks)):
            prefix_c += compress_times[k]
            best = max(best, prefix_c + suffix_w[k])
        return best

    def sequential_exchange_seconds(
        self, chunks: list[tuple[str, int]], wire_seconds_per_chunk: list[float]
    ) -> float:
        """No overlap: all compression, then all transmission (the default
        pipeline the paper ships; baseline for the overlap ablation)."""
        if len(chunks) != len(wire_seconds_per_chunk):
            raise ValueError(
                f"{len(chunks)} chunks but {len(wire_seconds_per_chunk)} wire times"
            )
        return self.compression_seconds(chunks) + sum(wire_seconds_per_chunk)

    # ------------------------------------------------------------- reports

    def mean_ratio(self, table_id: int | None = None) -> float:
        """Average compression ratio over recorded transfers."""
        selected = [
            s for s in self.stats if table_id is None or s.table_id == table_id
        ]
        if not selected:
            raise ValueError("no transfers recorded")
        original = sum(s.original_nbytes for s in selected)
        compressed = sum(s.compressed_nbytes for s in selected)
        return original / max(1, compressed)

    def clear_stats(self) -> None:
        self.stats.clear()
