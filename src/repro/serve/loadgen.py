"""Open-loop request load: Poisson arrivals of Criteo-shaped lookups.

Serving systems are measured under *open-loop* load — requests arrive on
their own schedule whether or not the system keeps up, so queueing delay
(the p99 killer) is visible.  :class:`RequestLoadGenerator` draws
exponential interarrival gaps at a configured QPS and attaches each
arrival to one sample of a :class:`~repro.data.synthetic.SyntheticClickDataset`
mini-batch: 13 dense features plus one categorical id per embedding table,
Zipf-skewed per the table's spec — exactly the multi-table lookup shape
(and hot-row skew) the replica caches exploit.

Everything is deterministic under a fixed seed: the same generator
configuration replays the identical trace, which is what makes serving
simulations comparable across cache sizes, replica counts, and fabrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import SyntheticClickDataset
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_positive

__all__ = ["Request", "RequestLoadGenerator"]


@dataclass(frozen=True)
class Request:
    """One user's inference request."""

    request_id: int
    arrival_seconds: float
    sparse: np.ndarray  # (n_tables,) int64 — one id per embedding table
    dense: np.ndarray  # (n_dense,) float32


class RequestLoadGenerator:
    """Deterministic open-loop Poisson arrivals over a synthetic dataset.

    Parameters
    ----------
    dataset:
        Criteo-shaped sample source (ids carry the per-table Zipf skew).
    qps:
        Offered load — mean arrival rate, requests/second.
    seed:
        Arrival-process seed; id/dense content comes from the dataset's
        own seed, so traffic *shape* and traffic *timing* are independent
        knobs.
    """

    def __init__(self, dataset: SyntheticClickDataset, qps: float, seed: int = 0):
        check_positive("qps", qps)
        self.dataset = dataset
        self.qps = float(qps)
        self.seed = int(seed)
        self._round = 0
        self._clock = 0.0
        self._next_id = 0

    @property
    def n_tables(self) -> int:
        return self.dataset.spec.n_tables

    def generate(self, n_requests: int) -> list[Request]:
        """The next ``n_requests`` arrivals (consecutive calls continue the
        trace; a fresh generator with the same seed replays it)."""
        check_positive("n_requests", n_requests)
        n = int(n_requests)
        rng = spawn_rng(self.seed, "arrivals", self._round)
        gaps = rng.exponential(1.0 / self.qps, size=n)
        arrivals = self._clock + np.cumsum(gaps)
        # Content rides on the dataset's deterministic batch stream; the
        # batch index is derived from the seed so distinct load generators
        # over one dataset draw distinct (but reproducible) traffic.
        batch = self.dataset.batch(n, batch_index=1_000_003 * self.seed + self._round)
        requests = [
            Request(
                request_id=self._next_id + i,
                arrival_seconds=float(arrivals[i]),
                sparse=batch.sparse[i],
                dense=batch.dense[i],
            )
            for i in range(n)
        ]
        self._round += 1
        self._clock = float(arrivals[-1])
        self._next_id += n
        return requests

    def __repr__(self) -> str:
        return (
            f"RequestLoadGenerator(qps={self.qps:g}, seed={self.seed}, "
            f"generated={self._next_id})"
        )
