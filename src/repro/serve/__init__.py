"""Online inference-serving tier with compressed delta publication.

The training side of this repository compresses the embedding exchange;
this package puts the same dual-level adaptive compression on the *read*
side, where DLRM embeddings serve live traffic:

* :class:`EmbeddingShardServer` — per-table embedding shards stored in
  compressed row blocks (training-tier codecs, row-granular decode).
* :class:`InferenceReplica` — serving nodes with a hot-row LRU cache that
  exploits the synthetic data's Zipf query skew.
* :class:`RequestLoadGenerator` — open-loop Poisson arrivals of
  Criteo-shaped multi-table lookups at a configured QPS.
* :class:`ServingSimulator` — discrete-event pricing of lookup fan-out,
  cache misses, and shard-pull latency over the training tier's
  :class:`~repro.dist.network.Topology` fabrics.
* :class:`DeltaPublisher` — ships per-table *compressed* embedding deltas
  from :class:`~repro.train.hybrid.HybridParallelTrainer` snapshots to the
  shard tier through the :class:`~repro.dist.comm.Communicator`, with an
  error-feedback staleness bound from the adaptive controller's per-table
  error bounds.

Layering: ``serve`` sits above ``compression``/``dist``/``train`` and is
imported by nothing below it.
"""

from repro.serve.loadgen import Request, RequestLoadGenerator
from repro.serve.publisher import (
    DeltaPublisher,
    PublicationReport,
    ServingTier,
    TableDelta,
    build_serving_tier,
)
from repro.serve.replica import GatherResult, InferenceReplica
from repro.serve.shard_server import (
    DEFAULT_ROWS_PER_BLOCK,
    EmbeddingShardServer,
    ShardPull,
)
from repro.serve.simulator import ServingReport, ServingSimulator

__all__ = [
    "DEFAULT_ROWS_PER_BLOCK",
    "DeltaPublisher",
    "EmbeddingShardServer",
    "GatherResult",
    "InferenceReplica",
    "PublicationReport",
    "Request",
    "RequestLoadGenerator",
    "ServingReport",
    "ServingSimulator",
    "ServingTier",
    "ShardPull",
    "TableDelta",
    "build_serving_tier",
]
