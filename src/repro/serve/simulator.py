"""Discrete-event serving simulation over the training tier's fabrics.

:class:`ServingSimulator` prices what a DLRM inference fleet actually
pays per request: the embedding *fan-out*.  Each request needs one row
from every table; cache hits are local, and every miss is a row-granular
pull from the owning :class:`~repro.serve.shard_server.EmbeddingShardServer`
— a message across the same :class:`~repro.dist.network.Topology` fabrics
(NVLink/PCIe/IB presets) the cluster simulator prices for training, plus a
decompression kernel on the replica priced with the training tier's
:class:`~repro.dist.gpu.GpuModel` and per-codec
:class:`~repro.adaptive.selection.DeviceThroughputProfile`.

The queueing model is deliberately simple and honest: replicas are
single-server FIFO queues under open-loop arrivals (requests are routed
round-robin), so offered load beyond a replica's service rate shows up as
unbounded queueing delay — the p99 cliff real serving tiers fall off.
Pulls to distinct shard nodes fan out concurrently while pulls sharing
one shard-to-replica link serialize on it (the wire cost of a request is
its busiest link); decode kernels serialize on the replica's device.

Everything here is deterministic for a fixed request trace and
configuration — the property the serving tests pin — and replica/shard
placement maps onto fabric ranks (replicas first, shard nodes after), so
a 2-node hierarchy with replicas on node 0 and shards on node 1 prices
every miss across the inter-node link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.adaptive.selection import PAPER_A100_PROFILE, DeviceThroughputProfile
from repro.dist.gpu import A100_LIKE, GpuModel
from repro.dist.network import NetworkModel
from repro.dist.timeline import EventCategory, Timeline
from repro.faults.breaker import CircuitBreaker
from repro.model.config import DLRMConfig
from repro.nn.interaction import DotInteraction
from repro.obs.registry import Histogram
from repro.obs.runtime import OBS
from repro.serve.loadgen import Request
from repro.serve.replica import InferenceReplica

__all__ = ["ServingReport", "ServingSimulator"]


@dataclass(frozen=True)
class ServingReport:
    """Aggregate outcome of one simulated serving run."""

    n_requests: int
    n_replicas: int
    cache_rows: int
    offered_qps: float
    sustained_qps: float
    p50_latency: float
    p99_latency: float
    mean_latency: float
    max_latency: float
    cache_hit_rate: float
    hits: int
    misses: int
    mean_fanout: float
    blocks_pulled: int
    pulled_compressed_nbytes: int
    pulled_raw_nbytes: int
    makespan: float
    replica_busy_seconds: tuple[float, ...]
    replica_requests: tuple[int, ...]
    #: graceful-degradation accounting (zeros on healthy runs)
    stale_rows: int = 0  # rows answered from the stale store (bounded past state)
    degraded_rows: int = 0  # rows answered as zeros (partial fan-out)
    stale_requests: int = 0  # requests containing >= 1 stale row
    degraded_requests: int = 0  # requests containing >= 1 degraded row
    impaired_requests: int = 0  # requests containing >= 1 stale or degraded row
    pull_retries: int = 0
    pull_timeouts: int = 0
    breaker_fast_fails: int = 0
    hedged_pulls: int = 0

    @property
    def fresh_requests(self) -> int:
        """Requests answered entirely from live state (neither stale nor
        degraded rows)."""
        return self.n_requests - self.impaired_requests

    @property
    def mean_replica_utilization(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return float(np.mean(self.replica_busy_seconds)) / self.makespan

    def row(self) -> str:
        """One formatted report line (benchmark tables)."""
        return (
            f"qps={self.sustained_qps:9.1f}  p50={self.p50_latency * 1e3:7.3f}ms  "
            f"p99={self.p99_latency * 1e3:7.3f}ms  hit={self.cache_hit_rate:6.1%}  "
            f"fanout={self.mean_fanout:4.1f}  pulled={self.pulled_compressed_nbytes / 1e6:8.3f}MB"
        )


class ServingSimulator:
    """Price an inference fleet: replicas + compressed shards on a fabric.

    Parameters
    ----------
    replicas:
        The serving replicas (their ``servers``/``sharding`` define the
        shard tier).  All replicas must share one server set.
    config:
        Model architecture — prices the per-request inference compute
        (bottom MLP, dot interaction, top MLP at batch 1).
    network:
        Fabric pricing.  With a topology, replica ``i`` occupies rank
        ``i`` and shard node ``s`` occupies rank ``n_replicas + s``; a
        pull from shard ``s`` to replica ``i`` pays that ordered pair's
        link.  Without one, every pull pays the flat point-to-point cost.
    gpu / profile:
        Device cost model and per-codec decode throughputs.
    fault_injector:
        Optional :class:`~repro.faults.injector.FaultInjector`.  When
        present, every shard pull is evaluated against the fault plan at
        its simulated start time: a crashed shard or severed link turns
        the pull into a timeout, a degraded link stretches its wire time
        (and times out if stretched past the retry policy's budget).
    retry_policy:
        :class:`~repro.faults.retry.RetryPolicy` for shard pulls — per
        pull-group timeout, capped exponential backoff, deterministic
        jitter, all elapsing on the request's service time.  Defaults to
        a single attempt with a 50 ms timeout when only a fault injector
        is given.
    hedge_delay:
        Optional hedged-pull delay: if a pull group's first attempt has
        not completed after this many seconds, a second identical pull is
        issued and the request takes whichever finishes first — the
        classic tail-latency hedge, effective when slowness is transient.
    breaker_failure_threshold / breaker_reset_seconds:
        Per-shard circuit breaker: after this many consecutive pull
        failures the shard is failed fast (degraded answers, no timeout
        waits) until the reset window elapses and a half-open probe
        succeeds.
    """

    def __init__(
        self,
        replicas: Sequence[InferenceReplica],
        config: DLRMConfig,
        network: NetworkModel | None = None,
        gpu: GpuModel = A100_LIKE,
        profile: DeviceThroughputProfile = PAPER_A100_PROFILE,
        *,
        fault_injector=None,
        retry_policy=None,
        hedge_delay: float | None = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_seconds: float = 0.25,
    ):
        if not replicas:
            raise ValueError("need at least one replica")
        first = replicas[0]
        for replica in replicas:
            same_servers = len(replica.servers) == len(first.servers) and all(
                a is b for a, b in zip(replica.servers, first.servers)
            )
            if not same_servers or replica.sharding != first.sharding:
                raise ValueError("all replicas must share one shard-server tier")
        if hedge_delay is not None and hedge_delay <= 0:
            raise ValueError(f"hedge_delay must be > 0, got {hedge_delay!r}")
        self.replicas = tuple(replicas)
        self.config = config
        self.network = network if network is not None else NetworkModel()
        self.gpu = gpu
        self.profile = profile
        self.n_replicas = len(self.replicas)
        self.n_shards = first.sharding.n_ranks
        self.fault_injector = fault_injector
        self.hedge_delay = hedge_delay
        if retry_policy is None and fault_injector is not None:
            from repro.faults.retry import RetryPolicy

            retry_policy = RetryPolicy(max_attempts=1)
        self.retry_policy = retry_policy
        #: fault-aware mode: per-pull timeouts/retries/breakers/fallbacks.
        #: Off (both None) the pricing path is byte-identical to before.
        self._faulty = retry_policy is not None
        self._breakers = tuple(
            CircuitBreaker(
                failure_threshold=breaker_failure_threshold,
                reset_timeout_seconds=breaker_reset_seconds,
            )
            for _ in range(self.n_shards)
        )
        total_ranks = self.n_replicas + self.n_shards
        if (
            self.network.topology is not None
            and self.network.topology.n_ranks < total_ranks
        ):
            raise ValueError(
                f"fabric spans {self.network.topology.n_ranks} ranks but the "
                f"serving tier needs {total_ranks} "
                f"({self.n_replicas} replicas + {self.n_shards} shard nodes)"
            )
        # Per-request inference compute is configuration-constant: price
        # it once.  Batch-1 MLPs are launch-overhead bound, exactly the
        # regime the GpuModel's fixed-overhead term models.
        bottom_sizes = (config.n_dense, *config.bottom_hidden, config.embedding_dim)
        interaction = DotInteraction(config.interaction_features, config.embedding_dim)
        top_sizes = (interaction.output_dim, *config.top_hidden, 1)
        self._inference_seconds = (
            gpu.mlp_time(1, bottom_sizes)
            + gpu.interaction_time(1, config.interaction_features, config.embedding_dim)
            + gpu.mlp_time(1, top_sizes)
            + gpu.lookup_time(1, config.embedding_dim, config.n_tables)
        )

    # -------------------------------------------------------------- pricing

    def _pull_wire_seconds(self, replica_index: int, shard_rank: int, nbytes: int) -> float:
        """One shard pull's wire time, over the fabric's (shard -> replica)
        link when a topology is present."""
        topology = self.network.topology
        if topology is None:
            return self.network.point_to_point_time(nbytes)
        src = self.n_replicas + shard_rank
        dst = replica_index
        return float(
            topology.latency_matrix[src, dst]
            + nbytes / topology.bandwidth_matrix[src, dst]
        )

    def service_seconds(self, replica_index: int, request: Request) -> tuple[float, "GatherStats"]:
        """Price one request on one replica; returns (seconds, stats)."""
        replica = self.replicas[replica_index]
        result = replica.gather(request.sparse)
        # Fan-out: pulls to *distinct* shard nodes travel concurrently,
        # but pulls sharing one shard->replica link serialize on it (one
        # message per table pull) — the wire cost is the busiest link.
        # Decode kernels then serialize on the replica's device.
        wire_per_shard: dict[int, float] = {}
        decode = 0.0
        for pull, shard_rank in zip(result.pulls, result.pull_ranks):
            wire_per_shard[shard_rank] = wire_per_shard.get(
                shard_rank, 0.0
            ) + self._pull_wire_seconds(replica_index, shard_rank, pull.compressed_nbytes)
            decode += self.gpu.throughput_kernel_time(
                pull.raw_nbytes, self.profile.for_codec(pull.codec).decompress
            )
        wire = max(wire_per_shard.values(), default=0.0)
        seconds = wire + decode + self._inference_seconds
        return seconds, GatherStats(
            hits=result.hits,
            misses=result.misses,
            fanout=result.fanout,
            blocks=sum(p.blocks_touched for p in result.pulls),
            compressed_nbytes=result.pulled_compressed_nbytes,
            raw_nbytes=result.pulled_raw_nbytes,
        )

    # ----------------------------------------------------- fault-aware path

    def _pull_wire_seconds_at(
        self, replica_index: int, shard_rank: int, nbytes: int, t: float
    ) -> float | None:
        """One pull's wire time with the fault plan applied at time ``t``;
        ``None`` when the shard or its link is unreachable."""
        injector = self.fault_injector
        if injector is None:
            return self._pull_wire_seconds(replica_index, shard_rank, nbytes)
        if injector.shard_down(shard_rank, t):
            return None
        src = self.n_replicas + shard_rank
        state = injector.link_state(src, replica_index, t)
        if not state.up:
            return None
        topology = self.network.topology
        if topology is None:
            base = self.network.point_to_point_time(nbytes)
            return base / state.bandwidth_factor + state.extra_latency
        return float(
            topology.latency_matrix[src, replica_index]
            + state.extra_latency
            + nbytes / (topology.bandwidth_matrix[src, replica_index] * state.bandwidth_factor)
        )

    def _service_under_faults(
        self, replica_index: int, request: Request, start: float, request_index: int
    ) -> tuple[float, "GatherStats"]:
        """Price one request with per-pull timeouts, retries, hedging, the
        per-shard circuit breakers, and graceful fallbacks.

        Pull groups (one per contacted shard) still fan out concurrently;
        inside a group, failed attempts (timeout charged), backoff waits,
        and the eventual transfer elapse serially on the request's clock.
        A group that exhausts its attempts — or is failed fast by an open
        breaker — degrades its tables: the stale store answers with the
        bounded pre-publication copy if it holds the row, otherwise the
        row is zeros (partial fan-out).  Both are counted, never silently
        served as fresh.
        """
        replica = self.replicas[replica_index]
        policy = self.retry_policy
        sparse = np.asarray(request.sparse, dtype=np.int64)
        n_tables = replica.sharding.n_tables
        hits = 0
        by_shard: dict[int, list[tuple[int, int]]] = {}
        for table_id in range(n_tables):
            row_id = int(sparse[table_id])
            row = replica.cache_lookup(table_id, row_id)
            if row is not None:
                hits += 1
            else:
                by_shard.setdefault(replica.sharding.owner_of(table_id), []).append(
                    (table_id, row_id)
                )

        decode = 0.0
        group_elapsed: list[float] = []
        blocks = compressed_nbytes = raw_nbytes = 0
        fanout_ranks: set[int] = set()
        stale_rows = degraded_rows = retries = timeouts = fast_fails = hedged = 0
        for shard_rank in sorted(by_shard):
            entries = by_shard[shard_rank]
            # The real pulls (numerics + byte sizes); data is used — and
            # admitted to the cache — only if an attempt completes.
            pulled = [
                replica.servers[shard_rank].pull(
                    table_id, np.array([row_id], dtype=np.int64)
                )
                for table_id, row_id in entries
            ]
            group_nbytes = [p.compressed_nbytes for p in pulled]
            breaker = self._breakers[shard_rank]
            t = start
            succeeded = False
            for attempt in range(policy.max_attempts):
                if not breaker.allows(t):
                    fast_fails += 1
                    break
                if attempt:
                    retries += 1
                    t += policy.backoff_seconds(
                        attempt, "pull", replica_index, request_index, shard_rank
                    )
                wire = self._group_wire(replica_index, shard_rank, group_nbytes, t)
                if (
                    wire is not None
                    and self.hedge_delay is not None
                    and wire > self.hedge_delay
                ):
                    # Hedge: a second identical pull starts hedge_delay
                    # later; the request takes whichever finishes first.
                    hedged += 1
                    hedge_wire = self._group_wire(
                        replica_index, shard_rank, group_nbytes, t + self.hedge_delay
                    )
                    if hedge_wire is not None:
                        wire = min(wire, self.hedge_delay + hedge_wire)
                if wire is None or wire > policy.timeout_seconds:
                    timeouts += 1
                    t += policy.timeout_seconds
                    breaker.record_failure(t)
                    continue
                t += wire
                breaker.record_success(t)
                succeeded = True
                break
            group_elapsed.append(t - start)
            if succeeded:
                fanout_ranks.add(shard_rank)
                for (table_id, row_id), pull in zip(entries, pulled):
                    replica.admit_row(table_id, row_id, pull.rows[0])
                    decode += self.gpu.throughput_kernel_time(
                        pull.raw_nbytes, self.profile.for_codec(pull.codec).decompress
                    )
                    blocks += pull.blocks_touched
                    compressed_nbytes += pull.compressed_nbytes
                    raw_nbytes += pull.raw_nbytes
            else:
                for table_id, row_id in entries:
                    if replica.stale_lookup(table_id, row_id) is not None:
                        stale_rows += 1
                    else:
                        degraded_rows += 1

        wire = max(group_elapsed, default=0.0)
        seconds = wire + decode + self._inference_seconds
        misses = sum(len(v) for v in by_shard.values())
        return seconds, GatherStats(
            hits=hits,
            misses=misses,
            fanout=len(fanout_ranks),
            blocks=blocks,
            compressed_nbytes=compressed_nbytes,
            raw_nbytes=raw_nbytes,
            stale_rows=stale_rows,
            degraded_rows=degraded_rows,
            retries=retries,
            timeouts=timeouts,
            fast_fails=fast_fails,
            hedged=hedged,
        )

    def _group_wire(
        self, replica_index: int, shard_rank: int, nbytes_list: Sequence[int], t: float
    ) -> float | None:
        """Wire time of one shard's pull group starting at ``t`` (pulls on
        one shard->replica link serialize); ``None`` if unreachable."""
        total = 0.0
        for nbytes in nbytes_list:
            wire = self._pull_wire_seconds_at(replica_index, shard_rank, nbytes, t)
            if wire is None:
                return None
            total += wire
        return total

    # ------------------------------------------------------------------ run

    def run(
        self,
        requests: Sequence[Request],
        replica_available_at: Sequence[float] | float = 0.0,
        *,
        trace: Timeline | None = None,
    ) -> ServingReport:
        """Serve an open-loop trace; requests route round-robin.

        ``replica_available_at`` marks replicas busy until a given time
        (e.g. while applying a delta publication) — arrivals during the
        window queue behind it, which is how publication bandwidth turns
        into visible tail latency.

        Latency percentiles come from the metrics registry's histogram
        quantile estimator: *exact-rank* order statistics (the sample at
        rank ``max(1, ceil(q * n))``) while the trace fits the exact
        reservoir, degrading to bucket upper edges on very long traces —
        a sliding-window-style estimate, never an interpolated value no
        request actually saw.

        With ``trace``, every request is recorded as a ``SERVE_REQUEST``
        span on its replica's lane, plus two counter tracks:
        ``serve_queue_depth`` (outstanding requests at each arrival) and
        ``serve_cache_hit_rate`` (cumulative, sampled at completions).
        """
        if not requests:
            raise ValueError("need at least one request")
        # FIFO queueing needs arrival order; merged traces (e.g. two
        # traffic classes) arrive interleaved, so sort rather than assume.
        requests = sorted(requests, key=lambda r: r.arrival_seconds)
        if np.isscalar(replica_available_at):
            free = [float(replica_available_at)] * self.n_replicas
        else:
            free = [float(t) for t in replica_available_at]
            if len(free) != self.n_replicas:
                raise ValueError(
                    f"replica_available_at must have {self.n_replicas} entries, "
                    f"got {len(free)}"
                )
        busy = [0.0] * self.n_replicas
        counts = [0] * self.n_replicas
        latencies = np.empty(len(requests), dtype=np.float64)
        latency_hist = Histogram(
            "serving_latency_seconds", "per-request latency (this run)"
        )
        hits = misses = blocks = 0
        compressed_nbytes = raw_nbytes = 0
        stale_rows = degraded_rows = 0
        stale_requests = degraded_requests = impaired_requests = 0
        pull_retries = pull_timeouts = breaker_fast_fails = hedged_pulls = 0
        fanouts = np.empty(len(requests), dtype=np.float64)
        first_arrival = min(r.arrival_seconds for r in requests)
        last_completion = 0.0
        obs_on = OBS.enabled
        # Outstanding completion times per replica, for the queue-depth track.
        pending: list[list[float]] = [[] for _ in range(self.n_replicas)]
        for i, request in enumerate(requests):
            replica_index = i % self.n_replicas
            start = max(request.arrival_seconds, free[replica_index])
            if self._faulty:
                seconds, stats = self._service_under_faults(
                    replica_index, request, start, i
                )
            else:
                seconds, stats = self.service_seconds(replica_index, request)
            completion = start + seconds
            free[replica_index] = completion
            busy[replica_index] += seconds
            counts[replica_index] += 1
            latency = completion - request.arrival_seconds
            latencies[i] = latency
            latency_hist.observe(latency)
            last_completion = max(last_completion, completion)
            hits += stats.hits
            misses += stats.misses
            blocks += stats.blocks
            compressed_nbytes += stats.compressed_nbytes
            raw_nbytes += stats.raw_nbytes
            fanouts[i] = stats.fanout
            stale_rows += stats.stale_rows
            degraded_rows += stats.degraded_rows
            stale_requests += 1 if stats.stale_rows else 0
            degraded_requests += 1 if stats.degraded_rows else 0
            impaired_requests += 1 if (stats.stale_rows or stats.degraded_rows) else 0
            pull_retries += stats.retries
            pull_timeouts += stats.timeouts
            breaker_fast_fails += stats.fast_fails
            hedged_pulls += stats.hedged
            if trace is not None:
                arrival = request.arrival_seconds
                for queue in pending:
                    while queue and queue[0] <= arrival:
                        queue.pop(0)
                pending[replica_index].append(completion)
                request_args = {
                    "request": i,
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "fanout": stats.fanout,
                }
                if stats.stale_rows:
                    request_args["stale_rows"] = stats.stale_rows
                if stats.degraded_rows:
                    request_args["degraded_rows"] = stats.degraded_rows
                if stats.retries:
                    request_args["retries"] = stats.retries
                trace.record(
                    replica_index,
                    EventCategory.SERVE_REQUEST,
                    start,
                    seconds,
                    args=request_args,
                )
                trace.record_counter(
                    "serve_queue_depth", arrival, float(sum(map(len, pending)))
                )
                trace.record_counter(
                    "serve_cache_hit_rate",
                    completion,
                    hits / max(1, hits + misses),
                )
            if obs_on:
                reg = OBS.registry
                if OBS.slo_hub is not None:
                    OBS.slo_hub.feed("serve_latency", completion, latency)
                reg.counter("serve_requests_total", "requests served").inc()
                reg.histogram(
                    "serve_latency_seconds", "request latency (arrival to completion)"
                ).observe(latency)
                reg.histogram(
                    "serve_queue_wait_seconds", "time queued before service"
                ).observe(start - request.arrival_seconds)
                reg.histogram(
                    "serve_fanout", "distinct shard nodes pulled per request"
                ).observe(stats.fanout)
                if stats.stale_rows:
                    reg.counter(
                        "serve_stale_rows_total",
                        "rows answered from the stale store (bounded past state)",
                    ).inc(stats.stale_rows)
                if stats.degraded_rows:
                    reg.counter(
                        "serve_degraded_rows_total",
                        "rows answered as zeros after pull failure (partial fan-out)",
                    ).inc(stats.degraded_rows)
                if stats.retries:
                    reg.counter(
                        "serve_pull_retries_total", "shard-pull retry attempts"
                    ).inc(stats.retries)
                if stats.timeouts:
                    reg.counter(
                        "serve_pull_timeouts_total", "shard pulls that timed out"
                    ).inc(stats.timeouts)
                if stats.fast_fails:
                    reg.counter(
                        "serve_breaker_fast_fails_total",
                        "pull groups failed fast by an open circuit breaker",
                    ).inc(stats.fast_fails)
                if stats.hedged:
                    reg.counter(
                        "serve_hedged_pulls_total", "pull groups that issued a hedge"
                    ).inc(stats.hedged)
        makespan = last_completion - first_arrival
        total_lookups = hits + misses
        return ServingReport(
            n_requests=len(requests),
            n_replicas=self.n_replicas,
            cache_rows=self.replicas[0].cache_rows,
            offered_qps=(len(requests) - 1) / max(
                1e-12,
                max(r.arrival_seconds for r in requests) - first_arrival,
            ),
            sustained_qps=len(requests) / max(1e-12, makespan),
            p50_latency=latency_hist.quantile(0.5),
            p99_latency=latency_hist.quantile(0.99),
            mean_latency=float(latencies.mean()),
            max_latency=float(latencies.max()),
            cache_hit_rate=hits / total_lookups if total_lookups else 0.0,
            hits=hits,
            misses=misses,
            mean_fanout=float(fanouts.mean()),
            blocks_pulled=blocks,
            pulled_compressed_nbytes=compressed_nbytes,
            pulled_raw_nbytes=raw_nbytes,
            makespan=makespan,
            replica_busy_seconds=tuple(busy),
            replica_requests=tuple(counts),
            stale_rows=stale_rows,
            degraded_rows=degraded_rows,
            stale_requests=stale_requests,
            degraded_requests=degraded_requests,
            impaired_requests=impaired_requests,
            pull_retries=pull_retries,
            pull_timeouts=pull_timeouts,
            breaker_fast_fails=breaker_fast_fails,
            hedged_pulls=hedged_pulls,
        )


@dataclass(frozen=True)
class GatherStats:
    """Per-request gather accounting (internal to the simulator)."""

    hits: int
    misses: int
    fanout: int
    blocks: int
    compressed_nbytes: int
    raw_nbytes: int
    #: fault-aware accounting (zeros on the healthy path)
    stale_rows: int = 0
    degraded_rows: int = 0
    retries: int = 0
    timeouts: int = 0
    fast_fails: int = 0
    hedged: int = 0
