"""Compressed embedding shards with row-granular decode.

An :class:`EmbeddingShardServer` is one parameter-server node of the
serving tier: it owns a subset of the model's embedding tables (per a
:class:`~repro.train.sharding.ShardingPlan`) and stores every table in
*compressed form*, reusing the training-side codecs from
:mod:`repro.compression`.  Tables are chopped into fixed-size **row
blocks** and each block is compressed independently, so a lookup of a few
rows decodes only the blocks those rows live in — the row-granular decode
that makes compressed in-memory shards servable at all (decoding a
multi-million-row table per request would drown any bandwidth win).

Error bounds follow the training side's dual-level adaptive story: each
table carries its own bound (typically the
:class:`~repro.adaptive.controller.AdaptiveController`'s per-table bound,
via :meth:`EmbeddingShardServer.from_model`).  A bound of ``0`` stores the
table losslessly (byte-LZ), so compressed lookups are bit-identical to the
raw rows — the contract the serving tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.compression.base import Compressor
from repro.compression.cache import TableCodebookCache
from repro.compression.parallel.pool import BitstreamPool
from repro.compression.registry import decompress_any, get_compressor
from repro.obs.runtime import OBS
from repro.utils.validation import check_positive

__all__ = [
    "ShardPull",
    "EmbeddingShardServer",
    "DEFAULT_ROWS_PER_BLOCK",
    "serving_codec",
    "serving_codec_pool",
]

#: default row-block granularity: small enough that one hot row does not
#: drag megabytes across the fabric, large enough that the block payload
#: amortizes the codec's framing overhead
DEFAULT_ROWS_PER_BLOCK = 64

#: codec used when a table's error bound is 0 (lossless, bit-identical)
LOSSLESS_CODEC = "lz4_like"

#: pin/refresh windows for the serving-side hot-loop caches — every block
#: of a table recompresses per publication round, so the windows comfortably
#: cover one table's block count
SERVING_PIN_REFRESH = 64
SERVING_CODEBOOK_REFRESH = 8


def serving_codec(name: str) -> Compressor:
    """A codec instance with its hot-loop caches enabled.

    The serve tier compresses *keyed by table* in bulk (every block of a
    table per recompression, every table delta per publication round), so
    the hybrid codec gets pinned-encoder replay and the entropy codec a
    per-table codebook cache — the same amortizations the training hot
    loop uses (and the ``hybrid_pinned`` perf rows measure at 3-5x).
    """
    if name == "hybrid":
        # Pin replay for the try-both trial *and* a codebook cache for the
        # entropy leg — tables whose pinned winner is Huffman recompress
        # every block per publication round.
        return get_compressor(
            name,
            pin_refresh=SERVING_PIN_REFRESH,
            codebook_cache=TableCodebookCache(refresh_every=SERVING_CODEBOOK_REFRESH),
        )
    if name == "entropy":
        return get_compressor(
            name, codebook_cache=TableCodebookCache(refresh_every=SERVING_CODEBOOK_REFRESH)
        )
    return get_compressor(name)


def serving_codec_pool():
    """A per-name memo over :func:`serving_codec` — one pool per owner
    (shard node, publisher), so cache state never leaks between tiers.
    Returns a ``get(name) -> Compressor`` callable."""
    codecs: dict[str, Compressor] = {}

    def pooled(name: str) -> Compressor:
        if name not in codecs:
            codecs[name] = serving_codec(name)
        return codecs[name]

    return pooled


@dataclass(frozen=True)
class ShardPull:
    """One row-granular read from a compressed shard.

    ``compressed_nbytes`` is what a remote caller pulls over the wire (the
    touched blocks' payloads); ``raw_nbytes`` is what those blocks decode
    to (what the caller's decompression kernel processes).
    """

    table_id: int
    rows: np.ndarray  # (n_requested, dim) float32
    codec: str
    blocks_touched: int
    compressed_nbytes: int
    raw_nbytes: int

    @property
    def n_rows(self) -> int:
        return int(self.rows.shape[0])


class _CompressedTable:
    """One table stored as independently-compressed row blocks."""

    def __init__(
        self,
        table_id: int,
        values: np.ndarray,
        codec_name: str,
        error_bound: float,
        rows_per_block: int,
        codec: Compressor,
        pool: BitstreamPool | None = None,
    ):
        values = np.ascontiguousarray(values, dtype=np.float32)
        if values.ndim != 2:
            raise ValueError(
                f"table {table_id}: expected (rows, dim) values, got shape {values.shape}"
            )
        if error_bound < 0:
            raise ValueError(f"table {table_id}: error_bound must be >= 0, got {error_bound}")
        check_positive("rows_per_block", rows_per_block)
        self.table_id = table_id
        self.cardinality, self.dim = values.shape
        self.rows_per_block = int(rows_per_block)
        self.error_bound = float(error_bound)
        self.codec_name = codec_name
        self._codec = codec
        self.raw_nbytes = int(values.nbytes)
        self._pool = pool
        self._block_leases: list = []
        self.blocks: list = []  # bytes, or pooled memoryviews when pool is set
        self._recompress(values)

    def _recompress(self, values: np.ndarray) -> None:
        bound = self.error_bound if self.error_bound > 0 else None
        # Every publication round replaces every block, so last round's
        # arenas are dead — hand them back *first* and the new blocks land
        # in the recycled memory instead of fresh allocations.
        for lease in self._block_leases:
            lease.release()
        self._block_leases = []
        blocks: list = []
        for lo in range(0, self.cardinality, self.rows_per_block):
            block = values[lo : lo + self.rows_per_block]
            if self._pool is not None:
                if bound is not None:
                    # Keyed by table so pin/codebook caches amortize per table.
                    lease = self._codec.compress_keyed_into(
                        self.table_id, block, bound, pool=self._pool
                    )
                else:
                    lease = self._codec.compress_into(block, bound, pool=self._pool)
                self._block_leases.append(lease)
                blocks.append(lease.view)
            elif bound is not None:
                blocks.append(self._codec.compress_keyed(self.table_id, block, bound))
            else:
                blocks.append(self._codec.compress(block, bound))
        self.blocks = blocks

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def compressed_nbytes(self) -> int:
        return sum(len(b) for b in self.blocks)

    def pull(self, row_ids: np.ndarray) -> ShardPull:
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if row_ids.ndim != 1:
            raise ValueError(f"row_ids must be 1-D, got shape {row_ids.shape}")
        if row_ids.size and (row_ids.min() < 0 or row_ids.max() >= self.cardinality):
            raise IndexError(
                f"table {self.table_id}: row ids out of range [0, {self.cardinality})"
            )
        rows = np.empty((row_ids.size, self.dim), dtype=np.float32)
        block_ids = row_ids // self.rows_per_block
        unique_blocks = np.unique(block_ids)
        compressed = 0
        raw = 0
        for block_id in unique_blocks:
            payload = self.blocks[block_id]
            decoded = decompress_any(payload)
            in_block = block_ids == block_id
            rows[in_block] = decoded[row_ids[in_block] - block_id * self.rows_per_block]
            compressed += len(payload)
            raw += decoded.nbytes
        return ShardPull(
            table_id=self.table_id,
            rows=rows,
            codec=self.codec_name,
            blocks_touched=int(unique_blocks.size),
            compressed_nbytes=compressed,
            raw_nbytes=raw,
        )

    def decode_all(self) -> np.ndarray:
        if not self.blocks:
            return np.empty((0, self.dim), dtype=np.float32)
        return np.concatenate([decompress_any(b) for b in self.blocks], axis=0)


class EmbeddingShardServer:
    """One serving node's compressed embedding shards.

    Parameters
    ----------
    tables:
        ``{table_id: (rows, dim) float32 values}`` for the tables this
        shard node owns.
    error_bounds:
        Per-table absolute error bound (scalar applies to every table).
        ``0`` stores a table losslessly — lookups are bit-identical.
    codecs:
        Per-table codec registry name (scalar applies to every table);
        ignored for tables with bound ``0`` (stored with the lossless
        byte-LZ codec).
    rows_per_block:
        Row-block compression granularity — the unit of decode (and of a
        remote shard pull).
    pool:
        :class:`~repro.compression.parallel.pool.BitstreamPool` backing
        the compressed block storage.  Every publication round recompresses
        every owned block, so pooled arenas turn that per-round churn into
        steady-state reuse.  Defaults to a private per-node pool.
    """

    def __init__(
        self,
        tables: Mapping[int, np.ndarray],
        error_bounds: Mapping[int, float] | float = 1e-2,
        codecs: Mapping[int, str] | str = "hybrid",
        rows_per_block: int = DEFAULT_ROWS_PER_BLOCK,
        pool: BitstreamPool | None = None,
    ):
        if not tables:
            raise ValueError("a shard server needs at least one table")

        def bound_for(table_id: int) -> float:
            if isinstance(error_bounds, Mapping):
                return float(error_bounds[table_id])
            return float(error_bounds)

        def codec_for(table_id: int) -> str:
            if isinstance(codecs, Mapping):
                return str(codecs[table_id])
            return str(codecs)

        # One cached codec instance per name, shared by this node's tables
        # (keyed compression keeps their caches disjoint per table).
        pooled = serving_codec_pool()
        self.pool = pool if pool is not None else BitstreamPool()
        self._tables: dict[int, _CompressedTable] = {}
        for table_id, values in tables.items():
            table_id = int(table_id)
            bound = bound_for(table_id)
            name = codec_for(table_id) if bound > 0 else LOSSLESS_CODEC
            self._tables[table_id] = _CompressedTable(
                table_id, values, name, bound, rows_per_block, pooled(name), self.pool
            )

    @classmethod
    def from_model(
        cls,
        model,
        table_ids,
        controller=None,
        *,
        iteration: int = 0,
        error_bound: float = 1e-2,
        codec: str = "hybrid",
        rows_per_block: int = DEFAULT_ROWS_PER_BLOCK,
    ) -> "EmbeddingShardServer":
        """Build a shard node from a :class:`~repro.model.dlrm.DLRM`'s
        tables.  With a controller, each table uses the adaptive per-table
        codec and effective error bound at ``iteration`` — the serving tier
        inherits the dual-level adaptive configuration wholesale."""
        table_ids = [int(t) for t in table_ids]
        values = {
            t: np.ascontiguousarray(model.tables[t].weight.data, dtype=np.float32)
            for t in table_ids
        }
        if controller is not None:
            bounds = {t: controller.error_bound(t, iteration) for t in table_ids}
            names = {t: controller.compressor_name(t) for t in table_ids}
            return cls(values, bounds, names, rows_per_block)
        return cls(values, error_bound, codec, rows_per_block)

    # -------------------------------------------------------------- queries

    def table_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._tables))

    def has_table(self, table_id: int) -> bool:
        return int(table_id) in self._tables

    def _table(self, table_id: int) -> _CompressedTable:
        try:
            return self._tables[int(table_id)]
        except KeyError:
            raise KeyError(
                f"table {table_id} is not sharded here; this node owns {self.table_ids()}"
            ) from None

    def pull(self, table_id: int, row_ids: np.ndarray) -> ShardPull:
        """Row-granular read: decode only the blocks the rows live in."""
        pull = self._table(table_id).pull(row_ids)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("shard_pulls_total", "row-granular shard reads").inc()
            reg.counter(
                "shard_pull_blocks_total", "compressed blocks decoded for pulls"
            ).inc(pull.blocks_touched)
            reg.counter(
                "shard_pull_bytes_total", "bytes moved for pulls"
            ).inc(pull.compressed_nbytes, kind="compressed")
            reg.counter(
                "shard_pull_bytes_total", "bytes moved for pulls"
            ).inc(pull.raw_nbytes, kind="raw")
        return pull

    def lookup_rows(self, table_id: int, row_ids: np.ndarray) -> np.ndarray:
        """The rows alone (see :meth:`pull` for the cost accounting)."""
        return self.pull(table_id, row_ids).rows

    def table_array(self, table_id: int) -> np.ndarray:
        """Full decode of one table (tests / delta application)."""
        return self._table(table_id).decode_all()

    def error_bound(self, table_id: int) -> float:
        return self._table(table_id).error_bound

    def codec(self, table_id: int) -> str:
        return self._table(table_id).codec_name

    def rows_per_block(self, table_id: int) -> int:
        return self._table(table_id).rows_per_block

    # -------------------------------------------------------------- updates

    def set_table(self, table_id: int, values: np.ndarray) -> int:
        """Replace one table's contents (recompressing every block from the
        given exact values — deltas must not compound storage error across
        publications).  Returns the new compressed size."""
        table = self._table(table_id)
        values = np.ascontiguousarray(values, dtype=np.float32)
        if values.shape != (table.cardinality, table.dim):
            raise ValueError(
                f"table {table_id}: expected shape {(table.cardinality, table.dim)}, "
                f"got {values.shape}"
            )
        table._recompress(values)
        return table.compressed_nbytes

    # ----------------------------------------------------------- accounting

    def compressed_nbytes(self, table_id: int | None = None) -> int:
        if table_id is not None:
            return self._table(table_id).compressed_nbytes
        return sum(t.compressed_nbytes for t in self._tables.values())

    def raw_nbytes(self, table_id: int | None = None) -> int:
        if table_id is not None:
            return self._table(table_id).raw_nbytes
        return sum(t.raw_nbytes for t in self._tables.values())

    def compression_ratio(self) -> float:
        return self.raw_nbytes() / max(1, self.compressed_nbytes())

    def __repr__(self) -> str:
        return (
            f"EmbeddingShardServer(tables={len(self._tables)}, "
            f"ratio={self.compression_ratio():.2f}x)"
        )
