"""Compressed delta publication: trainer snapshots -> serving shards.

DLRM embeddings only earn their keep on the read side, so the trained
tables have to reach the inference tier *continuously* — and a terabyte
model cannot be re-shipped per step.  :class:`DeltaPublisher` closes the
loop the paper's compressor opens: it tracks what the serving tier
currently holds, and each :meth:`~DeltaPublisher.publish` ships only the
per-table **delta** since the last publication, compressed with the
adaptive controller's per-table codec and error bound and priced through
the same :class:`~repro.dist.comm.Communicator` 4-stage exchange the
trainer uses (the publisher is rank 0; each shard node is a rank, so
stage-② metadata, the variable-size payload all-to-all, and stage-①/④
kernels are all charged on the publication fabric).

**Staleness is bounded, not accumulated.**  The delta is computed against
the *published* state (error feedback): whatever error the lossy delta
introduced last round is folded into the next round's delta, so after
every publication the serving tier's logical table state is within the
per-table error bound of the trainer's — for any number of rounds.  Shard
servers recompress from that exact logical state (never decode-add-encode
on their own lossy storage), so the end-to-end staleness of a served row
is at most ``publication bound + shard-storage bound``.

Freshness-vs-bandwidth is then a measurable tradeoff: raw publication is
exact but pays full table bytes and a long fabric/apply window; compressed
publication pays a bounded accuracy budget for an order of magnitude less
wire — ``benchmarks/bench_serving_scaling.py`` prices both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.adaptive.selection import PAPER_A100_PROFILE, DeviceThroughputProfile
from repro.compression.parallel.pool import BitstreamPool
from repro.compression.registry import decompress_any
from repro.compression.serialization import (
    CorruptPayloadError,
    frame_with_checksum,
    verify_checksum_frame,
)
from repro.dist.comm import payload_nbytes
from repro.dist.network import NetworkModel
from repro.dist.simulator import ClusterSimulator
from repro.dist.timeline import OBS_STREAM, EventCategory
from repro.obs.runtime import OBS
from repro.serve.replica import InferenceReplica
from repro.serve.shard_server import (
    DEFAULT_ROWS_PER_BLOCK,
    EmbeddingShardServer,
    serving_codec_pool,
)
from repro.train.sharding import ShardingPlan
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.train.hybrid import HybridParallelTrainer

__all__ = ["TableDelta", "PublicationReport", "DeltaPublisher", "ServingTier", "build_serving_tier"]


@dataclass(frozen=True)
class TableDelta:
    """One table's share of a publication."""

    table_id: int
    codec: str
    error_bound: float  # 0 for raw publication
    raw_nbytes: int
    wire_nbytes: int
    max_abs_error: float  # |trainer - published| after applying, elementwise max

    @property
    def ratio(self) -> float:
        return self.raw_nbytes / max(1, self.wire_nbytes)


@dataclass(frozen=True)
class PublicationReport:
    """Accounting for one publication round."""

    iteration: int
    compressed: bool
    tables: tuple[TableDelta, ...]
    wire_nbytes: int
    raw_nbytes: int
    #: stages ②-④ of the publication exchange — metadata, payloads, and
    #: shard-side decode; the window the serving tier is exposed to
    wire_seconds: float
    #: stage ① on the publisher's device — elapses while replicas keep
    #: serving, so it is *not* part of :attr:`downtime_seconds`
    compress_seconds: float
    apply_seconds: tuple[float, ...]  # per shard node
    #: retry accounting (all defaults preserve the healthy-path shape)
    attempts: int = 1
    retry_backoff_seconds: float = 0.0
    corrupted_payloads: int = 0
    #: ``False`` when every delivery attempt failed verification — nothing
    #: was applied, the serving tier kept its previous (bounded) state
    succeeded: bool = True

    @property
    def compression_ratio(self) -> float:
        return self.raw_nbytes / max(1, self.wire_nbytes)

    @property
    def staleness_bound(self) -> float:
        """Worst-case elementwise |trainer - published| this round."""
        return max((t.error_bound for t in self.tables), default=0.0)

    @property
    def max_abs_error(self) -> float:
        return max((t.max_abs_error for t in self.tables), default=0.0)

    @property
    def downtime_seconds(self) -> float:
        """Window during which the serving tier is absorbing the update:
        wire drain plus the slowest shard node's apply.  A failed round
        applies nothing — the replicas never stop serving, so its
        downtime is zero."""
        if not self.succeeded:
            return 0.0
        return self.wire_seconds + max(self.apply_seconds, default=0.0)


class DeltaPublisher:
    """Ship per-table (compressed) embedding deltas from a trainer to the
    serving tier's shard servers through the :class:`Communicator`.

    Parameters
    ----------
    trainer:
        The :class:`~repro.train.hybrid.HybridParallelTrainer` whose model
        is being served.  Construct the publisher (and the shard servers)
        from the *same* model state — the publisher snapshots the tables at
        construction as the serving tier's initial logical state.
    servers / replicas / sharding:
        The serving tier.  Each publication recompresses the owned tables
        on their shard node and invalidates the replicas' cached rows for
        the updated tables.
    network:
        Publication fabric (rank 0 = publisher, rank ``1 + s`` = shard
        node ``s``).  Defaults to the paper's flat fabric.
    compress:
        ``True`` ships error-bounded deltas under the adaptive
        controller's per-table codec/bound (requires the trainer's
        pipeline); ``False`` ships raw float32 deltas (exact, heavy).
    retry_policy:
        Optional :class:`~repro.faults.retry.RetryPolicy`.  When set, a
        publication round whose payloads fail verification is retried —
        full round replay, backoff charged as RETRY on the fabric clock.
        The replay is error-feedback-safe: the serving tier's logical
        state mutates only after a fully verified delivery, so the
        per-round staleness bound holds across any number of failed
        rounds (the next delta is still computed against what the shards
        actually hold).
    checksum:
        Wrap every payload in the CRC32 envelope
        (:func:`~repro.compression.serialization.frame_with_checksum`) so
        in-transit corruption is *detected* (→ retry) instead of decoded
        into garbage.  Required when the fault injector schedules
        corruption faults.
    fault_injector:
        Optional :class:`~repro.faults.injector.FaultInjector`; attached
        to the publication fabric (outages/degraded links stretch the
        exchange) and consulted per (round, table, attempt) for payload
        corruption.
    """

    def __init__(
        self,
        trainer: "HybridParallelTrainer",
        servers: Sequence[EmbeddingShardServer],
        replicas: Sequence[InferenceReplica] = (),
        *,
        sharding: ShardingPlan | None = None,
        network: NetworkModel | None = None,
        compress: bool = True,
        profile: DeviceThroughputProfile = PAPER_A100_PROFILE,
        retry_policy=None,
        checksum: bool = False,
        fault_injector=None,
    ):
        if sharding is None:
            if not replicas:
                raise ValueError("pass sharding= explicitly when there are no replicas")
            sharding = replicas[0].sharding
        if sharding.n_ranks != len(servers):
            raise ValueError(
                f"sharding spans {sharding.n_ranks} shard ranks but {len(servers)} "
                "servers were given"
            )
        if compress and trainer.pipeline is None:
            raise ValueError(
                "compressed publication needs the trainer's CompressionPipeline "
                "(its controller carries the per-table error bounds); "
                "pass compress=False for raw publication"
            )
        n_tables = trainer.model.config.n_tables
        if sharding.n_tables != n_tables:
            raise ValueError(
                f"serving sharding covers {sharding.n_tables} tables, model has {n_tables}"
            )
        if (
            fault_injector is not None
            and fault_injector.plan.corruptions
            and not checksum
        ):
            raise ValueError(
                "the fault plan schedules payload corruption but checksum=False; "
                "without the CRC32 envelope corruption would be applied silently "
                "— pass checksum=True"
            )
        self.trainer = trainer
        self.servers = tuple(servers)
        self.replicas = tuple(replicas)
        self.sharding = sharding
        self.compress = bool(compress)
        self.profile = profile
        self.retry_policy = retry_policy
        self.checksum = bool(checksum)
        self.fault_injector = fault_injector
        self.simulator = ClusterSimulator(1 + len(servers), network=network)
        self.simulator.fault_injector = fault_injector
        # Cached codec instances: table-keyed delta compression every
        # round amortizes encoder pins / codebooks exactly like the shards.
        self._codec = serving_codec_pool()
        # Pooled buffers for the per-round hot loop: delta payloads and
        # checksum envelopes land in recycled arenas (released at the end
        # of each round), and the delta itself is computed into a per-table
        # scratch array — steady-state publication allocates nothing new.
        self._pool = BitstreamPool()
        self._delta_scratch: dict[int, np.ndarray] = {}
        # The serving tier's logical state: exactly what the shard servers
        # were built from, updated by decoded deltas (error feedback).
        # Explicit copies — the trainer updates weights in place, and an
        # aliased snapshot would make every delta read as zero.
        self._published = [
            np.array(trainer.model.tables[t].weight.data, dtype=np.float32, copy=True)
            for t in range(n_tables)
        ]
        self.reports: list[PublicationReport] = []

    def published_table(self, table_id: int) -> np.ndarray:
        """The serving tier's current logical state of one table."""
        return self._published[table_id]

    def staleness(self) -> float:
        """Current worst elementwise |trainer - published| over all tables
        (bounded by the last publication's ``staleness_bound`` right after
        publishing; grows as the trainer moves on)."""
        worst = 0.0
        for t, published in enumerate(self._published):
            current = self.trainer.model.tables[t].weight.data.astype(np.float32)
            worst = max(worst, float(np.max(np.abs(current - published), initial=0.0)))
        return worst

    # -------------------------------------------------------------- publish

    def publish(self, iteration: int = 0) -> PublicationReport:
        """One publication round: delta, compress, ship (with verification
        and retries when configured), apply, invalidate.

        The serving tier's logical state (:attr:`_published`, the shard
        tables, the replica caches) mutates **only after** a delivery whose
        every payload verified — a corrupted or abandoned round leaves the
        tier exactly where it was, so the next round's delta (computed
        against the unchanged published state) still carries the full
        error-feedback correction and the per-round staleness bound never
        accumulates across failures.
        """
        pipeline = self.trainer.pipeline
        n_servers = len(self.servers)
        n = 1 + n_servers
        round_index = len(self.reports)
        entries = np.zeros((n, n), dtype=np.int64)
        stage1_chunks: list[tuple[str, int]] = []
        apply_chunks: list[list[tuple[str, int]]] = [[] for _ in range(n_servers)]
        table_records: list[TableDelta] = []
        new_state: dict[int, np.ndarray] = {}
        pristine: list = []  # payload (bytes or lease view) per record
        placements: list[int] = []  # shard rank per table record
        round_leases: list = []  # pooled payload/envelope leases, released at end
        for shard_rank in range(n_servers):
            for table_id in self.sharding.tables_of(shard_rank):
                weight = self.trainer.model.tables[table_id].weight.data
                if self.compress:
                    # Compressed mode never stores `current` — only the
                    # payload and `applied` leave this block — so the
                    # snapshot copy and fresh delta allocation both go:
                    # the delta lands in a reused per-table scratch array
                    # and the payload in a pooled arena.
                    current = np.asarray(weight, dtype=np.float32)
                    delta = self._delta_scratch.get(table_id)
                    if delta is None or delta.shape != current.shape:
                        delta = np.empty_like(current)
                        self._delta_scratch[table_id] = delta
                    np.subtract(current, self._published[table_id], out=delta)
                    codec_name = pipeline.controller.compressor_name(table_id)
                    bound = pipeline.controller.error_bound(table_id, iteration)
                    lease = self._codec(codec_name).compress_keyed_into(
                        table_id, delta, bound, pool=self._pool
                    )
                    round_leases.append(lease)
                    payload = lease.view
                    applied = self._published[table_id] + decompress_any(payload)
                else:
                    current = np.array(  # stored as published state below
                        weight, dtype=np.float32, copy=True
                    )
                    delta = current - self._published[table_id]
                    codec_name = "raw"
                    bound = 0.0
                    payload = delta.tobytes()
                    applied = current
                if self.checksum:
                    envelope = frame_with_checksum(payload, pool=self._pool)
                    round_leases.append(envelope)
                    payload = envelope.view
                pristine.append(payload)
                placements.append(shard_rank)
                entries[0, 1 + shard_rank] += 1
                stage1_chunks.append((codec_name, delta.nbytes))
                apply_chunks[shard_rank].append((codec_name, delta.nbytes))
                new_state[table_id] = applied
                table_records.append(
                    TableDelta(
                        table_id=table_id,
                        codec=codec_name,
                        error_bound=bound,
                        raw_nbytes=int(delta.nbytes),
                        wire_nbytes=len(payload),
                        max_abs_error=float(np.max(np.abs(current - applied), initial=0.0)),
                    )
                )

        # Ship through the Communicator on the publication fabric.  The
        # compressed path runs the full 4-stage exchange (stage-② metadata
        # because payload sizes are variable); raw deltas are fixed-size
        # and self-describing, so they go as a plain all-to-all.  Payloads
        # are compressed exactly once; a retry re-ships the same bytes
        # (stage ① is charged on the first attempt only).
        comm = self.simulator.comm
        sim = self.simulator
        compress_seconds = 0.0
        decompress_seconds = [0.0] * n
        if self.compress:
            compress_seconds = pipeline.compression_seconds(stage1_chunks)
            decompress_seconds = [0.0] + [
                pipeline.decompression_seconds(chunks) if chunks else 0.0
                for chunks in apply_chunks
            ]
        max_attempts = self.retry_policy.max_attempts if self.retry_policy else 1
        attempts = 0
        backoff_total = 0.0
        corrupted_total = 0
        succeeded = False
        wire_seconds = 0.0
        for attempt in range(max_attempts):
            attempts = attempt + 1
            if attempt:
                backoff = self.retry_policy.backoff_seconds(
                    attempt, "publish", round_index
                )
                backoff_total += backoff
                sim.collective(backoff, EventCategory.RETRY)
            delivered = list(pristine)
            if self.fault_injector is not None:
                for record_index, payload in enumerate(pristine):
                    if self.fault_injector.corrupts(round_index, record_index, attempt):
                        delivered[record_index] = self.fault_injector.corrupt_payload(
                            payload, round_index, record_index, attempt
                        )
            sendbufs: list[list[list[bytes]]] = [
                [[] for _ in range(n)] for _ in range(n)
            ]
            for shard_rank, payload in zip(placements, delivered):
                sendbufs[0][1 + shard_rank].append(payload)
            attempt_start = sim.makespan()
            stage1 = compress_seconds if attempt == 0 else 0.0
            if self.compress:
                comm.compressed_all_to_all(
                    sendbufs,
                    metadata_bytes_per_entry=pipeline.metadata_bytes_per_entry,
                    entries_per_pair=entries,
                    category=EventCategory.ALLTOALL_FWD,
                    compress_seconds=[stage1] + [0.0] * n_servers,
                    decompress_seconds=decompress_seconds,
                )
            else:
                comm.all_to_all(sendbufs, EventCategory.ALLTOALL_FWD)
            # The exchange span includes the publisher's stage-①
            # compression, which elapses while replicas keep serving —
            # subtract it so wire_seconds (and downtime) cover only the
            # metadata/payload/shard-decode window of this attempt.
            wire_seconds = sim.makespan() - attempt_start - stage1
            bad = 0
            if self.checksum:
                for payload in delivered:
                    try:
                        verify_checksum_frame(payload)
                    except CorruptPayloadError:
                        bad += 1
            corrupted_total += bad
            if bad == 0:
                succeeded = True
                break
            if OBS.enabled:
                OBS.registry.counter(
                    "publish_retries_total",
                    "publication delivery attempts that failed verification",
                ).inc(1)

        apply_seconds: list[float] = []
        if succeeded:
            # Apply: shard nodes recompress their tables from the exact new
            # logical state; replicas drop the now-stale cached rows.  The
            # recompression kernels dominate the apply window, so they are
            # priced at the shard codec's compress throughput (plus the
            # staging memcpy).
            gpu = sim.gpu
            for shard_rank, server in enumerate(self.servers):
                seconds = 0.0
                for table_id in self.sharding.tables_of(shard_rank):
                    self._published[table_id] = new_state[table_id]
                    server.set_table(table_id, new_state[table_id])
                    nbytes = new_state[table_id].nbytes
                    seconds += gpu.memcpy_time(nbytes) + gpu.throughput_kernel_time(
                        nbytes, self.profile.for_codec(server.codec(table_id)).compress
                    )
                apply_seconds.append(seconds)
            updated = [record.table_id for record in table_records]
            for replica in self.replicas:
                replica.invalidate_tables(updated)

        report = PublicationReport(
            iteration=int(iteration),
            compressed=self.compress,
            tables=tuple(table_records),
            wire_nbytes=sum(t.wire_nbytes for t in table_records),
            raw_nbytes=sum(t.raw_nbytes for t in table_records),
            wire_seconds=wire_seconds,
            compress_seconds=compress_seconds,
            apply_seconds=tuple(apply_seconds),
            attempts=attempts,
            retry_backoff_seconds=backoff_total,
            corrupted_payloads=corrupted_total,
            succeeded=succeeded,
        )
        self.reports.append(report)
        self._obs_publish(report)
        # All wire buffers for this round are accounted and applied — hand
        # the arenas back so the next round reuses them.
        for lease in round_leases:
            lease.release()
        return report

    def _obs_publish(self, report: PublicationReport) -> None:
        """Annotate the publication on the fabric timeline and, when the
        observability runtime is enabled, feed the publish counters."""
        timeline = self.simulator.timeline
        end = self.simulator.makespan()
        start = max(0.0, end - report.wire_seconds - report.compress_seconds)
        timeline.record(
            rank=0,
            category=EventCategory.PUBLISH,
            start=start,
            duration=end - start,
            stream=OBS_STREAM,
            args={
                "iteration": report.iteration,
                "tables": len(report.tables),
                "wire_nbytes": report.wire_nbytes,
                "compressed": report.compressed,
            },
        )
        timeline.record_counter("publish_wire_bytes", end, float(report.wire_nbytes))
        if not OBS.enabled:
            return
        reg = OBS.registry
        if OBS.slo_hub is not None:
            OBS.slo_hub.feed("publish_staleness", end, self.staleness())
        mode = "compressed" if report.compressed else "raw"
        reg.counter("publish_rounds_total", "delta publication rounds").inc(1, mode=mode)
        reg.counter(
            "publish_wire_bytes_total", "bytes shipped to the serving tier"
        ).inc(report.wire_nbytes, mode=mode)
        reg.counter(
            "publish_raw_bytes_total", "uncompressed delta bytes per publication"
        ).inc(report.raw_nbytes, mode=mode)
        reg.histogram(
            "publish_downtime_seconds",
            "serving-tier update-absorption window per publication",
        ).observe(report.downtime_seconds, mode=mode)
        if report.corrupted_payloads:
            reg.counter(
                "publish_corrupt_payloads_total",
                "payloads that failed CRC32 verification on delivery",
            ).inc(report.corrupted_payloads)
        if not report.succeeded:
            reg.counter(
                "publish_failed_rounds_total",
                "publication rounds abandoned after exhausting retries",
            ).inc(1)
        if report.retry_backoff_seconds:
            reg.counter(
                "publish_retry_backoff_seconds_total",
                "backoff time charged to publication retries",
            ).inc(report.retry_backoff_seconds)


@dataclass(frozen=True)
class ServingTier:
    """One wired serving deployment: shards + replicas + publisher."""

    servers: tuple[EmbeddingShardServer, ...]
    replicas: tuple[InferenceReplica, ...]
    publisher: DeltaPublisher
    sharding: ShardingPlan


def build_serving_tier(
    trainer: "HybridParallelTrainer",
    n_shard_ranks: int,
    n_replicas: int,
    cache_rows: int,
    *,
    iteration: int = 0,
    rows_per_block: int = DEFAULT_ROWS_PER_BLOCK,
    shard_error_bound: float | None = None,
    publication_network: NetworkModel | None = None,
    compress_publication: bool = True,
    retry_policy=None,
    checksum: bool = False,
    fault_injector=None,
    keep_stale: bool = False,
) -> ServingTier:
    """Stand up a consistent serving tier for a trainer's model.

    Shard servers, replicas, and the publisher are all built from the
    trainer's *current* model state, so the publisher's error-feedback
    baseline matches what the shards actually hold.  With the trainer's
    adaptive pipeline present, each table's shard codec and storage bound
    come from the controller at ``iteration``; ``shard_error_bound``
    overrides with one scalar bound (``0`` stores shards losslessly).
    """
    check_positive("n_shard_ranks", n_shard_ranks)
    check_positive("n_replicas", n_replicas)
    model = trainer.model
    sharding = ShardingPlan.size_balanced(
        list(model.config.table_cardinalities), int(n_shard_ranks)
    )
    empty = [r for r in range(int(n_shard_ranks)) if not sharding.tables_of(r)]
    if empty:
        raise ValueError(
            f"{model.config.n_tables} tables cannot populate {n_shard_ranks} shard "
            f"ranks (ranks {empty} would own no tables)"
        )
    controller = trainer.pipeline.controller if trainer.pipeline is not None else None
    servers = tuple(
        EmbeddingShardServer.from_model(
            model,
            sharding.tables_of(rank),
            controller if shard_error_bound is None else None,
            iteration=iteration,
            error_bound=shard_error_bound if shard_error_bound is not None else 1e-2,
            rows_per_block=rows_per_block,
        )
        for rank in range(int(n_shard_ranks))
    )
    replicas = tuple(
        InferenceReplica(i, servers, sharding, cache_rows, keep_stale=keep_stale)
        for i in range(int(n_replicas))
    )
    publisher = DeltaPublisher(
        trainer,
        servers,
        replicas,
        sharding=sharding,
        network=publication_network,
        compress=compress_publication,
        retry_policy=retry_policy,
        checksum=checksum,
        fault_injector=fault_injector,
    )
    return ServingTier(servers=servers, replicas=replicas, publisher=publisher, sharding=sharding)
