"""Inference replicas: hot-row LRU caches in front of compressed shards.

A :class:`InferenceReplica` is one stateless-model serving node: it holds
the (replicated, tiny) MLP weights implicitly and caches *decoded
embedding rows* in an LRU keyed by ``(table_id, row_id)``.  The synthetic
data's Zipf-skewed queries concentrate mass on few rows per table, so a
cache of a small fraction of the total rows absorbs most lookups — misses
fan out as row-granular pulls from the owning
:class:`~repro.serve.shard_server.EmbeddingShardServer`.

The cache is a strict LRU over requested rows only (no block prefetch), so
it inherits the classic stack-algorithm inclusion property: for the same
request trace a larger cache's contents are always a superset of a smaller
cache's, hence the hit rate is monotone non-decreasing in capacity — the
invariant the serving tests pin.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.obs.runtime import OBS
from repro.serve.shard_server import EmbeddingShardServer, ShardPull
from repro.train.sharding import ShardingPlan

__all__ = ["GatherResult", "InferenceReplica"]


@dataclass(frozen=True)
class GatherResult:
    """One request's embedding gather: rows + the cost of getting them."""

    rows: np.ndarray  # (n_tables, dim) float32
    hits: int
    misses: int
    pulls: tuple[ShardPull, ...] = ()
    #: shard rank each pull went to, aligned with ``pulls``
    pull_ranks: tuple[int, ...] = field(default=())

    @property
    def fanout(self) -> int:
        """Distinct shard nodes this request had to contact."""
        return len(set(self.pull_ranks))

    @property
    def pulled_compressed_nbytes(self) -> int:
        return sum(p.compressed_nbytes for p in self.pulls)

    @property
    def pulled_raw_nbytes(self) -> int:
        return sum(p.raw_nbytes for p in self.pulls)


class InferenceReplica:
    """One serving replica: LRU row cache over sharded compressed tables.

    Parameters
    ----------
    replica_id:
        Stable identity (used for request routing and reporting).
    servers:
        One :class:`EmbeddingShardServer` per shard rank; ``sharding``
        maps each table to the server that owns it.
    sharding:
        Table-to-shard-rank assignment (the serving tier reuses the
        training tier's :class:`ShardingPlan`).
    cache_rows:
        Hot-row LRU capacity in rows; ``0`` disables caching (every
        lookup is a shard pull).
    keep_stale:
        Keep rows evicted by :meth:`invalidate_tables` in a bounded
        *stale store* (same capacity as the cache) instead of dropping
        them.  When a shard pull cannot complete — crashed shard, severed
        link, exhausted retries — the serving simulator falls back to the
        stale copy and counts the response as *stale* (bounded-staleness:
        the row is exactly what the tier served before the publication
        that displaced it), rather than degrading to a zero row.
    """

    def __init__(
        self,
        replica_id: int,
        servers: Sequence[EmbeddingShardServer],
        sharding: ShardingPlan,
        cache_rows: int = 4096,
        *,
        keep_stale: bool = False,
    ):
        if cache_rows < 0:
            raise ValueError(f"cache_rows must be >= 0, got {cache_rows}")
        if sharding.n_ranks != len(servers):
            raise ValueError(
                f"sharding spans {sharding.n_ranks} shard ranks but {len(servers)} "
                "servers were given"
            )
        for rank, server in enumerate(servers):
            owned = set(sharding.tables_of(rank))
            missing = owned - set(server.table_ids())
            if missing:
                raise ValueError(
                    f"shard rank {rank} is missing tables {sorted(missing)}"
                )
        self.replica_id = int(replica_id)
        self.servers = tuple(servers)
        self.sharding = sharding
        self.cache_rows = int(cache_rows)
        self.keep_stale = bool(keep_stale)
        self._cache: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
        self._stale: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # --------------------------------------------------------------- cache

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def cached_tables(self) -> set[int]:
        return {table_id for table_id, _ in self._cache}

    def _cache_get(self, key: tuple[int, int]) -> np.ndarray | None:
        row = self._cache.get(key)
        if row is not None:
            self._cache.move_to_end(key)
        return row

    def _cache_put(self, key: tuple[int, int], row: np.ndarray) -> None:
        if self.cache_rows == 0:
            return
        if key in self._cache:
            self._cache.move_to_end(key)
        self._cache[key] = row
        while len(self._cache) > self.cache_rows:
            self._cache.popitem(last=False)

    def invalidate_tables(self, table_ids) -> int:
        """Drop cached rows of the given tables (delta publication made
        them stale); returns the number of rows dropped.

        With ``keep_stale``, displaced rows move into the bounded stale
        store (newest-first eviction at ``cache_rows`` capacity) so
        degraded serving can still answer from a known-bounded past state.
        """
        table_ids = set(int(t) for t in table_ids)
        stale = [key for key in self._cache if key[0] in table_ids]
        for key in stale:
            row = self._cache.pop(key)
            if self.keep_stale and self.cache_rows:
                if key in self._stale:
                    self._stale.move_to_end(key)
                self._stale[key] = row
                while len(self._stale) > self.cache_rows:
                    self._stale.popitem(last=False)
        return len(stale)

    def stale_lookup(self, table_id: int, row_id: int) -> np.ndarray | None:
        """A displaced row from the stale store, if one is held (the copy
        the tier served before the publication that invalidated it)."""
        return self._stale.get((int(table_id), int(row_id)))

    # -------------------------------------------------------------- lookups

    def cache_lookup(self, table_id: int, row_id: int) -> np.ndarray | None:
        """One table's cache probe, with hit/miss accounting (the
        fault-aware serving path, which drives pulls itself)."""
        row = self._cache_get((int(table_id), int(row_id)))
        if row is not None:
            self.hits += 1
        else:
            self.misses += 1
        return row

    def admit_row(self, table_id: int, row_id: int, row: np.ndarray) -> None:
        """Admit one pulled row to the LRU (the fault-aware path admits
        only rows whose pull actually completed)."""
        self._cache_put((int(table_id), int(row_id)), row)

    def gather(self, sparse: np.ndarray) -> GatherResult:
        """Gather one request's embedding rows (one id per table).

        Cache hits are served locally; each missed table becomes one
        row-granular pull from its owning shard node (the pull records
        carry the shard rank so the simulator can price shared links),
        and the pulled rows are inserted into the LRU.
        """
        sparse = np.asarray(sparse, dtype=np.int64)
        if sparse.ndim != 1 or sparse.size != self.sharding.n_tables:
            raise ValueError(
                f"expected ({self.sharding.n_tables},) ids (one per table), "
                f"got shape {sparse.shape}"
            )
        n_tables = sparse.size
        rows: list[np.ndarray | None] = [None] * n_tables
        missing: list[tuple[int, int]] = []  # (table_id, row_id), one per table
        hits = 0
        for table_id in range(n_tables):
            row = self._cache_get((table_id, int(sparse[table_id])))
            if row is not None:
                rows[table_id] = row
                hits += 1
            else:
                missing.append((table_id, int(sparse[table_id])))
        pulls: list[ShardPull] = []
        pull_ranks: list[int] = []
        for table_id, row_id in missing:
            shard_rank = self.sharding.owner_of(table_id)
            pull = self.servers[shard_rank].pull(
                table_id, np.array([row_id], dtype=np.int64)
            )
            pulls.append(pull)
            pull_ranks.append(shard_rank)
            rows[table_id] = pull.rows[0]
            self._cache_put((table_id, row_id), pull.rows[0])
        misses = len(missing)
        self.hits += hits
        self.misses += misses
        if OBS.enabled:
            reg = OBS.registry
            replica = str(self.replica_id)
            if hits:
                reg.counter(
                    "serve_cache_hits_total", "row-cache hits across gathers"
                ).inc(hits, replica=replica)
            if misses:
                reg.counter(
                    "serve_cache_misses_total", "row-cache misses (shard pulls)"
                ).inc(misses, replica=replica)
        return GatherResult(
            rows=np.stack(rows, axis=0),
            hits=hits,
            misses=misses,
            pulls=tuple(pulls),
            pull_ranks=tuple(pull_ranks),
        )

    def __repr__(self) -> str:
        return (
            f"InferenceReplica(id={self.replica_id}, cache={len(self._cache)}/"
            f"{self.cache_rows} rows, hit_rate={self.hit_rate:.3f})"
        )
