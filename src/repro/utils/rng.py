"""Deterministic random-number management.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` handed to it explicitly; nothing touches
global NumPy state.  ``RngPool`` provides named, independent streams derived
from a single seed so that e.g. the data generator and the model initializer
can be reseeded independently without correlated draws.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_rng", "RngPool"]


def spawn_rng(seed: int | np.random.Generator | None, *key: int | str) -> np.random.Generator:
    """Return an independent generator derived from ``seed`` and a key path.

    ``seed`` may be an integer, ``None`` (non-deterministic), or an existing
    ``Generator`` (returned unchanged, ignoring ``key``).  String keys are
    hashed stably (FNV-1a) so call sites can use readable names.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    material: list[int] = [] if seed is None else [int(seed)]
    for part in key:
        if isinstance(part, str):
            material.append(_fnv1a(part))
        else:
            material.append(int(part))
    if seed is None and not material:
        return np.random.default_rng()
    return np.random.default_rng(np.random.SeedSequence(material))


def _fnv1a(text: str) -> int:
    """Stable 64-bit FNV-1a hash of ``text`` (Python's ``hash`` is salted)."""
    acc = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


class RngPool:
    """A pool of named, mutually independent random generators.

    >>> pool = RngPool(1234)
    >>> a = pool.get("data")
    >>> b = pool.get("model")
    >>> a is pool.get("data")   # streams are cached by name
    True
    """

    def __init__(self, seed: int | None):
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int | None:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for stream ``name``."""
        if name not in self._streams:
            self._streams[name] = spawn_rng(self._seed, name)
        return self._streams[name]

    def fork(self, name: str, index: int) -> np.random.Generator:
        """Return a fresh generator for ``(name, index)``; not cached.

        Useful for per-iteration or per-rank streams where caching by name
        alone would alias distinct consumers.
        """
        return spawn_rng(self._seed, name, index)
