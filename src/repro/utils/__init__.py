"""Shared utilities: RNG management, formatting, validation helpers."""

from repro.utils.rng import RngPool, spawn_rng
from repro.utils.tables import format_table
from repro.utils.units import GB, KB, MB, format_bytes, format_rate
from repro.utils.validation import (
    check_dtype,
    check_in,
    check_positive,
    check_shape,
)

__all__ = [
    "RngPool",
    "spawn_rng",
    "format_table",
    "KB",
    "MB",
    "GB",
    "format_bytes",
    "format_rate",
    "check_positive",
    "check_in",
    "check_dtype",
    "check_shape",
]
