"""Small argument-validation helpers used across the library.

These raise early with actionable messages instead of letting NumPy produce
confusing downstream failures.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence

import numpy as np

__all__ = ["check_positive", "check_in", "check_dtype", "check_shape"]


def check_positive(name: str, value: float, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is > 0 (or >= 0 if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in(name: str, value: object, allowed: Collection[object]) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")


def check_dtype(name: str, array: np.ndarray, dtypes: Sequence[type | np.dtype]) -> None:
    """Raise ``TypeError`` unless ``array.dtype`` is one of ``dtypes``."""
    if array.dtype not in [np.dtype(d) for d in dtypes]:
        allowed = ", ".join(str(np.dtype(d)) for d in dtypes)
        raise TypeError(f"{name} must have dtype in ({allowed}), got {array.dtype}")


def check_shape(name: str, array: np.ndarray, ndim: int) -> None:
    """Raise ``ValueError`` unless ``array`` has exactly ``ndim`` dimensions."""
    if array.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {array.shape}")
