"""Byte/bandwidth units and human-readable formatting."""

from __future__ import annotations

__all__ = ["KB", "MB", "GB", "format_bytes", "format_rate"]

KB = 1024
MB = 1024**2
GB = 1024**3


def format_bytes(nbytes: float) -> str:
    """Render a byte count with a binary-prefix unit, e.g. ``1.50 MiB``."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_rate(bytes_per_second: float) -> str:
    """Render a throughput, e.g. ``40.50 GiB/s``."""
    return f"{format_bytes(bytes_per_second)}/s"
