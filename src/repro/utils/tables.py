"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows the paper's tables report; this
module renders them in aligned ASCII so outputs are diffable and readable in
CI logs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table"]


def _fmt_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = ".4g",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``float_fmt``; booleans render as yes/no.
    Returns the table as a single string (no trailing newline).
    """
    str_rows = [[_fmt_cell(c, float_fmt) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
