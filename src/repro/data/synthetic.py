"""Synthetic Criteo-like dataset with planted, controllable structure.

The real Criteo datasets cannot ship with this repository, so the generator
plants the three distributional properties the paper's compressor exploits
(Section III-B), with per-table knobs from the :class:`~repro.data.specs.TableSpec`:

* **Unbalanced query frequency** — categorical ids are drawn from a
  truncated Zipf distribution per table; large exponents concentrate
  lookups on hot rows, producing the repeated-vector batches that feed
  vector-LZ and vector homogenization.
* **Gaussian vs. broad value distributions** — embedding initial values are
  drawn with per-table scales, so some tables' lookup batches have
  concentrated histograms (Huffman-friendly) and others broad ones.
* **Learnable labels** — clicks come from a planted logistic teacher over
  the dense features and per-category response scores, so DLRM training
  on the data genuinely converges and accuracy differences caused by
  compression noise are measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.specs import DatasetSpec
from repro.utils.rng import RngPool
from repro.utils.validation import check_positive

__all__ = ["MiniBatch", "zipf_probabilities", "SyntheticClickDataset"]


@dataclass(frozen=True)
class MiniBatch:
    """One training mini-batch."""

    dense: np.ndarray  # (batch, n_dense) float32
    sparse: np.ndarray  # (batch, n_tables) int64 category ids
    labels: np.ndarray  # (batch,) float32 in {0, 1}

    @property
    def batch_size(self) -> int:
        return self.dense.shape[0]

    def slice(self, start: int, stop: int) -> "MiniBatch":
        """A contiguous sub-batch view (used to shard across ranks)."""
        return MiniBatch(
            dense=self.dense[start:stop],
            sparse=self.sparse[start:stop],
            labels=self.labels[start:stop],
        )


def zipf_probabilities(cardinality: int, exponent: float) -> np.ndarray:
    """Truncated Zipf pmf over ``[0, cardinality)``: ``p(k) ~ (k+1)^-s``.

    ``exponent=0`` degenerates to uniform.
    """
    check_positive("cardinality", cardinality)
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


class SyntheticClickDataset:
    """Deterministic synthetic CTR dataset for a given :class:`DatasetSpec`.

    Parameters
    ----------
    spec:
        Table layout and per-table regimes.
    n_samples:
        Total samples in the (virtual) dataset; batches cycle through it.
    seed:
        Master seed; every stream (queries, teacher, labels) is derived.
    teacher_scale:
        Strength of the planted signal; larger values make the task easier
        (higher achievable accuracy).
    dense_weight, sparse_weight:
        Relative strength of the dense-feature and categorical parts of the
        planted teacher.  Lowering ``dense_weight`` makes label quality
        depend on the embeddings, so compression noise on lookups has a
        measurable accuracy cost (useful for error-bound sensitivity
        studies).
    """

    def __init__(
        self,
        spec: DatasetSpec,
        n_samples: int = 65536,
        seed: int = 0,
        teacher_scale: float = 1.5,
        dense_weight: float = 1.0,
        sparse_weight: float = 1.0,
    ):
        check_positive("n_samples", n_samples)
        self.spec = spec
        self.n_samples = int(n_samples)
        self.seed = seed
        self._pool = RngPool(seed)
        # Per-table query distributions (CDF for inverse-transform sampling).
        self._cdfs = [
            np.cumsum(zipf_probabilities(t.cardinality, t.zipf_exponent))
            for t in spec.tables
        ]
        # Hot ranks are scattered over the id space so that id value carries
        # no accidental ordering signal.
        self._rank_to_id = [
            self._pool.fork("perm", t.table_id).permutation(t.cardinality)
            for t in spec.tables
        ]
        # Planted teacher: dense weights, per-table first-order response
        # scores, and per-category latent vectors whose pairwise dot
        # products add a second-order term — the part of the signal DLRM's
        # dot interaction is built to capture, and therefore the part that
        # embedding-compression noise measurably degrades.
        teacher_rng = self._pool.get("teacher")
        self._latent_dim = 4
        self._w_dense = teacher_rng.normal(0.0, 1.0, size=spec.n_dense)
        self._w_tables = [
            teacher_rng.normal(0.0, 1.0, size=t.cardinality) for t in spec.tables
        ]
        self._v_tables = [
            teacher_rng.normal(0.0, 1.0, size=(t.cardinality, self._latent_dim))
            for t in spec.tables
        ]
        self._teacher_scale = float(teacher_scale)
        if dense_weight < 0 or sparse_weight < 0:
            raise ValueError("dense_weight and sparse_weight must be >= 0")
        self._dense_weight = float(dense_weight)
        self._sparse_weight = float(sparse_weight)
        self._bias = float(teacher_rng.normal(0.0, 0.1))

    def _sample_ids(self, rng: np.random.Generator, table_index: int, count: int) -> np.ndarray:
        """Inverse-transform Zipf sampling, then scatter ranks to ids."""
        u = rng.random(count)
        ranks = np.searchsorted(self._cdfs[table_index], u, side="right")
        ranks = np.minimum(ranks, self.spec.tables[table_index].cardinality - 1)
        return self._rank_to_id[table_index][ranks]

    def batch(self, batch_size: int, batch_index: int = 0) -> MiniBatch:
        """Generate the ``batch_index``-th mini-batch deterministically.

        The same ``(seed, batch_index, batch_size)`` always yields the same
        batch, so multi-rank simulations can regenerate shards cheaply.
        """
        check_positive("batch_size", batch_size)
        rng = self._pool.fork("batch", batch_index * 100003 + batch_size)
        dense = rng.normal(0.0, 1.0, size=(batch_size, self.spec.n_dense)).astype(np.float32)
        sparse = np.empty((batch_size, self.spec.n_tables), dtype=np.int64)
        for j in range(self.spec.n_tables):
            sparse[:, j] = self._sample_ids(rng, j, batch_size)
        logits = self._bias + self._dense_weight * (dense.astype(np.float64) @ self._w_dense)
        for j in range(self.spec.n_tables):
            logits = logits + self._sparse_weight * self._w_tables[j][sparse[:, j]] / np.sqrt(
                self.spec.n_tables
            )
        # Second-order term via the factorization-machine identity:
        # sum_{t<u} v_t.v_u = ((sum_t v_t)^2 - sum_t v_t^2) / 2.
        latents = np.stack(
            [self._v_tables[j][sparse[:, j]] for j in range(self.spec.n_tables)], axis=1
        )
        total = latents.sum(axis=1)
        pairwise = 0.5 * ((total**2).sum(axis=-1) - (latents**2).sum(axis=(1, 2)))
        n_pairs = self.spec.n_tables * (self.spec.n_tables - 1) / 2
        if n_pairs > 0:
            logits = logits + self._sparse_weight * pairwise / np.sqrt(
                n_pairs * self._latent_dim
            )
        prob = 1.0 / (1.0 + np.exp(-self._teacher_scale * logits / np.sqrt(1 + self.spec.n_dense)))
        labels = (rng.random(batch_size) < prob).astype(np.float32)
        return MiniBatch(dense=dense, sparse=sparse, labels=labels)

    def batches(self, batch_size: int, n_batches: int):
        """Yield ``n_batches`` consecutive deterministic mini-batches."""
        for i in range(n_batches):
            yield self.batch(batch_size, batch_index=i)

    def table_query_counts(self, table_index: int, n_queries: int = 100000) -> np.ndarray:
        """Empirical query histogram for one table (for Fig. 13-style plots)."""
        rng = self._pool.fork("histogram", table_index)
        ids = self._sample_ids(rng, table_index, n_queries)
        return np.bincount(ids, minlength=self.spec.tables[table_index].cardinality)
