"""Reader/writer for the Criteo click-log TSV format.

The paper trains on the Criteo Kaggle and Criteo Terabyte datasets, which
cannot ship with this repository.  This module makes the real data a
drop-in replacement for the synthetic substrate: it parses the published
TSV schema

    label \\t I1 ... I13 \\t C1 ... C26

(13 integer features, 26 categorical features as 8-hex-digit strings,
empty fields for missing values) into the same
:class:`~repro.data.synthetic.MiniBatch` the trainers consume, applying the
DLRM reference preprocessing: ``log(1 + x)`` on dense features (missing ->
0) and modulo-hashing of category ids into each table's vocabulary.

A writer is included that emits *synthetic* logs in the same schema, so
the reader has a self-contained round-trip test path and downstream tools
expecting Criteo files can be exercised without the real download.
"""

from __future__ import annotations

from collections.abc import Iterator
from pathlib import Path

import numpy as np

from repro.data.specs import DatasetSpec
from repro.data.synthetic import MiniBatch, SyntheticClickDataset
from repro.utils.validation import check_positive

__all__ = [
    "CRITEO_DENSE_FIELDS",
    "CRITEO_SPARSE_FIELDS",
    "parse_criteo_line",
    "read_criteo_batches",
    "write_synthetic_criteo_tsv",
]

CRITEO_DENSE_FIELDS = 13
CRITEO_SPARSE_FIELDS = 26
_N_FIELDS = 1 + CRITEO_DENSE_FIELDS + CRITEO_SPARSE_FIELDS


def parse_criteo_line(line: str) -> tuple[int, np.ndarray, np.ndarray]:
    """Parse one raw TSV line into ``(label, dense_raw, sparse_raw)``.

    Missing dense fields become 0; missing categorical fields become -1.
    Dense values are returned unpreprocessed (integers as float64); sparse
    values are the raw 32-bit ids parsed from hex.
    """
    fields = line.rstrip("\n").split("\t")
    if len(fields) != _N_FIELDS:
        raise ValueError(
            f"malformed Criteo line: expected {_N_FIELDS} fields, got {len(fields)}"
        )
    label = int(fields[0])
    if label not in (0, 1):
        raise ValueError(f"malformed Criteo label: {fields[0]!r}")
    dense = np.zeros(CRITEO_DENSE_FIELDS, dtype=np.float64)
    for i, field in enumerate(fields[1 : 1 + CRITEO_DENSE_FIELDS]):
        if field:
            dense[i] = int(field)
    sparse = np.full(CRITEO_SPARSE_FIELDS, -1, dtype=np.int64)
    for i, field in enumerate(fields[1 + CRITEO_DENSE_FIELDS :]):
        if field:
            sparse[i] = int(field, 16)
    return label, dense, sparse


def _preprocess_dense(raw: np.ndarray) -> np.ndarray:
    """DLRM reference preprocessing: clamp negatives to 0, then log1p."""
    return np.log1p(np.maximum(raw, 0.0)).astype(np.float32)


def read_criteo_batches(
    path: str | Path,
    batch_size: int,
    spec: DatasetSpec,
    max_batches: int | None = None,
) -> Iterator[MiniBatch]:
    """Stream mini-batches from a Criteo-format TSV file.

    Category ids are hashed into each table's vocabulary with the modulo
    trick the DLRM reference implementation uses; missing categories map
    to id 0.  A trailing partial batch is yielded as-is.
    """
    check_positive("batch_size", batch_size)
    if spec.n_tables != CRITEO_SPARSE_FIELDS or spec.n_dense != CRITEO_DENSE_FIELDS:
        raise ValueError(
            "spec must have 13 dense and 26 sparse features to read Criteo files"
        )
    cardinalities = spec.cardinalities()
    labels: list[int] = []
    dense_rows: list[np.ndarray] = []
    sparse_rows: list[np.ndarray] = []
    produced = 0

    def flush() -> MiniBatch:
        batch = MiniBatch(
            dense=_preprocess_dense(np.stack(dense_rows)),
            sparse=np.remainder(np.stack(sparse_rows), cardinalities).astype(np.int64),
            labels=np.asarray(labels, dtype=np.float32),
        )
        labels.clear()
        dense_rows.clear()
        sparse_rows.clear()
        return batch

    with open(path, encoding="ascii") as handle:
        for line in handle:
            if not line.strip():
                continue
            label, dense, sparse = parse_criteo_line(line)
            labels.append(label)
            dense_rows.append(dense)
            # Missing (-1) hashes to 0 under modulo after the +1 shift trick.
            sparse_rows.append(np.where(sparse < 0, 0, sparse))
            if len(labels) == batch_size:
                yield flush()
                produced += 1
                if max_batches is not None and produced >= max_batches:
                    return
    if labels:
        yield flush()


def write_synthetic_criteo_tsv(
    path: str | Path,
    dataset: SyntheticClickDataset,
    n_rows: int,
    batch_size: int = 1024,
    missing_rate: float = 0.0,
    seed: int = 0,
) -> int:
    """Write ``n_rows`` synthetic samples in the Criteo TSV schema.

    Dense floats are mapped to non-negative integers (the schema's type)
    via ``round(expm1(|x|))``-style scaling; categorical ids are rendered
    as 8-hex-digit strings.  ``missing_rate`` blanks fields at random to
    exercise missing-value handling.  Returns the number of rows written.
    """
    check_positive("n_rows", n_rows)
    if not 0 <= missing_rate < 1:
        raise ValueError(f"missing_rate must be in [0, 1), got {missing_rate}")
    rng = np.random.default_rng(seed)
    written = 0
    with open(path, "w", encoding="ascii") as handle:
        batch_index = 0
        while written < n_rows:
            take = min(batch_size, n_rows - written)
            batch = dataset.batch(take, batch_index=batch_index)
            batch_index += 1
            dense_ints = np.rint(np.expm1(np.abs(batch.dense))).astype(np.int64)
            for row in range(take):
                fields = [str(int(batch.labels[row]))]
                for value in dense_ints[row]:
                    missing = missing_rate and rng.random() < missing_rate
                    fields.append("" if missing else str(int(value)))
                for value in batch.sparse[row]:
                    missing = missing_rate and rng.random() < missing_rate
                    fields.append("" if missing else format(int(value), "08x"))
                handle.write("\t".join(fields) + "\n")
            written += take
    return written
