"""Synthetic Criteo-like data substrate."""

from repro.data.specs import (
    CRITEO_KAGGLE,
    CRITEO_TERABYTE,
    DatasetSpec,
    TableSpec,
    make_uniform_spec,
    scaled_spec,
)
from repro.data.criteo_format import (
    parse_criteo_line,
    read_criteo_batches,
    write_synthetic_criteo_tsv,
)
from repro.data.synthetic import MiniBatch, SyntheticClickDataset, zipf_probabilities

__all__ = [
    "TableSpec",
    "DatasetSpec",
    "CRITEO_KAGGLE",
    "CRITEO_TERABYTE",
    "scaled_spec",
    "make_uniform_spec",
    "MiniBatch",
    "SyntheticClickDataset",
    "zipf_probabilities",
    "parse_criteo_line",
    "read_criteo_batches",
    "write_synthetic_criteo_tsv",
]
