"""Dataset specifications: Criteo-like table layouts.

The Criteo datasets have 13 continuous features and 26 categorical features;
each categorical feature is served by one embedding table.  Cardinalities
below are the published vocabulary sizes of the Criteo Kaggle (Display
Advertising Challenge) dataset and the day-sampled Criteo Terabyte dataset —
the spread from single digits to millions is exactly Fig. 6 of the paper.

For laptop-scale simulation, :func:`scaled_spec` caps cardinalities while
preserving the *shape* of the size distribution (log-space scaling), the
property Fig. 6 and the table-wise analysis depend on.

Each table also carries the knobs the synthetic generator uses to plant the
paper's observed data regimes:

* ``zipf_exponent`` — query-frequency skew.  Large values concentrate
  lookups on few hot rows (vector homogenization, LZ-friendly: the paper's
  "EMB Table 5" case); values near zero give near-uniform queries.
* ``value_scale`` — embedding value spread.  Small scales produce
  concentrated Gaussian value histograms (entropy-friendly: the paper's
  "EMB Table 1" case).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "TableSpec",
    "DatasetSpec",
    "CRITEO_KAGGLE",
    "CRITEO_TERABYTE",
    "scaled_spec",
    "make_uniform_spec",
]

# Published vocabulary sizes of the Criteo Kaggle dataset (26 tables).
_KAGGLE_CARDINALITIES = [
    1460, 583, 10131227, 2202608, 305, 24, 12517, 633, 3, 93145, 5683,
    8351593, 3194, 27, 14992, 5461306, 10, 5652, 2173, 4, 7046547, 18, 15,
    286181, 105, 142572,
]

# Criteo Terabyte vocabulary sizes (subsampled days, as used by the DLRM
# reference implementation with max_ind_range lifted).
_TERABYTE_CARDINALITIES = [
    227605432, 39060, 17295, 7424, 20265, 3, 7122, 1543, 63, 130229467,
    3067956, 405282, 10, 2209, 11938, 155, 4, 976, 14, 292775614, 40790948,
    187188510, 590152, 12973, 108, 36,
]


@dataclass(frozen=True)
class TableSpec:
    """One embedding table's layout and planted data regime.

    ``value_distribution`` ("normal" = concentrated Gaussian histogram,
    "uniform" = broad dispersion) and ``n_clusters`` (> 0 plants near-
    duplicate rows that quantization homogenizes) drive the per-table
    contrasts of the paper's Table V and Tables III/IV.
    """

    table_id: int
    cardinality: int
    zipf_exponent: float = 1.2
    value_scale: float = 0.1
    value_distribution: str = "normal"
    n_clusters: int = 0

    def __post_init__(self) -> None:
        if self.cardinality < 1:
            raise ValueError(f"table {self.table_id}: cardinality must be >= 1")
        if self.zipf_exponent < 0:
            raise ValueError(f"table {self.table_id}: zipf_exponent must be >= 0")
        if self.value_scale <= 0:
            raise ValueError(f"table {self.table_id}: value_scale must be > 0")
        if self.value_distribution not in ("normal", "uniform", "laplace"):
            raise ValueError(
                f"table {self.table_id}: value_distribution must be 'normal', "
                f"'uniform' or 'laplace', got {self.value_distribution!r}"
            )
        if self.n_clusters < 0:
            raise ValueError(f"table {self.table_id}: n_clusters must be >= 0")


@dataclass(frozen=True)
class DatasetSpec:
    """A full dataset layout: dense features + embedding tables."""

    name: str
    tables: tuple[TableSpec, ...]
    n_dense: int = 13

    def __post_init__(self) -> None:
        if self.n_dense < 0:
            raise ValueError("n_dense must be >= 0")
        ids = [t.table_id for t in self.tables]
        if ids != list(range(len(ids))):
            raise ValueError("table ids must be consecutive from 0")

    @property
    def n_tables(self) -> int:
        return len(self.tables)

    def cardinalities(self) -> np.ndarray:
        return np.array([t.cardinality for t in self.tables], dtype=np.int64)


def _default_regimes(index: int, cardinality: int) -> tuple[float, float, str, int]:
    """Plant per-table regimes from the table's position and size.

    Small-cardinality tables naturally see heavy repetition; for the rest we
    rotate through skew, distribution, and cluster settings so every dataset
    contains LZ-friendly tables (hot repeats, broad values), entropy-friendly
    tables (unique rows, concentrated Gaussian values), and homogenizing
    tables (clustered near-duplicate rows) — the mix Table V and
    Tables III/IV of the paper observe.
    """
    if cardinality <= 64:
        zipf = 1.6  # tiny vocab: repeats are unavoidable
    else:
        zipf = (0.4, 1.0, 1.6, 2.2)[index % 4]
    # Chosen so quantization at the paper's bounds (0.01-0.05) yields
    # alphabets of roughly 8-60 bins — the regime where the LZ-vs-Huffman
    # contrast of Table V appears.
    value_scale = (0.08, 0.15, 0.3)[index % 3]
    # Rotate value distributions: heavy-tailed (strongly entropy-friendly)
    # on the low-skew tables, broad uniform dispersion every fourth index
    # (the "EMB Table 5" regime), Gaussian elsewhere.
    distribution = ("laplace", "normal", "uniform", "normal")[index % 4]
    # Every third table gets clustered rows -> planted homogenization.
    n_clusters = max(4, cardinality // 16) if (index % 3 == 0 and cardinality > 64) else 0
    return zipf, value_scale, distribution, n_clusters


def _build_spec(name: str, cardinalities: list[int]) -> DatasetSpec:
    tables = []
    for i, cardinality in enumerate(cardinalities):
        zipf, scale, distribution, n_clusters = _default_regimes(i, cardinality)
        tables.append(
            TableSpec(
                table_id=i,
                cardinality=cardinality,
                zipf_exponent=zipf,
                value_scale=scale,
                value_distribution=distribution,
                n_clusters=n_clusters,
            )
        )
    return DatasetSpec(name=name, tables=tuple(tables))


CRITEO_KAGGLE = _build_spec("criteo-kaggle", _KAGGLE_CARDINALITIES)
CRITEO_TERABYTE = _build_spec("criteo-terabyte", _TERABYTE_CARDINALITIES)


def scaled_spec(spec: DatasetSpec, max_cardinality: int, name: str | None = None) -> DatasetSpec:
    """Shrink a spec for simulation, preserving the size-distribution shape.

    Cardinalities are mapped in log space so the histogram of table sizes
    keeps its spread (Fig. 6's property): tables at or below the cap are
    untouched; larger ones compress the excess log-range into the cap.
    """
    if max_cardinality < 2:
        raise ValueError(f"max_cardinality must be >= 2, got {max_cardinality}")
    original_max = max(t.cardinality for t in spec.tables)
    if original_max <= max_cardinality:
        return spec if name is None else replace(spec, name=name)
    log_cap = np.log(max_cardinality)
    log_max = np.log(original_max)
    tables = []
    for t in spec.tables:
        if t.cardinality <= max_cardinality:
            tables.append(t)
            continue
        # Compress oversized tables into [cap^0.6, cap] in log space,
        # preserving their relative ordering.
        frac = (np.log(t.cardinality) - log_cap) / (log_max - log_cap)
        new_card = int(round(np.exp(log_cap * (0.6 + 0.4 * frac))))
        new_card = min(max(new_card, 2), max_cardinality)
        tables.append(replace(t, cardinality=new_card))
    return DatasetSpec(
        name=name if name is not None else f"{spec.name}-scaled{max_cardinality}",
        tables=tuple(tables),
        n_dense=spec.n_dense,
    )


def make_uniform_spec(
    name: str,
    n_tables: int,
    cardinality: int,
    n_dense: int = 13,
    zipf_exponent: float = 1.2,
    value_scale: float = 0.1,
) -> DatasetSpec:
    """A homogeneous spec for unit tests and micro-benchmarks."""
    tables = tuple(
        TableSpec(
            table_id=i,
            cardinality=cardinality,
            zipf_exponent=zipf_exponent,
            value_scale=value_scale,
        )
        for i in range(n_tables)
    )
    return DatasetSpec(name=name, tables=tables, n_dense=n_dense)
