"""Fig. 6 — EMB table sizes in Criteo Kaggle and Terabyte datasets.

The paper plots the per-table vocabulary sizes to motivate table-wise
error-bound configuration: sizes span from fewer than ten rows to over a
million.  This bench regenerates the size series from the published
cardinalities carried in the dataset specs.

Shape targets: both datasets span >5 orders of magnitude; Terabyte's
largest tables exceed Kaggle's.
"""

from __future__ import annotations

import numpy as np

from repro.data import CRITEO_KAGGLE, CRITEO_TERABYTE, scaled_spec
from repro.utils import format_table

from conftest import write_result


def test_fig06_table_sizes(benchmark):
    kaggle = CRITEO_KAGGLE.cardinalities()
    terabyte = CRITEO_TERABYTE.cardinalities()

    rows = [
        (t, int(kaggle[t]), int(terabyte[t])) for t in range(len(kaggle))
    ]
    summary = [
        ("min", int(kaggle.min()), int(terabyte.min())),
        ("max", int(kaggle.max()), int(terabyte.max())),
        ("spread (orders of magnitude)",
         f"{np.log10(kaggle.max() / kaggle.min()):.1f}",
         f"{np.log10(terabyte.max() / terabyte.min()):.1f}"),
    ]
    text = "\n\n".join(
        [
            format_table(
                ["EMB table", "Kaggle size", "Terabyte size"],
                rows,
                title="Fig. 6 - embedding-table sizes (published vocabulary sizes)",
            ),
            format_table(["statistic", "Kaggle", "Terabyte"], summary),
        ]
    )
    write_result("fig06_table_sizes", text)

    assert kaggle.min() < 10 and kaggle.max() > 1e6
    assert terabyte.max() > kaggle.max()
    assert np.log10(kaggle.max() / kaggle.min()) > 5
    assert np.log10(terabyte.max() / terabyte.min()) > 5

    # Timed kernel: the log-space scaling used for simulation worlds.
    benchmark(lambda: scaled_spec(CRITEO_TERABYTE, max_cardinality=4000))
