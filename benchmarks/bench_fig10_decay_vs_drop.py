"""Fig. 10 — gradual error-bound decay vs an abrupt drop.

The paper compares starting at 2x/3x the conservative bound and either
decaying stepwise to it (Decay_2x/3x) or holding the elevated bound and
dropping abruptly at the end of the initial phase (Drop_2x/3x).  Gradual
decay preserves convergence and yields 1.32x / 1.06x extra compression
ratio over the fixed-bound baseline on the two datasets.

Shape targets: decay runs converge at least as well as drop runs; both
harvest extra compression over the fixed bound, the drop slightly more (it
spends the whole phase at the top bound) — its cost is convergence, not
ratio.
"""

from __future__ import annotations

import numpy as np

from repro.adaptive import make_schedule
from repro.utils import format_table

from conftest import (
    ACCURACY_ITERATIONS,
    make_pipeline,
    train_reference_run,
    write_result,
)

PHASE = ACCURACY_ITERATIONS // 2


def test_fig10_decay_vs_drop(kaggle_world, benchmark):
    configs = {
        "fixed": None,
        "decay_2x": make_schedule("stepwise", initial_scale=2.0, phase_iterations=PHASE),
        "drop_2x": make_schedule("drop", initial_scale=2.0, phase_iterations=PHASE),
        "decay_3x": make_schedule("stepwise", initial_scale=3.0, phase_iterations=PHASE),
        "drop_3x": make_schedule("drop", initial_scale=3.0, phase_iterations=PHASE),
    }
    results = {}
    for name, schedule in configs.items():
        pipeline = make_pipeline(kaggle_world, schedule=schedule)
        history = train_reference_run(kaggle_world, pipeline.roundtrip)
        results[name] = {
            "accuracy": history.final_accuracy,
            "auc": history.aucs[-1],
            "loss": float(np.mean(history.losses[-10:])),
            "ratio": pipeline.mean_ratio(),
        }

    fixed_ratio = results["fixed"]["ratio"]
    rows = [
        (
            name,
            f"{r['accuracy']:.4f}",
            f"{r['auc']:.4f}",
            f"{r['loss']:.4f}",
            f"{r['ratio']:.2f}x",
            f"{r['ratio'] / fixed_ratio:.2f}x",
        )
        for name, r in results.items()
    ]
    text = format_table(
        ["schedule", "accuracy", "AUC", "final loss", "mean CR", "CR vs fixed"],
        rows,
        title="Fig. 10 - gradual decay vs abrupt drop (Kaggle world)",
    )
    write_result("fig10_decay_vs_drop", text)

    # Both adaptive schemes harvest extra ratio over the fixed bound...
    for name in ("decay_2x", "drop_2x", "decay_3x", "drop_3x"):
        assert results[name]["ratio"] > fixed_ratio, name
    # ...3x starts harvest more than 2x starts...
    assert results["decay_3x"]["ratio"] > results["decay_2x"]["ratio"]
    # ...and gradual decay does not converge worse than the abrupt drop
    # (the paper's reason to prefer it).
    assert results["decay_2x"]["loss"] <= results["drop_2x"]["loss"] + 0.01
    assert results["decay_3x"]["loss"] <= results["drop_3x"]["loss"] + 0.01
    # Decay keeps accuracy within noise of the fixed conservative bound.
    assert abs(results["decay_3x"]["accuracy"] - results["fixed"]["accuracy"]) < 0.03

    decay = configs["decay_3x"]
    benchmark(lambda: [decay(i) for i in range(ACCURACY_ITERATIONS)])
