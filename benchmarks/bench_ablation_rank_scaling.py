"""Ablation — does the compression win persist across cluster sizes?

The paper evaluates at up to 32 GPUs; this ablation sweeps the simulated
cluster over {8, 16, 32} ranks at a fixed global batch and checks that the
compressed pipeline keeps beating the uncompressed exchange at every
scale.

Shape targets: end-to-end speedup > 1 at every rank count; the
uncompressed per-iteration time falls with more ranks (strong scaling of
the bandwidth-bound exchange), and compression does not break that
scaling.

The **multi-node sweep** extends the Fig.-14 rank-scaling story to
heterogeneous topologies: 2x8 / 4x8 / 8x8 clusters with NVLink-class
intra-node links and an inter-node fabric axis (HDR-IB, PCIe-class, and
4:1-oversubscribed IB), trained with the compressed cross-stage-overlap
pipeline against the uncompressed baseline.  Setting
``REPRO_MULTINODE_SMOKE=1`` restricts the sweep to the smallest (2x8)
scenario for CI's perf-smoke job.
"""

from __future__ import annotations

import os

from repro.adaptive import AdaptiveController, OfflineAnalyzer
from repro.dist import (
    IB_HDR_LIKE,
    NVLINK_LIKE,
    PCIE_LIKE,
    ClusterSimulator,
    NetworkModel,
    Topology,
)
from repro.model import DLRM
from repro.train import CompressionPipeline, HybridParallelTrainer
from repro.utils import format_table

from conftest import write_result

RANK_COUNTS = (8, 16, 32)
#: large enough that per-rank messages stay bandwidth-bound at 32 ranks —
#: the regime the paper's production batches run in
GLOBAL_BATCH = 4096
ITERATIONS = 3

#: (label, n_nodes, gpus_per_node) — the multi-node scenario axis
MULTINODE_SCENARIOS = (("2x8", 2, 8), ("4x8", 4, 8), ("8x8", 8, 8))
#: inter-node fabric classes swept per scenario
INTER_FABRICS = (
    ("ib-hdr", IB_HDR_LIKE),
    ("pcie", PCIE_LIKE),
    ("ib-oversub-4x", IB_HDR_LIKE.oversubscribed(4.0)),
)
#: weak scaling: fixed per-rank sub-batch (production DLRM grows the
#: global batch with the cluster), keeping messages bandwidth-bound at
#: every scale — global batch = 256 * n_ranks
MULTINODE_LOCAL_BATCH = 256
MULTINODE_ITERATIONS = 2


def test_ablation_rank_scaling(kaggle_world, benchmark):
    plan = OfflineAnalyzer().analyze(kaggle_world.samples)

    rows = []
    per_iteration: dict[tuple[int, bool], float] = {}
    for n_ranks in RANK_COUNTS:
        for compressed in (False, True):
            simulator = ClusterSimulator(n_ranks)
            pipeline = (
                CompressionPipeline(AdaptiveController(plan)) if compressed else None
            )
            trainer = HybridParallelTrainer(
                DLRM(kaggle_world.config),
                kaggle_world.dataset,
                simulator,
                pipeline=pipeline,
                lr=0.2,
            )
            report = trainer.train(ITERATIONS, GLOBAL_BATCH)
            per_iteration[(n_ranks, compressed)] = report.iteration_seconds
        speedup = per_iteration[(n_ranks, False)] / per_iteration[(n_ranks, True)]
        rows.append(
            (
                n_ranks,
                f"{per_iteration[(n_ranks, False)] * 1e3:.3f} ms",
                f"{per_iteration[(n_ranks, True)] * 1e3:.3f} ms",
                f"{speedup:.2f}x",
            )
        )
    text = format_table(
        ["ranks", "baseline iter time", "compressed iter time", "e2e speedup"],
        rows,
        title=f"Ablation - scaling over cluster size (global batch {GLOBAL_BATCH})",
    )
    write_result("ablation_rank_scaling", text)

    for n_ranks in RANK_COUNTS:
        speedup = per_iteration[(n_ranks, False)] / per_iteration[(n_ranks, True)]
        assert speedup > 1.0, f"{n_ranks} ranks: {speedup:.2f}"
    # Strong scaling of the baseline: more ranks, less time per iteration.
    base_series = [per_iteration[(n, False)] for n in RANK_COUNTS]
    assert base_series == sorted(base_series, reverse=True)

    simulator = ClusterSimulator(8)
    trainer = HybridParallelTrainer(
        DLRM(kaggle_world.config), kaggle_world.dataset, simulator, lr=0.2
    )
    benchmark.pedantic(lambda: trainer.train_step(GLOBAL_BATCH, 0), rounds=3, iterations=1)


def _multinode_run(world, plan, n_nodes, gpus, inter, *, compressed):
    network = NetworkModel.from_topology(
        Topology.hierarchical(n_nodes, gpus, NVLINK_LIKE, inter)
    )
    simulator = ClusterSimulator(n_nodes * gpus, network=network)
    trainer = HybridParallelTrainer(
        DLRM(world.config),
        world.dataset,
        simulator,
        pipeline=CompressionPipeline(AdaptiveController(plan)) if compressed else None,
        lr=0.2,
        overlap="cross_stage" if compressed else False,
        allreduce_algorithm="hierarchical",
    )
    return trainer.train(MULTINODE_ITERATIONS, MULTINODE_LOCAL_BATCH * n_nodes * gpus)


def test_ablation_multinode_scaling(kaggle_world, benchmark):
    plan = OfflineAnalyzer().analyze(kaggle_world.samples)
    smoke = bool(os.environ.get("REPRO_MULTINODE_SMOKE"))
    scenarios = MULTINODE_SCENARIOS[:1] if smoke else MULTINODE_SCENARIOS

    rows = []
    speedups: dict[tuple[str, str], float] = {}
    base_iters: dict[tuple[str, str], float] = {}
    for label, n_nodes, gpus in scenarios:
        for fabric_label, inter in INTER_FABRICS:
            base = _multinode_run(
                kaggle_world, plan, n_nodes, gpus, inter, compressed=False
            )
            comp = _multinode_run(
                kaggle_world, plan, n_nodes, gpus, inter, compressed=True
            )
            key = (label, fabric_label)
            speedups[key] = base.iteration_seconds / comp.iteration_seconds
            base_iters[key] = base.iteration_seconds
            rows.append(
                (
                    label,
                    f"nvlink + {fabric_label}",
                    f"{base.iteration_seconds * 1e3:.3f} ms",
                    f"{comp.iteration_seconds * 1e3:.3f} ms",
                    f"{speedups[key]:.2f}x",
                    f"{comp.forward_compression_ratio:.1f}x",
                )
            )
    text = format_table(
        ["cluster", "fabric", "baseline iter", "compressed+cross-stage iter", "speedup", "fwd CR"],
        rows,
        title=(
            "Ablation - multi-node weak scaling on heterogeneous fabrics "
            f"(batch {MULTINODE_LOCAL_BATCH}/rank"
            + (", smoke: 2x8 only)" if smoke else ")")
        ),
    )
    write_result("ablation_multinode_scaling", text)

    # The compressed cross-stage pipeline wins on every scenario/fabric.
    for key, speedup in speedups.items():
        assert speedup > 1.0, f"{key}: {speedup:.2f}"
    for label, _, _ in scenarios:
        # A 4:1-oversubscribed inter fabric is never faster than full-rate
        # IB for the uncompressed baseline...
        assert base_iters[(label, "ib-oversub-4x")] >= base_iters[(label, "ib-hdr")]
        # ...and the thinner the wire, the more compression pays.
        assert speedups[(label, "ib-oversub-4x")] >= speedups[(label, "ib-hdr")]

    bench_inter = INTER_FABRICS[0][1]
    benchmark.pedantic(
        lambda: _multinode_run(
            kaggle_world, plan, 2, 8, bench_inter, compressed=True
        ),
        rounds=1,
        iterations=1,
    )


def _allreduce_run(world, plan, n_nodes, gpus, inter, *, codec, algorithm):
    """One multi-node training run with the dense all-reduce either left
    dense (``codec=None``) or routed through a homomorphic codec.  The
    embedding pipeline is identical on both sides, so any delta is the
    dense-gradient collective."""
    from repro.obs.runtime import capture

    topology = Topology.hierarchical(
        n_nodes,
        gpus,
        NVLINK_LIKE,
        inter,
        switch_aggregation=(algorithm == "switch"),
    )
    simulator = ClusterSimulator(
        n_nodes * gpus, network=NetworkModel.from_topology(topology)
    )
    trainer = HybridParallelTrainer(
        DLRM(world.config),
        world.dataset,
        simulator,
        pipeline=CompressionPipeline(AdaptiveController(plan)),
        lr=0.2,
        overlap="cross_stage",
        allreduce_algorithm=algorithm,
        allreduce_codec=codec,
        allreduce_error_bound=1e-3,
    )
    with capture() as registry:
        report = trainer.train(
            MULTINODE_ITERATIONS, MULTINODE_LOCAL_BATCH * n_nodes * gpus
        )
    return report, topology, registry.snapshot()


def test_ablation_homomorphic_allreduce(kaggle_world, benchmark):
    """Homomorphic (in-network aggregated) dense all-reduce vs the dense
    hierarchical baseline across multi-node fabrics: iteration time and
    inter-node wire bytes.  Under ``REPRO_MULTINODE_SMOKE=1`` only the
    4x8 oversubscribed-IB row runs — the strictly-fewer-inter-node-bytes
    assertion CI's perf-smoke job pins."""
    plan = OfflineAnalyzer().analyze(kaggle_world.samples)
    smoke = bool(os.environ.get("REPRO_MULTINODE_SMOKE"))
    scenarios = (("4x8", 4, 8),) if smoke else MULTINODE_SCENARIOS
    fabrics = (
        (INTER_FABRICS[2],) if smoke else INTER_FABRICS
    )  # smoke: ib-oversub-4x only
    dense_nbytes = sum(
        p.data.nbytes for p in DLRM(kaggle_world.config).mlp_parameters()
    )

    rows = []
    speedups: dict[tuple[str, str], float] = {}
    for label, n_nodes, gpus in scenarios:
        n = n_nodes * gpus
        for fabric_label, inter in fabrics:
            dense, topo, _ = _allreduce_run(
                kaggle_world, plan, n_nodes, gpus, inter,
                codec=None, algorithm="hierarchical",
            )
            # The gradient payload is bandwidth-bound, so the homomorphic
            # run rides the *same* hierarchical schedule — the win is
            # compressed bytes on every hop (switch aggregation wins the
            # latency-bound regime; the dist law tests pin that case).
            homo, _, snap = _allreduce_run(
                kaggle_world, plan, n_nodes, gpus, inter,
                codec="quant_sum", algorithm="hierarchical",
            )
            leaf_nbytes = int(
                snap.counter_value(
                    "comm_homomorphic_aggregated_bytes_total",
                    codec="quant_sum",
                    algorithm="hierarchical",
                )
                / (n * MULTINODE_ITERATIONS)
            )
            dense_inter = topo.all_reduce_inter_bytes(dense_nbytes, "hierarchical")
            homo_inter = topo.all_reduce_inter_bytes(leaf_nbytes, "hierarchical")
            key = (label, fabric_label)
            speedups[key] = dense.iteration_seconds / homo.iteration_seconds
            rows.append(
                (
                    label,
                    f"nvlink + {fabric_label}",
                    f"{dense.iteration_seconds * 1e3:.3f} ms",
                    f"{homo.iteration_seconds * 1e3:.3f} ms",
                    f"{speedups[key]:.2f}x",
                    f"{dense_inter / 1e6:.2f} MB",
                    f"{homo_inter / 1e6:.2f} MB",
                )
            )
            # The aggregated collective ships strictly fewer inter-node
            # bytes than the dense hierarchical all-reduce — on every
            # fabric, and in particular on 4x8 oversubscribed IB (the
            # CI smoke row).
            assert homo_inter < dense_inter, f"{key}: {homo_inter} >= {dense_inter}"
    text = format_table(
        [
            "cluster", "fabric", "dense allreduce iter", "homomorphic iter",
            "speedup", "dense inter-node", "homomorphic inter-node",
        ],
        rows,
        title=(
            "Ablation - homomorphic in-network all-reduce vs dense hierarchical "
            + ("(smoke: 4x8 ib-oversub-4x only)" if smoke else "(quant_sum, eb=1e-3)")
        ),
    )
    write_result("ablation_homomorphic_allreduce", text)

    # The homomorphic all-reduce beats the dense baseline end to end on
    # every multi-node fabric row (acceptance needs >= 1).
    for key, speedup in speedups.items():
        assert speedup > 1.0, f"{key}: {speedup:.2f}"

    bench_inter = INTER_FABRICS[2][1]
    benchmark.pedantic(
        lambda: _allreduce_run(
            kaggle_world, plan, 2, 8, bench_inter,
            codec="quant_sum", algorithm="switch",
        ),
        rounds=1,
        iterations=1,
    )
