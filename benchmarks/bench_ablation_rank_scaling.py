"""Ablation — does the compression win persist across cluster sizes?

The paper evaluates at up to 32 GPUs; this ablation sweeps the simulated
cluster over {8, 16, 32} ranks at a fixed global batch and checks that the
compressed pipeline keeps beating the uncompressed exchange at every
scale.

Shape targets: end-to-end speedup > 1 at every rank count; the
uncompressed per-iteration time falls with more ranks (strong scaling of
the bandwidth-bound exchange), and compression does not break that
scaling.
"""

from __future__ import annotations

from repro.adaptive import AdaptiveController, OfflineAnalyzer
from repro.dist import ClusterSimulator
from repro.model import DLRM
from repro.train import CompressionPipeline, HybridParallelTrainer
from repro.utils import format_table

from conftest import write_result

RANK_COUNTS = (8, 16, 32)
#: large enough that per-rank messages stay bandwidth-bound at 32 ranks —
#: the regime the paper's production batches run in
GLOBAL_BATCH = 4096
ITERATIONS = 3


def test_ablation_rank_scaling(kaggle_world, benchmark):
    plan = OfflineAnalyzer().analyze(kaggle_world.samples)

    rows = []
    per_iteration: dict[tuple[int, bool], float] = {}
    for n_ranks in RANK_COUNTS:
        for compressed in (False, True):
            simulator = ClusterSimulator(n_ranks)
            pipeline = (
                CompressionPipeline(AdaptiveController(plan)) if compressed else None
            )
            trainer = HybridParallelTrainer(
                DLRM(kaggle_world.config),
                kaggle_world.dataset,
                simulator,
                pipeline=pipeline,
                lr=0.2,
            )
            report = trainer.train(ITERATIONS, GLOBAL_BATCH)
            per_iteration[(n_ranks, compressed)] = report.iteration_seconds
        speedup = per_iteration[(n_ranks, False)] / per_iteration[(n_ranks, True)]
        rows.append(
            (
                n_ranks,
                f"{per_iteration[(n_ranks, False)] * 1e3:.3f} ms",
                f"{per_iteration[(n_ranks, True)] * 1e3:.3f} ms",
                f"{speedup:.2f}x",
            )
        )
    text = format_table(
        ["ranks", "baseline iter time", "compressed iter time", "e2e speedup"],
        rows,
        title=f"Ablation - scaling over cluster size (global batch {GLOBAL_BATCH})",
    )
    write_result("ablation_rank_scaling", text)

    for n_ranks in RANK_COUNTS:
        speedup = per_iteration[(n_ranks, False)] / per_iteration[(n_ranks, True)]
        assert speedup > 1.0, f"{n_ranks} ranks: {speedup:.2f}"
    # Strong scaling of the baseline: more ranks, less time per iteration.
    base_series = [per_iteration[(n, False)] for n in RANK_COUNTS]
    assert base_series == sorted(base_series, reverse=True)

    simulator = ClusterSimulator(8)
    trainer = HybridParallelTrainer(
        DLRM(kaggle_world.config), kaggle_world.dataset, simulator, lr=0.2
    )
    benchmark.pedantic(lambda: trainer.train_step(GLOBAL_BATCH, 0), rounds=3, iterations=1)
