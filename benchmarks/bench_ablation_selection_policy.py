"""Ablation — per-table encoder selection policy (Algorithm 2's value).

The hybrid compressor's defining choice is *which* lossless encoder each
table gets.  This ablation compares four policies on the end-to-end
compressed-transfer time (Eq.-2 aggregate over all tables):

* ``always_lz`` / ``always_huffman`` — single-encoder designs;
* ``best_ratio`` — pick the smaller payload per table (the "auto" hybrid);
* ``eq2_selected`` — Algorithm 2: pick per table by modelled speedup.

Shape targets: Algorithm 2 is optimal on its own objective (it can never
lose to the other policies on aggregate transfer time), and both per-table
policies beat at least one of the single-encoder designs — the reason the
paper builds a *hybrid* instead of shipping vector-LZ alone.
"""

from __future__ import annotations

from repro.adaptive import PAPER_A100_PROFILE
from repro.compression import EntropyCompressor, VectorLZCompressor
from repro.utils import GB, format_table

from conftest import write_result

ERROR_BOUND = 0.02
BANDWIDTH = 4 * GB


def _transfer_seconds(name: str, payload_len: int, raw_bytes: int) -> float:
    throughput = PAPER_A100_PROFILE.for_codec(name)
    return (
        payload_len / BANDWIDTH
        + raw_bytes / throughput.compress
        + raw_bytes / throughput.decompress
    )


def test_ablation_selection_policy(kaggle_world, benchmark):
    lz = VectorLZCompressor()
    entropy = EntropyCompressor()
    per_table = {}
    for table_id, batch in kaggle_world.samples.items():
        lz_payload = lz.compress(batch, ERROR_BOUND)
        huff_payload = entropy.compress(batch, ERROR_BOUND)
        per_table[table_id] = {
            "raw": batch.nbytes,
            "vector_lz": len(lz_payload),
            "entropy": len(huff_payload),
        }

    raw_total = sum(t["raw"] for t in per_table.values())

    def policy_time(select) -> tuple[float, float]:
        """(total transfer seconds, aggregate ratio) for a per-table policy."""
        seconds = 0.0
        compressed = 0
        for t in per_table.values():
            choice = select(t)
            seconds += _transfer_seconds(choice, t[choice], t["raw"])
            compressed += t[choice]
        return seconds, raw_total / compressed

    policies = {
        "always_lz": lambda t: "vector_lz",
        "always_huffman": lambda t: "entropy",
        "best_ratio": lambda t: min(("vector_lz", "entropy"), key=lambda c: t[c]),
        "eq2_selected": lambda t: min(
            ("vector_lz", "entropy"),
            key=lambda c: _transfer_seconds(c, t[c], t["raw"]),
        ),
    }
    results = {name: policy_time(select) for name, select in policies.items()}
    baseline_seconds = raw_total / BANDWIDTH

    rows = [
        (
            name,
            f"{ratio:.2f}x",
            f"{seconds * 1e3:.3f} ms",
            f"{baseline_seconds / seconds:.2f}x",
        )
        for name, (seconds, ratio) in results.items()
    ]
    text = format_table(
        ["policy", "aggregate CR", "transfer time", "speedup vs uncompressed"],
        rows,
        title="Ablation - per-table encoder selection policy (Kaggle world, Eq.2 costs)",
    )
    write_result("ablation_selection_policy", text)

    eq2_seconds = results["eq2_selected"][0]
    # Algorithm 2 is optimal for its objective.
    for name, (seconds, _) in results.items():
        assert eq2_seconds <= seconds + 1e-12, name
    # A per-table policy beats at least one single-encoder design
    # (the motivation for hybridizing).
    single_best = min(results["always_lz"][0], results["always_huffman"][0])
    assert eq2_seconds <= single_best
    # best_ratio achieves the best aggregate CR of all policies.
    assert results["best_ratio"][1] >= max(r[1] for r in results.values()) - 1e-12

    batch = kaggle_world.samples[0]
    benchmark.pedantic(lambda: lz.compress(batch, ERROR_BOUND), rounds=10, iterations=1)
