"""Fig. 11 — compression ratio, throughput, and communication speedup.

The paper's headline compressor comparison: average compression ratio over
training-sampled lookups on both datasets, modelled device throughputs,
and the Eq.-2 end-to-end communication speedup at a 4 GB/s all-to-all
(ours: 11.2x / 19.9x CR and 6.22x / 8.6x speedup on Kaggle / Terabyte).

Shape targets: the hybrid compressor has the highest ratio and the highest
Eq.-2 speedup on both datasets; FZ-GPU-like has the highest throughput but
a much lower ratio; the generic byte-LZ baselines trail far behind;
Terabyte ratios exceed Kaggle ratios (bigger batches -> more matches).
"""

from __future__ import annotations

import numpy as np

from repro.adaptive import PAPER_A100_PROFILE
from repro.compression import get_compressor
from repro.utils import GB, format_table

from conftest import write_result

ERROR_BOUND = 0.02  # the paper's fixed global bound for this comparison
BANDWIDTH = 4 * GB
CODECS = (
    "hybrid",
    "vector_lz",
    "entropy",
    "cusz_like",
    "fzgpu_like",
    "lz4_like",
    "deflate_like",
    "fp16",
    "fp8",
)


def _evaluate(world) -> dict[str, dict[str, float]]:
    from repro.compression.base import parse_payload

    results: dict[str, dict[str, float]] = {}
    for name in CODECS:
        codec = get_compressor(name)
        original = 0
        compressed = 0
        # The hybrid runs each table on its winning leg, so its compute cost
        # is that leg's throughput for that table's bytes; accumulate the
        # compressed-transfer time per table instead of using one profile.
        transfer_seconds = 0.0
        for batch in world.samples.values():
            payload = codec.compress(batch, ERROR_BOUND if codec.error_bounded else None)
            original += batch.nbytes
            compressed += len(payload)
            leg = parse_payload(payload)[0]["codec"] if name == "hybrid" else name
            throughput = PAPER_A100_PROFILE.for_codec(leg)
            transfer_seconds += (
                len(payload) / BANDWIDTH
                + batch.nbytes / throughput.compress
                + batch.nbytes / throughput.decompress
            )
        ratio = original / compressed
        throughput = PAPER_A100_PROFILE.for_codec(name)
        results[name] = {
            "ratio": ratio,
            "tc": throughput.compress,
            "td": throughput.decompress,
            # Eq. 2 on the aggregate: baseline wire time over compressed
            # pipeline time (identical to communication_speedup for a
            # single-leg codec).
            "speedup": (original / BANDWIDTH) / transfer_seconds,
        }
    return results


def test_fig11_compression_performance(both_worlds, benchmark):
    all_results = {world.name: _evaluate(world) for world in both_worlds}

    sections = []
    for world_name, results in all_results.items():
        rows = [
            (
                name,
                f"{r['ratio']:.2f}x",
                f"{r['tc'] / GB:.1f}",
                f"{r['td'] / GB:.1f}",
                f"{r['speedup']:.2f}x",
            )
            for name, r in sorted(results.items(), key=lambda kv: -kv[1]["speedup"])
        ]
        sections.append(
            format_table(
                ["codec", "avg CR", "Tc (GiB/s, modelled)", "Td (GiB/s, modelled)", "Eq.2 speedup @4GB/s"],
                rows,
                title=f"Fig. 11 - compression performance ({world_name} world, EB {ERROR_BOUND})",
            )
        )
    write_result("fig11_compression_perf", "\n\n".join(sections))

    for world_name, results in all_results.items():
        best_ratio = max(results.values(), key=lambda r: r["ratio"])["ratio"]
        # The hybrid has the best ratio and (near-)best Eq.-2 speedup; the
        # "auto" hybrid optimizes payload size per table, so a pure
        # vector-LZ run can edge it by a hair when the entropy leg's slower
        # decode outweighs its ratio gain.
        assert results["hybrid"]["ratio"] == best_ratio, world_name
        best_speedup = max(r["speedup"] for r in results.values())
        assert results["hybrid"]["speedup"] >= 0.95 * best_speedup, world_name
        # Paper: ours lands at 11.2x (Kaggle) / 19.9x (Terabyte): same regime.
        assert 5.0 < results["hybrid"]["ratio"] < 80.0, world_name
        # Error-bounded lossy beats the lossless byte-LZ baselines by a lot.
        assert results["hybrid"]["ratio"] > 3 * results["lz4_like"]["ratio"], world_name
        assert results["hybrid"]["ratio"] > 3 * results["deflate_like"]["ratio"], world_name
        # FZ-GPU-like: fastest device throughput, clearly lower ratio.
        assert results["fzgpu_like"]["tc"] >= max(
            r["tc"] for n, r in results.items() if n not in ("fp16", "fp8")
        )
        assert results["fzgpu_like"]["ratio"] < results["hybrid"]["ratio"] / 1.5
        # Communication speedup of ours exceeds the low-precision casts'.
        assert results["hybrid"]["speedup"] > results["fp16"]["speedup"]
        assert results["hybrid"]["speedup"] > results["fp8"]["speedup"]

    # Terabyte (batch 2048) compresses better than Kaggle (batch 128):
    # the paper's 19.9x vs 11.2x ordering.
    assert (
        all_results["terabyte"]["hybrid"]["ratio"]
        > all_results["kaggle"]["hybrid"]["ratio"]
    )

    hybrid = get_compressor("hybrid")
    batch = both_worlds[0].samples[0]
    benchmark.pedantic(lambda: hybrid.compress(batch, ERROR_BOUND), rounds=10, iterations=1)
