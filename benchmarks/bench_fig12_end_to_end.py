"""Fig. 12 — end-to-end DLRM training breakdown with lossy compression.

The paper reports that compressing the forward all-to-all shrinks it from
31.3 % of training time to 5.03 %, yielding 6.22x communication and 1.30x
end-to-end speedups on Criteo Kaggle (8.6x / 1.38x on Terabyte).

The simulation includes costs the paper's Eq.-2 headline omits (metadata
round latency, sub-saturation kernel efficiency), so the pipeline's
communication speedup here is smaller; the *shape* targets are: forward
all-to-all share shrinks by >2x, end-to-end speedup > 1, and compression /
decompression overheads stay well below the bandwidth saved.
"""

from __future__ import annotations

from repro.dist.timeline import EventCategory
from repro.profiling import breakdown_report, compare_runs
from repro.utils import format_table

from conftest import write_result


def test_fig12_end_to_end_breakdown(cluster_runs, benchmark):
    base = cluster_runs.baseline
    comp = cluster_runs.compressed

    summary = compare_runs(base.category_seconds, comp.category_seconds)
    base_total = sum(base.category_seconds.values())
    comp_total = sum(comp.category_seconds.values())
    fwd_share_base = base.category_seconds[EventCategory.ALLTOALL_FWD] / base_total
    fwd_share_comp = comp.category_seconds[EventCategory.ALLTOALL_FWD] / comp_total

    rows = [
        ("forward all-to-all share (baseline)", f"{fwd_share_base * 100:.2f}%"),
        ("forward all-to-all share (compressed)", f"{fwd_share_comp * 100:.2f}%"),
        ("forward-exchange compression ratio", f"{comp.forward_compression_ratio:.2f}x"),
        ("forward-exchange pipeline speedup", f"{summary.communication:.2f}x"),
        ("end-to-end training speedup", f"{summary.end_to_end:.2f}x"),
        (
            "paper (Kaggle): fwd share 31.3% -> 5.03%, comm 6.22x, e2e 1.30x",
            "(Eq.-2 headline; see fig11)",
        ),
    ]
    text = "\n\n".join(
        [
            breakdown_report(base.category_seconds, title="Fig. 12 - baseline breakdown"),
            breakdown_report(comp.category_seconds, title="Fig. 12 - compressed breakdown"),
            format_table(["metric", "value"], rows, title="Fig. 12 - headline numbers"),
        ]
    )
    write_result("fig12_end_to_end", text)

    # Shape: the forward all-to-all share collapses...
    assert fwd_share_comp < fwd_share_base / 2
    # ...the pipeline beats the raw exchange...
    assert summary.communication > 1.3
    # ...and training gets faster end to end.
    assert summary.end_to_end > 1.05
    # Compression overheads must not eat the savings.
    overhead = comp.category_seconds[EventCategory.COMPRESS] + comp.category_seconds[
        EventCategory.DECOMPRESS
    ]
    saved = base.category_seconds[EventCategory.ALLTOALL_FWD] - comp.category_seconds[
        EventCategory.ALLTOALL_FWD
    ]
    assert overhead < saved
    # Accuracy is not wrecked by compression at these bounds.
    base_losses = base.history.losses
    comp_losses = comp.history.losses
    assert abs(base_losses[-1] - comp_losses[-1]) < 0.05

    benchmark(lambda: compare_runs(base.category_seconds, comp.category_seconds))
