"""Fig. 12 — end-to-end DLRM training breakdown with lossy compression.

The paper reports that compressing the forward all-to-all shrinks it from
31.3 % of training time to 5.03 %, yielding 6.22x communication and 1.30x
end-to-end speedups on Criteo Kaggle (8.6x / 1.38x on Terabyte).

The simulation includes costs the paper's Eq.-2 headline omits (metadata
round latency, sub-saturation kernel efficiency), so the pipeline's
communication speedup here is smaller; the *shape* targets are: forward
all-to-all share shrinks by >2x, end-to-end speedup > 1, and compression /
decompression overheads stay well below the bandwidth saved.

Three scenario extensions beyond the paper's figure: the communicator's
chunk-pipelined stream-overlap mode (compression hiding behind the wire —
the paper's future-work NCCL integration) must not lose end to end,
cross-stage overlap (backward exchange issued before the bottom-MLP
backward kernels) must not lose against within-exchange overlap, and a
heterogeneous NVLink+IB topology must price the same forward byte matrix
above any flat model built from the intra-node link.
"""

from __future__ import annotations

import numpy as np

from repro.dist import NVLINK_LIKE, NetworkModel, Topology
from repro.dist.timeline import EventCategory
from repro.profiling import (
    breakdown_report,
    chunk_pipeline_report,
    compare_runs,
    overlap_efficiency,
)
from repro.utils import format_table

from conftest import write_result


def test_fig12_end_to_end_breakdown(cluster_runs, benchmark):
    base = cluster_runs.baseline
    comp = cluster_runs.compressed

    summary = compare_runs(base.category_seconds, comp.category_seconds)
    over = cluster_runs.overlapped
    cross = cluster_runs.cross_stage
    base_total = sum(base.category_seconds.values())
    comp_total = sum(comp.category_seconds.values())
    fwd_share_base = base.category_seconds[EventCategory.ALLTOALL_FWD] / base_total
    fwd_share_comp = comp.category_seconds[EventCategory.ALLTOALL_FWD] / comp_total

    # Scenario rows: overlap on/off and hierarchical-vs-flat fabric pricing
    # of one iteration's forward byte matrix.
    n = comp.n_ranks
    per_pair = comp.forward_wire_bytes / comp.n_iterations / (n * n)
    wire_matrix = np.full((n, n), per_pair)
    hetero = NetworkModel.from_topology(Topology.hierarchical(4, n // 4))
    intra_flat = NetworkModel(
        bandwidth=NVLINK_LIKE.bandwidth, latency=NVLINK_LIKE.latency
    )
    hetero_seconds = hetero.all_to_all_time(wire_matrix)
    intra_seconds = intra_flat.all_to_all_time(wire_matrix)

    # Homomorphic dense all-reduce scenario row: this model's dense
    # MLP-gradient collective on the same NVLink+IB topology, dense
    # float32 vs quant_sum payloads aggregated in compressed space over
    # the identical hierarchical schedule — the integer codes ship ~4x
    # fewer bytes on every hop.
    from repro.compression.registry import get_compressor
    from repro.model import DLRM as _DLRM

    mlp_nbytes = sum(
        p.data.nbytes for p in _DLRM(cluster_runs.config).mlp_parameters()
    )
    grad_rng = np.random.default_rng(12)
    grad = np.asarray(
        grad_rng.normal(0.0, 0.05, size=(1, mlp_nbytes // 4)), dtype=np.float32
    )
    quant_payload = get_compressor("quant_sum").compress(grad, 1e-3)
    dense_allreduce = hetero.topology.hierarchical_all_reduce_time(mlp_nbytes)
    homo_allreduce = hetero.topology.hierarchical_all_reduce_time(len(quant_payload))

    rows = [
        ("forward all-to-all share (baseline)", f"{fwd_share_base * 100:.2f}%"),
        ("forward all-to-all share (compressed)", f"{fwd_share_comp * 100:.2f}%"),
        ("forward-exchange compression ratio", f"{comp.forward_compression_ratio:.2f}x"),
        ("forward-exchange pipeline speedup", f"{summary.communication:.2f}x"),
        ("end-to-end training speedup", f"{summary.end_to_end:.2f}x"),
        ("end-to-end speedup from stream overlap", f"{comp.makespan / over.makespan:.3f}x"),
        ("end-to-end speedup from cross-stage overlap", f"{comp.makespan / cross.makespan:.3f}x"),
        ("wire hidden behind compute (overlap on)", f"{overlap_efficiency(over.timeline) * 100:.1f}%"),
        ("wire hidden behind compute (cross-stage)", f"{overlap_efficiency(cross.timeline) * 100:.1f}%"),
        (
            "chunk-pipeline wire hidden (rank 0, cross-stage)",
            f"{chunk_pipeline_report(cross.timeline)[0]['hidden_fraction'] * 100:.1f}%",
        ),
        ("fwd exchange on NVLink+IB topology", f"{hetero_seconds * 1e6:.1f} us"),
        ("fwd exchange on flat NVLink fabric", f"{intra_seconds * 1e6:.1f} us"),
        ("dense-grad all-reduce, NVLink+IB (dense fp32)", f"{dense_allreduce * 1e6:.1f} us"),
        ("dense-grad all-reduce, NVLink+IB (homomorphic quant_sum)", f"{homo_allreduce * 1e6:.1f} us"),
        (
            "paper (Kaggle): fwd share 31.3% -> 5.03%, comm 6.22x, e2e 1.30x",
            "(Eq.-2 headline; see fig11)",
        ),
    ]
    text = "\n\n".join(
        [
            breakdown_report(base.category_seconds, title="Fig. 12 - baseline breakdown"),
            breakdown_report(comp.category_seconds, title="Fig. 12 - compressed breakdown"),
            format_table(["metric", "value"], rows, title="Fig. 12 - headline numbers"),
        ]
    )
    write_result("fig12_end_to_end", text)

    # Shape: the forward all-to-all share collapses...
    assert fwd_share_comp < fwd_share_base / 2
    # ...the pipeline beats the raw exchange...
    assert summary.communication > 1.3
    # ...and training gets faster end to end.
    assert summary.end_to_end > 1.05
    # Compression overheads must not eat the savings.
    overhead = comp.category_seconds[EventCategory.COMPRESS] + comp.category_seconds[
        EventCategory.DECOMPRESS
    ]
    saved = base.category_seconds[EventCategory.ALLTOALL_FWD] - comp.category_seconds[
        EventCategory.ALLTOALL_FWD
    ]
    assert overhead < saved
    # Accuracy is not wrecked by compression at these bounds.
    base_losses = base.history.losses
    comp_losses = comp.history.losses
    assert abs(base_losses[-1] - comp_losses[-1]) < 0.05
    # Stream overlap never loses end to end, hides real wire time, and
    # leaves the numerics bit-identical.
    assert over.makespan <= comp.makespan + 1e-12
    assert overlap_efficiency(over.timeline) > 0.0
    assert over.history.losses == comp.history.losses
    # Cross-stage overlap stacks on top: never loses to within-exchange
    # overlap, hides wire in the chunk pipeline, numerics still identical.
    assert cross.makespan <= over.makespan + 1e-12
    assert cross.history.losses == comp.history.losses
    assert chunk_pipeline_report(cross.timeline)[0]["hidden_fraction"] > 0.0
    # A heterogeneous topology prices the same byte matrix strictly above
    # the flat model built from its fast intra-node link.
    assert hetero_seconds > intra_seconds
    # The homomorphic payload beats the dense all-reduce on the same
    # schedule — compressed bytes on every hop, no intermediate decode.
    assert homo_allreduce < dense_allreduce

    benchmark(lambda: compare_runs(base.category_seconds, comp.category_seconds))
