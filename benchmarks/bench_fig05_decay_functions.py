"""Fig. 5 — accuracy and compression ratio under different decay functions.

The paper compares error-bound decay functions (logarithmic, stepwise,
linear) and picks stepwise as the default: it yields the largest
compression benefit while the model still converges.

Shape targets: every decay run converges to within noise of the
fixed-bound run's accuracy; stepwise's mean compression ratio is the
highest of the decay functions (its multiplier dominates pointwise).
"""

from __future__ import annotations

import numpy as np

from repro.adaptive import make_schedule
from repro.utils import format_table

from conftest import (
    ACCURACY_ITERATIONS,
    make_pipeline,
    train_reference_run,
    write_result,
)

PHASE = ACCURACY_ITERATIONS // 2
INITIAL_SCALE = 2.0


def test_fig05_decay_functions(kaggle_world, benchmark):
    schedules = {
        "constant": None,
        "stepwise": make_schedule("stepwise", initial_scale=INITIAL_SCALE, phase_iterations=PHASE),
        "linear": make_schedule("linear", initial_scale=INITIAL_SCALE, phase_iterations=PHASE),
        "logarithmic": make_schedule(
            "logarithmic", initial_scale=INITIAL_SCALE, phase_iterations=PHASE
        ),
    }
    results = {}
    for name, schedule in schedules.items():
        pipeline = make_pipeline(kaggle_world, schedule=schedule)
        history = train_reference_run(kaggle_world, pipeline.roundtrip)
        results[name] = {
            "accuracy": history.final_accuracy,
            "auc": history.aucs[-1],
            "loss": float(np.mean(history.losses[-10:])),
            "ratio": pipeline.mean_ratio(),
        }

    rows = [
        (
            name,
            f"{r['accuracy']:.4f}",
            f"{r['auc']:.4f}",
            f"{r['loss']:.4f}",
            f"{r['ratio']:.2f}x",
        )
        for name, r in results.items()
    ]
    text = format_table(
        ["decay function", "final accuracy", "AUC", "final loss", "mean CR"],
        rows,
        title=(
            "Fig. 5 - accuracy & compression ratio per decay function "
            f"(initial scale {INITIAL_SCALE}, phase {PHASE}/{ACCURACY_ITERATIONS} iters)"
        ),
    )
    write_result("fig05_decay_functions", text)

    # Every decay run converges (accuracy within noise of the fixed bound).
    for name in ("stepwise", "linear", "logarithmic"):
        assert results[name]["accuracy"] > results["constant"]["accuracy"] - 0.03, name
    # Decay buys compression over the fixed bound...
    for name in ("stepwise", "linear", "logarithmic"):
        assert results[name]["ratio"] > results["constant"]["ratio"] * 1.005, name
    # ...and stepwise (the paper's default) harvests the most of the three.
    assert results["stepwise"]["ratio"] >= results["linear"]["ratio"] - 1e-9
    assert results["stepwise"]["ratio"] >= results["logarithmic"]["ratio"] - 1e-9

    stepwise = schedules["stepwise"]
    benchmark(lambda: [stepwise(i) for i in range(ACCURACY_ITERATIONS)])
