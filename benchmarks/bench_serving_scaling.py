"""Serving-tier scaling: compressed vs raw delta publication under load.

This benchmark prices the full trainer -> publisher -> replica loop the
``repro.serve`` subsystem adds: a hybrid-parallel trainer takes a few
steps, a :class:`~repro.serve.publisher.DeltaPublisher` ships the
per-table embedding deltas to the compressed shard tier (compressed under
the adaptive controller's per-table bounds, or raw), and an open-loop
Poisson workload of Criteo-shaped lookups is served across replica
counts, cache sizes, and NVLink/IB/PCIe fabrics.

Per row it reports sustained QPS, p50/p99 latency, cache hit rate, and
the publication's wire bytes; the headline metric is **QPS per published
megabyte** — freshness bought per unit of publication bandwidth — where
compressed delta publication must strictly beat raw publication on the
multi-node fabrics (the acceptance criterion of the serving PR).

Setting ``REPRO_SERVE_SMOKE=1`` restricts the sweep to the smallest
2-replica scenario for CI's perf-smoke job.
"""

from __future__ import annotations

import os

import pytest

from repro.adaptive import AdaptiveController, OfflineAnalyzer
from repro.data import CRITEO_KAGGLE, SyntheticClickDataset, scaled_spec
from repro.dist import (
    IB_HDR_LIKE,
    NVLINK_LIKE,
    PCIE_LIKE,
    ClusterSimulator,
    NetworkModel,
    Topology,
)
from repro.model import DLRM, DLRMConfig
from repro.serve import RequestLoadGenerator, ServingSimulator, build_serving_tier
from repro.train import CompressionPipeline, HybridParallelTrainer
from repro.utils import format_table

from conftest import MAX_CARDINALITY, SEED, write_result

TRAIN_ITERATIONS = 2
TRAIN_BATCH = 128
TRAIN_RANKS = 4
ROWS_PER_BLOCK = 128
N_REQUESTS = 900
QPS_PER_REPLICA = 6000.0
EMBEDDING_DIM = 32

#: (label, inter link or None for a flat NVLink fabric); the hierarchical
#: fabrics put replicas on node 0 and shard nodes on node 1, so every
#: cache miss crosses the inter-node link — the multi-node scenarios.
FABRICS = [
    ("nvlink-flat", None),
    ("nvlink+ib-hdr", IB_HDR_LIKE),
    ("nvlink+pcie", PCIE_LIKE),
]

#: (scenario label, fabric label, n_replicas (= n_shard_ranks), cache_rows,
#: compressed publication) — replica-count, cache-size, and publication
#: axes around the (4 replicas, 4096 rows) center point.
SCENARIOS = [
    ("2-replica", "nvlink+ib-hdr", 2, 4096, True),
    ("2-replica", "nvlink+ib-hdr", 2, 4096, False),
    ("4-replica", "nvlink-flat", 4, 4096, True),
    ("4-replica", "nvlink-flat", 4, 4096, False),
    ("4-replica", "nvlink+ib-hdr", 4, 4096, True),
    ("4-replica", "nvlink+ib-hdr", 4, 4096, False),
    ("4-replica", "nvlink+pcie", 4, 4096, True),
    ("4-replica", "nvlink+pcie", 4, 4096, False),
    ("4-replica/small-cache", "nvlink+ib-hdr", 4, 512, True),
    ("4-replica/mid-cache", "nvlink+ib-hdr", 4, 2048, True),
    ("8-replica", "nvlink+ib-hdr", 8, 4096, True),
]

SMOKE_SCENARIOS = SCENARIOS[:2]


def fabric_network(label: str, n_replicas: int) -> NetworkModel:
    inter = dict(FABRICS)[label]
    if inter is None:
        return NetworkModel.from_topology(Topology.flat(2 * n_replicas, NVLINK_LIKE))
    return NetworkModel.from_topology(
        Topology.hierarchical(2, n_replicas, NVLINK_LIKE, inter)
    )


class ServingRuns:
    """All scenario runs over one trained model (built once per session)."""

    def __init__(self, smoke: bool):
        self.smoke = smoke
        scenarios = SMOKE_SCENARIOS if smoke else SCENARIOS
        self.spec = scaled_spec(CRITEO_KAGGLE, max_cardinality=MAX_CARDINALITY)
        self.dataset = SyntheticClickDataset(self.spec, seed=SEED, teacher_scale=3.0)
        self.config = DLRMConfig.from_dataset(
            self.spec,
            embedding_dim=EMBEDDING_DIM,
            bottom_hidden=(64, 32),
            top_hidden=(64, 32),
            seed=SEED + 1,
        )
        model = DLRM(self.config)
        batch = self.dataset.batch(256, batch_index=10_000_000)
        samples = {
            j: model.lookup(j, batch.sparse[:, j]) for j in range(self.spec.n_tables)
        }
        plan = OfflineAnalyzer().analyze(samples)
        self.trainer = HybridParallelTrainer(
            model,
            self.dataset,
            ClusterSimulator(TRAIN_RANKS),
            pipeline=CompressionPipeline(AdaptiveController(plan)),
            lr=0.2,
        )
        # Every tier snapshots the *pre-training* model state, so each
        # publisher ships the identical training delta — compressed vs raw
        # publication differ only in the publication path.
        self.tiers = {}
        for key in scenarios:
            _, fabric, n_replicas, cache_rows, compressed = key
            inter = dict(FABRICS)[fabric]
            publication_link = inter if inter is not None else NVLINK_LIKE
            self.tiers[key] = build_serving_tier(
                self.trainer,
                n_shard_ranks=n_replicas,
                n_replicas=n_replicas,
                cache_rows=cache_rows,
                rows_per_block=ROWS_PER_BLOCK,
                publication_network=NetworkModel(
                    bandwidth=publication_link.bandwidth,
                    latency=publication_link.latency,
                ),
                compress_publication=compressed,
            )
        self.trainer.train(TRAIN_ITERATIONS, TRAIN_BATCH * TRAIN_RANKS)
        self.publications = {
            key: tier.publisher.publish(iteration=TRAIN_ITERATIONS)
            for key, tier in self.tiers.items()
        }
        self.reports = {}
        for key, tier in self.tiers.items():
            _, fabric, n_replicas, cache_rows, _ = key
            serving = ServingSimulator(
                tier.replicas, self.config, network=fabric_network(fabric, n_replicas)
            )
            loadgen = RequestLoadGenerator(
                self.dataset, qps=QPS_PER_REPLICA * n_replicas, seed=SEED
            )
            self.reports[key] = serving.run(
                loadgen.generate(N_REQUESTS),
                replica_available_at=self.publications[key].downtime_seconds,
            )

    def qps_per_megabyte(self, key) -> float:
        return self.reports[key].sustained_qps / (
            self.publications[key].wire_nbytes / 1e6
        )


@pytest.fixture(scope="session")
def serving_runs() -> ServingRuns:
    return ServingRuns(smoke=bool(os.environ.get("REPRO_SERVE_SMOKE")))


def test_serving_scaling_report(serving_runs):
    rows = []
    for key in serving_runs.reports:
        scenario, fabric, n_replicas, cache_rows, compressed = key
        report = serving_runs.reports[key]
        publication = serving_runs.publications[key]
        rows.append(
            (
                scenario,
                fabric,
                "compressed" if compressed else "raw",
                cache_rows,
                f"{report.sustained_qps:.0f}",
                f"{report.p50_latency * 1e6:.1f} us",
                f"{report.p99_latency * 1e6:.1f} us",
                f"{report.cache_hit_rate:.1%}",
                f"{publication.wire_nbytes / 1e3:.1f} KB",
                f"{serving_runs.qps_per_megabyte(key):.0f}",
            )
        )
    text = format_table(
        [
            "scenario",
            "fabric",
            "publication",
            "cache rows",
            "QPS",
            "p50",
            "p99",
            "hit rate",
            "pub wire",
            "QPS/MB",
        ],
        rows,
        title=(
            "Serving scaling - compressed vs raw delta publication "
            f"({N_REQUESTS} requests/row, {QPS_PER_REPLICA:.0f} QPS/replica"
            + (", smoke)" if serving_runs.smoke else ")")
        ),
    )
    write_result("serving_scaling", text)


def test_rows_are_sane(serving_runs):
    for key, report in serving_runs.reports.items():
        assert report.n_requests == N_REQUESTS, key
        assert 0 < report.p50_latency <= report.p99_latency, key
        assert 0.0 < report.cache_hit_rate < 1.0, key
        assert report.sustained_qps > 0, key


def test_compressed_publication_ships_fewer_bytes(serving_runs):
    """Same training delta, same fabric: the compressed publisher must ship
    strictly fewer bytes on every compressed/raw pair."""
    pairs = 0
    for key, publication in serving_runs.publications.items():
        scenario, fabric, n_replicas, cache_rows, compressed = key
        if not compressed:
            continue
        raw_key = (scenario, fabric, n_replicas, cache_rows, False)
        if raw_key not in serving_runs.publications:
            continue
        raw = serving_runs.publications[raw_key]
        assert publication.wire_nbytes < raw.wire_nbytes, key
        assert publication.raw_nbytes == raw.raw_nbytes, key
        assert publication.compression_ratio > 2.0, key
        pairs += 1
    assert pairs >= 1


def test_compressed_beats_raw_qps_per_byte_on_multinode_fabrics(serving_runs):
    """The acceptance criterion: on every multi-node fabric in the sweep,
    compressed delta publication sustains strictly more QPS per published
    byte than raw publication."""
    checked = 0
    for key in serving_runs.publications:
        scenario, fabric, n_replicas, cache_rows, compressed = key
        if not compressed or fabric == "nvlink-flat":
            continue
        raw_key = (scenario, fabric, n_replicas, cache_rows, False)
        if raw_key not in serving_runs.publications:
            continue
        assert serving_runs.qps_per_megabyte(key) > serving_runs.qps_per_megabyte(
            raw_key
        ), key
        checked += 1
    assert checked >= 1  # at least one multi-node compressed/raw pair ran


def test_staleness_bounded_after_publication(serving_runs):
    controller = serving_runs.trainer.pipeline.controller
    for key, publication in serving_runs.publications.items():
        if not key[4]:
            assert publication.staleness_bound == 0.0
            continue
        bound = max(
            controller.error_bound(t, TRAIN_ITERATIONS)
            for t in range(serving_runs.spec.n_tables)
        )
        assert publication.staleness_bound <= bound * (1 + 1e-9)
        assert publication.max_abs_error <= publication.staleness_bound * (1 + 1e-5)


def test_cache_hit_rate_monotone_in_cache_size(serving_runs):
    if serving_runs.smoke:
        pytest.skip("cache axis runs in the full sweep only")
    cache_axis = [
        ("4-replica/small-cache", "nvlink+ib-hdr", 4, 512, True),
        ("4-replica/mid-cache", "nvlink+ib-hdr", 4, 2048, True),
        ("4-replica", "nvlink+ib-hdr", 4, 4096, True),
    ]
    rates = [serving_runs.reports[key].cache_hit_rate for key in cache_axis]
    assert rates == sorted(rates)
    assert rates[-1] > rates[0]


def test_replica_scaling_sustains_more_qps(serving_runs):
    """Single-axis comparison: same fabric class and cache size, only the
    replica count (and the offered load riding on it) changes."""
    if serving_runs.smoke:
        pytest.skip("replica axis runs in the full sweep only")
    two = serving_runs.reports[("2-replica", "nvlink+ib-hdr", 2, 4096, True)]
    four = serving_runs.reports[("4-replica", "nvlink+ib-hdr", 4, 4096, True)]
    eight = serving_runs.reports[("8-replica", "nvlink+ib-hdr", 8, 4096, True)]
    assert two.sustained_qps < four.sustained_qps < eight.sustained_qps


def test_benchmark_serving_step(serving_runs, benchmark):
    tier = next(iter(serving_runs.tiers.values()))
    loadgen = RequestLoadGenerator(serving_runs.dataset, qps=4000.0, seed=SEED + 7)
    requests = loadgen.generate(64)
    serving = ServingSimulator(
        tier.replicas,
        serving_runs.config,
        network=fabric_network("nvlink+ib-hdr", len(tier.replicas)),
    )
    benchmark.pedantic(lambda: serving.run(requests), rounds=3, iterations=1)
