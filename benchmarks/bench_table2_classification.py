"""Table II — L/M/S classification of all EMB tables on both datasets.

The paper classifies each of the 26 tables of Criteo Kaggle and Criteo
Terabyte into large / medium / small error-bound categories from the
Homogenization Index.  This bench regenerates the classification row for
both synthetic worlds.

Shape targets: all three classes appear on both datasets; the
most-homogenizing tables always land in 'small'; class assignment is
deterministic.
"""

from __future__ import annotations

from repro.adaptive import OfflineAnalyzer
from repro.utils import format_table

from conftest import write_result


def test_table2_classification(both_worlds, benchmark):
    sections = []
    plans = {}
    for world in both_worlds:
        plan = OfflineAnalyzer().analyze(world.samples)
        plans[world.name] = plan
        letters = {
            t: plan.tables[t].category[0].upper() for t in sorted(plan.tables)
        }
        rows = [
            ("EMB ID", *sorted(letters)),
            (world.name, *[letters[t] for t in sorted(letters)]),
        ]
        sections.append(
            format_table(
                [str(c) for c in rows[0]],
                [rows[1]],
                title=f"Table II - classification of EMB tables ({world.name} world)",
            )
        )
        counts = plan.category_counts()
        sections.append(f"counts: {counts}")
    write_result("table2_classification", "\n\n".join(sections))

    for world in both_worlds:
        plan = plans[world.name]
        counts = plan.category_counts()
        # All three classes present (as in the paper's Table II rows).
        assert counts["small"] > 0 and counts["medium"] > 0 and counts["large"] > 0
        # 'small' tables homogenize at least as much as any 'large' table.
        small_min = min(
            p.homo.homo_index for p in plan.tables.values() if p.category == "small"
        )
        large_max = max(
            p.homo.homo_index for p in plan.tables.values() if p.category == "large"
        )
        assert small_min >= large_max
        # Determinism.
        again = OfflineAnalyzer().analyze(world.samples)
        assert {t: p.category for t, p in again.tables.items()} == {
            t: p.category for t, p in plan.tables.items()
        }

    world = both_worlds[0]
    benchmark.pedantic(
        lambda: OfflineAnalyzer().analyze(world.samples), rounds=3, iterations=1
    )
