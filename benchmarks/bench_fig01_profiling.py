"""Fig. 1 — performance profiling of DLRM training with 32 GPUs.

The paper's motivating measurement: on 32 A100s, all-to-all communication
accounts for more than 60 % of total training time.  This bench runs the
uncompressed hybrid-parallel simulation at 32 ranks and regenerates the
stacked breakdown.

Shape targets: communication (all-to-all fwd + bwd + all-reduce) > 60 % of
iteration time; the two all-to-alls are the largest single categories.
"""

from __future__ import annotations

from repro.dist.timeline import EventCategory
from repro.profiling import breakdown_report

from conftest import write_result


def test_fig01_profiling_breakdown(cluster_runs, benchmark):
    report = cluster_runs.baseline
    seconds = report.category_seconds

    text = breakdown_report(
        seconds,
        title=(
            f"Fig. 1 - DLRM training breakdown, {cluster_runs.N_RANKS} simulated GPUs "
            f"(global batch {cluster_runs.GLOBAL_BATCH}, uncompressed)"
        ),
    )
    write_result("fig01_profiling", text)

    total = sum(seconds.values())
    alltoall = seconds[EventCategory.ALLTOALL_FWD] + seconds[EventCategory.ALLTOALL_BWD]
    communication = alltoall + seconds.get(EventCategory.ALLREDUCE, 0.0)

    # Paper: all-to-all >60% of training time at 32 GPUs.
    assert communication / total > 0.60, f"communication share {communication / total:.2f}"
    assert alltoall / total > 0.45, f"all-to-all share {alltoall / total:.2f}"
    # The two all-to-alls are the top categories.
    top2 = sorted(seconds.values(), reverse=True)[:2]
    assert set(top2) == {
        seconds[EventCategory.ALLTOALL_FWD],
        seconds[EventCategory.ALLTOALL_BWD],
    }

    # Timed kernel: regenerating the breakdown report from the timeline.
    benchmark(lambda: breakdown_report(report.timeline, rank=0))
