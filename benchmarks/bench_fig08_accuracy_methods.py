"""Fig. 8 — accuracy and delta-accuracy of compression methods.

The paper trains DLRM with FP32 (exact), FP16, FP8 (the SOTA low-precision
baseline), and its error-bounded compressor at a fixed global bound of
0.02, reporting accuracy losses of at most 0.02 % for its method.

Shape targets: the error-bounded run tracks the FP32 run's accuracy within
evaluation noise; every method converges; the error-bounded method's
compression ratio far exceeds the fixed 2x/4x of the casting baselines.
"""

from __future__ import annotations

import numpy as np

from repro.adaptive import ErrorBoundLevels
from repro.compression import Fp8Compressor, Fp16Compressor
from repro.utils import format_table

from conftest import make_pipeline, train_reference_run, write_result

GLOBAL_ERROR_BOUND = 0.02  # the paper's fixed global bound


def _cast_transform(codec):
    return lambda table_id, rows, iteration: codec.decompress(codec.compress(rows))


def test_fig08_accuracy_of_methods(kaggle_world, benchmark):
    # "Ours" with a fixed global bound: all three levels pinned to 0.02.
    pipeline = make_pipeline(
        kaggle_world,
        levels=ErrorBoundLevels(
            large=GLOBAL_ERROR_BOUND, medium=GLOBAL_ERROR_BOUND, small=GLOBAL_ERROR_BOUND
        ),
    )
    runs = {
        "fp32 (baseline)": None,
        "fp16": _cast_transform(Fp16Compressor()),
        "fp8": _cast_transform(Fp8Compressor()),
        "ours (EB 0.02)": pipeline.roundtrip,
    }
    results = {}
    for name, transform in runs.items():
        history = train_reference_run(kaggle_world, transform)
        results[name] = {
            "accuracy": history.final_accuracy,
            "auc": history.aucs[-1],
            "loss": float(np.mean(history.losses[-10:])),
        }
    baseline_acc = results["fp32 (baseline)"]["accuracy"]

    rows = [
        (
            name,
            f"{r['accuracy']:.4f}",
            f"{r['accuracy'] - baseline_acc:+.4f}",
            f"{r['auc']:.4f}",
            f"{r['loss']:.4f}",
            "-" if name != "ours (EB 0.02)" else f"{pipeline.mean_ratio():.2f}x",
        )
        for name, r in results.items()
    ]
    text = format_table(
        ["method", "accuracy", "delta vs fp32", "AUC", "final loss", "CR"],
        rows,
        title="Fig. 8 - accuracy of compression methods (fixed global EB 0.02)",
    )
    write_result("fig08_accuracy_methods", text)

    # Ours tracks fp32 within evaluation noise (paper: <=0.02% loss; our
    # eval set is 4096 samples, so noise is ~0.7%).
    assert abs(results["ours (EB 0.02)"]["accuracy"] - baseline_acc) < 0.02
    # All methods converge to a useful model.
    for name, r in results.items():
        assert r["accuracy"] > 0.70, name
        assert r["auc"] > 0.75, name
    # Error-bounded compression reduces data far beyond the 2x/4x casts.
    assert pipeline.mean_ratio() > 6.0

    rows_batch = kaggle_world.samples[0]
    fp16 = Fp16Compressor()
    benchmark(lambda: fp16.decompress(fp16.compress(rows_batch)))
