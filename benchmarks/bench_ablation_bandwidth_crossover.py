"""Ablation — where does compression stop paying off?

The paper evaluates at a 4 GB/s effective all-to-all.  Eq. 2 predicts a
*crossover*: on a fast enough network, the compression/decompression time
exceeds the bandwidth saved and the speedup falls below 1.  This ablation
sweeps the bandwidth axis and locates that crossover for the hybrid
compressor (with the paper's A100 throughput profile), and verifies the
slow-network limit approaches the raw compression ratio.

Shape targets: speedup decreases monotonically with bandwidth; it exceeds
1 at the paper's 4 GB/s; a crossover below 1 exists between 16 and
256 GB/s for the vector-LZ profile (1/Tc + 1/Td ≈ 1/33.8 GB/s).
"""

from __future__ import annotations

import numpy as np

from repro.adaptive import PAPER_A100_PROFILE
from repro.compression import communication_speedup, get_compressor
from repro.utils import GB, format_table

from conftest import write_result

BANDWIDTHS_GB = (0.5, 1, 4, 16, 64, 256)
ERROR_BOUND = 0.02


def test_ablation_bandwidth_crossover(kaggle_world, benchmark):
    codec = get_compressor("vector_lz")
    original = sum(b.nbytes for b in kaggle_world.samples.values())
    compressed = sum(
        len(codec.compress(b, ERROR_BOUND)) for b in kaggle_world.samples.values()
    )
    ratio = original / compressed
    throughput = PAPER_A100_PROFILE.for_codec("vector_lz")

    speedups = {
        bw: communication_speedup(
            ratio, bw * GB, throughput.compress, throughput.decompress
        )
        for bw in BANDWIDTHS_GB
    }
    rows = [
        (f"{bw} GB/s", f"{s:.2f}x", "wins" if s > 1 else "loses")
        for bw, s in speedups.items()
    ]
    text = format_table(
        ["all-to-all bandwidth", "Eq.2 speedup", "verdict"],
        rows,
        title=(
            f"Ablation - bandwidth crossover for vector-LZ "
            f"(CR {ratio:.1f}x, Tc {throughput.compress / GB:.1f} GB/s, "
            f"Td {throughput.decompress / GB:.1f} GB/s)"
        ),
    )
    write_result("ablation_bandwidth_crossover", text)

    series = [speedups[bw] for bw in BANDWIDTHS_GB]
    # Monotone: faster networks benefit less from compression.
    assert all(a >= b for a, b in zip(series, series[1:]))
    # At the paper's 4 GB/s setting, compression clearly wins.
    assert speedups[4] > 3.0
    # The crossover exists on fast fabrics (NVLink-class).
    assert speedups[256] < 1.0 < speedups[16]
    # Slow-network limit approaches the raw ratio.
    assert speedups[0.5] > 0.8 * ratio * (
        1 / (1 + 0.5 * GB * (1 / throughput.compress + 1 / throughput.decompress) * ratio)
    )

    benchmark(
        lambda: [
            communication_speedup(ratio, bw * GB, throughput.compress, throughput.decompress)
            for bw in BANDWIDTHS_GB
        ]
    )
