"""Table I — characteristics of representative EMB tables.

The paper characterizes representative Criteo Kaggle tables by three
features: *false prediction* (Lorenzo prediction inflates entropy — true
for every table), *violent vector homogenization* (true for some), and
*Gaussian value distribution* (true for some).  This bench computes the
same three features for every table of the synthetic Kaggle world and
prints the representative rows.

Shape targets: false prediction holds on (nearly) every table; the
homogenization and Gaussianity flags split the tables (some yes, some no),
reproducing Table I's mixed pattern.
"""

from __future__ import annotations

from repro.analysis import analyze_table
from repro.utils import format_table

from conftest import write_result

ERROR_BOUND = 0.01  # Table III's Kaggle setting


def test_table1_characteristics(kaggle_world, benchmark):
    features = {
        table_id: analyze_table(table_id, batch, ERROR_BOUND)
        for table_id, batch in kaggle_world.samples.items()
    }

    rows = []
    for table_id in sorted(features):
        f = features[table_id]
        rows.append(
            (
                table_id,
                f.false_prediction,
                f.violent_homogenization,
                f.gaussian_distribution,
                f"{f.entropy_inflation:.2f}",
                f"{f.homo.homo_index:.3f}",
                f"{f.gaussianity:.2f}",
            )
        )
    text = format_table(
        [
            "EMB table",
            "false prediction",
            "violent homogenization",
            "Gaussian distribution",
            "entropy inflation",
            "homo index",
            "excess kurtosis",
        ],
        rows,
        title="Table I - characteristics of EMB tables (synthetic Criteo Kaggle)",
    )
    write_result("table1_characteristics", text)

    n = len(features)
    n_false_pred = sum(f.false_prediction for f in features.values())
    n_homog = sum(f.violent_homogenization for f in features.values())
    n_gauss = sum(f.gaussian_distribution for f in features.values())

    # Paper: false prediction afflicts its (shown) tables universally; in
    # the synthetic worlds a majority of tables inflate, and the exceptions
    # are exactly the hot tables whose repeated adjacent rows zero the
    # residuals - repetition vector-LZ exploits more directly anyway.
    assert n_false_pred >= 0.6 * n
    # Homogenization and Gaussianity are *mixed* across tables (Table I has
    # both checkmarks and crosses in those columns).
    assert 0 < n_homog < n
    assert 0 < n_gauss < n

    sample = kaggle_world.samples[0]
    benchmark.pedantic(lambda: analyze_table(0, sample, ERROR_BOUND), rounds=5, iterations=1)
