"""Table IV — ranked Homogenization Index on Criteo Terabyte (batch 2048).

Same measurement as Table III at the Terabyte configuration: batch 2048,
error bound 0.005 (the paper's Table IV header).

Shape targets: as Table III, plus the larger batch surfaces *more*
patterns per table than the Kaggle batch does.
"""

from __future__ import annotations

from repro.adaptive import homogenization_index
from repro.utils import format_table

from conftest import write_result

ERROR_BOUND = 0.005  # the paper's Table IV setting


def test_table4_homo_index_terabyte(terabyte_world, kaggle_world, benchmark):
    results = {
        t: homogenization_index(batch, ERROR_BOUND)
        for t, batch in terabyte_world.samples.items()
    }
    ranked = sorted(results.items(), key=lambda kv: kv[1].pattern_ratio)

    rows = [
        (
            t,
            ERROR_BOUND,
            r.n_original,
            r.n_quantized,
            r.batch_size,
            f"{r.pattern_ratio:.6f}",
            f"{r.homo_index:.6f}",
        )
        for t, r in ranked
    ]
    text = format_table(
        ["TAB. ID", "EB", "# Ori.Patterns", "# Quant.Patterns", "Batch Size", "Pattern Ratio", "Homo Index (Eq.1)"],
        rows,
        title=f"Table IV - ranked Homogenization Index (Terabyte world, batch {terabyte_world.batch_size})",
    )
    write_result("table4_homo_terabyte", text)

    ratios = [r.pattern_ratio for _, r in ranked]
    assert all(r.n_quantized <= r.n_original for _, r in ranked)
    assert ratios[0] < 0.8
    assert ratios[-1] == 1.0
    # The 2048-row batch surfaces more distinct patterns than Kaggle's 128.
    kaggle_results = {
        t: homogenization_index(batch, ERROR_BOUND)
        for t, batch in kaggle_world.samples.items()
    }
    mean_tb = sum(r.n_original for r in results.values()) / len(results)
    mean_kg = sum(r.n_original for r in kaggle_results.values()) / len(kaggle_results)
    assert mean_tb > mean_kg

    batch = terabyte_world.samples[0]
    benchmark.pedantic(
        lambda: homogenization_index(batch, ERROR_BOUND), rounds=5, iterations=1
    )
