"""Fig. 9 — table-wise error-bound configuration vs a fixed global bound.

The paper assigns error bounds {0.01, 0.03, 0.05} by table class instead of
a global 0.03, keeping accuracy intact while gaining up to 1.21x
compression ratio on Criteo Kaggle.

Shape targets: accuracy matches the global-bound run within evaluation
noise; the table-wise run's overall compression ratio exceeds the global
run's.
"""

from __future__ import annotations

import numpy as np

from repro.adaptive import ErrorBoundLevels
from repro.utils import format_table

from conftest import make_pipeline, train_reference_run, write_result

# The paper's "suitable fixed global error bound" (Section IV-B) — the
# conservative bound that protects the most sensitive tables.  Table-wise
# configuration beats it by relaxing the robust tables to 0.03/0.05 while
# tightening sensitive ones to 0.01.
GLOBAL_EB = 0.02


def test_fig09_tablewise_error_bounds(kaggle_world, benchmark):
    global_pipeline = make_pipeline(
        kaggle_world,
        levels=ErrorBoundLevels(large=GLOBAL_EB, medium=GLOBAL_EB, small=GLOBAL_EB),
    )
    tablewise_pipeline = make_pipeline(
        kaggle_world,
        levels=ErrorBoundLevels(large=0.05, medium=0.03, small=0.01),
    )

    global_history = train_reference_run(kaggle_world, global_pipeline.roundtrip)
    tablewise_history = train_reference_run(kaggle_world, tablewise_pipeline.roundtrip)

    global_ratio = global_pipeline.mean_ratio()
    tablewise_ratio = tablewise_pipeline.mean_ratio()
    gain = tablewise_ratio / global_ratio

    rows = [
        (
            f"fixed global EB {GLOBAL_EB}",
            f"{global_history.final_accuracy:.4f}",
            f"{global_history.aucs[-1]:.4f}",
            f"{global_ratio:.2f}x",
            "1.00x",
        ),
        (
            "table-wise EB {0.01, 0.03, 0.05}",
            f"{tablewise_history.final_accuracy:.4f}",
            f"{tablewise_history.aucs[-1]:.4f}",
            f"{tablewise_ratio:.2f}x",
            f"{gain:.2f}x",
        ),
    ]
    text = format_table(
        ["configuration", "accuracy", "AUC", "mean CR", "CR gain"],
        rows,
        title="Fig. 9 - table-wise vs global error-bound configuration (Kaggle world)",
    )
    write_result("fig09_tablewise_eb", text)

    # Accuracy kept within evaluation noise (paper: intact).
    assert (
        abs(tablewise_history.final_accuracy - global_history.final_accuracy) < 0.02
    )
    # Compression-ratio gain over the global bound (paper: up to 1.21x).
    assert gain > 1.02, f"gain {gain:.3f}"
    assert gain < 2.0, f"gain {gain:.3f} implausibly large"

    sample = kaggle_world.samples[0]
    benchmark.pedantic(
        lambda: tablewise_pipeline.roundtrip(0, sample, 0), rounds=10, iterations=1
    )
