"""Table VI — vector-LZ compression ratio vs window size.

The paper fine-tunes its LZ window over {32, 64, 128, 255} vectors: on
Criteo Terabyte (batch 2048) a larger window keeps finding new matches
(1x -> 3.9x -> 5.2x relative CR), while on Kaggle (batch 128) a single
window already covers the whole batch so gains saturate immediately.

Shape targets: ratios are monotone non-decreasing in window size; the
large-batch dataset gains substantially from bigger windows while the
small-batch dataset's gains are negligible; gains are sublinear
(saturating) in window size.
"""

from __future__ import annotations

from repro.compression import VectorLZCompressor
from repro.utils import format_table

from conftest import write_result

WINDOWS = (32, 64, 128, 255)
ERROR_BOUNDS = {"kaggle": 0.01, "terabyte": 0.005}


def _sweep(world) -> dict[int, float]:
    eb = ERROR_BOUNDS[world.name]
    out = {}
    for window in WINDOWS:
        codec = VectorLZCompressor(window=window)
        original = sum(b.nbytes for b in world.samples.values())
        compressed = sum(len(codec.compress(b, eb)) for b in world.samples.values())
        out[window] = original / compressed
    return out


def test_table6_window_size(both_worlds, benchmark):
    sweeps = {world.name: _sweep(world) for world in both_worlds}

    rows = []
    for name, sweep in sweeps.items():
        base = sweep[WINDOWS[0]]
        rows.append(
            (
                name,
                *[f"{sweep[w]:.2f}x ({sweep[w] / base:.2f})" for w in WINDOWS],
            )
        )
    text = format_table(
        ["dataset", *[f"window {w}" for w in WINDOWS]],
        rows,
        title="Table VI - vector-LZ ratio vs window size (relative to window 32 in parens)",
    )
    write_result("table6_window_size", text)

    for name, sweep in sweeps.items():
        series = [sweep[w] for w in WINDOWS]
        # Monotone non-decreasing: a larger window never hurts.
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:])), name
    # The large-batch world gains from window growth...
    tb = sweeps["terabyte"]
    assert tb[255] / tb[32] > 1.15
    # ...with saturating (sublinear) increments.
    assert tb[255] / tb[128] < tb[64] / tb[32] + 0.5
    # The 128-row batch is covered by any window >= 128: no further gain.
    kg = sweeps["kaggle"]
    assert abs(kg[255] / kg[128] - 1.0) < 1e-6
    assert kg[255] / kg[32] < tb[255] / tb[32]

    codec = VectorLZCompressor(window=255)
    batch = both_worlds[1].samples[1]
    benchmark.pedantic(lambda: codec.compress(batch, 0.005), rounds=5, iterations=1)
