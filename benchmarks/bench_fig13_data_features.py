"""Fig. 13 — data features of two representative EMB tables.

The paper contrasts two Terabyte tables: "EMB Table 1" has a highly
concentrated Gaussian value histogram (Huffman-friendly), while "EMB Table
5" has broadly dispersed values but few unique vectors, giving vector-LZ a
very high match rate.  This bench finds the analogous pair in the synthetic
Terabyte world, prints their histograms and matched-pattern counts, and
verifies the codec contrast.

Shape targets: the entropy-friendly table compresses better under Huffman
than vector-LZ; the match-friendly table does the opposite, with a large
LZ match count.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import gaussianity_score
from repro.compression import EntropyCompressor, VectorLZCompressor
from repro.compression.quantizer import quantize_batch
from repro.compression.vector_lz import find_vector_matches
from repro.utils import format_table

from conftest import write_result

ERROR_BOUND = 0.02


def _table_stats(batch: np.ndarray) -> dict[str, float]:
    lz_payload = VectorLZCompressor().compress(batch, ERROR_BOUND)
    huff_payload = EntropyCompressor().compress(batch, ERROR_BOUND)
    quantized = quantize_batch(batch, ERROR_BOUND)
    is_match, _ = find_vector_matches(quantized.codes, window=255)
    return {
        "lz_ratio": batch.nbytes / len(lz_payload),
        "huffman_ratio": batch.nbytes / len(huff_payload),
        "matches": int(is_match.sum()),
        "rows": batch.shape[0],
        "gaussianity": gaussianity_score(batch),
        "spread": float(np.ptp(batch)),
    }


def _histogram_line(batch: np.ndarray, bins: int = 13) -> str:
    counts, _ = np.histogram(batch.ravel(), bins=bins)
    peak = counts.max()
    return "".join(" .:-=+*#%@"[min(int(9 * c / peak), 9)] for c in counts)


def test_fig13_data_features(terabyte_world, benchmark):
    stats = {t: _table_stats(b) for t, b in terabyte_world.samples.items()}
    # "EMB Table 1" analogue: the best Huffman-vs-LZ advantage.
    entropy_table = max(stats, key=lambda t: stats[t]["huffman_ratio"] / stats[t]["lz_ratio"])
    # "EMB Table 5" analogue: the best LZ advantage among broad tables.
    lz_table = max(stats, key=lambda t: stats[t]["lz_ratio"] / stats[t]["huffman_ratio"])

    rows = []
    for label, table_id in (
        (f"entropy-friendly (table {entropy_table})", entropy_table),
        (f"match-friendly (table {lz_table})", lz_table),
    ):
        s = stats[table_id]
        rows.append(
            (
                label,
                f"{s['huffman_ratio']:.2f}x",
                f"{s['lz_ratio']:.2f}x",
                f"{s['matches']}/{s['rows']}",
                f"{s['gaussianity']:.2f}",
                _histogram_line(terabyte_world.samples[table_id]),
            )
        )
    text = format_table(
        ["table", "Huffman CR", "vector-LZ CR", "matched patterns", "kurtosis", "value histogram"],
        rows,
        title="Fig. 13 - data features of two representative EMB tables (Terabyte world)",
    )
    write_result("fig13_data_features", text)

    e, l = stats[entropy_table], stats[lz_table]
    # The contrast the paper draws:
    assert e["huffman_ratio"] > e["lz_ratio"], "entropy table must favour Huffman"
    assert l["lz_ratio"] > 1.5 * l["huffman_ratio"], "match table must favour LZ"
    # ...driven by match counts:
    assert l["matches"] > 0.5 * l["rows"]
    assert e["matches"] < 0.5 * e["rows"]
    # ...and the entropy-friendly table is the more concentrated one.
    assert e["gaussianity"] > l["gaussianity"]

    batch = terabyte_world.samples[entropy_table]
    benchmark.pedantic(lambda: _table_stats(batch), rounds=3, iterations=1)
