"""Throughput tracking for the compression hot paths (this repo's own claim).

Unlike the ``bench_fig*``/``bench_table*`` files, which regenerate results
of the *paper*, this benchmark tracks a property of the *reproduction*: the
vectorized codec kernels must stay NumPy-speed.  It times every hot kernel
on the paper's table shapes against the frozen seed implementations
(``_reference_*``), asserts the headline speedups of the vectorization PR
(>= 5x vector-LZ decode, >= 3x Huffman decode on the large shapes), and
checks the committed ``BENCH_compression.json`` trajectory point.

Regenerate the committed baseline with::

    PYTHONPATH=src python -m repro.profiling.perfbench --out BENCH_compression.json

CI's perf-smoke step runs the same harness with ``--smoke --check``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.profiling.perfbench import (
    PAPER_SHAPES,
    compare_to_baseline,
    format_table,
    load_bench,
    run_suite,
)

from conftest import write_result

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_compression.json"

#: the shapes whose payloads are large enough for throughput (rather than
#: per-call overhead) to dominate — where the PR's speedup claims live
LARGE_SHAPES = ("terabyte", "cluster")


@pytest.fixture(scope="module")
def records():
    return run_suite(repeats=9)


def _by_key(records):
    return {(r.codec, r.op, r.shape_name): r for r in records}


def test_report(records):
    write_result("perf_hotpaths", format_table(records))


def test_every_kernel_covered_on_every_shape(records):
    keys = {(r.codec, r.op) for r in records}
    expected = {
        ("quantizer", "quantize"),
        ("vector_lz", "encode"),
        ("vector_lz", "decode"),
        ("huffman", "encode"),
        ("huffman", "decode"),
        ("hybrid", "compress"),
        ("hybrid", "decompress"),
        ("hybrid_pinned", "compress"),
        ("hybrid_obs", "compress"),
        ("hybrid_obs", "decompress"),
        ("lz4_like", "encode"),
        ("lz4_like", "decode"),
        ("fzgpu_like", "pack"),
        ("fzgpu_like", "unpack"),
        ("checksum", "frame"),
        ("checksum", "verify"),
        ("serve_degraded", "pull"),
        ("parallel_hybrid", "workers1"),
        ("parallel_hybrid", "workers2"),
        ("parallel_hybrid", "workers4"),
        ("zero_copy", "frame"),
        ("zero_copy", "verify"),
        ("zero_copy", "compress_into"),
    }
    assert keys == expected
    for shape in PAPER_SHAPES:
        assert sum(r.shape_name == shape for r in records) == len(expected)


def _aggregate_speedup(records, codec: str, op: str, shapes=LARGE_SHAPES) -> float:
    """Throughput-weighted speedup over a set of shapes: total reference
    time over total vectorized time for the same decode workload."""
    rows = [
        r for r in records
        if r.codec == codec and r.op == op and r.shape_name in shapes
    ]
    assert rows and all(r.reference_seconds is not None for r in rows)
    return sum(r.reference_seconds for r in rows) / sum(r.seconds for r in rows)


def test_vector_lz_decode_speedup(records):
    """Tentpole claim: >= 5x over the seed's per-row decode loop on the
    paper's default (large) table shapes."""
    by_key = _by_key(records)
    aggregate = _aggregate_speedup(records, "vector_lz", "decode")
    assert aggregate >= 5.0, f"vector-LZ decode aggregate speedup {aggregate:.2f}"
    # Per-shape floor is looser than the aggregate claim: the 256 KB
    # terabyte shape is small enough that per-call overhead under system
    # load can shave a point off a best-of-9 timing (observed 1-in-3
    # dips below 5x with no code change).
    speedup = by_key[("vector_lz", "decode", "terabyte")].speedup
    assert speedup is not None and speedup >= 4.0, f"vector-LZ decode speedup {speedup}"
    for shape in LARGE_SHAPES:
        s = by_key[("vector_lz", "decode", shape)].speedup
        assert s is not None and s >= 3.0, f"vector-LZ decode [{shape}] speedup {s}"


def test_huffman_decode_speedup(records):
    """Tentpole claim: >= 3x over the seed's per-symbol jump-chain walk on
    the paper's default (large) table shapes."""
    by_key = _by_key(records)
    aggregate = _aggregate_speedup(records, "huffman", "decode")
    assert aggregate >= 3.0, f"Huffman decode aggregate speedup {aggregate:.2f}"
    for shape in LARGE_SHAPES:
        s = by_key[("huffman", "decode", shape)].speedup
        assert s is not None and s >= 2.0, f"Huffman decode [{shape}] speedup {s}"


def test_huffman_encode_speedup(records):
    """PR-3 satellite claim: two-queue code lengths + word-level
    ``pack_codes`` lift the encoder (the previously slowest kernel) by
    >= 1.5x over the seed's heap + per-bit-plane path on large shapes."""
    by_key = _by_key(records)
    aggregate = _aggregate_speedup(records, "huffman", "encode")
    assert aggregate >= 1.5, f"Huffman encode aggregate speedup {aggregate:.2f}"
    for shape in LARGE_SHAPES:
        s = by_key[("huffman", "encode", shape)].speedup
        assert s is not None and s >= 1.3, f"Huffman encode [{shape}] speedup {s}"


def test_end_to_end_rows_present(records):
    """The trajectory tracks full-framing compress()/decompress() too."""
    by_key = _by_key(records)
    for shape in PAPER_SHAPES:
        for op in ("compress", "decompress"):
            record = by_key[("hybrid", op, shape)]
            assert record.throughput_mb_s > 0


def test_hybrid_pinned_speedup(records):
    """PR-5 satellite claim (ROADMAP PR 2/3 follow-up): auto mode with
    ``pin_refresh`` replays the pinned winning leg instead of running the
    try-both trial per call, so steady-state keyed compression beats the
    per-call auto path on the large shapes.  The floor is conservative:
    pinning always skips one of two legs, but the skipped (losing) leg can
    be the cheaper one."""
    by_key = _by_key(records)
    aggregate = _aggregate_speedup(records, "hybrid_pinned", "compress")
    assert aggregate >= 1.2, f"hybrid_pinned aggregate speedup {aggregate:.2f}"
    # Per-shape floors only on the large shapes, per the file convention:
    # the kaggle shape runs in the per-call-overhead regime where run
    # noise can push best-of timings either way.
    for shape in LARGE_SHAPES:
        s = by_key[("hybrid_pinned", "compress", shape)].speedup
        assert s is not None and s >= 1.0, f"hybrid_pinned [{shape}] speedup {s}"


def test_obs_instrumentation_overhead_bounded(records):
    """PR-6 satellite claim: enabling the observability runtime costs at
    most ~3% on the hybrid codec's hot path.  The hybrid_obs rows time the
    instrumented call with the runtime enabled against the same call
    disabled (interleaved, so load drift cannot masquerade as overhead);
    speedup = 1 / (1 + overhead).  The true per-call cost is two counter
    increments (~4 us against a multi-ms compress, <0.1%), but best-of
    timing on a shared box carries a few percent of noise either way, so
    the floors are noise-padded: the op aggregates pool both large shapes
    and the overall aggregate pools all four rows."""
    rows = [
        r for r in records
        if r.codec == "hybrid_obs" and r.shape_name in LARGE_SHAPES
    ]
    assert rows and all(r.reference_seconds is not None for r in rows)
    pooled = sum(r.reference_seconds for r in rows) / sum(r.seconds for r in rows)
    assert pooled >= 0.95, f"hybrid_obs pooled enabled/disabled ratio {pooled:.3f}"
    for op in ("compress", "decompress"):
        aggregate = _aggregate_speedup(records, "hybrid_obs", op)
        assert aggregate >= 0.90, f"hybrid_obs {op} enabled/disabled ratio {aggregate:.3f}"


def test_parallel_hybrid_efficiency(records):
    """Raw-speed PR tentpole claim: the multicore executor reaches >= 1.5x
    over the serial loop at 4 workers on the paper's largest shapes —
    *where 4 cores exist*.  On smaller boxes (CI containers are often
    single-core) the rows still land in the trajectory, pinned only to a
    sanity floor: parallel dispatch must not collapse below ~1/3 of serial
    throughput, and the speedup column (parallel efficiency vs the serial
    loop, measured interleaved) must be present on every row."""
    from repro.compression.parallel import available_workers

    by_key = _by_key(records)
    for shape in PAPER_SHAPES:
        for workers in (1, 2, 4):
            record = by_key[("parallel_hybrid", f"workers{workers}", shape)]
            assert record.speedup is not None and record.speedup > 0
            if shape in LARGE_SHAPES:
                # Small-shape (kaggle) dispatch overhead is all overhead
                # regime; the floor only means something where payloads
                # amortize it.
                assert record.speedup > 0.3, (
                    f"parallel_hybrid workers{workers} [{shape}] efficiency {record.speedup}"
                )
    if available_workers() >= 4:
        aggregate = _aggregate_speedup(records, "parallel_hybrid", "workers4")
        assert aggregate >= 1.5, f"workers4 aggregate speedup {aggregate:.2f}"


def test_zero_copy_allocations_reduced(records):
    """Raw-speed PR satellite claim: the pooled/view framing paths allocate
    a fraction of what the copying seed implementations do.  Peak
    tracemalloc bytes per call: the envelope paths drop by >= 4x; the
    end-to-end ``compress_into`` path (whose peak is codec-internal
    scratch, not framing) must at least not regress."""
    by_key = _by_key(records)
    for shape in LARGE_SHAPES:
        for op in ("frame", "verify"):
            record = by_key[("zero_copy", op, shape)]
            assert record.alloc_nbytes is not None
            assert record.reference_alloc_nbytes is not None
            assert record.alloc_nbytes * 4 <= record.reference_alloc_nbytes, (
                f"zero_copy.{op} [{shape}] allocates {record.alloc_nbytes}B "
                f"vs reference {record.reference_alloc_nbytes}B"
            )
        record = by_key[("zero_copy", "compress_into", shape)]
        assert record.alloc_nbytes is not None
        assert record.reference_alloc_nbytes is not None
        assert record.alloc_nbytes <= record.reference_alloc_nbytes * 1.01


def test_baseline_speedups_not_regressed(records):
    """The vectorized baselines must at least match their seed versions."""
    by_key = _by_key(records)
    for codec, op in (("lz4_like", "encode"), ("fzgpu_like", "pack"), ("fzgpu_like", "unpack")):
        for shape in LARGE_SHAPES:
            s = by_key[(codec, op, shape)].speedup
            assert s is not None and s >= 1.0, f"{codec}.{op} [{shape}] speedup {s}"


def test_committed_trajectory_point_exists():
    """BENCH_compression.json is the perf trajectory's first point: it must
    exist, parse, and cover the same kernels this suite measures."""
    assert BENCH_JSON.exists(), "run python -m repro.profiling.perfbench --out BENCH_compression.json"
    baseline = load_bench(BENCH_JSON)
    keys = {(r.codec, r.op, r.shape_name) for r in baseline}
    assert {("vector_lz", "decode", "terabyte"), ("huffman", "decode", "terabyte")} <= keys
    for record in baseline:
        assert record.seconds > 0 and record.throughput_mb_s > 0


def test_current_run_within_regression_gate(records):
    """The same gate CI applies: current throughput must not have fallen
    below the committed baseline by more than 3x generically — or 2.5x on
    the kernels in ``TIGHTENED_GATES``, whose committed speedups have
    headroom to spare."""
    baseline = load_bench(BENCH_JSON)
    failures = compare_to_baseline(records, baseline, max_regression=3.0)
    assert not failures, "\n".join(failures)
