"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper's evaluation
section.  Each writes its rows to ``results/<experiment>.txt`` (and prints
them), then asserts the paper's *shape*: who wins, by roughly what factor,
where crossovers fall.  Heavy experiments are built once per session in
cached fixtures; the ``benchmark`` fixture times a representative kernel of
each experiment so ``pytest benchmarks/ --benchmark-only`` produces a
timing table as well.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.data import CRITEO_KAGGLE, CRITEO_TERABYTE, SyntheticClickDataset, scaled_spec
from repro.model import DLRM, DLRMConfig

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: evaluation geometry (paper: Kaggle batch 128, Terabyte batch 2048, dim 32/64)
KAGGLE_BATCH = 128
TERABYTE_BATCH = 2048
EMBEDDING_DIM = 32
MAX_CARDINALITY = 4000
SEED = 2024


def write_result(name: str, text: str) -> None:
    """Persist one experiment's output table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


class World:
    """One dataset + model + per-table sampled lookups."""

    def __init__(self, base_spec, batch_size: int, name: str):
        self.name = name
        self.batch_size = batch_size
        self.spec = scaled_spec(base_spec, max_cardinality=MAX_CARDINALITY)
        self.dataset = SyntheticClickDataset(self.spec, seed=SEED, teacher_scale=3.0)
        self.config = DLRMConfig.from_dataset(
            self.spec,
            embedding_dim=EMBEDDING_DIM,
            bottom_hidden=(64, 32),
            top_hidden=(64, 32),
            seed=SEED + 1,
        )
        self.model = DLRM(self.config)
        batch = self.dataset.batch(batch_size, batch_index=10_000_000)
        self.samples = {
            j: self.model.lookup(j, batch.sparse[:, j])
            for j in range(self.spec.n_tables)
        }


#: iterations / geometry for the accuracy experiments (Figs. 5, 8, 9, 10)
ACCURACY_ITERATIONS = 150
ACCURACY_BATCH = 128
ACCURACY_LR = 0.25
EVAL_BATCHES = 8


def train_reference_run(world: "World", lookup_transform=None):
    """Train a fresh model on ``world`` with an optional lossy lookup hook.

    Returns the :class:`~repro.train.metrics.TrainingHistory`; all runs use
    identical seeds so method comparisons differ only in the hook.
    """
    from repro.train import ReferenceTrainer

    model = DLRM(world.config)
    trainer = ReferenceTrainer(
        model, world.dataset, lr=ACCURACY_LR, lookup_transform=lookup_transform
    )
    return trainer.train(
        ACCURACY_ITERATIONS,
        ACCURACY_BATCH,
        eval_every=ACCURACY_ITERATIONS // 2,
        eval_batches=EVAL_BATCHES,
    )


def make_pipeline(world: "World", schedule=None, levels=None):
    """Offline analysis on ``world``'s samples -> compression pipeline."""
    from repro.adaptive import AdaptiveController, OfflineAnalyzer
    from repro.train import CompressionPipeline

    analyzer = OfflineAnalyzer() if levels is None else OfflineAnalyzer(levels=levels)
    plan = analyzer.analyze(world.samples)
    return CompressionPipeline(AdaptiveController(plan, schedule))


class ClusterRuns:
    """Baseline + compressed 32-rank simulated training (Figs. 1 and 12)."""

    N_RANKS = 32
    GLOBAL_BATCH = 4096
    ITERATIONS = 6

    def __init__(self):
        from repro.adaptive import AdaptiveController, OfflineAnalyzer, StepwiseDecay
        from repro.dist import ClusterSimulator
        from repro.train import CompressionPipeline, HybridParallelTrainer

        self.spec = scaled_spec(CRITEO_KAGGLE, max_cardinality=MAX_CARDINALITY)
        self.dataset = SyntheticClickDataset(self.spec, seed=SEED, teacher_scale=3.0)
        self.config = DLRMConfig.from_dataset(
            self.spec,
            embedding_dim=64,
            bottom_hidden=(128, 64),
            top_hidden=(128, 64),
            seed=SEED + 1,
        )
        probe = DLRM(self.config)
        batch = self.dataset.batch(256, batch_index=10_000_000)
        samples = {
            j: probe.lookup(j, batch.sparse[:, j]) for j in range(self.spec.n_tables)
        }
        self.plan = OfflineAnalyzer().analyze(samples)

        sim0 = ClusterSimulator(self.N_RANKS)
        trainer0 = HybridParallelTrainer(DLRM(self.config), self.dataset, sim0, lr=0.2)
        self.baseline = trainer0.train(self.ITERATIONS, self.GLOBAL_BATCH)

        sim1 = ClusterSimulator(self.N_RANKS)
        controller = AdaptiveController(
            self.plan, StepwiseDecay(2.0, phase_iterations=self.ITERATIONS // 2)
        )
        pipeline = CompressionPipeline(controller)
        trainer1 = HybridParallelTrainer(
            DLRM(self.config), self.dataset, sim1, pipeline=pipeline, lr=0.2
        )
        self.compressed = trainer1.train(self.ITERATIONS, self.GLOBAL_BATCH)

        # Same compressed pipeline with the communicator's stream overlap
        # (stage ① hiding behind stage ③) — the Fig.-12 overlap rows.
        sim2 = ClusterSimulator(self.N_RANKS)
        controller2 = AdaptiveController(
            self.plan, StepwiseDecay(2.0, phase_iterations=self.ITERATIONS // 2)
        )
        trainer2 = HybridParallelTrainer(
            DLRM(self.config),
            self.dataset,
            sim2,
            pipeline=CompressionPipeline(controller2),
            lr=0.2,
            overlap=True,
        )
        self.overlapped = trainer2.train(self.ITERATIONS, self.GLOBAL_BATCH)

        # Cross-stage overlap: the backward exchange issued before the
        # bottom-MLP backward kernels — the Fig.-12 cross-stage rows.
        sim3 = ClusterSimulator(self.N_RANKS)
        controller3 = AdaptiveController(
            self.plan, StepwiseDecay(2.0, phase_iterations=self.ITERATIONS // 2)
        )
        trainer3 = HybridParallelTrainer(
            DLRM(self.config),
            self.dataset,
            sim3,
            pipeline=CompressionPipeline(controller3),
            lr=0.2,
            overlap="cross_stage",
        )
        self.cross_stage = trainer3.train(self.ITERATIONS, self.GLOBAL_BATCH)


@pytest.fixture(scope="session")
def cluster_runs() -> ClusterRuns:
    return ClusterRuns()


@pytest.fixture(scope="session")
def kaggle_world() -> World:
    return World(CRITEO_KAGGLE, KAGGLE_BATCH, "kaggle")


@pytest.fixture(scope="session")
def terabyte_world() -> World:
    return World(CRITEO_TERABYTE, TERABYTE_BATCH, "terabyte")


@pytest.fixture(scope="session")
def both_worlds(kaggle_world, terabyte_world) -> list[World]:
    return [kaggle_world, terabyte_world]
