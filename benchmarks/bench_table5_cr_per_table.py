"""Table V — compression ratio of every compressor on every EMB table.

The paper's largest table: per-table ratios for cuSZ, FZ-GPU, its
vector-LZ, its optimized Huffman, nvCOMP-LZ4, nvCOMP-Deflate, and the
hybrid (which always matches the best of its two legs), on both datasets.

Shape targets: the hybrid column equals max(vector-LZ, Huffman) per table;
ratios vary strongly across tables; vector-LZ and Huffman win on disjoint
table subsets (their trends are "in stark contrast"); the error-bounded
codecs dominate the lossless byte-LZ baselines on average.
"""

from __future__ import annotations

import numpy as np

from repro.compression import get_compressor
from repro.utils import format_table

from conftest import write_result

#: Kaggle / Terabyte error bounds, as in Tables III/IV
ERROR_BOUNDS = {"kaggle": 0.01, "terabyte": 0.005}
CODEC_COLUMNS = ("cusz_like", "fzgpu_like", "vector_lz", "entropy", "lz4_like", "deflate_like", "hybrid")


def _ratios_for(world) -> dict[str, dict[int, float]]:
    eb = ERROR_BOUNDS[world.name]
    out: dict[str, dict[int, float]] = {name: {} for name in CODEC_COLUMNS}
    for name in CODEC_COLUMNS:
        codec = get_compressor(name)
        for table_id, batch in world.samples.items():
            payload = codec.compress(batch, eb if codec.error_bounded else None)
            out[name][table_id] = batch.nbytes / len(payload)
    return out


def test_table5_cr_per_table(both_worlds, benchmark):
    sections = []
    all_ratios = {}
    for world in both_worlds:
        ratios = _ratios_for(world)
        all_ratios[world.name] = ratios
        table_ids = sorted(world.samples)
        rows = []
        for t in table_ids:
            best = max(ratios[c][t] for c in CODEC_COLUMNS)
            rows.append(
                (
                    t,
                    *[
                        f"{ratios[c][t]:.2f}" + ("*" if ratios[c][t] == best else "")
                        for c in CODEC_COLUMNS
                    ],
                )
            )
        avg = (
            "avg",
            *[
                f"{np.mean([ratios[c][t] for t in table_ids]):.2f}"
                for c in CODEC_COLUMNS
            ],
        )
        rows.append(avg)
        sections.append(
            format_table(
                ["EMB", *CODEC_COLUMNS],
                rows,
                title=(
                    f"Table V - per-table compression ratios ({world.name} world, "
                    f"EB {ERROR_BOUNDS[world.name]}; * = best)"
                ),
            )
        )
    write_result("table5_cr_per_table", "\n\n".join(sections))

    for world in both_worlds:
        ratios = all_ratios[world.name]
        table_ids = sorted(ratios["hybrid"])
        # Hybrid == max of its two legs on every table (frame overhead aside,
        # it *is* the smaller payload).
        for t in table_ids:
            assert ratios["hybrid"][t] >= max(ratios["vector_lz"][t], ratios["entropy"][t]) - 1e-9
        # The two legs win on disjoint, non-empty subsets ("stark contrast").
        lz_wins = [t for t in table_ids if ratios["vector_lz"][t] > ratios["entropy"][t]]
        huff_wins = [t for t in table_ids if ratios["entropy"][t] > ratios["vector_lz"][t]]
        assert lz_wins and huff_wins, world.name
        # Strong per-table variance (paper: ratios vary significantly).
        hybrid_vals = [ratios["hybrid"][t] for t in table_ids]
        assert max(hybrid_vals) / min(hybrid_vals) > 3.0
        # Error-bounded beats generic lossless on average, hybrid beats all.
        mean = lambda c: np.mean([ratios[c][t] for t in table_ids])  # noqa: E731
        assert mean("hybrid") > 3 * mean("lz4_like")
        assert mean("hybrid") > 3 * mean("deflate_like")
        assert mean("hybrid") >= max(mean(c) for c in CODEC_COLUMNS if c != "hybrid")

    codec = get_compressor("hybrid")
    batch = both_worlds[0].samples[0]
    benchmark.pedantic(lambda: codec.compress(batch, 0.01), rounds=5, iterations=1)
