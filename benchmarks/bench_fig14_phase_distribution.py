"""Fig. 14 — data distribution of EMB tables across training phases.

The paper samples lookup batches early, mid and late in training and shows
the value distributions stay stable — the reason its compressor sustains a
consistent ratio across phases (Fig. 9b/10b's flatness).

Shape targets: per-table value histograms at phase boundaries stay close
(small total-variation distance), and the hybrid ratio drifts by less than
~25 % across phases.
"""

from __future__ import annotations

import numpy as np

from repro.compression import HybridCompressor
from repro.train import ReferenceTrainer
from repro.model import DLRM
from repro.utils import format_table

from conftest import write_result

PHASES = (0, 60, 120)  # iterations at which lookups are sampled
ERROR_BOUND = 0.02
TRACKED_TABLES = (0, 1, 4, 8)


def _tv_distance(a: np.ndarray, b: np.ndarray, bins: int = 32) -> float:
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    pa, _ = np.histogram(a, bins=bins, range=(lo, hi), density=False)
    pb, _ = np.histogram(b, bins=bins, range=(lo, hi), density=False)
    pa = pa / pa.sum()
    pb = pb / pb.sum()
    return 0.5 * float(np.abs(pa - pb).sum())


def test_fig14_phase_distribution(kaggle_world, benchmark):
    model = DLRM(kaggle_world.config)
    trainer = ReferenceTrainer(model, kaggle_world.dataset, lr=0.25)
    codec = HybridCompressor()

    snapshots: dict[int, dict[int, np.ndarray]] = {}
    ratios: dict[int, float] = {}
    iteration = 0
    for phase_end in PHASES:
        while iteration < phase_end:
            trainer.train_step(128, iteration)
            iteration += 1
        batch = kaggle_world.dataset.batch(128, batch_index=20_000_000 + phase_end)
        rows = {t: model.lookup(t, batch.sparse[:, t]) for t in TRACKED_TABLES}
        snapshots[phase_end] = rows
        original = sum(r.nbytes for r in rows.values())
        compressed = sum(len(codec.compress(r, ERROR_BOUND)) for r in rows.values())
        ratios[phase_end] = original / compressed

    rows_out = []
    for table_id in TRACKED_TABLES:
        early = snapshots[PHASES[0]][table_id]
        for phase in PHASES[1:]:
            rows_out.append(
                (
                    table_id,
                    f"iter {PHASES[0]} vs iter {phase}",
                    f"{_tv_distance(early.ravel(), snapshots[phase][table_id].ravel()):.3f}",
                )
            )
    ratio_rows = [(f"iter {p}", f"{r:.2f}x") for p, r in ratios.items()]
    text = "\n\n".join(
        [
            format_table(
                ["EMB table", "phase pair", "total-variation distance"],
                rows_out,
                title="Fig. 14 - lookup value-distribution drift across training phases",
            ),
            format_table(["phase", "hybrid CR on tracked tables"], ratio_rows),
        ]
    )
    write_result("fig14_phase_distribution", text)

    # Distributions stay stable across training...
    for table_id in TRACKED_TABLES:
        early = snapshots[PHASES[0]][table_id].ravel()
        late = snapshots[PHASES[-1]][table_id].ravel()
        assert _tv_distance(early, late) < 0.35, f"table {table_id} drifted"
    # ...so the compression ratio holds steady (paper: consistently high).
    ratio_values = list(ratios.values())
    assert max(ratio_values) / min(ratio_values) < 1.25

    sample = snapshots[PHASES[0]][TRACKED_TABLES[0]].ravel()
    benchmark(lambda: _tv_distance(sample, sample[::-1]))
