"""Fig. 15 — buffer optimization across EMB vector sizes and chunk counts.

The paper splits each iteration's EMB vectors into RANK-many chunks and
compares per-chunk kernels + memcpys ("chunked") against its single fused
kernel that writes directly into the send buffer ("single_comp"),
reporting speedups growing with chunk count up to 2.04x, and 8 MB blocks
benefiting ~1.86x more than 64 MB blocks.

The cost model here is calibrated to that regime (compression kernels
saturate around a few MB).  Shape targets: speedup grows monotonically
with chunk count; smaller blocks gain more; the peak lands near 2x (not
10x); chunk-parallel decompression also wins.
"""

from __future__ import annotations

from repro.compression.buffer import BufferCostModel
from repro.dist.gpu import GpuModel
from repro.utils import MB, format_table

from conftest import write_result

CHUNK_COUNTS = (2, 4, 8, 16)
BLOCK_SIZES_MB = (2, 8, 64)

#: compression kernels need several MB to saturate an A100 (nvCOMP-style
#: throughput curves), unlike the small GEMMs of the training step — this
#: is the calibration under which the paper's Fig. 15 magnitudes appear
FIG15_GPU = GpuModel(saturation_bytes=4.0 * MB)


def test_fig15_buffer_optimization(benchmark):
    model = BufferCostModel(gpu=FIG15_GPU)

    rows = []
    speedups: dict[tuple[int, int], float] = {}
    for block_mb in BLOCK_SIZES_MB:
        for n_chunks in CHUNK_COUNTS:
            chunks = [block_mb * MB] * n_chunks
            comp = model.compare_compression(chunks)
            decomp = model.compare_decompression(chunks)
            speedups[(block_mb, n_chunks)] = comp.speedup
            rows.append(
                (
                    f"{block_mb} MiB",
                    n_chunks,
                    f"{comp.chunked_seconds * 1e3:.3f} ms",
                    f"{comp.fused_seconds * 1e3:.3f} ms",
                    f"{comp.speedup:.2f}x",
                    f"{decomp.speedup:.2f}x",
                )
            )
    text = format_table(
        [
            "block size",
            "chunks",
            "chunked time",
            "single_comp time",
            "compression speedup",
            "parallel-decomp speedup",
        ],
        rows,
        title="Fig. 15 - buffer optimization (fused single kernel vs per-chunk)",
    )
    write_result("fig15_buffer_opt", text)

    # Speedup grows with chunk count at every block size.
    for block_mb in BLOCK_SIZES_MB:
        series = [speedups[(block_mb, n)] for n in CHUNK_COUNTS]
        assert series == sorted(series), f"block {block_mb} MiB not monotone"
        assert series[-1] > series[0]
    # Smaller blocks benefit more (the paper's 8 MiB vs 64 MiB finding).
    for n_chunks in CHUNK_COUNTS:
        assert speedups[(8, n_chunks)] > speedups[(64, n_chunks)]
        assert speedups[(2, n_chunks)] > speedups[(8, n_chunks)]
    # Peak speedup lands in the paper's neighbourhood (~2x), not 10x.
    peak = max(speedups.values())
    assert 1.5 < peak < 3.5, f"peak {peak:.2f}"

    chunks = [8 * MB] * 16
    benchmark(lambda: model.compare_compression(chunks))
