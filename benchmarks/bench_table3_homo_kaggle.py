"""Table III — ranked Homogenization Index on Criteo Kaggle (batch 128).

The paper samples a 128-row batch per table at error bound 0.01 and ranks
tables by the ratio of post-quantization to original pattern counts
(e.g. its first row: 110 original patterns -> 68 after quantization,
ratio 0.618).

Shape targets: the most-homogenizing tables collapse a substantial
fraction of their patterns; several tables do not homogenize at all
(ratio 1.0); quantized counts never exceed originals.
"""

from __future__ import annotations

from repro.adaptive import homogenization_index
from repro.utils import format_table

from conftest import write_result

ERROR_BOUND = 0.01  # the paper's Table III setting


def test_table3_homo_index_kaggle(kaggle_world, benchmark):
    results = {
        t: homogenization_index(batch, ERROR_BOUND)
        for t, batch in kaggle_world.samples.items()
    }
    ranked = sorted(results.items(), key=lambda kv: kv[1].pattern_ratio)

    rows = [
        (
            t,
            ERROR_BOUND,
            r.n_original,
            r.n_quantized,
            r.batch_size,
            f"{r.pattern_ratio:.6f}",
            f"{r.homo_index:.6f}",
        )
        for t, r in ranked
    ]
    text = format_table(
        ["TAB. ID", "EB", "# Ori.Patterns", "# Quant.Patterns", "Batch Size", "Pattern Ratio", "Homo Index (Eq.1)"],
        rows,
        title=f"Table III - ranked Homogenization Index (Kaggle world, batch {kaggle_world.batch_size})",
    )
    write_result("table3_homo_kaggle", text)

    ratios = [r.pattern_ratio for _, r in ranked]
    # Invariants: quantization only merges.
    assert all(r.n_quantized <= r.n_original for _, r in ranked)
    assert all(0 < ratio <= 1 for ratio in ratios)
    # Shape of the paper's Table III: strong homogenizers at the top of the
    # ranking (ratio well below 1) and non-homogenizers at 1.0.
    assert ratios[0] < 0.75, f"top ratio {ratios[0]:.3f}"
    assert ratios[-1] == 1.0
    assert sum(1 for r in ratios if r == 1.0) >= 5
    assert sum(1 for r in ratios if r < 0.95) >= 4

    batch = kaggle_world.samples[0]
    benchmark(lambda: homogenization_index(batch, ERROR_BOUND))
