"""Ablation — overlapping compression with transmission (paper future work).

The paper's conclusion proposes integrating (de)compression with the
communication library (NCCL) so that compression of chunk ``i+1`` overlaps
the transmission of chunk ``i``.  This ablation prices that design twice:

* chunk-level, with the pipeline's closed-form two-stage makespan across
  network bandwidths — the overlap win peaks where per-chunk compression
  balances per-chunk wire time, and vanishes when either stage dominates;
* end-to-end, by running the full hybrid-parallel trainer on the paper's
  8-rank configuration with the communicator's ``overlap=True`` streams,
  on the flat paper fabric and on a heterogeneous NVLink+IB topology with
  flat-vs-hierarchical dense all-reduce.

Shape targets: the overlapped pipeline never loses; its chunk-level
speedup peaks above 1.3x near the balance point; end-to-end, overlap-on
beats overlap-off on every fabric, and the hierarchical all-reduce beats
the flat ring on the heterogeneous topology.
"""

from __future__ import annotations

from repro.adaptive import AdaptiveController, OfflineAnalyzer
from repro.dist import ClusterSimulator, NetworkModel, Topology
from repro.model import DLRM, DLRMConfig
from repro.profiling import overlap_efficiency
from repro.train import CompressionPipeline, HybridParallelTrainer
from repro.utils import GB, MB, format_table

from conftest import write_result

N_CHUNKS = 32
CHUNK_BYTES = int(1 * MB)
COMPRESSION_RATIO = 18.0  # typical hybrid CR on the Kaggle world
BANDWIDTHS_GB = (16.0, 4.0, 1.0, 0.25)


def test_ablation_overlap_pipeline(kaggle_world, benchmark):
    plan = OfflineAnalyzer().analyze(kaggle_world.samples)
    pipeline = CompressionPipeline(AdaptiveController(plan), fused_kernels=False)
    chunks = [("vector_lz", CHUNK_BYTES)] * N_CHUNKS

    rows = []
    speedups = {}
    for bandwidth_gb in BANDWIDTHS_GB:
        wire_per_chunk = CHUNK_BYTES / COMPRESSION_RATIO / (bandwidth_gb * GB)
        wire_times = [wire_per_chunk] * N_CHUNKS
        sequential = pipeline.sequential_exchange_seconds(chunks, wire_times)
        overlapped = pipeline.pipelined_exchange_seconds(chunks, wire_times)
        speedups[bandwidth_gb] = sequential / overlapped
        rows.append(
            (
                f"{bandwidth_gb} GB/s",
                f"{sequential * 1e6:.1f} us",
                f"{overlapped * 1e6:.1f} us",
                f"{sequential / overlapped:.2f}x",
            )
        )
    text = format_table(
        ["wire bandwidth", "compress-then-send", "overlapped pipeline", "speedup"],
        rows,
        title=(
            "Ablation - NCCL-style compression/transmission overlap "
            f"({N_CHUNKS} chunks x {CHUNK_BYTES // MB} MiB, CR {COMPRESSION_RATIO})"
        ),
    )
    write_result("ablation_overlap_pipeline", text)

    wire_total = N_CHUNKS * CHUNK_BYTES / COMPRESSION_RATIO / (1.0 * GB)
    # Overlap never loses, at any bandwidth.
    assert all(s >= 1.0 - 1e-12 for s in speedups.values())
    # The win is material somewhere in the sweep (near compress == wire)...
    assert max(speedups.values()) > 1.3
    # ...and fades toward either extreme.
    extremes = (speedups[BANDWIDTHS_GB[0]], speedups[BANDWIDTHS_GB[-1]])
    assert min(extremes) < max(speedups.values())
    # Overlapped makespan is bounded below by the wire stage alone.
    slow_seq = pipeline.sequential_exchange_seconds(
        chunks, [CHUNK_BYTES / COMPRESSION_RATIO / (0.25 * GB)] * N_CHUNKS
    )
    slow_overlap = pipeline.pipelined_exchange_seconds(
        chunks, [CHUNK_BYTES / COMPRESSION_RATIO / (0.25 * GB)] * N_CHUNKS
    )
    assert slow_overlap >= N_CHUNKS * CHUNK_BYTES / COMPRESSION_RATIO / (0.25 * GB)
    assert slow_overlap <= slow_seq

    wire_times = [CHUNK_BYTES / COMPRESSION_RATIO / (4 * GB)] * N_CHUNKS
    benchmark(lambda: pipeline.pipelined_exchange_seconds(chunks, wire_times))


# --- end-to-end: the communicator's overlap streams on the 8-rank config ---

N_RANKS = 8
E2E_ITERATIONS = 3
E2E_BATCH = 1024


def _train(kaggle_world, plan, *, overlap, network=None, allreduce="ring"):
    config = DLRMConfig.from_dataset(
        kaggle_world.spec,
        embedding_dim=32,
        bottom_hidden=(64, 32),
        top_hidden=(64, 32),
        seed=7,
    )
    sim = ClusterSimulator(N_RANKS, network=network)
    trainer = HybridParallelTrainer(
        DLRM(config),
        kaggle_world.dataset,
        sim,
        pipeline=CompressionPipeline(AdaptiveController(plan)),
        lr=0.2,
        overlap=overlap,
        allreduce_algorithm=allreduce,
    )
    trainer.train(E2E_ITERATIONS, E2E_BATCH)
    return sim


def test_ablation_overlap_end_to_end(kaggle_world, benchmark):
    plan = OfflineAnalyzer().analyze(kaggle_world.samples)
    hetero = NetworkModel.from_topology(Topology.hierarchical(2, N_RANKS // 2))
    scenarios = {
        ("paper-flat", False): _train(kaggle_world, plan, overlap=False),
        ("paper-flat", True): _train(kaggle_world, plan, overlap=True),
        ("nvlink+ib", False): _train(kaggle_world, plan, overlap=False, network=hetero),
        ("nvlink+ib", True): _train(kaggle_world, plan, overlap=True, network=hetero),
        ("nvlink+ib hier-AR", False): _train(
            kaggle_world, plan, overlap=False, network=hetero, allreduce="hierarchical"
        ),
        ("nvlink+ib hier-AR", True): _train(
            kaggle_world, plan, overlap=True, network=hetero, allreduce="hierarchical"
        ),
    }
    rows = []
    for fabric in ("paper-flat", "nvlink+ib", "nvlink+ib hier-AR"):
        sequential = scenarios[(fabric, False)]
        overlapped = scenarios[(fabric, True)]
        rows.append(
            (
                fabric,
                f"{sequential.makespan() * 1e3:.3f} ms",
                f"{overlapped.makespan() * 1e3:.3f} ms",
                f"{sequential.makespan() / overlapped.makespan():.3f}x",
                f"{overlap_efficiency(overlapped.timeline) * 100:.1f}%",
            )
        )
    text = format_table(
        ["fabric", "overlap off", "overlap on", "speedup", "wire hidden"],
        rows,
        title=(
            "Ablation - end-to-end stream overlap "
            f"({N_RANKS} ranks, {E2E_ITERATIONS} iterations, batch {E2E_BATCH})"
        ),
    )
    write_result("ablation_overlap_end_to_end", text)

    # Acceptance: overlap-on strictly beats overlap-off on the paper's
    # 8-rank configuration, and never loses on any fabric.
    for fabric in ("paper-flat", "nvlink+ib", "nvlink+ib hier-AR"):
        sequential = scenarios[(fabric, False)].makespan()
        overlapped = scenarios[(fabric, True)].makespan()
        assert overlapped <= sequential + 1e-12, fabric
    assert scenarios[("paper-flat", True)].makespan() < scenarios[("paper-flat", False)].makespan()
    # The overlapped runs actually double-book streams.
    assert overlap_efficiency(scenarios[("paper-flat", True)].timeline) > 0.0
    # The hierarchical all-reduce beats the flat ring on the hetero fabric.
    flat_ar = scenarios[("nvlink+ib", False)].timeline.total_by_category(rank=0)["allreduce"]
    hier_ar = scenarios[("nvlink+ib hier-AR", False)].timeline.total_by_category(rank=0)["allreduce"]
    assert hier_ar < flat_ar

    benchmark(lambda: overlap_efficiency(scenarios[("paper-flat", True)].timeline))
