"""Ablation — overlapping compression with transmission (paper future work).

The paper's conclusion proposes integrating (de)compression with the
communication library (NCCL) so that compression of chunk ``i+1`` overlaps
the transmission of chunk ``i``.  This ablation prices that design with
the existing cost models across network bandwidths: the overlap win peaks
where per-chunk compression time balances per-chunk wire time, and
vanishes when either stage dominates.

Shape targets: the overlapped pipeline never loses; its speedup peaks
above 1.3x near the balance point; the sequential layout approaches
``compress + wire`` while overlap approaches ``max(compress, wire)``.
"""

from __future__ import annotations

from repro.adaptive import AdaptiveController, OfflineAnalyzer
from repro.train import CompressionPipeline
from repro.utils import GB, MB, format_table

from conftest import write_result

N_CHUNKS = 32
CHUNK_BYTES = int(1 * MB)
COMPRESSION_RATIO = 18.0  # typical hybrid CR on the Kaggle world
BANDWIDTHS_GB = (16.0, 4.0, 1.0, 0.25)


def test_ablation_overlap_pipeline(kaggle_world, benchmark):
    plan = OfflineAnalyzer().analyze(kaggle_world.samples)
    pipeline = CompressionPipeline(AdaptiveController(plan), fused_kernels=False)
    chunks = [("vector_lz", CHUNK_BYTES)] * N_CHUNKS

    rows = []
    speedups = {}
    for bandwidth_gb in BANDWIDTHS_GB:
        wire_per_chunk = CHUNK_BYTES / COMPRESSION_RATIO / (bandwidth_gb * GB)
        wire_times = [wire_per_chunk] * N_CHUNKS
        sequential = pipeline.sequential_exchange_seconds(chunks, wire_times)
        overlapped = pipeline.pipelined_exchange_seconds(chunks, wire_times)
        speedups[bandwidth_gb] = sequential / overlapped
        rows.append(
            (
                f"{bandwidth_gb} GB/s",
                f"{sequential * 1e6:.1f} us",
                f"{overlapped * 1e6:.1f} us",
                f"{sequential / overlapped:.2f}x",
            )
        )
    text = format_table(
        ["wire bandwidth", "compress-then-send", "overlapped pipeline", "speedup"],
        rows,
        title=(
            "Ablation - NCCL-style compression/transmission overlap "
            f"({N_CHUNKS} chunks x {CHUNK_BYTES // MB} MiB, CR {COMPRESSION_RATIO})"
        ),
    )
    write_result("ablation_overlap_pipeline", text)

    wire_total = N_CHUNKS * CHUNK_BYTES / COMPRESSION_RATIO / (1.0 * GB)
    # Overlap never loses, at any bandwidth.
    assert all(s >= 1.0 - 1e-12 for s in speedups.values())
    # The win is material somewhere in the sweep (near compress == wire)...
    assert max(speedups.values()) > 1.3
    # ...and fades toward either extreme.
    extremes = (speedups[BANDWIDTHS_GB[0]], speedups[BANDWIDTHS_GB[-1]])
    assert min(extremes) < max(speedups.values())
    # Overlapped makespan is bounded below by the wire stage alone.
    slow_seq = pipeline.sequential_exchange_seconds(
        chunks, [CHUNK_BYTES / COMPRESSION_RATIO / (0.25 * GB)] * N_CHUNKS
    )
    slow_overlap = pipeline.pipelined_exchange_seconds(
        chunks, [CHUNK_BYTES / COMPRESSION_RATIO / (0.25 * GB)] * N_CHUNKS
    )
    assert slow_overlap >= N_CHUNKS * CHUNK_BYTES / COMPRESSION_RATIO / (0.25 * GB)
    assert slow_overlap <= slow_seq

    wire_times = [CHUNK_BYTES / COMPRESSION_RATIO / (4 * GB)] * N_CHUNKS
    benchmark(lambda: pipeline.pipelined_exchange_seconds(chunks, wire_times))
