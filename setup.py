"""Legacy-path setup shim.

The execution environment has no network and no `wheel` package, so PEP 517
editable installs (which require bdist_wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` use the classic
``setup.py develop`` path.  Metadata mirrors pyproject.toml.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Accelerating Communication in DLRM Training with "
        "Dual-Level Adaptive Lossy Compression' (SC'24)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
