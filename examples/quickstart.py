#!/usr/bin/env python
"""Quickstart: compress a batch of DLRM embedding lookups.

Generates a realistic embedding-lookup batch (hot repeated vectors +
concentrated values), runs every compressor in the registry on it, verifies
the error bound, and prints the compression-ratio comparison plus the
Eq.-2 communication speedup each codec would deliver on a 4 GB/s
all-to-all.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.adaptive import PAPER_A100_PROFILE
from repro.compression import (
    available_compressors,
    communication_speedup,
    get_compressor,
    max_abs_error,
)
from repro.utils import GB, format_table

ERROR_BOUND = 0.01
BANDWIDTH = 4 * GB


def make_lookup_batch(batch: int = 2048, dim: int = 32, seed: int = 7) -> np.ndarray:
    """A batch shaped like real DLRM all-to-all traffic: most rows are
    repeats of hot embedding rows, values concentrated around zero."""
    rng = np.random.default_rng(seed)
    hot_rows = rng.laplace(0.0, 0.08, size=(40, dim)).astype(np.float32)
    batch_rows = hot_rows[rng.integers(0, 40, size=batch)].copy()
    fresh = rng.random(batch) < 0.15  # some rows are cold lookups
    batch_rows[fresh] = rng.laplace(0.0, 0.08, size=(int(fresh.sum()), dim)).astype(np.float32)
    return batch_rows


def main() -> None:
    data = make_lookup_batch()
    print(f"input: {data.shape[0]} vectors x {data.shape[1]} dims "
          f"({data.nbytes / 1024:.0f} KiB float32), error bound {ERROR_BOUND}\n")

    rows = []
    for name in available_compressors():
        codec = get_compressor(name)
        payload = codec.compress(data, ERROR_BOUND if codec.error_bounded else None)
        reconstructed = codec.decompress(payload)
        ratio = data.nbytes / len(payload)
        throughput = PAPER_A100_PROFILE.for_codec(name)
        speedup = communication_speedup(
            ratio, BANDWIDTH, throughput.compress, throughput.decompress
        )
        rows.append(
            (
                name,
                f"{ratio:.2f}x",
                f"{max_abs_error(data, reconstructed):.5f}",
                "yes" if codec.error_bounded else "no",
                f"{speedup:.2f}x",
            )
        )
    rows.sort(key=lambda r: -float(r[1][:-1]))
    print(
        format_table(
            ["codec", "ratio", "max error", "error-bounded", "Eq.2 comm speedup @4GB/s"],
            rows,
            title="Compressor comparison on one embedding-lookup batch",
        )
    )
    print(
        "\nThe hybrid codec (quantization + {vector-LZ | Huffman}) achieves the"
        "\nbest ratio while keeping every reconstructed value within the bound."
    )


if __name__ == "__main__":
    main()
