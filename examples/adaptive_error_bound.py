#!/usr/bin/env python
"""The dual-level adaptive error-bound strategy, step by step.

Level 1 (table-wise): measures each table's Homogenization Index on sampled
lookups, classifies tables into small/medium/large error-bound groups, and
shows the per-table encoder Algorithm 2 selects.

Level 2 (iteration-wise): plots (as text) how the effective bound of one
table evolves under the paper's decay schedules, and how the resulting
compression ratio and training accuracy respond.

Run:  python examples/adaptive_error_bound.py
"""

from __future__ import annotations

import numpy as np

from repro.adaptive import (
    AdaptiveController,
    OfflineAnalyzer,
    make_schedule,
)
from repro.data import CRITEO_KAGGLE, SyntheticClickDataset, scaled_spec
from repro.model import DLRM, DLRMConfig
from repro.train import CompressionPipeline, ReferenceTrainer
from repro.utils import format_table

ITERATIONS = 120
PHASE = 60
SEED = 23


def main() -> None:
    spec = scaled_spec(CRITEO_KAGGLE, max_cardinality=2000)
    dataset = SyntheticClickDataset(spec, seed=SEED, teacher_scale=3.0)
    config = DLRMConfig.from_dataset(spec, embedding_dim=16, seed=SEED + 1)
    probe = DLRM(config)
    batch = dataset.batch(256, batch_index=999_999)
    samples = {j: probe.lookup(j, batch.sparse[:, j]) for j in range(spec.n_tables)}

    # ---- Level 1: table-wise classification -------------------------------
    plan = OfflineAnalyzer().analyze(samples)
    rows = []
    for table_id in sorted(plan.tables)[:10]:
        table_plan = plan.tables[table_id]
        rows.append(
            (
                table_id,
                table_plan.homo.n_original,
                table_plan.homo.n_quantized,
                f"{table_plan.homo.homo_index:.3f}",
                table_plan.category,
                table_plan.error_bound,
                table_plan.compressor,
            )
        )
    print(
        format_table(
            ["table", "#patterns", "#quantized", "homo index", "class", "error bound", "encoder"],
            rows,
            title="Level 1 - table-wise configuration (first 10 tables)",
        )
    )

    # ---- Level 2: iteration-wise decay ------------------------------------
    schedules = {
        "stepwise": make_schedule("stepwise", initial_scale=2.0, phase_iterations=PHASE),
        "linear": make_schedule("linear", initial_scale=2.0, phase_iterations=PHASE),
        "drop": make_schedule("drop", initial_scale=2.0, phase_iterations=PHASE),
    }
    print("\nLevel 2 - effective bound of table 0 over training (x = 10 iters):")
    for name, schedule in schedules.items():
        controller = AdaptiveController(plan, schedule)
        trace = "".join(
            str(int(10 * controller.error_bound(0, i) / plan.error_bound_for(0)))
            for i in range(0, ITERATIONS, 10)
        )
        print(f"  {name:9s} x{trace}  (digits = bound / base x 10)")

    # ---- Effect on accuracy + compression ratio ---------------------------
    print("\nTraining with each schedule (same seed, same data):")
    rows = []
    for name, schedule in schedules.items():
        controller = AdaptiveController(plan, schedule)
        pipeline = CompressionPipeline(controller)
        model = DLRM(config)
        trainer = ReferenceTrainer(
            model, dataset, lr=0.25, lookup_transform=pipeline.roundtrip
        )
        history = trainer.train(ITERATIONS, 128, eval_every=ITERATIONS)
        rows.append(
            (
                name,
                f"{np.mean(history.losses[-10:]):.4f}",
                f"{history.final_accuracy:.4f}",
                f"{pipeline.mean_ratio():.2f}x",
            )
        )
    print(format_table(["schedule", "final loss", "accuracy", "mean CR"], rows))
    print(
        "\nStepwise decay keeps the accuracy of the tight bound while "
        "harvesting the early-phase compression of the loose one (Fig. 5/10)."
    )


if __name__ == "__main__":
    main()
