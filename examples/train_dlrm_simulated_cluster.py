#!/usr/bin/env python
"""End-to-end: hybrid-parallel DLRM training with compressed all-to-all.

Reproduces the paper's full workflow on a simulated 32-GPU cluster:

1. build a synthetic Criteo-Kaggle-like dataset and a DLRM;
2. run the offline analysis (Homogenization Index -> table classes,
   Eq.-2 compressor selection per table);
3. train a baseline (uncompressed all-to-all) and a compressed run
   (dual-level adaptive error bounds, 4-stage pipeline);
4. print the Fig.-12-style breakdowns, speedups, and the accuracy delta.

Run:  python examples/train_dlrm_simulated_cluster.py
"""

from __future__ import annotations

from repro.adaptive import AdaptiveController, OfflineAnalyzer, StepwiseDecay
from repro.data import CRITEO_KAGGLE, SyntheticClickDataset, scaled_spec
from repro.dist import ClusterSimulator
from repro.model import DLRM, DLRMConfig
from repro.profiling import breakdown_report, compare_runs
from repro.train import CompressionPipeline, HybridParallelTrainer

N_RANKS = 32
GLOBAL_BATCH = 4096
ITERATIONS = 10
SEED = 17


def build_world():
    spec = scaled_spec(CRITEO_KAGGLE, max_cardinality=4000)
    dataset = SyntheticClickDataset(spec, seed=SEED, teacher_scale=3.0)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=64, bottom_hidden=(128, 64), top_hidden=(128, 64), seed=SEED + 1
    )
    return spec, dataset, config


def offline_analysis(dataset, config):
    """Sample one batch per table and build the compression plan."""
    probe_model = DLRM(config)
    batch = dataset.batch(256, batch_index=10_000_000)
    samples = {
        j: probe_model.lookup(j, batch.sparse[:, j]) for j in range(config.n_tables)
    }
    plan = OfflineAnalyzer().analyze(samples)
    print("Offline analysis:")
    print(f"  table classes: {plan.category_counts()}")
    chosen = {}
    for table_plan in plan.tables.values():
        chosen[table_plan.compressor] = chosen.get(table_plan.compressor, 0) + 1
    print(f"  encoder selection (Algorithm 2): {chosen}\n")
    return plan


def run(dataset, config, plan=None) -> tuple:
    simulator = ClusterSimulator(N_RANKS)
    pipeline = None
    if plan is not None:
        controller = AdaptiveController(
            plan, StepwiseDecay(2.0, phase_iterations=ITERATIONS // 2, n_steps=4)
        )
        pipeline = CompressionPipeline(controller)
    trainer = HybridParallelTrainer(
        DLRM(config), dataset, simulator, pipeline=pipeline, lr=0.2
    )
    report = trainer.train(ITERATIONS, GLOBAL_BATCH, eval_every=ITERATIONS)
    return report


def main() -> None:
    _, dataset, config = build_world()
    plan = offline_analysis(dataset, config)

    baseline = run(dataset, config, plan=None)
    compressed = run(dataset, config, plan=plan)

    print(breakdown_report(baseline.category_seconds, title="BASELINE (uncompressed all-to-all)"))
    print()
    print(breakdown_report(compressed.category_seconds, title="COMPRESSED (dual-level adaptive)"))

    summary = compare_runs(baseline.category_seconds, compressed.category_seconds)
    print(f"\nforward-exchange compression ratio: {compressed.forward_compression_ratio:.1f}x")
    print(f"forward all-to-all speedup:         {summary.communication:.2f}x")
    print(f"end-to-end training speedup:        {summary.end_to_end:.2f}x")
    print(
        f"accuracy: baseline {baseline.history.final_accuracy:.4f} vs "
        f"compressed {compressed.history.final_accuracy:.4f} "
        f"(delta {abs(baseline.history.final_accuracy - compressed.history.final_accuracy):.4f})"
    )


if __name__ == "__main__":
    main()
