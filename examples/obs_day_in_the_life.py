#!/usr/bin/env python
"""One observed run of the whole system: train, publish, serve.

Runs the ``repro.obs`` day-in-the-life scenario — a few compressed
hybrid-parallel training steps, one delta publication to a 2-shard
serving tier, and a Zipf-skewed request trace served behind the
publication window — with the metrics runtime enabled throughout, then
prints the unified run report.

With ``--out DIR`` it also writes the machine artifacts:

* ``metrics.json``   — snapshot (schema ``repro.obs.snapshot/v2``,
  including the critical-path and SLO ``reports`` blocks)
* ``metrics.prom``   — the same snapshot in Prometheus text format
* ``obs_trace.json`` — one chrome trace with train / publish / serve
  lanes, spans, counter tracks, and a per-tier critical-path highlight
  lane (open in ``chrome://tracing`` or Perfetto)
* ``run_report.txt`` — the report printed below
* ``critical_path.json`` — per-tier makespan attribution

Run:  python examples/obs_day_in_the_life.py [--out results/obs]
"""

from __future__ import annotations

import argparse

from repro.obs import run_day_in_the_life


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="directory for metrics/trace artifacts")
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--requests", type=int, default=200)
    args = parser.parse_args(argv)

    result = run_day_in_the_life(
        n_iterations=args.iterations,
        n_requests=args.requests,
        out_dir=args.out,
    )
    print(result.report)
    print()
    print(
        f"train makespan {result.train_makespan * 1e3:.3f} ms | "
        f"published {result.publish_wire_nbytes} wire bytes | "
        f"serve p99 {result.serve_p99_latency * 1e6:.1f} us"
    )
    firing = result.slo.firing() if result.slo is not None else []
    print(
        "SLOs firing: " + (", ".join(s.name for s in firing) if firing else "none")
    )
    for name, path in sorted(result.paths.items()):
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
