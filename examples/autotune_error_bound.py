#!/usr/bin/env python
"""Automated global error-bound selection (the paper's future work).

The paper picks its fixed global error bound (0.02) by hand and names an
automated search as future work.  This example implements it: a log-space
bisection over candidate bounds, each evaluated by a short proxy training
run, choosing the **largest** bound whose accuracy stays within tolerance
of exact training — i.e. the most compression the model can tolerate.

Run:  python examples/autotune_error_bound.py
"""

from __future__ import annotations

from repro.adaptive import (
    AdaptiveController,
    ErrorBoundLevels,
    OfflineAnalyzer,
    autotune_global_error_bound,
)
from repro.data import SyntheticClickDataset, make_uniform_spec
from repro.model import DLRM, DLRMConfig
from repro.train import CompressionPipeline, ReferenceTrainer
from repro.utils import format_table

SEED = 41
PROXY_ITERATIONS = 300
BATCH = 128
TOLERANCE = 0.02


def main() -> None:
    # A compact world where every embedding row is revisited many times per
    # proxy run, and the planted teacher is weighted toward the categorical
    # features: label quality then genuinely depends on the embeddings, so
    # compression noise has a measurable accuracy cost and the bound search
    # has a real cliff to find.
    spec = make_uniform_spec("autotune", n_tables=6, cardinality=50, zipf_exponent=1.0)
    dataset = SyntheticClickDataset(
        spec, seed=SEED, teacher_scale=5.0, dense_weight=0.1
    )
    config = DLRMConfig.from_dataset(spec, embedding_dim=16, seed=SEED + 1)

    def proxy_run(lookup_transform=None):
        trainer = ReferenceTrainer(
            DLRM(config), dataset, lr=1.0, lookup_transform=lookup_transform
        )
        return trainer.train(
            PROXY_ITERATIONS, BATCH, eval_every=PROXY_ITERATIONS, eval_batches=8
        )

    print(f"baseline proxy run ({PROXY_ITERATIONS} iterations)...")
    baseline = proxy_run()
    print(f"  exact-training accuracy: {baseline.final_accuracy:.4f}\n")

    def trial(bound: float) -> tuple[float, float]:
        probe = DLRM(config)
        batch = dataset.batch(256, batch_index=999_999)
        samples = {
            j: probe.lookup(j, batch.sparse[:, j]) for j in range(spec.n_tables)
        }
        plan = OfflineAnalyzer(
            levels=ErrorBoundLevels(large=bound, medium=bound, small=bound)
        ).analyze(samples)
        pipeline = CompressionPipeline(AdaptiveController(plan))
        history = proxy_run(pipeline.roundtrip)
        print(
            f"  trial EB={bound:.4f}: accuracy {history.final_accuracy:.4f}, "
            f"CR {pipeline.mean_ratio():.1f}x"
        )
        return history.final_accuracy, pipeline.mean_ratio()

    print("bisecting the error-bound axis:")
    result = autotune_global_error_bound(
        trial,
        baseline.final_accuracy,
        accuracy_tolerance=TOLERANCE,
        lower=0.002,
        upper=2.0,
        max_trials=6,
    )

    rows = [
        (f"{t.error_bound:.4f}", f"{t.accuracy:.4f}", f"{t.ratio:.1f}x", t.acceptable)
        for t in result.trials
    ]
    print()
    print(
        format_table(
            ["error bound", "accuracy", "CR", "acceptable"],
            rows,
            title="Autotune trials",
        )
    )
    verdict = "feasible" if result.feasible else "INFEASIBLE (fall back to exact)"
    print(
        f"\nchosen global error bound: {result.chosen:.4f} ({verdict}); "
        f"tolerance {TOLERANCE} below baseline {baseline.final_accuracy:.4f}"
    )


if __name__ == "__main__":
    main()
