#!/usr/bin/env python
"""One chaos run of the whole system: train, publish, serve — under faults.

Runs the ``repro.faults`` day-in-the-life scenario twice from identical
seeds: once healthy, once with an injected :class:`FaultPlan` — a
straggler rank and a fabric outage during training, a rank failure
answered by checkpoint restore, corrupted publication payloads (one
round abandoned, one recovered by retry), and a serving shard crash
absorbed by retries, circuit breakers, and degraded answers.  The
robustness invariants are checked inline (the script fails loudly if any
breaks) and the unified run report is printed.

With ``--out DIR`` it also writes the machine artifacts:

* ``metrics.json``     — snapshot (schema ``repro.obs.snapshot/v1``) with
  the fault/retry/degradation counters
* ``metrics.prom``     — the same snapshot in Prometheus text format
* ``chaos_trace.json`` — one chrome trace with train / publish / serve
  lanes plus FAULT annotation spans marking every injected window
* ``run_report.txt``   — the report printed below

Run:  python examples/faults_day_in_the_life.py [--out results/chaos]
"""

from __future__ import annotations

import argparse

from repro.faults import run_day_in_the_life_under_faults


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="directory for metrics/trace artifacts")
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--requests", type=int, default=200)
    args = parser.parse_args(argv)

    result = run_day_in_the_life_under_faults(
        n_iterations=args.iterations,
        n_requests=args.requests,
        out_dir=args.out,
    )
    print(result.report)
    print()
    print(
        f"train makespan {result.healthy_train_makespan * 1e3:.3f} ms healthy -> "
        f"{result.faulty_train_makespan * 1e3:.3f} ms under faults | "
        f"resume bit-identical: {result.params_bit_identical} "
        f"({result.checkpoints_taken} checkpoints, {result.restores} restore)"
    )
    print(
        f"publish: {result.publish_rounds} rounds, "
        f"{result.failed_publish_rounds} abandoned, "
        f"{result.publish_attempts_total} delivery attempts | "
        f"staleness {result.staleness_after_last_success:.4f} "
        f"<= bound {result.last_success_staleness_bound:.4f}"
    )
    print(
        f"serve: {result.fresh_requests}/{result.n_requests} fresh, "
        f"{result.impaired_requests} impaired "
        f"({result.stale_rows} stale rows, {result.degraded_rows} degraded rows, "
        f"compound bound {result.compound_bound:.4f})"
    )
    for name, path in sorted(result.paths.items()):
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
