#!/usr/bin/env python
"""Compressor fine-tuning: window size and buffer optimization.

Reproduces the two Section III-E studies at example scale:

* **Window size** — the vector-based LZ window is swept over
  {32, 64, 128, 255} vectors on a batch whose hot rows recur at varying
  gaps; larger windows catch longer-range repeats (Table VI's mechanism).
* **Buffer optimization** — the fused single-kernel compression and the
  chunk-parallel decompression are priced against the naive per-chunk
  execution across chunk counts (Fig. 15's mechanism).

Run:  python examples/compressor_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro.compression import VectorLZCompressor
from repro.compression.buffer import BufferCostModel
from repro.utils import MB, format_table

SEED = 31


def window_sweep() -> None:
    rng = np.random.default_rng(SEED)
    # Hot rows recur with gaps beyond small windows: pool of 180 rows,
    # batch of 2048 queries (Zipf-like reuse).
    pool = rng.laplace(0, 0.1, size=(180, 32)).astype(np.float32)
    weights = 1.0 / np.arange(1, 181) ** 1.1
    ids = rng.choice(180, size=2048, p=weights / weights.sum())
    data = pool[ids].copy()

    rows = []
    base_ratio = None
    for window in (32, 64, 128, 255):
        codec = VectorLZCompressor(window=window)
        payload = codec.compress(data, 0.01)
        ratio = data.nbytes / len(payload)
        if base_ratio is None:
            base_ratio = ratio
        rows.append((window, f"{ratio:.2f}x", f"{ratio / base_ratio:.2f}x"))
    print(
        format_table(
            ["window (vectors)", "compression ratio", "vs window=32"],
            rows,
            title="Vector-LZ window-size fine-tuning (Table VI mechanism)",
        )
    )


def buffer_optimization() -> None:
    model = BufferCostModel()  # A100-like device, vector-LZ throughputs
    rows = []
    for n_chunks in (2, 4, 8, 16):
        for chunk_mb in (4, 8, 64):
            chunks = [chunk_mb * MB] * n_chunks
            comp = model.compare_compression(chunks)
            decomp = model.compare_decompression(chunks)
            rows.append(
                (
                    n_chunks,
                    f"{chunk_mb} MiB",
                    f"{comp.speedup:.2f}x",
                    f"{decomp.speedup:.2f}x",
                )
            )
    print()
    print(
        format_table(
            ["chunks", "chunk size", "compression speedup", "decompression speedup"],
            rows,
            title="Buffer optimization: fused kernel vs per-chunk (Fig. 15 mechanism)",
        )
    )
    print(
        "\nThe fused kernel wins more with more chunks and with smaller"
        "\nblocks, where kernel-launch overhead and low GPU utilization"
        "\ndominate - the paper's 8 MiB-vs-64 MiB observation."
    )


if __name__ == "__main__":
    window_sweep()
    buffer_optimization()
