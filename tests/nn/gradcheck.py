"""Finite-difference gradient checking helpers."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = ["numerical_gradient", "relative_error"]


def numerical_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max elementwise relative error with absolute floor."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.maximum(np.abs(a) + np.abs(b), 1e-8)
    return float((np.abs(a - b) / denom).max())
