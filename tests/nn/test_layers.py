"""Tests for the NN substrate: layers, gradients, loss, optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    MLP,
    SGD,
    Adagrad,
    DotInteraction,
    EmbeddingTable,
    Linear,
    Parameter,
    ReLU,
    bce_grad,
    bce_with_logits,
    sigmoid,
)
from repro.nn.init import (
    clustered_embedding,
    embedding_init,
    laplace_embedding,
    normal_embedding,
    uniform_embedding,
    xavier_uniform,
)
from tests.nn.gradcheck import numerical_gradient, relative_error


class TestInit:
    def test_xavier_bounds(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform(rng, 100, 50)
        limit = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert np.abs(w).max() <= limit

    def test_uniform_embedding_bounds(self):
        rng = np.random.default_rng(0)
        w = uniform_embedding(rng, 50, 8, 0.2)
        assert np.abs(w).max() <= 0.2

    def test_normal_embedding_scale(self):
        rng = np.random.default_rng(0)
        w = normal_embedding(rng, 5000, 8, 0.1)
        assert w.std() == pytest.approx(0.1, rel=0.05)

    def test_laplace_heavier_tails_than_normal(self):
        rng = np.random.default_rng(0)
        lap = laplace_embedding(rng, 5000, 8, 0.1)
        norm = normal_embedding(np.random.default_rng(0), 5000, 8, 0.1)
        assert lap.std() == pytest.approx(0.1, rel=0.05)
        # Heavy tails: larger kurtosis.
        def kurt(x):
            c = x.ravel() - x.mean()
            return (c**4).mean() / (c**2).mean() ** 2
        assert kurt(lap) > kurt(norm) + 1.0

    def test_clustered_embedding_structure(self):
        rng = np.random.default_rng(0)
        w = clustered_embedding(rng, 200, 4, 0.3, n_clusters=5, jitter=1e-5)
        # Rounded rows collapse to at most ~5 distinct patterns.
        rounded = np.round(w, 2)
        assert np.unique(rounded, axis=0).shape[0] <= 10

    def test_embedding_init_dispatch(self):
        rng = np.random.default_rng(0)
        for name in ("uniform", "normal", "laplace"):
            w = embedding_init(rng, 10, 4, 0.1, name)
            assert w.shape == (10, 4)
        with pytest.raises(ValueError):
            embedding_init(rng, 10, 4, 0.1, "cauchy")


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        out = layer.forward(np.ones((8, 4)))
        assert out.shape == (8, 3)

    def test_gradcheck_weight_and_input(self):
        rng = np.random.default_rng(1)
        layer = Linear(5, 3, rng)
        x = rng.normal(size=(4, 5))
        target = rng.normal(size=(4, 3))

        def loss_of_weight(w):
            layer.weight.data = w
            out = layer.forward(x)
            layer._cache = None
            return 0.5 * float(((out - target) ** 2).sum())

        numeric = numerical_gradient(loss_of_weight, layer.weight.data.copy())
        out = layer.forward(x)
        layer.weight.zero_grad()
        dx = layer.backward(out - target)
        assert relative_error(layer.weight.grad, numeric) < 1e-6

        def loss_of_input(xv):
            out = layer.forward(xv)
            layer._cache = None
            return 0.5 * float(((out - target) ** 2).sum())

        numeric_dx = numerical_gradient(loss_of_input, x.copy())
        assert relative_error(dx, numeric_dx) < 1e-6

    def test_grad_accumulates(self):
        layer = Linear(2, 2, np.random.default_rng(0))
        x = np.ones((1, 2))
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        np.testing.assert_allclose(layer.weight.grad, 2 * first)

    def test_backward_before_forward_rejected(self):
        layer = Linear(2, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_shape_mismatch_rejected(self):
        layer = Linear(3, 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.forward(np.ones((4, 5)))


class TestActivationsAndMLP:
    def test_relu(self):
        relu = ReLU()
        out = relu.forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])
        dx = relu.backward(np.ones(3))
        np.testing.assert_array_equal(dx, [0.0, 0.0, 1.0])

    def test_mlp_shapes(self):
        mlp = MLP([4, 8, 2], np.random.default_rng(0), final_activation="none")
        out = mlp.forward(np.ones((5, 4)))
        assert out.shape == (5, 2)

    def test_mlp_gradcheck(self):
        rng = np.random.default_rng(2)
        mlp = MLP([3, 4, 2], rng, final_activation="none")
        x = rng.normal(size=(3, 3))
        target = rng.normal(size=(3, 2))
        w = mlp.parameters()[0]

        def loss_of_w(wv):
            w.data = wv
            return 0.5 * float(((mlp.forward(x) - target) ** 2).sum())

        numeric = numerical_gradient(loss_of_w, w.data.copy())
        out = mlp.forward(x)
        for p in mlp.parameters():
            p.zero_grad()
        mlp.backward(out - target)
        assert relative_error(w.grad, numeric) < 1e-5

    def test_mlp_validation(self):
        with pytest.raises(ValueError):
            MLP([4], np.random.default_rng(0))
        with pytest.raises(ValueError):
            MLP([4, 2], np.random.default_rng(0), final_activation="tanh")


class TestEmbeddingTable:
    def test_lookup_dtype_and_shape(self):
        table = EmbeddingTable(10, 4, np.random.default_rng(0))
        rows = table.lookup(np.array([0, 3, 3]))
        assert rows.shape == (3, 4)
        assert rows.dtype == np.float32

    def test_duplicate_grads_accumulate(self):
        table = EmbeddingTable(5, 2, np.random.default_rng(0))
        table.accumulate_grad(np.array([1, 1, 2]), np.ones((3, 2)))
        np.testing.assert_allclose(table.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(table.weight.grad[2], [1.0, 1.0])
        np.testing.assert_allclose(table.weight.grad[0], [0.0, 0.0])

    def test_out_of_range_rejected(self):
        table = EmbeddingTable(5, 2, np.random.default_rng(0))
        with pytest.raises(IndexError):
            table.lookup(np.array([5]))
        with pytest.raises(IndexError):
            table.lookup(np.array([-1]))

    def test_grad_shape_validated(self):
        table = EmbeddingTable(5, 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            table.accumulate_grad(np.array([0]), np.ones((2, 2)))

    def test_clustered_table_rows_near_centroids(self):
        table = EmbeddingTable(
            100, 4, np.random.default_rng(0), scale=0.3, n_clusters=4, jitter=1e-6
        )
        rows = table.lookup(np.arange(100))
        assert np.unique(np.round(rows, 3), axis=0).shape[0] <= 8


class TestDotInteraction:
    def test_output_dim(self):
        inter = DotInteraction(n_features=4, dim=8)
        assert inter.output_dim == 8 + 6

    def test_forward_contains_dense_passthrough(self):
        rng = np.random.default_rng(3)
        inter = DotInteraction(3, 4)
        z = rng.normal(size=(2, 3, 4))
        out = inter.forward(z)
        np.testing.assert_allclose(out[:, :4], z[:, 0, :])

    def test_pairwise_dots_correct(self):
        inter = DotInteraction(3, 2)
        z = np.array([[[1.0, 0.0], [0.0, 1.0], [2.0, 3.0]]])
        out = inter.forward(z)
        # pairs (1,0), (2,0), (2,1): dots = 0, 2, 3
        np.testing.assert_allclose(out[0, 2:], [0.0, 2.0, 3.0])

    def test_gradcheck(self):
        rng = np.random.default_rng(4)
        inter = DotInteraction(3, 2)
        z = rng.normal(size=(2, 3, 2))
        target = rng.normal(size=(2, inter.output_dim))

        def loss_of_z(zv):
            out = inter.forward(zv)
            inter._cache = None
            return 0.5 * float(((out - target) ** 2).sum())

        numeric = numerical_gradient(loss_of_z, z.copy())
        out = inter.forward(z)
        dz = inter.backward(out - target)
        assert relative_error(dz, numeric) < 1e-6

    def test_shape_validation(self):
        inter = DotInteraction(3, 2)
        with pytest.raises(ValueError):
            inter.forward(np.zeros((2, 4, 2)))


class TestLoss:
    def test_matches_naive_formula(self):
        rng = np.random.default_rng(5)
        logits = rng.normal(size=20)
        labels = (rng.random(20) < 0.5).astype(float)
        p = 1 / (1 + np.exp(-logits))
        naive = -(labels * np.log(p) + (1 - labels) * np.log(1 - p)).mean()
        assert bce_with_logits(logits, labels) == pytest.approx(naive)

    def test_stable_at_extreme_logits(self):
        loss = bce_with_logits(np.array([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss)
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_grad_matches_finite_difference(self):
        rng = np.random.default_rng(6)
        logits = rng.normal(size=8)
        labels = (rng.random(8) < 0.5).astype(float)
        numeric = numerical_gradient(lambda z: bce_with_logits(z, labels), logits.copy())
        assert relative_error(bce_grad(logits, labels), numeric) < 1e-6

    def test_sigmoid_range(self):
        out = sigmoid(np.array([-500.0, 0.0, 500.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == 0.5
        assert out[2] == pytest.approx(1.0, abs=1e-12)

    def test_label_validation(self):
        with pytest.raises(ValueError):
            bce_with_logits(np.zeros(2), np.array([0.0, 2.0]))


class TestOptimizers:
    def test_sgd_step(self):
        p = Parameter(np.array([1.0, 2.0]))
        p.grad[:] = [0.5, 1.0]
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 1.9])
        np.testing.assert_allclose(p.grad, 0.0)

    def test_adagrad_adapts_rate(self):
        p = Parameter(np.array([0.0, 0.0]))
        opt = Adagrad([p], lr=1.0)
        p.grad[:] = [1.0, 10.0]
        opt.step()
        # Adagrad normalizes by |g|: both coordinates move ~equally.
        assert abs(p.data[0]) == pytest.approx(abs(p.data[1]), rel=1e-6)

    def test_sgd_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = SGD([p], lr=0.3)
        for _ in range(50):
            p.grad[:] = 2 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 1e-5

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            Adagrad([], lr=0.1)
