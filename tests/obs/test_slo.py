"""SLO burn-rate monitors: windows, monotonicity, multi-window firing.

The property the harness pins: with the totals fixed, more bad
observations in the window never lower the burn rate.  Plus the
multi-window alert semantics (fast AND slow must both exceed their
thresholds), the zero-budget ``objective == 1`` infinite burn, and the
live-feed integration through the day-in-the-life scenario.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.runtime import OBS
from repro.obs.slo import (
    BurnRateMonitor,
    SloHub,
    SLOSpec,
    attach_hub,
    default_monitors,
    detach_hub,
)


def _spec(**overrides) -> SLOSpec:
    base = dict(
        name="m", source="feed", threshold=1.0, objective=0.99,
        fast_window=1.0, slow_window=10.0,
    )
    base.update(overrides)
    return SLOSpec(**base)


class TestSpecValidation:
    def test_defaults_are_the_google_multiwindow_pair(self):
        spec = _spec()
        assert spec.fast_burn == 14.4
        assert spec.slow_burn == 6.0
        assert spec.budget == pytest.approx(0.01)

    @pytest.mark.parametrize("overrides", [
        {"name": ""},
        {"source": ""},
        {"objective": 0.0},
        {"objective": 1.1},
        {"objective": -0.5},
        {"threshold": -1.0},
        {"threshold": math.inf},
        {"fast_window": 2.0, "slow_window": 1.0},
    ])
    def test_bad_specs_rejected(self, overrides):
        with pytest.raises(ValueError):
            _spec(**overrides)

    def test_objective_one_is_legal_zero_budget(self):
        spec = _spec(objective=1.0)
        assert spec.budget == 0.0


class TestWindowSemantics:
    def test_window_is_half_open_on_the_left(self):
        monitor = BurnRateMonitor(_spec())
        monitor.observe(0.0, 2.0)
        monitor.observe(1.0, 2.0)
        # (now - window, now] => t=0.0 excluded, t=1.0 included
        assert monitor.window_counts(1.0, 1.0) == (1, 1)
        assert monitor.window_counts(2.0, 1.0) == (2, 2)

    def test_burn_rate_is_windowed_fraction_over_budget(self):
        monitor = BurnRateMonitor(_spec())
        monitor.observe(0.5, 0.0)   # good
        monitor.observe(0.9, 2.0)   # bad
        # 1 bad of 2 in window / 0.01 budget = 50
        assert monitor.burn_rate(1.0, now=1.0) == pytest.approx(50.0)

    def test_no_samples_or_no_bad_is_zero_burn(self):
        monitor = BurnRateMonitor(_spec())
        assert monitor.burn_rate(1.0, now=5.0) == 0.0
        monitor.observe(4.9, 0.5)  # good
        assert monitor.burn_rate(1.0, now=5.0) == 0.0

    def test_zero_budget_breach_burns_infinitely(self):
        monitor = BurnRateMonitor(_spec(objective=1.0))
        monitor.observe(0.5, 2.0)
        assert monitor.burn_rate(1.0, now=1.0) == math.inf

    def test_now_defaults_to_last_sample_time(self):
        monitor = BurnRateMonitor(_spec())
        monitor.observe(3.0, 2.0)
        monitor.observe(7.0, 2.0)
        assert monitor.last_time == 7.0
        assert monitor.burn_rate(1.0) == monitor.burn_rate(1.0, now=7.0)

    def test_non_finite_time_rejected(self):
        monitor = BurnRateMonitor(_spec())
        with pytest.raises(ValueError):
            monitor.observe(math.nan, 1.0)


class TestMonotonicity:
    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=30),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_more_bad_never_lowers_the_burn_rate(self, times, data):
        """Fixed sample times and totals; flipping one more observation
        from good to bad never decreases the windowed burn rate."""
        k = data.draw(st.integers(min_value=0, max_value=len(times) - 1))
        spec = _spec(fast_window=1.0, slow_window=1.0)

        def build(n_bad: int) -> BurnRateMonitor:
            monitor = BurnRateMonitor(spec)
            for i, t in enumerate(times):
                monitor.observe(t, 2.0 if i < n_bad else 0.0)
            return monitor

        fewer = build(k).burn_rate(1.0, now=1.0)
        more = build(k + 1).burn_rate(1.0, now=1.0)
        assert more >= fewer

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_burn_rate_never_negative(self, times, n_bad):
        monitor = BurnRateMonitor(_spec())
        for i, t in enumerate(times):
            monitor.observe(t, 2.0 if i < n_bad else 0.0)
        assert monitor.burn_rate(1.0, now=1.0) >= 0.0


class TestMultiWindowFiring:
    def test_both_windows_hot_fires(self):
        monitor = BurnRateMonitor(_spec())
        for t in (0.2, 0.4, 0.6, 9.8):
            monitor.observe(t, 2.0)  # every observation bad
        state = monitor.state(now=10.0)
        assert state.fast_burn_rate >= monitor.spec.fast_burn
        assert state.slow_burn_rate >= monitor.spec.slow_burn
        assert state.firing

    def test_fast_only_does_not_fire(self):
        monitor = BurnRateMonitor(_spec())
        # A long good history dilutes the slow window; the burst at the
        # end saturates only the fast window.
        for i in range(100):
            monitor.observe(0.5 + i * 0.09, 0.0)
        monitor.observe(9.95, 2.0)
        state = monitor.state(now=10.0)
        assert state.fast_burn_rate >= monitor.spec.fast_burn
        assert state.slow_burn_rate < monitor.spec.slow_burn
        assert not state.firing

    def test_slow_only_does_not_fire(self):
        monitor = BurnRateMonitor(_spec())
        for t in (0.5, 1.5, 2.5):
            monitor.observe(t, 2.0)  # old badness, outside the fast window
        monitor.observe(9.5, 0.0)  # the fast window sees only good
        state = monitor.state(now=10.0)
        assert state.fast_burn_rate < monitor.spec.fast_burn
        assert state.slow_burn_rate >= monitor.spec.slow_burn
        assert not state.firing

    def test_state_counts_cover_all_samples(self):
        monitor = BurnRateMonitor(_spec())
        monitor.observe(0.1, 2.0)
        monitor.observe(5.0, 0.0)
        state = monitor.state(now=10.0)
        assert state.samples == 2
        assert state.bad_samples == 1

    def test_state_json_maps_inf_to_string(self):
        monitor = BurnRateMonitor(_spec(objective=1.0))
        monitor.observe(9.9, 2.0)
        doc = monitor.state(now=10.0).to_json_dict()
        assert doc["fast_burn_rate"] == "inf"
        assert doc["slow_burn_rate"] == "inf"
        assert doc["firing"] is True  # inf exceeds any threshold pair


class TestSloHub:
    def test_feed_routes_by_source(self):
        serve = BurnRateMonitor(_spec(name="a", source="serve_latency"))
        train = BurnRateMonitor(_spec(name="b", source="train_step"))
        hub = SloHub([serve])
        assert hub.add(train) is train
        hub.feed("serve_latency", 0.5, 2.0)
        hub.feed("train_step", 0.5, 0.0)
        hub.feed("unknown_source", 0.5, 2.0)
        assert len(serve) == 1
        assert len(train) == 1

    def test_firing_filters_states(self):
        hot = BurnRateMonitor(
            _spec(name="hot", source="s", objective=1.0,
                  fast_burn=1.0, slow_burn=1.0)
        )
        cold = BurnRateMonitor(_spec(name="cold", source="s", threshold=5.0))
        hub = SloHub([hot, cold])
        hub.feed("s", 0.5, 2.0)
        names = [state.name for state in hub.firing(now=1.0)]
        assert names == ["hot"]
        assert len(hub.states(now=1.0)) == 2

    def test_to_json_dict_carries_spec_and_state(self):
        hub = SloHub([BurnRateMonitor(_spec(name="m1", source="s1"))])
        hub.feed("s1", 0.5, 2.0)
        doc = hub.to_json_dict()
        (mon,) = doc["monitors"]
        assert mon["name"] == "m1"
        assert mon["source"] == "s1"
        assert mon["threshold"] == 1.0
        assert mon["objective"] == 0.99
        assert mon["samples"] == 1
        assert mon["bad_samples"] == 1
        assert isinstance(mon["firing"], bool)

    def test_attach_detach(self):
        before = OBS.slo_hub
        try:
            hub = attach_hub()
            assert OBS.slo_hub is hub
            mine = SloHub()
            assert attach_hub(mine) is mine
            assert OBS.slo_hub is mine
            detach_hub()
            assert OBS.slo_hub is None
        finally:
            OBS.slo_hub = before


class TestDefaultMonitors:
    def test_standard_three(self):
        monitors = default_monitors(
            serve_p99_target=2e-3,
            publish_staleness_bound=0.05,
            train_step_target=5e-3,
        )
        specs = {m.spec.name: m.spec for m in monitors}
        assert set(specs) == {
            "serve_p99_latency", "publish_staleness", "train_step_time"
        }
        assert specs["serve_p99_latency"].source == "serve_latency"
        assert specs["train_step_time"].source == "train_step"
        publish = specs["publish_staleness"]
        assert publish.objective == 1.0
        assert publish.fast_burn == publish.slow_burn == 1.0
        for spec in specs.values():
            assert spec.fast_window == pytest.approx(spec.slow_window / 5.0)


class TestLiveFeedIntegration:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.obs import run_day_in_the_life

        return run_day_in_the_life(n_iterations=2, n_requests=60)

    def test_all_three_tiers_fed_the_hub(self, result):
        assert result.slo is not None
        by_name = {m.spec.name: m for m in result.slo.monitors}
        assert len(by_name["serve_p99_latency"]) == 60
        assert len(by_name["publish_staleness"]) == 1
        assert len(by_name["train_step_time"]) == 2

    def test_scenario_slos_hold(self, result):
        # The scenario's own budgets are sized to its workload: a firing
        # monitor here means either a real regression or a broken feed.
        assert result.slo.firing() == []

    def test_hub_detached_after_scenario(self, result):
        # run_day_in_the_life attaches its hub inside capture(); the
        # caller's runtime state must come back untouched.
        assert OBS.slo_hub is not result.slo
