"""The offline report CLI: re-render a run from its archived artifacts.

``python -m repro.obs.report metrics.json [--trace obs_trace.json]``
must reproduce the run report — including fresh critical-path
extraction from the archived unified trace — without re-running the
scenario, and fall back to the archived ``reports`` blocks when the
trace is absent.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import run_day_in_the_life
from repro.obs.report import main
from repro.obs.trace import timelines_from_chrome_trace


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    out = tmp_path_factory.mktemp("obs_artifacts")
    result = run_day_in_the_life(n_iterations=2, n_requests=60, out_dir=out)
    return result, result.paths


class TestWithTrace:
    def test_reproduces_critical_path_tables(self, artifacts, capsys):
        result, paths = artifacts
        code = main(
            [
                str(paths["metrics.json"]),
                "--trace", str(paths["obs_trace.json"]),
                "--title", "Replayed",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Replayed" in out
        for tier in ("train", "publish", "serve"):
            assert f"{tier} critical path" in out
            assert f"{tier} time breakdown" in out
        # With a trace, the summary is fresh, not archived.
        assert "Archived critical paths" not in out
        assert "Archived SLOs: 3 monitors" in out

    def test_fresh_extraction_matches_archived_makespans(self, artifacts):
        """The conservation anchor of the offline path: re-extracting
        from the archived trace lands on the archived makespans (to the
        microsecond rounding of the chrome-trace format)."""
        from repro.obs.critpath import extract_critical_path

        result, paths = artifacts
        trace = json.loads(paths["obs_trace.json"].read_text())
        timelines = timelines_from_chrome_trace(trace)
        archived = json.loads(paths["critical_path.json"].read_text())
        assert set(archived) == {
            name for name, tl in timelines.items() if len(tl.events)
        }
        for name, block in archived.items():
            fresh = extract_critical_path(timelines[name])
            assert fresh.makespan == pytest.approx(
                block["makespan"], rel=1e-6, abs=1e-9
            )

    def test_highlight_lane_is_not_reimported(self, artifacts):
        """The critpath highlight lane is derived, not recorded work;
        splitting the trace back must drop it or every step would be
        double-counted."""
        result, paths = artifacts
        trace = json.loads(paths["obs_trace.json"].read_text())
        assert any(
            e.get("cat") == "critpath" for e in trace["traceEvents"]
        )
        timelines = timelines_from_chrome_trace(trace)
        for name, timeline in timelines.items():
            pid = trace["metadata"]["tiers"][name]["pid"]
            recorded = [
                e
                for e in trace["traceEvents"]
                if e.get("ph") == "X"
                and e.get("pid") == pid
                and e.get("cat") != "critpath"
            ]
            assert len(timeline.events) == len(recorded)


class TestWithoutTrace:
    def test_falls_back_to_archived_summary(self, artifacts, capsys):
        result, paths = artifacts
        code = main([str(paths["metrics.json"])])
        out = capsys.readouterr().out
        assert code == 0
        assert "Archived critical paths:" in out
        assert "dominated by" in out
        assert "Archived SLOs: 3 monitors" in out
        assert "none firing" in out

    def test_old_snapshot_without_reports_still_renders(self, tmp_path, capsys):
        from repro.obs.exporters import snapshot_to_json
        from repro.obs.registry import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("x_total").inc(1)
        path = tmp_path / "metrics.json"
        path.write_text(snapshot_to_json(reg.snapshot()))
        code = main([str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "x_total" in out
        assert "Archived" not in out


class TestErrors:
    def test_missing_metrics_file(self, tmp_path, capsys):
        code = main([str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_metrics_document(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        code = main([str(path)])
        assert code == 2
        assert "not a snapshot" in capsys.readouterr().err

    def test_trace_without_tier_metadata(self, artifacts, tmp_path, capsys):
        result, paths = artifacts
        bare = tmp_path / "bare_trace.json"
        bare.write_text(json.dumps({"traceEvents": []}))
        code = main([str(paths["metrics.json"]), "--trace", str(bare)])
        assert code == 2
        assert "metadata.tiers" in capsys.readouterr().err

    def test_missing_trace_file(self, artifacts, tmp_path, capsys):
        result, paths = artifacts
        code = main(
            [str(paths["metrics.json"]), "--trace", str(tmp_path / "no.json")]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err
