"""Hot-path instrumentation: rich when enabled, invisible when disabled.

Every instrumented site guards on ``OBS.enabled``; with the runtime off
the registry must stay completely untouched and behavior identical —
the zero-overhead contract the perf benchmark prices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import AdaptiveController, OfflineAnalyzer
from repro.compression.hybrid import HybridCompressor
from repro.data import SyntheticClickDataset, make_uniform_spec
from repro.dist import ClusterSimulator
from repro.model import DLRM, DLRMConfig
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import capture, disable, enable
from repro.train import CompressionPipeline, HybridParallelTrainer

N_TABLES = 4


def make_trainer(**kwargs):
    spec = make_uniform_spec(
        "obs-instr", n_tables=N_TABLES, cardinality=200, zipf_exponent=1.2
    )
    dataset = SyntheticClickDataset(spec, seed=11, teacher_scale=3.0)
    config = DLRMConfig.from_dataset(spec, embedding_dim=8, seed=12)
    model = DLRM(config)
    batch = dataset.batch(64, batch_index=10_000_000)
    samples = {j: model.lookup(j, batch.sparse[:, j]) for j in range(N_TABLES)}
    plan = OfflineAnalyzer().analyze(samples)
    pipeline = CompressionPipeline(AdaptiveController(plan))
    return HybridParallelTrainer(
        model, dataset, ClusterSimulator(2), pipeline=pipeline, lr=0.2, **kwargs
    )


class TestDisabledIsInvisible:
    def test_disabled_run_leaves_registry_untouched(self):
        reg = MetricsRegistry()
        trainer = make_trainer()
        trainer.train_step(32, iteration=0)  # runs with OBS disabled
        assert reg.names() == []

    def test_enabled_and_disabled_runs_agree_numerically(self):
        losses_off = []
        trainer = make_trainer()
        for i in range(2):
            losses_off.append(trainer.train_step(32, iteration=i))
        with capture():
            enable(MetricsRegistry())
            trainer_on = make_trainer()
            losses_on = [trainer_on.train_step(32, iteration=i) for i in range(2)]
        assert losses_on == losses_off


class TestTrainerInstrumentation:
    def test_step_metrics(self):
        with capture() as reg:
            trainer = make_trainer()
            trainer.train_step(32, iteration=0)
            trainer.train_step(32, iteration=1)
        snap = reg.snapshot()
        assert snap.counter_value("train_iterations_total") == 2
        assert snap.histogram_data("train_step_seconds").count == 2
        eff = snap.gauge_value("train_overlap_efficiency_last")
        assert 0.0 <= eff <= 1.0
        assert snap.counter_value("train_forward_wire_bytes_total") > 0

    def test_train_step_span_and_wire_counter_on_timeline(self):
        from repro.dist.timeline import OBS_STREAM, EventCategory

        with capture():
            trainer = make_trainer()
            trainer.train_step(32, iteration=0)
        spans = [
            e
            for e in trainer.simulator.timeline.events
            if e.category == EventCategory.TRAIN_STEP
        ]
        assert len(spans) == 1
        assert spans[0].stream == OBS_STREAM
        assert spans[0].args["iteration"] == 0
        assert trainer.simulator.timeline.counter_track("train_wire_bytes")


class TestCommInstrumentation:
    def test_stage_seconds_and_bytes(self):
        with capture() as reg:
            trainer = make_trainer()
            trainer.train_step(32, iteration=0)
        snap = reg.snapshot()
        for stage in ("compress", "metadata", "payload", "decompress", "allreduce"):
            assert snap.counter_value("comm_seconds_total", stage=stage) > 0, stage
        assert snap.counter_value("comm_bytes_total", stage="payload") > 0
        assert snap.counter_value("comm_exchanges_total", mode="sequential") >= 1

    def test_overlapped_mode_records_stall_and_hidden_wire(self):
        with capture() as reg:
            trainer = make_trainer(overlap=True, pipeline_chunks=4)
            trainer.train_step(32, iteration=0)
        snap = reg.snapshot()
        assert snap.counter_value("comm_exchanges_total", mode="overlapped") >= 1
        names = set(snap.names())
        assert "comm_wire_stall_seconds_total" in names
        assert "comm_wire_hidden_seconds_total" in names


class TestPipelineInstrumentation:
    def test_per_table_ratio_and_bound_utilization(self):
        with capture() as reg:
            trainer = make_trainer()
            trainer.train_step(32, iteration=0)
        snap = reg.snapshot()
        raw = sum(
            v
            for name, _kind, _key, v in snap.iter_series()
            if name == "pipeline_raw_bytes_total"
        )
        assert raw > 0
        ratio = snap.histogram_data("pipeline_compression_ratio", table="0")
        assert ratio.count > 0
        util = snap.gauge_value("pipeline_bound_utilization", table="0")
        assert util > 0

    def test_decompressed_bytes_counted(self):
        with capture() as reg:
            trainer = make_trainer()
            trainer.train_step(32, iteration=0)
        snap = reg.snapshot()
        assert snap.counter_value("pipeline_decompressed_bytes_total") > 0


class TestHybridInstrumentation:
    def test_compress_decompress_byte_counters(self):
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(64, 8)).astype(np.float32)
        hybrid = HybridCompressor()
        with capture() as reg:
            payload = hybrid.compress(batch, 1e-2)
            hybrid.decompress(payload)
        snap = reg.snapshot()
        assert snap.counter_value("hybrid_raw_bytes_total") == batch.nbytes
        assert snap.counter_value("hybrid_compressed_bytes_total") == len(payload)
        assert snap.counter_value("hybrid_decompressed_bytes_total") == batch.nbytes

    def test_pin_trial_replay_and_switch_counters(self):
        rng = np.random.default_rng(1)
        batch = rng.normal(size=(64, 8)).astype(np.float32)
        hybrid = HybridCompressor(pin_refresh=8)
        with capture() as reg:
            hybrid.compress_keyed("t", batch, 1e-2)  # trial
            hybrid.compress_keyed("t", batch, 1e-2)  # replay
        snap = reg.snapshot()
        trials = sum(
            v
            for name, _kind, _key, v in snap.iter_series()
            if name == "hybrid_pin_trial_total"
        )
        replays = sum(
            v
            for name, _kind, _key, v in snap.iter_series()
            if name == "hybrid_pin_replay_total"
        )
        assert trials == 1
        assert replays == 1


class TestServeInstrumentation:
    def test_request_metrics(self):
        from repro.serve import build_serving_tier
        from repro.serve.loadgen import RequestLoadGenerator
        from repro.serve.simulator import ServingSimulator

        trainer = make_trainer()
        spec_dataset = trainer.dataset
        tier = build_serving_tier(trainer, n_shard_ranks=2, n_replicas=1, cache_rows=32)
        requests = RequestLoadGenerator(spec_dataset, qps=1000.0, seed=3).generate(40)
        sim = ServingSimulator(tier.replicas, trainer.model.config)
        with capture() as reg:
            report = sim.run(requests)
        snap = reg.snapshot()
        assert snap.counter_value("serve_requests_total") == 40
        assert snap.histogram_data("serve_latency_seconds").count == 40
        hits = snap.counter_value("serve_cache_hits_total", replica="0")
        misses = snap.counter_value("serve_cache_misses_total", replica="0")
        assert hits == report.hits
        assert misses == report.misses
        assert snap.counter_value("shard_pulls_total") > 0
        assert snap.counter_value("shard_pull_bytes_total", kind="compressed") > 0

    def test_publish_metrics(self):
        from repro.serve import build_serving_tier

        trainer = make_trainer()
        trainer.train_step(32, iteration=0)
        tier = build_serving_tier(trainer, n_shard_ranks=2, n_replicas=1, cache_rows=32)
        with capture() as reg:
            report = tier.publisher.publish(iteration=0)
        snap = reg.snapshot()
        assert snap.counter_value("publish_rounds_total", mode="compressed") == 1
        assert (
            snap.counter_value("publish_wire_bytes_total", mode="compressed")
            == report.wire_nbytes
        )
        down = snap.histogram_data("publish_downtime_seconds", mode="compressed")
        assert down.count == 1
