"""MetricsRegistry core: families, label sets, histograms, snapshot laws.

The property tests pin the algebra the exporters and multi-tier merges
rely on: snapshot merge is associative, and the histogram quantile
estimator always answers with an observed value (exact mode) or a bound
no larger than the observed max (bucketed mode).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    linear_buckets,
)


class TestBuckets:
    def test_exponential_buckets_grow_geometrically(self):
        b = exponential_buckets(1.0, 2.0, 4)
        assert b == (1.0, 2.0, 4.0, 8.0)

    def test_linear_buckets(self):
        b = linear_buckets(0.5, 0.25, 3)
        assert b == (0.5, 0.75, 1.0)

    def test_default_buckets_cover_microseconds_to_minutes(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] > 60.0


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "requests")
        c.inc()
        c.inc(2, stage="payload")
        c.inc(3, stage="payload")
        assert c.value() == 1
        assert c.value(stage="payload") == 5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("n_total").inc(-1)

    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("n_total") is reg.counter("n_total")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("n_total")
        with pytest.raises(TypeError):
            reg.gauge("n_total")

    def test_invalid_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("9starts-with-digit")


class TestGauge:
    def test_set_add_value(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(4.0, queue="a")
        g.add(-1.5, queue="a")
        assert g.value(queue="a") == 2.5

    def test_missing_series_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            reg.gauge("depth").value(queue="nope")


class TestHistogramExactRank:
    """Satellite 1's estimator contract: exact-rank order statistics."""

    def test_small_sample_quantiles_are_observed_values(self):
        h = Histogram("lat")
        samples = [0.001, 0.002, 0.01, 0.5]
        for s in samples:
            h.observe(s)
        # rank = max(1, ceil(q*n)): p50 of 4 samples is the 2nd, p99 the 4th
        assert h.quantile(0.5) == 0.002
        assert h.quantile(0.99) == 0.5
        assert h.quantile(0.0) == 0.001
        assert h.quantile(1.0) == 0.5

    def test_single_sample_every_quantile_is_it(self):
        h = Histogram("lat")
        h.observe(0.125)
        for q in (0.0, 0.5, 0.9, 1.0):
            assert h.quantile(q) == 0.125

    def test_reservoir_dropped_beyond_exact_limit(self):
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0), exact_limit=4)
        for v in (0.5, 1.5, 3.0, 5.0):
            h.observe(v)
        assert h.data().exact == (0.5, 1.5, 3.0, 5.0)
        h.observe(2.5)
        data = h.data()
        assert data.exact is None
        assert data.count == 5
        # bucketed fallback: upper edge clamped to the observed max;
        # overflow ranks answer the max itself.  p50 of 5 samples is rank
        # 3 = 2.5, which lives in the (2.0, 4.0] bucket.
        assert data.quantile(0.5) == 4.0
        assert data.quantile(1.0) == 5.0

    def test_counts_include_overflow_bucket(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.data().counts == (1, 1, 1)

    def test_empty_quantile_raises(self):
        h = Histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.data().quantile(1.5)
        reg = MetricsRegistry()
        reg.histogram("empty_hist").observe(1.0, k="a")
        with pytest.raises(KeyError):
            reg.histogram("empty_hist").data(k="b")

    def test_non_finite_observation_rejected(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.observe(float("nan"))
        with pytest.raises(ValueError):
            h.observe(float("inf"))


class TestSnapshot:
    def test_snapshot_is_frozen_against_later_updates(self):
        reg = MetricsRegistry()
        reg.counter("n_total").inc(1)
        snap = reg.snapshot()
        reg.counter("n_total").inc(10)
        assert snap.counter_value("n_total") == 1
        assert reg.snapshot().counter_value("n_total") == 11

    def test_merge_sums_counters_and_right_biases_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total").inc(2)
        b.counter("n_total").inc(3)
        a.gauge("depth").set(1.0)
        b.gauge("depth").set(9.0)
        merged = a.snapshot() | b.snapshot()
        assert merged.counter_value("n_total") == 5
        assert merged.gauge_value("depth") == 9.0

    def test_merge_is_disjoint_union_over_names(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("left_total").inc()
        b.counter("right_total").inc()
        merged = a.snapshot().merge(b.snapshot())
        assert merged.names() == ["left_total", "right_total"]

    def test_histogram_merge_rejects_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(1.0)
        b.histogram("h", bounds=(1.0, 3.0)).observe(1.0)
        with pytest.raises(ValueError):
            a.snapshot().merge(b.snapshot())


# ------------------------------------------------------------- properties

finite_values = st.floats(
    min_value=1e-9, max_value=1e6, allow_nan=False, allow_infinity=False
)

# Merge equality is exact, so the associativity property feeds integral
# values (counts, bytes — what counters carry in practice): float sums of
# integers this size are exact, while arbitrary floats would fail on
# rounding, not on the merge algebra.
integral_values = st.integers(min_value=0, max_value=10**9).map(float)


def _registry_from(counter_incs, gauge_sets, hist_obs, exact_limit):
    reg = MetricsRegistry()
    for label, v in counter_incs:
        reg.counter("ops_total").inc(v, kind=label)
    for label, v in gauge_sets:
        reg.gauge("level").set(v, kind=label)
    h = reg.histogram("dist", bounds=(1.0, 10.0, 100.0), exact_limit=exact_limit)
    for v in hist_obs:
        h.observe(v)
    return reg


registry_state = st.builds(
    _registry_from,
    st.lists(st.tuples(st.sampled_from("abc"), integral_values), max_size=5),
    st.lists(st.tuples(st.sampled_from("abc"), integral_values), max_size=5),
    st.lists(integral_values, max_size=12),
    st.integers(min_value=0, max_value=8),
)


class TestMergeProperties:
    @given(registry_state, registry_state, registry_state)
    @settings(max_examples=60, deadline=None)
    def test_merge_associative(self, ra, rb, rc):
        a, b, c = ra.snapshot(), rb.snapshot(), rc.snapshot()
        assert (a | b) | c == a | (b | c)

    @given(registry_state, registry_state)
    @settings(max_examples=60, deadline=None)
    def test_merge_sums_counter_totals(self, ra, rb):
        a, b = ra.snapshot(), rb.snapshot()

        def total(snap):
            return sum(
                v
                for name, kind, _key, v in snap.iter_series()
                if kind == "counter"
            )

        assert total(a | b) == pytest.approx(total(a) + total(b))

    @given(registry_state, registry_state)
    @settings(max_examples=60, deadline=None)
    def test_merged_histogram_count_and_total_sum(self, ra, rb):
        a, b = ra.snapshot(), rb.snapshot()
        merged = a | b
        if "dist" not in merged.names():
            return
        def stats(snap):
            try:
                d = snap.histogram_data("dist")
            except KeyError:  # family or unlabeled series absent
                return 0, 0.0
            return d.count, d.total
        ca, ta = stats(a)
        cb, tb = stats(b)
        cm, tm = stats(merged)
        assert cm == ca + cb
        assert tm == pytest.approx(ta + tb)


class TestQuantileProperties:
    @given(st.lists(finite_values, min_size=1, max_size=30), st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_exact_mode_answers_an_observed_value(self, samples, q):
        h = Histogram("dist", bounds=(1.0, 10.0), exact_limit=64)
        for v in samples:
            h.observe(v)
        assert h.quantile(q) in samples

    @given(st.lists(finite_values, min_size=1, max_size=30), st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_bucketed_mode_bounded_by_min_and_max(self, samples, q):
        h = Histogram("dist", bounds=(1.0, 10.0, 100.0), exact_limit=0)
        for v in samples:
            h.observe(v)
        estimate = h.quantile(q)
        assert estimate <= max(samples)
        # a bucket upper edge can only over-estimate within its bucket,
        # never answer below the smallest sample's bucket floor
        assert estimate >= min(min(samples), 1.0) or math.isclose(estimate, min(samples))

    @given(st.lists(finite_values, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_quantile_monotone_in_q(self, samples):
        h = Histogram("dist", bounds=(1.0, 10.0), exact_limit=64)
        for v in samples:
            h.observe(v)
        qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        estimates = [h.quantile(q) for q in qs]
        assert estimates == sorted(estimates)
